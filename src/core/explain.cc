#include "core/explain.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace stratlearn {
namespace {

const char* KindName(ArcKind kind) {
  return kind == ArcKind::kReduction ? "reduction" : "retrieval";
}

/// One arc line: "#k label (kind, f=...) <estimate> <profile columns>".
std::string ArcLine(const InferenceGraph& graph, ArcId id, size_t position,
                    const obs::StrategyProfiler* profile, double total_cost,
                    const ExplainOptions& options) {
  const Arc& arc = graph.arc(id);
  std::string out = StrFormat("#%zu %s (%s, f=%s)", position + 1,
                              arc.label.c_str(), KindName(arc.kind),
                              FormatDouble(arc.cost, 4).c_str());
  if (arc.experiment < 0) {
    out += "  p=1 (deterministic)";
  }
  if (profile == nullptr) return out;
  auto it = profile->arcs().find(id);
  if (it == profile->arcs().end()) {
    out += "  [unobserved]";
    return out;
  }
  const obs::ArcProfile& p = it->second;
  if (arc.experiment >= 0) {
    out += StrFormat("  p^=%s +/- %s", FormatDouble(p.PHat(), 3).c_str(),
                     FormatDouble(profile->HalfWidth(p.attempts), 3).c_str());
  }
  double share = total_cost > 0.0 ? p.cum_cost / total_cost : 0.0;
  out += StrFormat("  n=%lld mean=%s share=%.1f%%",
                   static_cast<long long>(p.attempts),
                   FormatDouble(p.MeanCost(), 4).c_str(), 100.0 * share);
  if (share >= options.hot_share) out += "  HOT";
  return out;
}

void RenderNode(const InferenceGraph& graph, NodeId id,
                const std::vector<size_t>& position,
                const obs::StrategyProfiler* profile, double total_cost,
                const ExplainOptions& options, int depth, std::string* out) {
  const Node& node = graph.node(id);
  out->append(static_cast<size_t>(2 * depth), ' ');
  *out += node.is_success ? "[success]" : node.label;
  *out += '\n';
  if (node.is_success) return;

  // Children in strategy-visit order, so reading top-down follows the
  // processor's preference at this node.
  std::vector<ArcId> children = node.out_arcs;
  std::sort(children.begin(), children.end(), [&](ArcId a, ArcId b) {
    return position[a] < position[b];
  });
  for (ArcId child : children) {
    out->append(static_cast<size_t>(2 * depth + 2), ' ');
    *out += ArcLine(graph, child, position[child], profile, total_cost,
                    options);
    *out += '\n';
    RenderNode(graph, graph.arc(child).to, position, profile, total_cost,
               options, depth + 2, out);
  }
}

}  // namespace

std::string ExplainStrategyTree(const InferenceGraph& graph,
                                const Strategy& strategy,
                                const obs::StrategyProfiler* profile,
                                const ExplainOptions& options) {
  std::vector<size_t> position(graph.num_arcs(), 0);
  for (size_t k = 0; k < strategy.arcs().size(); ++k) {
    position[strategy.arcs()[k]] = k;
  }
  std::string out =
      StrFormat("strategy %s\n", strategy.ToString(graph).c_str());
  if (profile != nullptr) {
    out += StrFormat(
        "profiled over %lld queries (mean cost/query %s); "
        "HOT = share >= %s%%\n",
        static_cast<long long>(profile->queries()),
        FormatDouble(profile->MeanQueryCost()).c_str(),
        FormatDouble(100.0 * options.hot_share).c_str());
  }
  double total_cost = profile != nullptr ? profile->TotalArcCost() : 0.0;
  RenderNode(graph, graph.root(), position, profile, total_cost, options,
             /*depth=*/0, &out);
  return out;
}

std::string ExplainPibState(const PibSnapshot& snapshot) {
  std::string out = StrFormat(
      "PIB state: %lld contexts, %lld trials, |S|=%lld since last move\n",
      static_cast<long long>(snapshot.contexts),
      static_cast<long long>(snapshot.trials),
      static_cast<long long>(snapshot.samples_in_epoch));
  out += StrFormat(
      "delta budget: lifetime %s, spent on %zu moves %s, "
      "next test delta_i %s\n",
      FormatDouble(snapshot.delta).c_str(), snapshot.moves.size(),
      FormatDouble(snapshot.delta_spent_moves).c_str(),
      FormatDouble(snapshot.current_test_delta).c_str());
  if (!snapshot.neighbors.empty()) {
    out += "neighbourhood (Delta~ sums vs Equation-6 thresholds):\n";
    out += StrFormat("  %-28s %12s %12s %12s %8s\n", "swap", "delta_sum",
                     "threshold", "margin", "range");
    for (const PibSnapshot::Neighbor& n : snapshot.neighbors) {
      out += StrFormat("  %-28s %12s %12s %12s %8s\n", n.swap.c_str(),
                       FormatDouble(n.delta_sum, 4).c_str(),
                       FormatDouble(n.threshold, 4).c_str(),
                       FormatDouble(n.margin, 4).c_str(),
                       FormatDouble(n.range, 4).c_str());
    }
  }
  if (snapshot.moves.empty()) {
    out += "climb history: none\n";
  } else {
    out += "climb history:\n";
    for (size_t i = 0; i < snapshot.moves.size(); ++i) {
      const PibSnapshot::Move& m = snapshot.moves[i];
      out += StrFormat(
          "  #%zu at context %lld (|S|=%lld): %s  "
          "delta_sum=%s threshold=%s delta_i=%s\n",
          i, static_cast<long long>(m.at_context),
          static_cast<long long>(m.samples_used), m.swap.c_str(),
          FormatDouble(m.delta_sum, 4).c_str(),
          FormatDouble(m.threshold, 4).c_str(),
          FormatDouble(m.delta_spent).c_str());
    }
  }
  return out;
}

std::string ExplainPaoState(const InferenceGraph& graph,
                            const AdaptiveQueryProcessor::Snapshot& snapshot) {
  std::string out = StrFormat(
      "QP^A sampler: %lld contexts, quotas %s\n",
      static_cast<long long>(snapshot.contexts),
      snapshot.quotas_met ? "met" : "NOT met");
  out += StrFormat("  %-12s %8s %10s %9s %10s %13s %7s %7s\n", "experiment",
                   "quota", "remaining", "attempts", "successes",
                   "blocked_aims", "p^", "reach^");
  for (size_t i = 0; i < snapshot.experiments.size(); ++i) {
    const AdaptiveQueryProcessor::Snapshot::Experiment& e =
        snapshot.experiments[i];
    const char* label = i < graph.num_experiments()
                            ? graph.arc(graph.experiments()[i]).label.c_str()
                            : "?";
    out += StrFormat("  %-12s %8lld %10lld %9lld %10lld %13lld %7s %7s\n",
                     label, static_cast<long long>(e.quota),
                     static_cast<long long>(e.remaining),
                     static_cast<long long>(e.attempts),
                     static_cast<long long>(e.successes),
                     static_cast<long long>(e.blocked_aims),
                     FormatDouble(e.p_hat, 3).c_str(),
                     FormatDouble(e.reach_hat, 3).c_str());
  }
  return out;
}

}  // namespace stratlearn
