#include "core/expected_cost.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn {

namespace {

/// Pass probability of an arc: its experiment's success probability, or 1
/// for deterministic arcs.
double PassProb(const InferenceGraph& graph, ArcId a,
                const std::vector<double>& probs) {
  int e = graph.arc(a).experiment;
  return e < 0 ? 1.0 : probs[static_cast<size_t>(e)];
}

/// Probability that no success-arc in `in_s` fires anywhere under `node`,
/// conditioned on arcs marked `forced` being unblocked. Factorises over
/// sibling subtrees because experiments are independent.
double NoSuccessProb(const InferenceGraph& graph,
                     const std::vector<double>& probs,
                     const std::vector<char>& in_s,
                     const std::vector<char>& forced, NodeId node) {
  double out = 1.0;
  for (ArcId c : graph.node(node).out_arcs) {
    const Arc& arc = graph.arc(c);
    if (graph.node(arc.to).is_success) {
      // Success nodes are leaves, so a success arc never lies on any
      // Pi(a) and is never forced.
      if (in_s[c]) out *= 1.0 - PassProb(graph, c, probs);
      continue;
    }
    double sub = NoSuccessProb(graph, probs, in_s, forced, arc.to);
    if (forced[c]) {
      out *= sub;
    } else {
      double p = PassProb(graph, c, probs);
      out *= (1.0 - p) + p * sub;
    }
  }
  return out;
}

}  // namespace

bool IsLeafOnlyExperiments(const InferenceGraph& graph) {
  for (ArcId a : graph.experiments()) {
    if (!graph.node(graph.arc(a).to).is_success) return false;
  }
  return true;
}

double LeafOnlyExpectedCost(const InferenceGraph& graph,
                            const Strategy& strategy,
                            const std::vector<double>& probs) {
  STRATLEARN_CHECK_MSG(IsLeafOnlyExperiments(graph),
                       "LeafOnlyExpectedCost requires leaf-only experiments");
  STRATLEARN_CHECK(probs.size() == graph.num_experiments());
  double cost = 0.0;
  double no_success = 1.0;  // Pr[search still running]
  for (ArcId a : strategy.arcs()) {
    if (no_success == 0.0) break;
    double p = PassProb(graph, a, probs);
    cost += graph.arc(a).ExpectedAttemptCost(p) * no_success;
    int e = graph.arc(a).experiment;
    if (e >= 0) no_success *= 1.0 - probs[static_cast<size_t>(e)];
  }
  return cost;
}

double ExactExpectedCost(const InferenceGraph& graph, const Strategy& strategy,
                         const std::vector<double>& probs) {
  STRATLEARN_CHECK(probs.size() == graph.num_experiments());
  if (IsLeafOnlyExperiments(graph)) {
    return LeafOnlyExpectedCost(graph, strategy, probs);
  }

  std::vector<char> in_s(graph.num_arcs(), 0);
  std::vector<char> forced(graph.num_arcs(), 0);
  double cost = 0.0;
  for (ArcId a : strategy.arcs()) {
    // Pr[Pi(a) unblocked].
    std::vector<ArcId> pi = graph.Pi(a);
    double pi_prob = 1.0;
    for (ArcId e : pi) {
      pi_prob *= PassProb(graph, e, probs);
      forced[e] = 1;
    }
    if (pi_prob > 0.0) {
      double no_success = NoSuccessProb(graph, probs, in_s, forced,
                                        graph.root());
      double attempt_cost =
          graph.arc(a).ExpectedAttemptCost(PassProb(graph, a, probs));
      cost += attempt_cost * pi_prob * no_success;
    }
    for (ArcId e : pi) forced[e] = 0;
    if (graph.node(graph.arc(a).to).is_success) in_s[a] = 1;
  }
  return cost;
}

double EnumeratedExpectedCost(const InferenceGraph& graph,
                              const Strategy& strategy,
                              const std::vector<double>& probs) {
  size_t n = graph.num_experiments();
  STRATLEARN_CHECK_MSG(n <= 20, "EnumeratedExpectedCost is a test oracle");
  STRATLEARN_CHECK(probs.size() == n);
  QueryProcessor qp(&graph);
  double expected = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < n && weight > 0.0; ++i) {
      weight *= ((mask >> i) & 1) ? probs[i] : 1.0 - probs[i];
    }
    if (weight == 0.0) continue;
    expected += weight * qp.Cost(strategy, Context::FromMask(n, mask));
  }
  return expected;
}

double MonteCarloExpectedCost(const InferenceGraph& graph,
                              const Strategy& strategy, ContextOracle& oracle,
                              int64_t samples, Rng& rng) {
  STRATLEARN_CHECK(samples > 0);
  QueryProcessor qp(&graph);
  double total = 0.0;
  for (int64_t i = 0; i < samples; ++i) {
    total += qp.Cost(strategy, oracle.Next(rng));
  }
  return total / static_cast<double>(samples);
}

Result<OptimalResult> BruteForceOptimal(const InferenceGraph& graph,
                                        const std::vector<double>& probs,
                                        size_t max_leaves) {
  std::vector<ArcId> leaves = graph.SuccessArcs();
  if (leaves.empty()) {
    return Status::InvalidArgument("graph has no success arcs");
  }
  if (leaves.size() > max_leaves) {
    return Status::InvalidArgument(
        StrFormat("brute force limited to %zu leaves; graph has %zu",
                  max_leaves, leaves.size()));
  }
  std::sort(leaves.begin(), leaves.end());
  OptimalResult best;
  bool have_best = false;
  do {
    Strategy candidate = Strategy::FromLeafOrder(graph, leaves);
    double cost = ExactExpectedCost(graph, candidate, probs);
    if (!have_best || cost < best.cost) {
      best.strategy = candidate;
      best.cost = cost;
      have_best = true;
    }
  } while (std::next_permutation(leaves.begin(), leaves.end()));
  return best;
}

}  // namespace stratlearn
