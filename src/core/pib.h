#ifndef STRATLEARN_CORE_PIB_H_
#define STRATLEARN_CORE_PIB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/delta_estimator.h"
#include "core/transformations.h"
#include "engine/query_processor.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"

namespace stratlearn {

/// The anytime PIB hill-climber of Figure 3 (Section 3.2).
///
/// PIB watches the query processor run its current strategy Theta_j.
/// After each query it updates, for every neighbour Theta' in the
/// transformation set T(Theta_j), the running sum of the under-estimates
/// Delta~[Theta_j, Theta', I], and climbs to the first neighbour whose
/// sum crosses the Equation-6 threshold
///    Lambda[Theta_j, Theta'] * sqrt(|S|/2 * ln(i^2 pi^2 / (6 delta))),
/// where i is the cumulative number of (strategy, neighbour) trials. The
/// i^2 pi^2/6 term implements the sequential-test schedule, and Lambda's
/// ln argument also absorbs the |T| simultaneous hypotheses (Equation 5)
/// because i grows by |T| per context. Theorem 1: the probability that
/// *any* climb in the infinite run increases expected cost is < delta.
struct PibOptions {
  double delta = 0.05;
  /// Evaluate the switch condition only every k-th context (Section
  /// 3.2's closing remark: Theorem 1 continues to hold).
  int test_every = 1;
};

/// Read-only view of PIB's internal estimate state, for explain-style
/// introspection (CLI `explain`, tests, reports). Swap descriptions are
/// rendered to strings so the snapshot is self-contained — it stays
/// meaningful after the learner (and its graph) are gone.
struct PibSnapshot {
  struct Neighbor {
    std::string swap;
    double delta_sum = 0.0;   // running sum of Delta~ under-estimates
    double threshold = 0.0;   // current Equation-6 threshold
    double margin = 0.0;      // delta_sum - threshold
    double range = 0.0;       // Lambda range of the swap
  };
  struct Move {
    int64_t at_context = 0;
    int64_t samples_used = 0;
    std::string swap;
    double delta_sum = 0.0;
    double threshold = 0.0;
    double delta_spent = 0.0;  // delta_i consumed by this move
  };

  int64_t contexts = 0;
  int64_t trials = 0;
  int64_t samples_in_epoch = 0;
  double delta = 0.0;              // configured lifetime budget
  double current_test_delta = 0.0; // delta_i at the current trial count
  double delta_spent_moves = 0.0;  // sum of the fired moves' delta_i
  std::vector<Neighbor> neighbors; // current neighbourhood, in T order
  std::vector<Move> moves;         // full climb history
};

class Pib {
 public:
  using Options = PibOptions;

  /// One hill-climbing move, for reporting/anytime curves.
  struct Move {
    int64_t at_context = 0;      // total contexts processed when it fired
    int64_t samples_used = 0;    // |S| of the test that fired
    SiblingSwap swap;
    double delta_sum = 0.0;
    double threshold = 0.0;
    double delta_spent = 0.0;    // delta_i consumed from the budget
  };

  /// Uses T = all sibling swaps of the graph.
  Pib(const InferenceGraph* graph, Strategy initial,
      Options options = PibOptions(), obs::Observer* observer = nullptr);

  /// Uses a caller-selected transformation set.
  Pib(const InferenceGraph* graph, Strategy initial,
      std::vector<SiblingSwap> transformations, Options options,
      obs::Observer* observer = nullptr);

  /// Attaches an observer: pib.* metrics plus SequentialTest/ClimbMove
  /// events from every test round.
  void set_observer(obs::Observer* observer);

  /// Records the trace of the *current* strategy solving one context.
  /// Returns true when a hill-climbing move occurred (the caller must
  /// then run `strategy()` — the new strategy — on subsequent queries).
  bool Observe(const Trace& trace);

  const Strategy& strategy() const { return current_; }
  int64_t contexts_processed() const { return contexts_; }
  /// Figure 3's i: cumulative neighbour trials.
  int64_t trial_count() const { return trials_; }
  /// |S|: contexts observed since the last move.
  int64_t samples_in_epoch() const { return samples_; }
  const std::vector<Move>& moves() const { return moves_; }

  /// The current Equation-6 threshold for neighbour `j` (for
  /// introspection and the ablation benches).
  double ThresholdFor(size_t neighbor) const;
  double DeltaSumFor(size_t neighbor) const;
  size_t num_neighbors() const { return neighbors_.size(); }

  /// Captures the learner's full estimate state (neighbour Delta~ sums,
  /// thresholds, margins, climb history, delta budget) without exposing
  /// any mutable internals.
  PibSnapshot Snapshot() const;

  /// Resumable learner state: everything Observe reads or writes.
  /// `neighbor_delta_sums` is indexed by the neighbourhood that
  /// RebuildNeighborhood derives from `strategy` (deterministic given the
  /// graph and transformation set), so sums survive serialization without
  /// naming their swaps.
  struct Checkpoint {
    Strategy strategy;
    int64_t contexts = 0;
    int64_t trials = 0;
    int64_t samples = 0;
    std::vector<double> neighbor_delta_sums;
    std::vector<Move> moves;
    /// Audit-ledger cursor, so a resumed --audit-out run continues the
    /// delta accounting (and the audit_every subsampling phase) exactly
    /// where the killed run left off.
    double audit_delta_spent = 0.0;
    int64_t audit_rounds = 0;
  };
  Checkpoint GetCheckpoint() const;
  /// Rebuilds the neighbourhood of the checkpointed strategy and
  /// reinstates its Delta~ sums and counters. Rejects checkpoints whose
  /// shape or invariants do not fit this learner's graph/transformation
  /// set; on error the learner keeps its prior state.
  Status RestoreCheckpoint(const Checkpoint& checkpoint);

  /// Recovery action: re-open the sequential test after detected drift
  /// without discarding the current strategy. Zeroes every neighbour's
  /// Delta~ sum along with the epoch sample count (pre-drift evidence
  /// must not certify a post-drift climb) and rewinds the trial counter
  /// to max(1, trials * trials_factor), which widens delta_i back to an
  /// earlier rung of the 6/pi^2 schedule so the test re-converges
  /// faster than a cold restart while Theorem 1's union bound (a
  /// subsequence of the same schedule) still holds.
  void Rebaseline(double trials_factor);

  /// Recovery action scoped to one drifted arc: zeroes the Delta~ sums
  /// of exactly the neighbours whose swap moves a subtree containing
  /// `arc`, keeping every other neighbour's evidence. The shared
  /// samples_/trials_ counters are kept too, which leaves the scoped
  /// neighbours' thresholds conservatively over-estimated (they demand
  /// at least as much post-drift evidence as a fresh epoch would).
  /// Returns the number of neighbours reset.
  int64_t RestartScoped(ArcId arc);

 private:
  struct Neighbor {
    SiblingSwap swap;
    Strategy strategy;
    double range = 0.0;
    double delta_sum = 0.0;
  };

  void RebuildNeighborhood();
  /// Builds the decision certificate for one test round's verdict on
  /// `neighbor` and charges its delta_i to the audit ledger. Only
  /// called when the observer has audit enabled.
  obs::DecisionCertificateEvent MakeAuditCertificate(size_t neighbor,
                                                     const char* verdict,
                                                     double threshold);

  const InferenceGraph* graph_;
  DeltaEstimator estimator_;
  Strategy current_;
  std::vector<SiblingSwap> transformations_;
  Options options_;

  std::vector<Neighbor> neighbors_;
  int64_t contexts_ = 0;
  int64_t trials_ = 0;
  int64_t samples_ = 0;
  std::vector<Move> moves_;
  /// Audit-mode state: delta_i charged by certified decisions (a
  /// subsequence of the 6/pi^2 schedule, so always < delta) and the
  /// count of audited test rounds (for the observer's audit_every
  /// subsampling of reject certificates).
  double audit_delta_spent_ = 0.0;
  int64_t audit_rounds_ = 0;
  obs::Observer* observer_ = nullptr;
  struct Handles {
    obs::Counter* contexts = nullptr;
    obs::Counter* trials = nullptr;
    obs::Counter* tests = nullptr;
    obs::Counter* moves = nullptr;
  };
  Handles handles_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_PIB_H_
