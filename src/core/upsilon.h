#ifndef STRATLEARN_CORE_UPSILON_H_
#define STRATLEARN_CORE_UPSILON_H_

#include <vector>

#include "engine/strategy.h"
#include "graph/inference_graph.h"
#include "util/status.h"

namespace stratlearn {

/// Options for the Upsilon_AOT optimal-strategy computation.
struct UpsilonOptions {
  /// Graphs outside the provably-optimal class fall back to exhaustive
  /// search when they have at most this many success arcs.
  size_t max_brute_force_leaves = 8;
  /// When brute force is also infeasible, allow the near-optimal
  /// approximation (paper Section 4: the efficient Upsilon~_G of
  /// [GO91, Appendix B]); the result is flagged `exact == false`.
  bool allow_approximation = true;
};

struct UpsilonResult {
  Strategy strategy;
  double expected_cost = 0.0;
  /// True when the returned strategy is provably optimal.
  bool exact = true;
};

/// Upsilon_AOT(G, p): the minimum-expected-cost satisficing strategy for
/// a tree-shaped inference graph whose experiments succeed independently
/// with probabilities `probs` (Section 4).
///
/// For the paper's *simple disjunctive* AOT class — experiments only on
/// leaf (success) arcs — the optimal ordering is computed in
/// O(|A| log |A|) by ratio-block merging (the Simon–Kadane / Smith
/// sequencing algorithm for tree precedence):
///   * each leaf arc is a job with cost c and success probability p;
///     internal reduction arcs are jobs with success probability 0;
///   * a subtree reduces bottom-up to a sequence of blocks of
///     non-increasing ratio R(B) = (1 - Q(B)) / C(B), where C is the
///     block's expected cost when started and Q its failure probability;
///   * sibling sequences merge by descending ratio; a parent arc is glued
///     onto the front of its children's sequence, absorbing following
///     blocks while its ratio is smaller than its successor's (Sidney
///     decomposition).
///
/// Graphs with internal experiments (guards, conjunctive chains) are
/// solved exactly by brute force when small, else approximately by
/// collapsing each terminal chain into a composite job and treating
/// remaining internal experiments as deterministic prefix jobs.
Result<UpsilonResult> UpsilonAot(const InferenceGraph& graph,
                                 const std::vector<double>& probs,
                                 const UpsilonOptions& options = {});

/// True when `graph` is in the provably-optimal class for block merging:
/// every experiment's subtree is a chain that terminates in its success
/// node (leaf-only graphs trivially qualify; conjunctive retrieval chains
/// also qualify).
bool IsBlockMergeExact(const InferenceGraph& graph);

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_UPSILON_H_
