#ifndef STRATLEARN_CORE_PAO_H_
#define STRATLEARN_CORE_PAO_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/upsilon.h"
#include "engine/adaptive_qp.h"
#include "graph/inference_graph.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/oracle.h"

namespace stratlearn {

/// Options for the PAO algorithm (Section 4).
struct PaoOptions {
  /// Optimality slack: with probability >= 1 - delta,
  /// C[Theta_pao] <= C[Theta_opt] + epsilon.
  double epsilon = 1.0;
  double delta = 0.1;

  /// Which sample-complexity theorem drives the quotas.
  enum class Mode {
    /// Theorem 2 / Equation 7: each retrieval must be *attempted*
    /// m(d_i) times. Can stall when some experiment is rarely reachable.
    kTheorem2,
    /// Theorem 3 / Equation 8: each experiment must be *aimed at*
    /// (Definition 1) m'(e_i) times; unreachable experiments fall back
    /// to the neutral estimate 0.5.
    kTheorem3,
  };
  Mode mode = Mode::kTheorem2;

  /// Safety valve for the sampling loop.
  int64_t max_contexts = 10'000'000;

  UpsilonOptions upsilon;

  /// Optional fault injector threaded into QP^A: sampling then runs on
  /// the resilient path (not owned; must outlive the run).
  robust::FaultInjector* injector = nullptr;

  /// Optional sampler state to resume from (not owned): the loop picks
  /// up with the checkpointed quota progress instead of starting cold.
  const AdaptiveQueryProcessor::Checkpoint* resume = nullptr;

  /// Called after each processed context with the sampler and its
  /// context count — the hook crash-safe checkpointing hangs off.
  std::function<void(const AdaptiveQueryProcessor&, int64_t)> on_context;
};

/// The outcome of a PAO run.
struct PaoResult {
  Strategy strategy;
  /// p^: the measured success frequencies handed to Upsilon.
  std::vector<double> estimates;
  /// The per-experiment quotas PAO computed (Equation 7 or 8).
  std::vector<int64_t> quotas;
  int64_t contexts_used = 0;
  /// Whether the final Upsilon step was provably optimal for p^.
  bool upsilon_exact = true;
  /// Final state of the adaptive sampler: per-experiment quota
  /// progress, attempt/success counts, p^ and measured reach rho^ —
  /// the estimate state behind `estimates` (CLI `explain` renders it).
  AdaptiveQueryProcessor::Snapshot sampler;
};

/// PAO — "Probably Approximately Optimal" strategy identification.
///
/// 1. Computes per-experiment sample quotas from (epsilon, delta) and the
///    graph's F_not values (Theorem 2's Equation 7, or Theorem 3's
///    Equation 8 in aim-counting mode).
/// 2. Drives an adaptive query processor QP^A over oracle-supplied
///    contexts until every quota is met, collecting success frequencies.
/// 3. Returns Upsilon_AOT(G, p^).
class Pao {
 public:
  /// The quota vector alone (for reporting sample-complexity tables).
  static std::vector<int64_t> ComputeQuotas(const InferenceGraph& graph,
                                            const PaoOptions& options);

  /// Runs the full pipeline. Returns ResourceExhausted if the quotas are
  /// not met within options.max_contexts (the Theorem 2 failure mode that
  /// motivates Theorem 3), or the Upsilon error for unsupported graphs.
  /// An optional observer is threaded into QP^A (qp.*/qpa.* metrics and
  /// QuotaProgress events) and records pao.* summary metrics.
  static Result<PaoResult> Run(const InferenceGraph& graph,
                               ContextOracle& oracle, Rng& rng,
                               const PaoOptions& options = {},
                               obs::Observer* observer = nullptr);
};

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_PAO_H_
