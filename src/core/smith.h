#ifndef STRATLEARN_CORE_SMITH_H_
#define STRATLEARN_CORE_SMITH_H_

#include <vector>

#include "datalog/database.h"
#include "graph/builder.h"

namespace stratlearn {

/// The [Smi89] baseline probability model that Section 2 critiques: it
/// assumes retrieval success probabilities are proportional to the
/// number of matching facts in the database — e.g. with 2,000 prof facts
/// and 500 grad facts, a prof retrieval is taken to be 4x as likely to
/// succeed as a grad retrieval, regardless of what queries users
/// actually pose.
///
/// Returns one estimate per experiment of `built.graph`:
///  * retrieval arcs get count(predicate) / `universe_size`, clamped to
///    [0, 1] — `universe_size` <= 0 uses the maximum per-predicate count
///    so the most numerous predicate maps to probability 1;
///  * guard experiments (which a fact-count model cannot see) get 0.5.
///
/// Feeding these estimates to UpsilonAot yields the strategy a static
/// database-statistics optimizer would pick; the paper's point (and
/// bench exp_smith_pitfall) is that it can be arbitrarily wrong about
/// the true query distribution.
std::vector<double> SmithFactCountEstimates(const BuiltGraph& built,
                                            const Database& db,
                                            int64_t universe_size = 0);

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_SMITH_H_
