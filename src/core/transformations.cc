#include "core/transformations.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn {

std::string SiblingSwap::ToString(const InferenceGraph& graph) const {
  return StrFormat("swap(%s, %s)", graph.arc(arc_a).label.c_str(),
                   graph.arc(arc_b).label.c_str());
}

std::vector<SiblingSwap> AllSiblingSwaps(const InferenceGraph& graph) {
  std::vector<SiblingSwap> swaps;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    const auto& out = graph.node(n).out_arcs;
    for (size_t i = 0; i < out.size(); ++i) {
      for (size_t j = i + 1; j < out.size(); ++j) {
        swaps.push_back({n, out[i], out[j]});
      }
    }
  }
  return swaps;
}

namespace {

/// Marks the arcs of `root`'s subtree in a membership vector.
std::vector<char> SubtreeMask(const InferenceGraph& graph, ArcId root) {
  std::vector<char> mask(graph.num_arcs(), 0);
  for (ArcId a : graph.SubtreeArcs(root)) mask[a] = 1;
  return mask;
}

}  // namespace

Strategy ApplySwap(const InferenceGraph& graph, const Strategy& strategy,
                   const SiblingSwap& swap) {
  STRATLEARN_CHECK(graph.arc(swap.arc_a).from == swap.parent);
  STRATLEARN_CHECK(graph.arc(swap.arc_b).from == swap.parent);

  std::vector<char> in_a = SubtreeMask(graph, swap.arc_a);
  std::vector<char> in_b = SubtreeMask(graph, swap.arc_b);

  std::vector<ArcId> leaves = strategy.LeafOrder(graph);
  std::vector<ArcId> leaves_a, leaves_b;
  for (ArcId leaf : leaves) {
    if (in_a[leaf]) leaves_a.push_back(leaf);
    if (in_b[leaf]) leaves_b.push_back(leaf);
  }
  if (leaves_a.empty() || leaves_b.empty()) return strategy;  // no-op

  // Block semantics: each subtree's whole leaf block is emitted where the
  // *other* subtree's block used to start; everything else keeps its
  // relative order. For hierarchically contiguous strategies this swaps
  // two consecutive-run blocks (possibly with sibling blocks in between,
  // which simply shift).
  std::vector<ArcId> out;
  out.reserve(leaves.size());
  bool emitted_at_a = false, emitted_at_b = false;
  for (ArcId leaf : leaves) {
    if (in_a[leaf]) {
      if (!emitted_at_a) {
        emitted_at_a = true;
        out.insert(out.end(), leaves_b.begin(), leaves_b.end());
      }
      continue;
    }
    if (in_b[leaf]) {
      if (!emitted_at_b) {
        emitted_at_b = true;
        out.insert(out.end(), leaves_a.begin(), leaves_a.end());
      }
      continue;
    }
    out.push_back(leaf);
  }
  return Strategy::FromLeafOrder(graph, out);
}

double SwapRange(const InferenceGraph& graph, const SiblingSwap& swap) {
  // Conservative form of the paper's Equation 5 remark: the f* sum over
  // every arc descending from the deviation node.
  double total = 0.0;
  for (ArcId c : graph.node(swap.parent).out_arcs) total += graph.FStar(c);
  return total;
}

double SwapRange(const InferenceGraph& graph, const Strategy& strategy,
                 const SiblingSwap& swap) {
  std::vector<char> in_a = SubtreeMask(graph, swap.arc_a);
  std::vector<char> in_b = SubtreeMask(graph, swap.arc_b);

  std::vector<ArcId> leaves = strategy.LeafOrder(graph);
  // The affected region: from the first to the last leaf of the two
  // blocks.
  size_t first = leaves.size(), last = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (in_a[leaves[i]] || in_b[leaves[i]]) {
      first = std::min(first, i);
      last = std::max(last, i);
    }
  }
  if (first >= leaves.size()) return 0.0;  // no leaves involved: no-op

  // Every leaf in the region must belong to a child subtree of the
  // deviation node; sum f* over the distinct children touched.
  const std::vector<ArcId>& children = graph.node(swap.parent).out_arcs;
  std::vector<char> child_touched(children.size(), 0);
  for (size_t i = first; i <= last; ++i) {
    // Find the child of swap.parent on this leaf's root path.
    ArcId leaf = leaves[i];
    bool found = false;
    ArcId walk = leaf;
    for (;;) {
      const Arc& arc = graph.arc(walk);
      if (arc.from == swap.parent) {
        for (size_t c = 0; c < children.size(); ++c) {
          if (children[c] == walk) {
            child_touched[c] = 1;
            found = true;
          }
        }
        break;
      }
      NodeId tail = arc.from;
      if (graph.node(tail).incoming == kInvalidArc) break;  // hit root
      walk = graph.node(tail).incoming;
    }
    if (!found) {
      // A foreign leaf interleaves into the region: fall back to the
      // conservative bound.
      return SwapRange(graph, swap);
    }
  }
  double total = 0.0;
  for (size_t c = 0; c < children.size(); ++c) {
    if (child_touched[c]) total += graph.FStar(children[c]);
  }
  return total;
}

}  // namespace stratlearn
