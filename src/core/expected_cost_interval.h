#ifndef STRATLEARN_CORE_EXPECTED_COST_INTERVAL_H_
#define STRATLEARN_CORE_EXPECTED_COST_INTERVAL_H_

#include <vector>

#include "engine/strategy.h"
#include "graph/inference_graph.h"

namespace stratlearn {

/// A closed interval [lo, hi]. The abstract domain of the interval
/// expected-cost interpretation: success probabilities that are only
/// known up to an interval (everything in [0, 1] before any sampling,
/// p_hat +/- half_width after a profiling run) propagate through
/// Equation 1 to a certified enclosure of C[Theta].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  static Interval Point(double v) { return {v, v}; }

  bool Contains(double v) const { return lo <= v && v <= hi; }
  bool IsPoint() const { return lo == hi; }
  double width() const { return hi - lo; }
};

/// Per-arc abstract attempt state alongside the total: `attempt_prob[i]`
/// encloses Pr[strategy arc i is attempted] and `contribution[i]` its
/// expected-cost term, both indexed by position in `strategy.arcs()`.
struct IntervalCostBreakdown {
  Interval total;
  std::vector<Interval> attempt_prob;
  std::vector<Interval> contribution;
};

/// Abstract interpretation of ExactExpectedCost over intervals: each
/// experiment succeeds with probability anywhere in `probs[i]` (which
/// must satisfy 0 <= lo <= hi <= 1), and the returned interval encloses
/// C[Theta] for every probability vector in that box.
///
/// Sound but not tight: the pi-probability, no-earlier-success and
/// attempt-cost factors are bounded independently, so the correlation
/// between occurrences of the same experiment is ignored. When every
/// interval is a point the enclosure collapses to the exact cost (up to
/// floating-point rounding).
IntervalCostBreakdown IntervalExpectedCostBreakdown(
    const InferenceGraph& graph, const Strategy& strategy,
    const std::vector<Interval>& probs);

/// Just the total enclosure.
Interval IntervalExpectedCost(const InferenceGraph& graph,
                              const Strategy& strategy,
                              const std::vector<Interval>& probs);

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_EXPECTED_COST_INTERVAL_H_
