#include "core/expected_cost_interval.h"

#include "util/check.h"

namespace stratlearn {

namespace {

/// Interval pass probability of an arc (see PassProb in
/// expected_cost.cc): [1, 1] for deterministic arcs.
Interval PassProb(const InferenceGraph& graph, ArcId a,
                  const std::vector<Interval>& probs) {
  int e = graph.arc(a).experiment;
  return e < 0 ? Interval::Point(1.0) : probs[static_cast<size_t>(e)];
}

/// Product of two intervals of nonnegative numbers.
Interval MulNonneg(const Interval& a, const Interval& b) {
  return {a.lo * b.lo, a.hi * b.hi};
}

/// Interval mirror of NoSuccessProb (expected_cost.cc): the probability
/// that no success arc in `in_s` fires under `node`, conditioned on
/// `forced` arcs being unblocked. Every factor lies in [0, 1], so the
/// product bounds are the products of the bounds.
Interval NoSuccessProb(const InferenceGraph& graph,
                       const std::vector<Interval>& probs,
                       const std::vector<char>& in_s,
                       const std::vector<char>& forced, NodeId node) {
  Interval out = Interval::Point(1.0);
  for (ArcId c : graph.node(node).out_arcs) {
    const Arc& arc = graph.arc(c);
    if (graph.node(arc.to).is_success) {
      if (in_s[c]) {
        Interval p = PassProb(graph, c, probs);
        out = MulNonneg(out, {1.0 - p.hi, 1.0 - p.lo});
      }
      continue;
    }
    Interval sub = NoSuccessProb(graph, probs, in_s, forced, arc.to);
    if (forced[c]) {
      out = MulNonneg(out, sub);
    } else {
      // (1-p) + p*sub = 1 - p*(1-sub): decreasing in p (1-sub >= 0),
      // increasing in sub, so the extrema sit at opposite corners.
      Interval p = PassProb(graph, c, probs);
      out = MulNonneg(out, {1.0 - p.hi * (1.0 - sub.lo),
                            1.0 - p.lo * (1.0 - sub.hi)});
    }
  }
  return out;
}

/// Interval image of Arc::ExpectedAttemptCost, linear in p with slope
/// success_cost - failure_cost.
Interval AttemptCost(const Arc& arc, const Interval& p) {
  double at_lo = arc.ExpectedAttemptCost(p.lo);
  double at_hi = arc.ExpectedAttemptCost(p.hi);
  return at_lo <= at_hi ? Interval{at_lo, at_hi} : Interval{at_hi, at_lo};
}

}  // namespace

IntervalCostBreakdown IntervalExpectedCostBreakdown(
    const InferenceGraph& graph, const Strategy& strategy,
    const std::vector<Interval>& probs) {
  STRATLEARN_CHECK(probs.size() == graph.num_experiments());
  for (const Interval& p : probs) {
    STRATLEARN_CHECK_MSG(0.0 <= p.lo && p.lo <= p.hi && p.hi <= 1.0,
                         "probability interval must be within [0, 1]");
  }

  IntervalCostBreakdown out;
  out.total = Interval::Point(0.0);
  out.attempt_prob.reserve(strategy.size());
  out.contribution.reserve(strategy.size());

  std::vector<char> in_s(graph.num_arcs(), 0);
  std::vector<char> forced(graph.num_arcs(), 0);
  for (ArcId a : strategy.arcs()) {
    std::vector<ArcId> pi = graph.Pi(a);
    Interval pi_prob = Interval::Point(1.0);
    for (ArcId e : pi) {
      pi_prob = MulNonneg(pi_prob, PassProb(graph, e, probs));
      forced[e] = 1;
    }
    Interval no_success =
        NoSuccessProb(graph, probs, in_s, forced, graph.root());
    for (ArcId e : pi) forced[e] = 0;

    Interval attempt = MulNonneg(pi_prob, no_success);
    Interval contribution =
        MulNonneg(AttemptCost(graph.arc(a), PassProb(graph, a, probs)),
                  attempt);
    out.total.lo += contribution.lo;
    out.total.hi += contribution.hi;
    out.attempt_prob.push_back(attempt);
    out.contribution.push_back(contribution);

    if (graph.node(graph.arc(a).to).is_success) in_s[a] = 1;
  }
  return out;
}

Interval IntervalExpectedCost(const InferenceGraph& graph,
                              const Strategy& strategy,
                              const std::vector<Interval>& probs) {
  return IntervalExpectedCostBreakdown(graph, strategy, probs).total;
}

}  // namespace stratlearn
