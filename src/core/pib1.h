#ifndef STRATLEARN_CORE_PIB1_H_
#define STRATLEARN_CORE_PIB1_H_

#include <cstdint>

#include "core/delta_estimator.h"
#include "core/transformations.h"
#include "engine/query_processor.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"

namespace stratlearn {

/// The stripped-down one-shot learner of Section 3.1: a "smart filter"
/// that permits a single proposed transformation only when the
/// accumulated evidence makes the new strategy better with confidence
/// 1 - delta (Equation 2 applied to the Delta~ under-estimates).
///
/// Usage: construct with the current strategy and the proposed sibling
/// swap, feed it the trace of each query the current strategy solves,
/// and ask ShouldSwitch() when the optimizer proposes the change.
struct Pib1Options {
  double delta = 0.05;
};

class Pib1 {
 public:
  using Options = Pib1Options;

  Pib1(const InferenceGraph* graph, Strategy current, SiblingSwap swap,
       Options options = Pib1Options(), obs::Observer* observer = nullptr);

  /// Attaches an observer: pib1.* metrics plus one SequentialTest event
  /// per observed query (the filter re-tests continuously).
  void set_observer(obs::Observer* observer);

  /// Records one solved query of the current strategy.
  void Observe(const Trace& trace);

  /// Equation 2: true when sum(Delta~) exceeds
  /// Lambda * sqrt(m/2 * ln(1/delta)).
  bool ShouldSwitch() const;

  const Strategy& current() const { return current_; }
  const Strategy& alternative() const { return alternative_; }

  double delta_sum() const { return delta_sum_; }
  int64_t samples() const { return samples_; }
  /// The current Equation-2 threshold (0 before any samples).
  double Threshold() const;
  /// The range Lambda = f*(r1) + f*(r2).
  double range() const { return range_; }

 private:
  const InferenceGraph* graph_;
  DeltaEstimator estimator_;
  Strategy current_;
  Strategy alternative_;
  Options options_;
  double range_;
  double delta_sum_ = 0.0;
  int64_t samples_ = 0;
  /// Audit mode: the stop certificate is emitted once, on the first
  /// observation where ShouldSwitch() becomes true.
  bool audit_reported_ = false;
  obs::Observer* observer_ = nullptr;
  struct Handles {
    obs::Counter* samples = nullptr;
    obs::Gauge* delta_sum = nullptr;
    obs::Gauge* threshold = nullptr;
  };
  Handles handles_;
};

/// The paper's literal three-counter realisation of PIB_1 for the
/// Figure 1 situation: a node with two child subtrees r_first (visited
/// first) and r_second, where each subtree's exploration is all-or-none.
/// Maintains exactly m, k_first (solution found under r_first) and
/// k_second (solution under r_second but not under r_first), and decides
/// with Equation 3. Section 3.1 notes this needs only "three counters
/// and computing Equation 3".
class ThreeCounterPib1 {
 public:
  /// `fstar_first`/`fstar_second` are f* of the two sibling arcs.
  ThreeCounterPib1(double fstar_first, double fstar_second, double delta);

  void RecordSolutionUnderFirst() {
    ++m_;
    ++k_first_;
  }
  void RecordSolutionUnderSecondOnly() {
    ++m_;
    ++k_second_;
  }
  void RecordNoSolution() { ++m_; }

  /// Equation 3.
  bool ShouldSwitch() const;

  /// The left-hand side k_second * f*(r1) - k_first * f*(r2).
  double DeltaSum() const;
  double Threshold() const;

  int64_t m() const { return m_; }
  int64_t k_first() const { return k_first_; }
  int64_t k_second() const { return k_second_; }

 private:
  double fstar_first_;
  double fstar_second_;
  double delta_;
  int64_t m_ = 0;
  int64_t k_first_ = 0;
  int64_t k_second_ = 0;
};

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_PIB1_H_
