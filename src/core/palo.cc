#include "core/palo.h"

#include "stats/chernoff.h"
#include "stats/sequential.h"
#include "util/check.h"

namespace stratlearn {

Palo::Palo(const InferenceGraph* graph, Strategy initial, Options options,
           obs::Observer* observer)
    : graph_(graph),
      estimator_(graph),
      current_(std::move(initial)),
      options_(options) {
  STRATLEARN_CHECK(options_.delta > 0.0 && options_.delta < 1.0);
  STRATLEARN_CHECK(options_.epsilon > 0.0);
  STRATLEARN_CHECK(options_.test_every >= 1);
  RebuildNeighborhood();
  set_observer(observer);
}

void Palo::set_observer(obs::Observer* observer) {
  observer_ = observer;
  handles_ = Handles{};
  if (observer_ == nullptr || observer_->metrics() == nullptr) return;
  obs::MetricsRegistry* r = observer_->metrics();
  handles_.contexts = &r->GetCounter("palo.contexts");
  handles_.moves = &r->GetCounter("palo.moves");
  handles_.stops = &r->GetCounter("palo.stops");
}

void Palo::RebuildNeighborhood() {
  neighbors_.clear();
  for (const SiblingSwap& swap : AllSiblingSwaps(*graph_)) {
    Neighbor n;
    n.swap = swap;
    n.strategy = ApplySwap(*graph_, current_, swap);
    if (n.strategy == current_) continue;
    n.range = SwapRange(*graph_, current_, swap);
    neighbors_.push_back(std::move(n));
  }
  samples_ = 0;
  if (neighbors_.empty()) finished_ = true;  // nothing to improve
}

bool Palo::CheckStop(double* worst_certificate, size_t* worst_neighbor,
                     double* delta_i) {
  *worst_certificate = 0.0;
  *worst_neighbor = neighbors_.size();
  // delta/2 budget for stopping, spread over the sequential schedule and
  // the |T| simultaneous neighbours.
  *delta_i =
      SequentialDelta(std::max<int64_t>(1, trials_), options_.delta / 2.0) /
      static_cast<double>(std::max<size_t>(1, neighbors_.size()));
  if (*delta_i <= 0.0 || *delta_i >= 1.0) *delta_i = options_.delta / 2.0;
  if (samples_ == 0) return false;
  for (size_t j = 0; j < neighbors_.size(); ++j) {
    const Neighbor& n = neighbors_[j];
    double mean_over = n.over_sum / static_cast<double>(samples_);
    double dev = HoeffdingDeviation(samples_, *delta_i, n.range);
    if (*worst_neighbor == neighbors_.size() ||
        mean_over + dev > *worst_certificate) {
      *worst_certificate = mean_over + dev;
      *worst_neighbor = j;
    }
    if (mean_over + dev > options_.epsilon) return false;
  }
  return true;
}

Palo::Checkpoint Palo::GetCheckpoint() const {
  Checkpoint checkpoint;
  checkpoint.strategy = current_;
  checkpoint.contexts = contexts_;
  checkpoint.trials = trials_;
  checkpoint.samples = samples_;
  checkpoint.moves = moves_;
  checkpoint.finished = finished_;
  checkpoint.neighbor_under_sums.reserve(neighbors_.size());
  checkpoint.neighbor_over_sums.reserve(neighbors_.size());
  for (const Neighbor& n : neighbors_) {
    checkpoint.neighbor_under_sums.push_back(n.under_sum);
    checkpoint.neighbor_over_sums.push_back(n.over_sum);
  }
  return checkpoint;
}

Status Palo::RestoreCheckpoint(const Checkpoint& checkpoint) {
  if (checkpoint.contexts < 0 || checkpoint.trials < 0 ||
      checkpoint.samples < 0 || checkpoint.samples > checkpoint.contexts ||
      checkpoint.moves < 0) {
    return Status::InvalidArgument("inconsistent learner counters");
  }
  if (checkpoint.strategy.size() != graph_->num_arcs()) {
    return Status::InvalidArgument(
        "checkpointed strategy does not cover the graph's arcs");
  }
  if (checkpoint.neighbor_under_sums.size() !=
      checkpoint.neighbor_over_sums.size()) {
    return Status::InvalidArgument("estimate ledgers differ in length");
  }
  Strategy prior = std::move(current_);
  bool prior_finished = finished_;
  current_ = checkpoint.strategy;
  finished_ = false;
  RebuildNeighborhood();
  if (neighbors_.size() != checkpoint.neighbor_under_sums.size()) {
    current_ = std::move(prior);
    finished_ = prior_finished;
    RebuildNeighborhood();
    return Status::InvalidArgument(
        "checkpoint carries a different neighbourhood size than the "
        "strategy induces");
  }
  for (size_t j = 0; j < neighbors_.size(); ++j) {
    neighbors_[j].under_sum = checkpoint.neighbor_under_sums[j];
    neighbors_[j].over_sum = checkpoint.neighbor_over_sums[j];
  }
  contexts_ = checkpoint.contexts;
  trials_ = checkpoint.trials;
  samples_ = checkpoint.samples;
  moves_ = checkpoint.moves;
  finished_ = finished_ || checkpoint.finished;
  return Status::OK();
}

bool Palo::Observe(const Trace& trace) {
  if (finished_) return false;
  ++contexts_;
  ++samples_;
  trials_ += static_cast<int64_t>(neighbors_.size());
  for (Neighbor& n : neighbors_) {
    n.under_sum += estimator_.UnderEstimate(trace, n.strategy);
    n.over_sum += estimator_.OverEstimate(trace, n.strategy);
  }
  if (handles_.contexts != nullptr) handles_.contexts->Increment();
  if (contexts_ % options_.test_every != 0) return false;

  // Climb exactly like PIB, at confidence delta/2.
  for (size_t j = 0; j < neighbors_.size(); ++j) {
    const Neighbor& n = neighbors_[j];
    double threshold = SequentialSumThreshold(samples_, std::max<int64_t>(
                                                  1, trials_),
                                              options_.delta / 2.0, n.range);
    if (n.under_sum > 0.0 && n.under_sum >= threshold) {
      ++moves_;
      if (handles_.moves != nullptr) handles_.moves->Increment();
      if (observer_ != nullptr) {
        double delta_step = SequentialDelta(std::max<int64_t>(1, trials_),
                                            options_.delta / 2.0);
        if (obs::TraceSink* sink = observer_->sink()) {
          obs::ClimbMoveEvent event;
          event.t_us = observer_->NowUs();
          event.learner = "palo";
          event.move_index = moves_ - 1;
          event.at_context = contexts_;
          event.samples_used = samples_;
          event.swap = n.swap.ToString(*graph_);
          event.delta_sum = n.under_sum;
          event.threshold = threshold;
          event.margin = n.under_sum - threshold;
          event.delta_spent = delta_step;
          sink->OnClimbMove(event);
        }
        if (observer_->audit_enabled()) {
          audit_delta_spent_ += delta_step;
          if (obs::TraceSink* sink = observer_->sink()) {
            obs::DecisionCertificateEvent e;
            e.t_us = observer_->NowUs();
            e.learner = "palo";
            e.decision = "climb";
            e.verdict = "commit";
            e.at_context = contexts_;
            e.samples = samples_;
            e.trials = trials_;
            e.subject = static_cast<int64_t>(j);
            e.mean = n.under_sum / static_cast<double>(samples_);
            e.delta_sum = n.under_sum;
            e.threshold = threshold;
            e.margin = n.under_sum - threshold;
            e.range = n.range;
            e.epsilon_n =
                n.range > 0.0
                    ? HoeffdingDeviation(samples_, delta_step, n.range)
                    : 0.0;
            e.delta_step = delta_step;
            e.delta_budget = options_.delta;
            e.delta_spent_total = audit_delta_spent_;
            e.bound_samples =
                e.mean > 0.0 && n.range > 0.0
                    ? SampleSizeForDeviation(e.mean, delta_step, n.range)
                    : 0;
            e.epsilon = options_.epsilon;
            sink->OnDecisionCertificate(e);
          }
        }
      }
      current_ = n.strategy;
      RebuildNeighborhood();
      return true;
    }
  }
  double worst_certificate = 0.0;
  size_t worst_neighbor = neighbors_.size();
  double stop_delta_i = 0.0;
  if (CheckStop(&worst_certificate, &worst_neighbor, &stop_delta_i)) {
    finished_ = true;
    if (handles_.stops != nullptr) handles_.stops->Increment();
    if (observer_ != nullptr) {
      if (obs::TraceSink* sink = observer_->sink()) {
        sink->OnPaloStop({observer_->NowUs(), contexts_, moves_,
                          options_.epsilon, worst_certificate});
      }
      if (observer_->audit_enabled() && worst_neighbor < neighbors_.size()) {
        audit_delta_spent_ += stop_delta_i;
        if (obs::TraceSink* sink = observer_->sink()) {
          const Neighbor& worst = neighbors_[worst_neighbor];
          obs::DecisionCertificateEvent e;
          e.t_us = observer_->NowUs();
          e.learner = "palo";
          e.decision = "stop";
          e.verdict = "stop";
          e.at_context = contexts_;
          e.samples = samples_;
          e.trials = trials_;
          e.subject = static_cast<int64_t>(worst_neighbor);
          e.mean = worst.over_sum / static_cast<double>(samples_);
          // For the stop test the statistic must stay *below* the
          // threshold (epsilon), so the margin is negative on success.
          e.delta_sum = worst_certificate;
          e.threshold = options_.epsilon;
          e.margin = worst_certificate - options_.epsilon;
          e.range = worst.range;
          e.epsilon_n =
              worst.range > 0.0
                  ? HoeffdingDeviation(samples_, stop_delta_i, worst.range)
                  : 0.0;
          e.delta_step = stop_delta_i;
          e.delta_budget = options_.delta;
          e.delta_spent_total = audit_delta_spent_;
          e.bound_samples =
              worst.range > 0.0
                  ? SampleSizeForDeviation(options_.epsilon, stop_delta_i,
                                           worst.range)
                  : 0;
          e.epsilon = options_.epsilon;
          sink->OnDecisionCertificate(e);
        }
      }
    }
  }
  return false;
}

}  // namespace stratlearn
