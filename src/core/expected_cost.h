#ifndef STRATLEARN_CORE_EXPECTED_COST_H_
#define STRATLEARN_CORE_EXPECTED_COST_H_

#include <utility>
#include <vector>

#include "engine/query_processor.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/oracle.h"

namespace stratlearn {

/// Expected cost C[Theta] (Section 2.1) of a strategy when experiment i
/// succeeds independently with probability `probs[i]`.
///
/// Exact via the tree decomposition: for each arc a,
///   Pr[a attempted] = Pr[Pi(a) unblocked]
///                   * Pr[no earlier success | Pi(a) unblocked],
/// where the conditional no-success probability of the already-ordered
/// leaves factorises over sibling subtrees (experiments independent).
/// O(|A|^2) worst case.
double ExactExpectedCost(const InferenceGraph& graph, const Strategy& strategy,
                         const std::vector<double>& probs);

/// O(|A|) fast path for *simple disjunctive* graphs — every experiment is
/// a success (leaf) arc (Smith's class; paper Note 4). Aborts if the
/// graph has internal experiments; callers should check
/// `IsLeafOnlyExperiments` first.
double LeafOnlyExpectedCost(const InferenceGraph& graph,
                            const Strategy& strategy,
                            const std::vector<double>& probs);

/// True when every experiment arc ends in a success node.
bool IsLeafOnlyExperiments(const InferenceGraph& graph);

/// Expected cost by exhaustive enumeration of all 2^n contexts; exact for
/// any dependence-free distribution but exponential — test oracle only
/// (n <= 24 enforced).
double EnumeratedExpectedCost(const InferenceGraph& graph,
                              const Strategy& strategy,
                              const std::vector<double>& probs);

/// Monte-Carlo estimate of C[Theta] over an arbitrary context oracle
/// (the only option when experiments are dependent).
double MonteCarloExpectedCost(const InferenceGraph& graph,
                              const Strategy& strategy, ContextOracle& oracle,
                              int64_t samples, Rng& rng);

/// Exhaustively searches all leaf orderings (lazy strategies) for the
/// minimum expected cost. Exponential: requires at most
/// `max_leaves` (default 8) success arcs. Returns the optimal strategy
/// and its cost.
struct OptimalResult {
  Strategy strategy;
  double cost = 0.0;
};
Result<OptimalResult> BruteForceOptimal(const InferenceGraph& graph,
                                        const std::vector<double>& probs,
                                        size_t max_leaves = 8);

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_EXPECTED_COST_H_
