#include "core/delta_estimator.h"

#include <algorithm>

#include "util/check.h"

namespace stratlearn {

namespace {

/// Executes `strategy` under `context` like QueryProcessor::Execute, but
/// charges arcs whose experiment was NOT observed a bound on their
/// attempt cost instead of the outcome-dependent value: MaxCost when
/// `charge_max`, the minimum attempt cost otherwise. With the paper's
/// basic fixed-cost model this is identical to the plain execution; with
/// outcome-dependent costs it keeps the completions' costs valid upper /
/// lower bounds on c(Theta', I_true).
double BoundedCost(const InferenceGraph& graph, const Strategy& strategy,
                   const Context& context, const std::vector<char>& observed,
                   bool charge_max) {
  std::vector<char> visited(graph.num_nodes(), 0);
  visited[graph.root()] = 1;
  double cost = 0.0;
  for (ArcId a : strategy.arcs()) {
    const Arc& arc = graph.arc(a);
    if (!visited[arc.from]) continue;
    bool unblocked = arc.experiment < 0 ||
                     context.Unblocked(static_cast<size_t>(arc.experiment));
    if (arc.experiment >= 0 &&
        !observed[static_cast<size_t>(arc.experiment)]) {
      double extra = charge_max
                         ? std::max(arc.success_cost, arc.failure_cost)
                         : std::min(arc.success_cost, arc.failure_cost);
      cost += arc.cost + extra;
    } else {
      cost += arc.cost + (unblocked ? arc.success_cost : arc.failure_cost);
    }
    if (!unblocked) continue;
    visited[arc.to] = 1;
    if (graph.node(arc.to).is_success) break;
  }
  return cost;
}

}  // namespace

double DeltaEstimator::ExactDelta(const Strategy& strategy,
                                  const Strategy& alternative,
                                  const Context& context) const {
  return processor_.Cost(strategy, context) -
         processor_.Cost(alternative, context);
}

std::vector<char> DeltaEstimator::ObservedOutcomes(const Trace& trace,
                                                   Context* outcomes) const {
  std::vector<char> observed(graph_->num_experiments(), 0);
  for (const ArcAttempt& at : trace.attempts) {
    int e = graph_->arc(at.arc).experiment;
    if (e < 0) continue;
    observed[static_cast<size_t>(e)] = 1;
    outcomes->Set(static_cast<size_t>(e), at.unblocked);
  }
  return observed;
}

double DeltaEstimator::UnderEstimate(const Trace& trace,
                                     const Strategy& alternative) const {
  // Pessimistic completion J: observed outcomes kept; unobserved success
  // arcs blocked (Theta' cannot succeed anywhere Theta did not verify);
  // unobserved internal experiments unblocked (Theta' pays their
  // subtrees); unobserved arcs charged their maximum attempt cost.
  // c_max(Theta', J) >= c(Theta', I_true), hence the estimate is an
  // under-estimate of Delta.
  Context pessimistic(graph_->num_experiments());
  std::vector<char> observed = ObservedOutcomes(trace, &pessimistic);
  for (size_t e = 0; e < graph_->num_experiments(); ++e) {
    if (observed[e]) continue;
    ArcId arc = graph_->experiments()[e];
    bool is_success_arc = graph_->node(graph_->arc(arc).to).is_success;
    pessimistic.Set(e, !is_success_arc);
  }
  return trace.cost - BoundedCost(*graph_, alternative, pessimistic,
                                  observed, /*charge_max=*/true);
}

double DeltaEstimator::OverEstimate(const Trace& trace,
                                    const Strategy& alternative) const {
  // Optimistic bound: a lower bound on c(Theta', I_true), minimised over
  // the "single favoured success path" family of consistent completions.
  // For each success arc s not observed blocked, complete with s's whole
  // root path unblocked and every other unobserved experiment blocked
  // (suppressing all other subtree costs); also consider the all-blocked
  // completion. Unobserved arcs are charged their minimum attempt cost.
  // Every consistent context's Theta' execution pays at least the
  // cheapest of these (see delta_estimator_test's exhaustive check).
  Context observed_ctx(graph_->num_experiments());
  std::vector<char> observed = ObservedOutcomes(trace, &observed_ctx);

  auto completion_base = [&]() {
    Context c(graph_->num_experiments());
    for (size_t e = 0; e < graph_->num_experiments(); ++e) {
      if (observed[e]) c.Set(e, observed_ctx.Unblocked(e));
    }
    return c;
  };

  // All-unobserved-blocked completion.
  double best = BoundedCost(*graph_, alternative, completion_base(),
                            observed, /*charge_max=*/false);

  for (ArcId s : graph_->SuccessArcs()) {
    // Check consistency: no arc on s's root path (or s itself) was
    // observed blocked.
    bool consistent = true;
    Context c = completion_base();
    auto force_unblocked = [&](ArcId a) {
      int e = graph_->arc(a).experiment;
      if (e < 0) return;
      if (observed[static_cast<size_t>(e)]) {
        if (!observed_ctx.Unblocked(static_cast<size_t>(e))) {
          consistent = false;
        }
      } else {
        c.Set(static_cast<size_t>(e), true);
      }
    };
    for (ArcId a : graph_->Pi(s)) force_unblocked(a);
    force_unblocked(s);
    if (!consistent) continue;
    best = std::min(best, BoundedCost(*graph_, alternative, c, observed,
                                      /*charge_max=*/false));
  }
  return trace.cost - best;
}

}  // namespace stratlearn
