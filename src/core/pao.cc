#include "core/pao.h"

#include <limits>

#include "stats/chernoff.h"
#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn {

std::vector<int64_t> Pao::ComputeQuotas(const InferenceGraph& graph,
                                        const PaoOptions& options) {
  const int64_t n = static_cast<int64_t>(graph.num_experiments());
  std::vector<int64_t> quotas;
  quotas.reserve(graph.num_experiments());
  for (ArcId arc : graph.experiments()) {
    double f_neg = graph.FNeg(arc);
    if (options.mode == PaoOptions::Mode::kTheorem2) {
      quotas.push_back(
          PaoRetrievalQuota(n, f_neg, options.epsilon, options.delta));
    } else {
      quotas.push_back(
          PaoReachQuota(n, f_neg, options.epsilon, options.delta));
    }
  }
  return quotas;
}

Result<PaoResult> Pao::Run(const InferenceGraph& graph, ContextOracle& oracle,
                           Rng& rng, const PaoOptions& options,
                           obs::Observer* observer) {
  if (oracle.num_experiments() != graph.num_experiments()) {
    return Status::InvalidArgument(
        "oracle and graph disagree on the number of experiments");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("delta must lie in (0, 1)");
  }

  PaoResult result;
  result.quotas = ComputeQuotas(graph, options);
  for (size_t i = 0; i < result.quotas.size(); ++i) {
    // A saturated quota (see stats/chernoff.cc) means Equation 7/8
    // overflowed: no finite sample meets it, so fail up front instead of
    // sampling forever.
    if (result.quotas[i] == std::numeric_limits<int64_t>::max()) {
      return Status::InvalidArgument(StrFormat(
          "experiment %zu's sample quota overflows for epsilon=%g "
          "delta=%g; epsilon is too small for this graph's F_not values",
          i, options.epsilon, options.delta));
    }
  }

  AdaptiveQueryProcessor::QuotaMode mode =
      options.mode == PaoOptions::Mode::kTheorem2
          ? AdaptiveQueryProcessor::QuotaMode::kAttempts
          : AdaptiveQueryProcessor::QuotaMode::kReachAttempts;
  AdaptiveQueryProcessor qpa(&graph, result.quotas, mode, observer);
  qpa.set_audit_params(options.delta, options.epsilon);
  if (options.injector != nullptr) {
    qpa.set_fault_injector(options.injector);
  }
  if (options.resume != nullptr) {
    Status restored = qpa.RestoreCheckpoint(*options.resume);
    if (!restored.ok()) return restored;
  }

  while (!qpa.QuotasMet()) {
    if (qpa.contexts_processed() >= options.max_contexts) {
      return Status::ResourceExhausted(StrFormat(
          "PAO sampling did not meet its quotas within %lld contexts; "
          "some experiment may be rarely reachable — use Theorem 3 mode "
          "(Section 4.1)",
          static_cast<long long>(options.max_contexts)));
    }
    qpa.Process(oracle.Next(rng));
    if (options.on_context) {
      options.on_context(qpa, qpa.contexts_processed());
    }
  }

  result.contexts_used = qpa.contexts_processed();
  result.estimates = qpa.SuccessFrequencies(/*fallback=*/0.5);
  result.sampler = qpa.snapshot();
  if (observer != nullptr && observer->metrics() != nullptr) {
    obs::MetricsRegistry* r = observer->metrics();
    r->GetCounter("pao.contexts_used").Increment(result.contexts_used);
    int64_t quota_total = 0;
    for (int64_t q : result.quotas) quota_total += q;
    r->GetGauge("pao.quota_total").Set(static_cast<double>(quota_total));
  }

  Result<UpsilonResult> upsilon =
      UpsilonAot(graph, result.estimates, options.upsilon);
  if (!upsilon.ok()) return upsilon.status();
  result.strategy = upsilon->strategy;
  result.upsilon_exact = upsilon->exact;
  return result;
}

}  // namespace stratlearn
