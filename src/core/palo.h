#ifndef STRATLEARN_CORE_PALO_H_
#define STRATLEARN_CORE_PALO_H_

#include <cstdint>
#include <vector>

#include "core/delta_estimator.h"
#include "core/transformations.h"
#include "engine/query_processor.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"

namespace stratlearn {

/// PALO — "Probably Approximately Locally Optimal" hill-climbing
/// ([CG91], summarised in the paper's Section 3.2 closing remarks).
///
/// PALO climbs exactly like PIB, but additionally *terminates* once it
/// can certify, with the same lifetime confidence budget, that the
/// current strategy is an epsilon-local optimum:
///    for all Theta' in T(Theta_m):  C[Theta'] >= C[Theta_m] - epsilon.
///
/// The certificate uses the symmetric over-estimates Delta^ >= Delta
/// (DeltaEstimator::OverEstimate): when every neighbour's mean
/// over-estimate plus its Hoeffding deviation is below epsilon, no
/// neighbour can improve by epsilon or more, with high probability. The
/// confidence budget is split: delta/2 for climbing mistakes, delta/2
/// for a premature stop, each spread over the sequential schedule.
struct PaloOptions {
  double delta = 0.05;
  double epsilon = 0.25;
  int test_every = 1;
};

class Palo {
 public:
  using Options = PaloOptions;

  Palo(const InferenceGraph* graph, Strategy initial,
       Options options = PaloOptions(), obs::Observer* observer = nullptr);

  /// Attaches an observer: palo.* metrics plus ClimbMove events and the
  /// PaloStop certificate event.
  void set_observer(obs::Observer* observer);

  /// Records the trace of the current strategy on one context. Returns
  /// true if a hill-climbing move occurred.
  bool Observe(const Trace& trace);

  /// True once the epsilon-local-optimality certificate holds; no
  /// further moves will be made and Observe becomes a no-op.
  bool Finished() const { return finished_; }

  const Strategy& strategy() const { return current_; }
  int64_t contexts_processed() const { return contexts_; }
  int64_t moves_made() const { return moves_; }

  /// Resumable learner state; both estimate ledgers (under for climbing,
  /// over for the stop certificate) are indexed by the neighbourhood the
  /// checkpointed strategy induces, as in Pib::Checkpoint.
  struct Checkpoint {
    Strategy strategy;
    int64_t contexts = 0;
    int64_t trials = 0;
    int64_t samples = 0;
    int64_t moves = 0;
    bool finished = false;
    std::vector<double> neighbor_under_sums;
    std::vector<double> neighbor_over_sums;
  };
  Checkpoint GetCheckpoint() const;
  /// On error the learner keeps its prior state.
  Status RestoreCheckpoint(const Checkpoint& checkpoint);

 private:
  struct Neighbor {
    SiblingSwap swap;
    Strategy strategy;
    double range = 0.0;
    double under_sum = 0.0;
    double over_sum = 0.0;
  };

  void RebuildNeighborhood();
  /// Sets `*worst_certificate` to the max over neighbours of
  /// (mean over-estimate + Hoeffding deviation) it saw before deciding,
  /// `*worst_neighbor` to that neighbour's index (or the size of the
  /// neighbourhood when no sample exists yet) and `*delta_i` to the
  /// per-neighbour stop-test confidence it used.
  bool CheckStop(double* worst_certificate, size_t* worst_neighbor,
                 double* delta_i);

  const InferenceGraph* graph_;
  DeltaEstimator estimator_;
  Strategy current_;
  Options options_;

  std::vector<Neighbor> neighbors_;
  int64_t contexts_ = 0;
  int64_t trials_ = 0;
  int64_t samples_ = 0;
  int64_t moves_ = 0;
  bool finished_ = false;
  /// Audit mode: delta_i charged by certified decisions (climb commits
  /// on the delta/2 climbing schedule, plus the stop test's
  /// per-neighbour delta_i) — a subsequence of a convergent schedule,
  /// so always < delta.
  double audit_delta_spent_ = 0.0;
  obs::Observer* observer_ = nullptr;
  struct Handles {
    obs::Counter* contexts = nullptr;
    obs::Counter* moves = nullptr;
    obs::Counter* stops = nullptr;
  };
  Handles handles_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_PALO_H_
