#include "core/upsilon.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "core/expected_cost.h"
#include "util/check.h"

namespace stratlearn {

namespace {

/// A block of consecutively-scheduled arcs: `C` is its expected cost once
/// started, `Q` the probability it fails to end the search, `leaves` the
/// success arcs it visits, in order.
struct Block {
  double C = 0.0;
  double Q = 1.0;
  std::vector<ArcId> leaves;

  double Ratio() const {
    if (C <= 0.0) return std::numeric_limits<double>::infinity();
    return (1.0 - Q) / C;
  }
};

Block MergeBlocks(Block first, const Block& second) {
  first.C += first.Q * second.C;
  first.Q *= second.Q;
  first.leaves.insert(first.leaves.end(), second.leaves.begin(),
                      second.leaves.end());
  return first;
}

/// K-way merge of block sequences (each of non-increasing ratio) into one
/// sequence of non-increasing ratio. Heap-based: O(total log k), which
/// matters for flat graphs whose root has thousands of children.
std::deque<Block> MergeSequences(std::vector<std::deque<Block>> seqs) {
  struct HeapEntry {
    double ratio;
    size_t seq;
  };
  auto worse = [](const HeapEntry& a, const HeapEntry& b) {
    return a.ratio < b.ratio;  // max-heap on ratio
  };
  std::vector<HeapEntry> heap;
  heap.reserve(seqs.size());
  for (size_t i = 0; i < seqs.size(); ++i) {
    if (!seqs[i].empty()) heap.push_back({seqs[i].front().Ratio(), i});
  }
  std::make_heap(heap.begin(), heap.end(), worse);

  std::deque<Block> out;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    size_t i = heap.back().seq;
    heap.pop_back();
    out.push_back(std::move(seqs[i].front()));
    seqs[i].pop_front();
    if (!seqs[i].empty()) {
      heap.push_back({seqs[i].front().Ratio(), i});
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return out;
}

/// Prepends `prefix` (the parent arc's own block) to `seq`, merging
/// forward while the front's ratio is below its successor's, so the
/// sequence stays non-increasing (Sidney decomposition step).
void GlueFront(Block prefix, std::deque<Block>& seq) {
  while (!seq.empty() && prefix.Ratio() < seq.front().Ratio()) {
    prefix = MergeBlocks(std::move(prefix), seq.front());
    seq.pop_front();
  }
  seq.push_front(std::move(prefix));
}

double PassProb(const InferenceGraph& graph, ArcId a,
                const std::vector<double>& probs) {
  int e = graph.arc(a).experiment;
  return e < 0 ? 1.0 : probs[static_cast<size_t>(e)];
}

/// Bottom-up block construction for the subtree hanging from `arc`.
/// Exact when IsBlockMergeExact(graph); otherwise the internal-experiment
/// discounting below is a documented approximation.
std::deque<Block> SolveArc(const InferenceGraph& graph,
                           const std::vector<double>& probs, ArcId arc) {
  const Arc& a = graph.arc(arc);
  double p = PassProb(graph, arc, probs);
  if (graph.node(a.to).is_success) {
    Block b;
    b.C = a.ExpectedAttemptCost(p);
    b.Q = 1.0 - p;
    b.leaves = {arc};
    return {std::move(b)};
  }
  const Node& head = graph.node(a.to);
  if (head.out_arcs.empty()) {
    // Dead end: pure cost, can never succeed.
    Block b;
    b.C = a.ExpectedAttemptCost(p);
    b.Q = 1.0;
    return {std::move(b)};
  }
  std::vector<std::deque<Block>> child_seqs;
  child_seqs.reserve(head.out_arcs.size());
  for (ArcId c : head.out_arcs) {
    child_seqs.push_back(SolveArc(graph, probs, c));
  }
  std::deque<Block> merged = MergeSequences(std::move(child_seqs));
  if (p < 1.0) {
    // Internal experiment: everything below is reached (and can succeed)
    // only when the experiment passes. Exact for chains (a single child
    // sequence that the glue below collapses into one block); an
    // approximation when the experiment guards a branching subtree,
    // because the shared pass event correlates the sibling blocks.
    for (Block& b : merged) {
      b.C *= p;
      b.Q = 1.0 - p * (1.0 - b.Q);
    }
  }
  Block prefix;
  prefix.C = a.ExpectedAttemptCost(p);
  prefix.Q = 1.0;
  GlueFront(std::move(prefix), merged);
  return merged;
}

}  // namespace

bool IsBlockMergeExact(const InferenceGraph& graph) {
  for (ArcId e : graph.experiments()) {
    // The experiment's head subtree must be a pure chain ending in a
    // success node: splitting such a chain never helps, so collapsing it
    // into a composite job preserves optimality.
    NodeId n = graph.arc(e).to;
    while (!graph.node(n).is_success) {
      const Node& node = graph.node(n);
      if (node.out_arcs.size() != 1) return false;
      n = graph.arc(node.out_arcs[0]).to;
    }
  }
  return true;
}

Result<UpsilonResult> UpsilonAot(const InferenceGraph& graph,
                                 const std::vector<double>& probs,
                                 const UpsilonOptions& options) {
  if (probs.size() != graph.num_experiments()) {
    return Status::InvalidArgument(
        "probability vector size does not match experiment count");
  }
  for (double p : probs) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }
  STRATLEARN_RETURN_IF_ERROR(graph.Validate());

  const bool exact_class = IsBlockMergeExact(graph);
  if (!exact_class &&
      graph.SuccessArcs().size() <= options.max_brute_force_leaves) {
    Result<OptimalResult> brute =
        BruteForceOptimal(graph, probs, options.max_brute_force_leaves);
    if (!brute.ok()) return brute.status();
    UpsilonResult out;
    out.strategy = brute->strategy;
    out.expected_cost = brute->cost;
    out.exact = true;
    return out;
  }
  if (!exact_class && !options.allow_approximation) {
    return Status::Unimplemented(
        "graph has experiments guarding branching subtrees; exact "
        "Upsilon for this class is intractable (paper Section 4 / "
        "[Gre91]) and approximation was disabled");
  }

  std::vector<std::deque<Block>> child_seqs;
  for (ArcId c : graph.node(graph.root()).out_arcs) {
    child_seqs.push_back(SolveArc(graph, probs, c));
  }
  std::deque<Block> merged = MergeSequences(std::move(child_seqs));

  std::vector<ArcId> leaf_order;
  for (const Block& b : merged) {
    leaf_order.insert(leaf_order.end(), b.leaves.begin(), b.leaves.end());
  }
  UpsilonResult out;
  out.strategy = Strategy::FromLeafOrder(graph, leaf_order);
  out.expected_cost = ExactExpectedCost(graph, out.strategy, probs);
  out.exact = exact_class;
  return out;
}

}  // namespace stratlearn
