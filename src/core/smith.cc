#include "core/smith.h"

#include <algorithm>

#include "util/math_util.h"

namespace stratlearn {

std::vector<double> SmithFactCountEstimates(const BuiltGraph& built,
                                            const Database& db,
                                            int64_t universe_size) {
  const InferenceGraph& graph = built.graph;
  std::vector<int64_t> counts(graph.num_experiments(), -1);
  int64_t max_count = 1;
  for (size_t e = 0; e < graph.num_experiments(); ++e) {
    ArcId arc = graph.experiments()[e];
    auto it = built.retrievals.find(arc);
    if (it == built.retrievals.end()) continue;  // guard: no fact model
    counts[e] = db.CountFacts(it->second.predicate);
    max_count = std::max(max_count, counts[e]);
  }
  double denominator = universe_size > 0
                           ? static_cast<double>(universe_size)
                           : static_cast<double>(max_count);
  std::vector<double> estimates(graph.num_experiments(), 0.5);
  for (size_t e = 0; e < graph.num_experiments(); ++e) {
    if (counts[e] < 0) continue;
    estimates[e] =
        ClampProbability(static_cast<double>(counts[e]) / denominator);
  }
  return estimates;
}

}  // namespace stratlearn
