#include "core/pib1.h"

#include "stats/chernoff.h"
#include "util/check.h"

namespace stratlearn {

Pib1::Pib1(const InferenceGraph* graph, Strategy current, SiblingSwap swap,
           Options options, obs::Observer* observer)
    : graph_(graph),
      estimator_(graph),
      current_(std::move(current)),
      alternative_(ApplySwap(*graph, current_, swap)),
      options_(options),
      range_(SwapRange(*graph, current_, swap)) {
  STRATLEARN_CHECK(options_.delta > 0.0 && options_.delta < 1.0);
  set_observer(observer);
}

void Pib1::set_observer(obs::Observer* observer) {
  observer_ = observer;
  handles_ = Handles{};
  if (observer_ == nullptr || observer_->metrics() == nullptr) return;
  obs::MetricsRegistry* r = observer_->metrics();
  handles_.samples = &r->GetCounter("pib1.samples");
  handles_.delta_sum = &r->GetGauge("pib1.delta_sum");
  handles_.threshold = &r->GetGauge("pib1.threshold");
}

void Pib1::Observe(const Trace& trace) {
  delta_sum_ += estimator_.UnderEstimate(trace, alternative_);
  ++samples_;
  if (observer_ == nullptr) return;
  if (handles_.samples != nullptr) {
    handles_.samples->Increment();
    handles_.delta_sum->Set(delta_sum_);
    handles_.threshold->Set(Threshold());
  }
  if (obs::TraceSink* sink = observer_->sink()) {
    sink->OnSequentialTest({observer_->NowUs(), "pib1", samples_, samples_,
                            /*trial_count=*/1, /*best_neighbor=*/0,
                            delta_sum_, Threshold(), ShouldSwitch()});
    // The one-shot filter's single decision: certify the first
    // observation on which Equation 2 declares the alternative better.
    // The whole delta budget is spent on this one test.
    if (observer_->audit_enabled() && !audit_reported_ && ShouldSwitch()) {
      audit_reported_ = true;
      obs::DecisionCertificateEvent e;
      e.t_us = observer_->NowUs();
      e.learner = "pib1";
      e.decision = "stop";
      e.verdict = "stop";
      e.at_context = samples_;
      e.samples = samples_;
      e.trials = 1;
      e.subject = 0;
      e.mean = delta_sum_ / static_cast<double>(samples_);
      e.delta_sum = delta_sum_;
      e.threshold = Threshold();
      e.margin = delta_sum_ - e.threshold;
      e.range = range_;
      e.epsilon_n = range_ > 0.0
                        ? HoeffdingDeviation(samples_, options_.delta, range_)
                        : 0.0;
      e.delta_step = options_.delta;
      e.delta_budget = options_.delta;
      e.delta_spent_total = options_.delta;
      e.bound_samples =
          e.mean > 0.0 && range_ > 0.0
              ? SampleSizeForDeviation(e.mean, options_.delta, range_)
              : 0;
      sink->OnDecisionCertificate(e);
    }
  }
}

double Pib1::Threshold() const {
  if (samples_ == 0) return 0.0;
  return SumThreshold(samples_, options_.delta, range_);
}

bool Pib1::ShouldSwitch() const {
  if (samples_ == 0) return false;
  return delta_sum_ >= Threshold() && delta_sum_ > 0.0;
}

ThreeCounterPib1::ThreeCounterPib1(double fstar_first, double fstar_second,
                                   double delta)
    : fstar_first_(fstar_first), fstar_second_(fstar_second), delta_(delta) {
  STRATLEARN_CHECK(fstar_first_ > 0.0);
  STRATLEARN_CHECK(fstar_second_ > 0.0);
  STRATLEARN_CHECK(delta_ > 0.0 && delta_ < 1.0);
}

double ThreeCounterPib1::DeltaSum() const {
  return static_cast<double>(k_second_) * fstar_first_ -
         static_cast<double>(k_first_) * fstar_second_;
}

double ThreeCounterPib1::Threshold() const {
  if (m_ == 0) return 0.0;
  return SumThreshold(m_, delta_, fstar_first_ + fstar_second_);
}

bool ThreeCounterPib1::ShouldSwitch() const {
  if (m_ == 0) return false;
  return DeltaSum() >= Threshold() && DeltaSum() > 0.0;
}

}  // namespace stratlearn
