#ifndef STRATLEARN_CORE_TRANSFORMATIONS_H_
#define STRATLEARN_CORE_TRANSFORMATIONS_H_

#include <string>
#include <vector>

#include "engine/strategy.h"
#include "graph/inference_graph.h"

namespace stratlearn {

/// The transformation family the paper uses throughout: exchanging the
/// visiting order of two arcs that descend from a common node, together
/// with their subtrees (Section 3.1: Theta_2 differs from Theta_1 by
/// interchanging R_p and its descendant D_p with R_g and D_g).
struct SiblingSwap {
  NodeId parent = kInvalidNode;
  ArcId arc_a = kInvalidArc;
  ArcId arc_b = kInvalidArc;

  std::string ToString(const InferenceGraph& graph) const;
};

/// Every unordered pair of sibling arcs in the graph. This is the
/// default transformation set T of the PIB system; |T| = sum over nodes
/// of C(children, 2).
std::vector<SiblingSwap> AllSiblingSwaps(const InferenceGraph& graph);

/// Applies `swap` to `strategy`: the two subtrees' leaf *blocks* trade
/// places in the visiting sequence (each block anchored where the other
/// used to start, internal order preserved, every other leaf keeping its
/// relative order). Block semantics keep hierarchical contiguity — every
/// subtree's leaves stay consecutive — which the Lambda range analysis
/// below relies on. The result is re-canonicalised (lazy form); swapping
/// subtrees with no success leaves is a no-op.
Strategy ApplySwap(const InferenceGraph& graph, const Strategy& strategy,
                   const SiblingSwap& swap);

/// Lambda[Theta, tau(Theta)] (Equation 5's range term): an upper bound on
/// the per-context |Delta| of a sibling swap.
///
/// N.b. the sum f*(r1) + f*(r2) the paper's two-child examples use is NOT
/// sufficient in general: when other sibling subtrees sit *between* the
/// two swapped blocks, whether they are explored at all flips with the
/// swap, so their arcs enter Delta too (our exhaustive invariant test
/// exposes this). The paper's own general statement — "never more than
/// the sum of the costs of the arcs under the node where Theta deviates"
/// — covers this; the strategy-free overload below returns exactly that
/// (the f* sum over ALL of the parent's children).
double SwapRange(const InferenceGraph& graph, const SiblingSwap& swap);

/// Tighter, strategy-aware range: the f* sum over the swapped subtrees
/// plus every sibling subtree whose leaves lie between the two blocks in
/// `strategy`'s visiting order (equals the paper's f*(r1) + f*(r2) when
/// the blocks are adjacent). Falls back to the conservative overload if
/// the strategy interleaves foreign leaves into the region.
double SwapRange(const InferenceGraph& graph, const Strategy& strategy,
                 const SiblingSwap& swap);

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_TRANSFORMATIONS_H_
