#include "core/pib.h"

#include "stats/sequential.h"
#include "util/check.h"

namespace stratlearn {

Pib::Pib(const InferenceGraph* graph, Strategy initial, Options options)
    : Pib(graph, std::move(initial), AllSiblingSwaps(*graph), options) {}

Pib::Pib(const InferenceGraph* graph, Strategy initial,
         std::vector<SiblingSwap> transformations, Options options)
    : graph_(graph),
      estimator_(graph),
      current_(std::move(initial)),
      transformations_(std::move(transformations)),
      options_(options) {
  STRATLEARN_CHECK(options_.delta > 0.0 && options_.delta < 1.0);
  STRATLEARN_CHECK(options_.test_every >= 1);
  RebuildNeighborhood();
}

void Pib::RebuildNeighborhood() {
  neighbors_.clear();
  neighbors_.reserve(transformations_.size());
  for (const SiblingSwap& swap : transformations_) {
    Neighbor n;
    n.swap = swap;
    n.strategy = ApplySwap(*graph_, current_, swap);
    if (n.strategy == current_) continue;  // no-op swap (e.g. dead ends)
    n.range = SwapRange(*graph_, current_, swap);
    neighbors_.push_back(std::move(n));
  }
  samples_ = 0;
}

double Pib::ThresholdFor(size_t neighbor) const {
  STRATLEARN_CHECK(neighbor < neighbors_.size());
  if (samples_ == 0 || trials_ == 0) return 0.0;
  return SequentialSumThreshold(samples_, trials_, options_.delta,
                                neighbors_[neighbor].range);
}

double Pib::DeltaSumFor(size_t neighbor) const {
  STRATLEARN_CHECK(neighbor < neighbors_.size());
  return neighbors_[neighbor].delta_sum;
}

bool Pib::Observe(const Trace& trace) {
  ++contexts_;
  ++samples_;
  trials_ += static_cast<int64_t>(neighbors_.size());
  for (Neighbor& n : neighbors_) {
    n.delta_sum += estimator_.UnderEstimate(trace, n.strategy);
  }
  if (contexts_ % options_.test_every != 0) return false;

  for (size_t j = 0; j < neighbors_.size(); ++j) {
    const Neighbor& n = neighbors_[j];
    double threshold = ThresholdFor(j);
    if (n.delta_sum > 0.0 && n.delta_sum >= threshold) {
      Move move;
      move.at_context = contexts_;
      move.samples_used = samples_;
      move.swap = n.swap;
      move.delta_sum = n.delta_sum;
      move.threshold = threshold;
      moves_.push_back(move);
      current_ = n.strategy;
      RebuildNeighborhood();
      return true;
    }
  }
  return false;
}

}  // namespace stratlearn
