#include "core/pib.h"

#include <algorithm>

#include "stats/chernoff.h"
#include "stats/sequential.h"
#include "util/check.h"

namespace stratlearn {

Pib::Pib(const InferenceGraph* graph, Strategy initial, Options options,
         obs::Observer* observer)
    : Pib(graph, std::move(initial), AllSiblingSwaps(*graph), options,
          observer) {}

Pib::Pib(const InferenceGraph* graph, Strategy initial,
         std::vector<SiblingSwap> transformations, Options options,
         obs::Observer* observer)
    : graph_(graph),
      estimator_(graph),
      current_(std::move(initial)),
      transformations_(std::move(transformations)),
      options_(options) {
  STRATLEARN_CHECK(options_.delta > 0.0 && options_.delta < 1.0);
  STRATLEARN_CHECK(options_.test_every >= 1);
  RebuildNeighborhood();
  set_observer(observer);
}

void Pib::set_observer(obs::Observer* observer) {
  observer_ = observer;
  handles_ = Handles{};
  if (observer_ == nullptr || observer_->metrics() == nullptr) return;
  obs::MetricsRegistry* r = observer_->metrics();
  handles_.contexts = &r->GetCounter("pib.contexts");
  handles_.trials = &r->GetCounter("pib.trials");
  handles_.tests = &r->GetCounter("pib.tests");
  handles_.moves = &r->GetCounter("pib.moves");
}

void Pib::RebuildNeighborhood() {
  neighbors_.clear();
  neighbors_.reserve(transformations_.size());
  for (const SiblingSwap& swap : transformations_) {
    Neighbor n;
    n.swap = swap;
    n.strategy = ApplySwap(*graph_, current_, swap);
    if (n.strategy == current_) continue;  // no-op swap (e.g. dead ends)
    n.range = SwapRange(*graph_, current_, swap);
    neighbors_.push_back(std::move(n));
  }
  samples_ = 0;
}

double Pib::ThresholdFor(size_t neighbor) const {
  STRATLEARN_CHECK(neighbor < neighbors_.size());
  if (samples_ == 0 || trials_ == 0) return 0.0;
  return SequentialSumThreshold(samples_, trials_, options_.delta,
                                neighbors_[neighbor].range);
}

double Pib::DeltaSumFor(size_t neighbor) const {
  STRATLEARN_CHECK(neighbor < neighbors_.size());
  return neighbors_[neighbor].delta_sum;
}

PibSnapshot Pib::Snapshot() const {
  PibSnapshot snap;
  snap.contexts = contexts_;
  snap.trials = trials_;
  snap.samples_in_epoch = samples_;
  snap.delta = options_.delta;
  snap.current_test_delta =
      trials_ > 0 ? SequentialDelta(trials_, options_.delta) : 0.0;
  snap.neighbors.reserve(neighbors_.size());
  for (size_t j = 0; j < neighbors_.size(); ++j) {
    const Neighbor& n = neighbors_[j];
    PibSnapshot::Neighbor view;
    view.swap = n.swap.ToString(*graph_);
    view.delta_sum = n.delta_sum;
    view.threshold = ThresholdFor(j);
    view.margin = n.delta_sum - view.threshold;
    view.range = n.range;
    snap.neighbors.push_back(std::move(view));
  }
  snap.moves.reserve(moves_.size());
  for (const Move& m : moves_) {
    PibSnapshot::Move view;
    view.at_context = m.at_context;
    view.samples_used = m.samples_used;
    view.swap = m.swap.ToString(*graph_);
    view.delta_sum = m.delta_sum;
    view.threshold = m.threshold;
    view.delta_spent = m.delta_spent;
    snap.delta_spent_moves += m.delta_spent;
    snap.moves.push_back(std::move(view));
  }
  return snap;
}

Pib::Checkpoint Pib::GetCheckpoint() const {
  Checkpoint checkpoint;
  checkpoint.strategy = current_;
  checkpoint.contexts = contexts_;
  checkpoint.trials = trials_;
  checkpoint.samples = samples_;
  checkpoint.neighbor_delta_sums.reserve(neighbors_.size());
  for (const Neighbor& n : neighbors_) {
    checkpoint.neighbor_delta_sums.push_back(n.delta_sum);
  }
  checkpoint.moves = moves_;
  checkpoint.audit_delta_spent = audit_delta_spent_;
  checkpoint.audit_rounds = audit_rounds_;
  return checkpoint;
}

Status Pib::RestoreCheckpoint(const Checkpoint& checkpoint) {
  if (checkpoint.contexts < 0 || checkpoint.trials < 0 ||
      checkpoint.samples < 0 || checkpoint.samples > checkpoint.contexts) {
    return Status::InvalidArgument("inconsistent learner counters");
  }
  if (checkpoint.audit_delta_spent < 0.0 || checkpoint.audit_rounds < 0) {
    return Status::InvalidArgument("inconsistent audit ledger");
  }
  if (checkpoint.strategy.size() != graph_->num_arcs()) {
    return Status::InvalidArgument(
        "checkpointed strategy does not cover the graph's arcs");
  }
  // Rebuild the neighbourhood of the checkpointed strategy *first*: its
  // size tells us whether the Delta~ sums line up, and the rebuild zeroes
  // samples_, which we then restore.
  Strategy prior = std::move(current_);
  current_ = checkpoint.strategy;
  RebuildNeighborhood();
  if (neighbors_.size() != checkpoint.neighbor_delta_sums.size()) {
    current_ = std::move(prior);
    RebuildNeighborhood();
    return Status::InvalidArgument(
        "checkpoint carries a different neighbourhood size than the "
        "strategy induces");
  }
  for (size_t j = 0; j < neighbors_.size(); ++j) {
    neighbors_[j].delta_sum = checkpoint.neighbor_delta_sums[j];
  }
  contexts_ = checkpoint.contexts;
  trials_ = checkpoint.trials;
  samples_ = checkpoint.samples;
  moves_ = checkpoint.moves;
  audit_delta_spent_ = checkpoint.audit_delta_spent;
  audit_rounds_ = checkpoint.audit_rounds;
  return Status::OK();
}

void Pib::Rebaseline(double trials_factor) {
  STRATLEARN_CHECK(trials_factor > 0.0 && trials_factor <= 1.0);
  // Every sum is dropped, not just the epoch's samples: a pre-drift sum
  // left standing would cross the (now smaller) rewound threshold on
  // stale evidence.
  for (Neighbor& n : neighbors_) n.delta_sum = 0.0;
  samples_ = 0;
  trials_ = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(trials_) * trials_factor));
}

int64_t Pib::RestartScoped(ArcId arc) {
  auto touches = [&](ArcId root) {
    for (ArcId sub : graph_->SubtreeArcs(root)) {
      if (sub == arc) return true;
    }
    return false;
  };
  int64_t reset = 0;
  for (Neighbor& n : neighbors_) {
    if (!touches(n.swap.arc_a) && !touches(n.swap.arc_b)) continue;
    n.delta_sum = 0.0;
    ++reset;
  }
  return reset;
}

obs::DecisionCertificateEvent Pib::MakeAuditCertificate(size_t neighbor,
                                                        const char* verdict,
                                                        double threshold) {
  const Neighbor& n = neighbors_[neighbor];
  double delta_step =
      SequentialDelta(std::max<int64_t>(1, trials_), options_.delta);
  audit_delta_spent_ += delta_step;
  obs::DecisionCertificateEvent e;
  e.t_us = observer_->NowUs();
  e.learner = "pib";
  e.decision = "climb";
  e.verdict = verdict;
  e.at_context = contexts_;
  e.samples = samples_;
  e.trials = trials_;
  e.subject = static_cast<int64_t>(neighbor);
  e.mean = samples_ > 0 ? n.delta_sum / static_cast<double>(samples_) : 0.0;
  e.delta_sum = n.delta_sum;
  e.threshold = threshold;
  e.margin = n.delta_sum - threshold;
  e.range = n.range;
  e.epsilon_n = samples_ > 0 && n.range > 0.0
                    ? HoeffdingDeviation(samples_, delta_step, n.range)
                    : 0.0;
  e.delta_step = delta_step;
  e.delta_budget = options_.delta;
  e.delta_spent_total = audit_delta_spent_;
  e.bound_samples =
      e.mean > 0.0 && n.range > 0.0
          ? SampleSizeForDeviation(e.mean, delta_step, n.range)
          : 0;
  return e;
}

bool Pib::Observe(const Trace& trace) {
  ++contexts_;
  ++samples_;
  trials_ += static_cast<int64_t>(neighbors_.size());
  for (Neighbor& n : neighbors_) {
    n.delta_sum += estimator_.UnderEstimate(trace, n.strategy);
  }
  if (handles_.contexts != nullptr) {
    handles_.contexts->Increment();
    handles_.trials->Increment(static_cast<int64_t>(neighbors_.size()));
  }
  if (contexts_ % options_.test_every != 0) return false;

  // One test round: the first neighbour (in T order) whose sum crosses
  // its Equation-6 threshold wins; the largest-margin neighbour is
  // reported either way so traces show how close the round came.
  size_t fired = neighbors_.size();
  size_t best = neighbors_.size();
  double best_margin = 0.0;
  double fired_threshold = 0.0;
  for (size_t j = 0; j < neighbors_.size(); ++j) {
    const Neighbor& n = neighbors_[j];
    double threshold = ThresholdFor(j);
    double margin = n.delta_sum - threshold;
    if (best == neighbors_.size() || margin > best_margin) {
      best = j;
      best_margin = margin;
    }
    if (fired == neighbors_.size() && n.delta_sum > 0.0 &&
        n.delta_sum >= threshold) {
      fired = j;
      fired_threshold = threshold;
    }
  }
  if (handles_.tests != nullptr && !neighbors_.empty()) {
    handles_.tests->Increment();
  }
  if (observer_ != nullptr && !neighbors_.empty()) {
    if (obs::TraceSink* sink = observer_->sink()) {
      sink->OnSequentialTest({observer_->NowUs(), "pib", contexts_, samples_,
                              trials_, static_cast<int64_t>(best),
                              neighbors_[best].delta_sum,
                              ThresholdFor(best),
                              fired != neighbors_.size()});
    }
  }
  if (fired == neighbors_.size()) {
    // Certify the reject: the best neighbour did not cross its
    // threshold this round. Rejects are the high-volume certificate,
    // so they honour the observer's audit_every subsampling cadence.
    if (observer_ != nullptr && observer_->audit_enabled() &&
        !neighbors_.empty()) {
      ++audit_rounds_;
      if ((audit_rounds_ - 1) % observer_->audit_every() == 0) {
        if (obs::TraceSink* sink = observer_->sink()) {
          sink->OnDecisionCertificate(
              MakeAuditCertificate(best, "reject", ThresholdFor(best)));
        }
      }
    }
    return false;
  }

  const Neighbor& n = neighbors_[fired];
  Move move;
  move.at_context = contexts_;
  move.samples_used = samples_;
  move.swap = n.swap;
  move.delta_sum = n.delta_sum;
  move.threshold = fired_threshold;
  move.delta_spent = SequentialDelta(trials_, options_.delta);
  moves_.push_back(move);
  if (handles_.moves != nullptr) handles_.moves->Increment();
  if (observer_ != nullptr) {
    if (obs::TraceSink* sink = observer_->sink()) {
      obs::ClimbMoveEvent event;
      event.t_us = observer_->NowUs();
      event.learner = "pib";
      event.move_index = static_cast<int64_t>(moves_.size()) - 1;
      event.at_context = contexts_;
      event.samples_used = samples_;
      event.swap = n.swap.ToString(*graph_);
      event.delta_sum = n.delta_sum;
      event.threshold = fired_threshold;
      event.margin = n.delta_sum - fired_threshold;
      event.delta_spent = move.delta_spent;
      sink->OnClimbMove(event);
    }
    if (observer_->audit_enabled()) {
      ++audit_rounds_;
      if (obs::TraceSink* sink = observer_->sink()) {
        sink->OnDecisionCertificate(
            MakeAuditCertificate(fired, "commit", fired_threshold));
      }
    }
  }
  current_ = n.strategy;
  RebuildNeighborhood();
  return true;
}

}  // namespace stratlearn
