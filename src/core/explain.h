#ifndef STRATLEARN_CORE_EXPLAIN_H_
#define STRATLEARN_CORE_EXPLAIN_H_

#include <string>

#include "core/pib.h"
#include "engine/adaptive_qp.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"
#include "obs/profiler.h"

namespace stratlearn {

/// Rendering knobs for ExplainStrategyTree.
struct ExplainOptions {
  /// An arc is marked HOT when its share of the profiled total cost
  /// reaches this fraction (mirror of ProfilerOptions::hot_share).
  double hot_share = 0.10;
};

/// Renders the strategy as an annotated inference-graph tree: each
/// node's children are listed in the order the strategy visits them,
/// with the arc's global visit position "#k", its kind and base cost,
/// and — when a profiled run is supplied — the measured unblock
/// frequency p^ with its Hoeffding half-width, mean traversal cost,
/// share of the total attributed cost, and a HOT marker on arcs past
/// the hot_share threshold. Deterministic: no timestamps, fixed float
/// formatting, tree order fixed by (strategy, graph).
std::string ExplainStrategyTree(const InferenceGraph& graph,
                                const Strategy& strategy,
                                const obs::StrategyProfiler* profile = nullptr,
                                const ExplainOptions& options = {});

/// Renders PIB's estimate state: the delta budget ledger (lifetime
/// budget, delta_i spent by fired moves, the next test's delta_i), the
/// current neighbourhood's Delta~ sums against their Equation-6
/// thresholds, and the full climb history.
std::string ExplainPibState(const PibSnapshot& snapshot);

/// Renders QP^A's sampling state: per-experiment quota progress,
/// attempt/success/blocked-aim counts, and the measured p^ / reach
/// frequencies, labelled with the graph's experiment arc labels.
std::string ExplainPaoState(const InferenceGraph& graph,
                            const AdaptiveQueryProcessor::Snapshot& snapshot);

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_EXPLAIN_H_
