#ifndef STRATLEARN_CORE_DELTA_ESTIMATOR_H_
#define STRATLEARN_CORE_DELTA_ESTIMATOR_H_

#include "engine/context.h"
#include "engine/query_processor.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"

namespace stratlearn {

/// Estimates Delta[Theta, Theta', I] = c(Theta, I) - c(Theta', I)
/// (Section 3.1) — the per-context cost saving of switching to an
/// alternative strategy.
///
/// The exact value needs the full context; the learners only have the
/// *trace* of the current strategy's run, which reveals the outcomes of
/// the attempted experiments only. From a trace the estimator produces:
///
///  * `UnderEstimate` (the paper's Delta~): completes the unobserved part
///    pessimistically for Theta' — unobserved success-bearing arcs are
///    assumed blocked (no early success for Theta') and unobserved
///    internal experiments assumed traversable (Theta' pays their
///    subtrees). Both choices over-estimate c(Theta', I), so
///    Delta~ <= Delta always. This is what PIB feeds into Equation 6.
///
///  * `OverEstimate` (Delta^): the symmetric optimistic completion used
///    by PALO's stopping rule — a lower bound on c(Theta', I) obtained by
///    minimising over the single-success-path completions, giving
///    Delta^ >= Delta.
///
/// With outcome-dependent arc costs (Note 4 / [OG90]) the completions
/// additionally charge unobserved experiments their maximum (resp.
/// minimum) attempt cost, keeping both bounds sound; this reduces to the
/// plain execution cost in the paper's fixed-cost model.
class DeltaEstimator {
 public:
  explicit DeltaEstimator(const InferenceGraph* graph)
      : graph_(graph), processor_(graph) {}

  /// Exact Delta given the full context.
  double ExactDelta(const Strategy& strategy, const Strategy& alternative,
                    const Context& context) const;

  /// Delta~ <= Delta from the current strategy's trace alone.
  double UnderEstimate(const Trace& trace,
                       const Strategy& alternative) const;

  /// Delta^ >= Delta from the current strategy's trace alone.
  double OverEstimate(const Trace& trace, const Strategy& alternative) const;

 private:
  /// Reconstructs which experiments the trace observed, and their
  /// outcomes. Returns a mask of observed experiments.
  std::vector<char> ObservedOutcomes(const Trace& trace,
                                     Context* outcomes) const;

  const InferenceGraph* graph_;
  QueryProcessor processor_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_CORE_DELTA_ESTIMATOR_H_
