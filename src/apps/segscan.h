#ifndef STRATLEARN_APPS_SEGSCAN_H_
#define STRATLEARN_APPS_SEGSCAN_H_

#include <string>
#include <vector>

#include "graph/inference_graph.h"

namespace stratlearn {

/// Section 5.2's horizontally-segmented distributed-database application:
/// the same relation is split across physical files (segments); answering
/// "age(russ, X)" means scanning segments until the one holding russ's
/// facts is found. Choosing the scan order is exactly the satisficing
/// strategy problem on a flat inference graph — one retrieval arc per
/// segment, cost = that segment's scan cost.
struct Segment {
  std::string name;
  /// Cost of scanning this segment once.
  double scan_cost = 1.0;
  /// Probability that a query's subject lives in this segment (used by
  /// synthetic workloads; the probabilities over segments of one relation
  /// typically sum to <= 1).
  double hit_probability = 0.0;
};

/// A flat inference graph over the segments. Experiment i corresponds to
/// segments[i]; strategies over this graph are scan orders.
struct SegmentGraph {
  InferenceGraph graph;
  std::vector<Segment> segments;

  /// The true per-experiment success probabilities.
  std::vector<double> HitProbabilities() const;
};

/// Builds the scan-order graph. Requires at least one segment with
/// positive scan cost.
SegmentGraph MakeSegmentGraph(std::vector<Segment> segments);

/// The classical optimal scan order for independent segments: descending
/// p_i / c_i ratio (the flat special case of Upsilon_AOT). Returns the
/// segment indexes in optimal order.
std::vector<size_t> OptimalScanOrder(const std::vector<Segment>& segments);

}  // namespace stratlearn

#endif  // STRATLEARN_APPS_SEGSCAN_H_
