#ifndef STRATLEARN_APPS_KANSWERS_H_
#define STRATLEARN_APPS_KANSWERS_H_

#include <cstdint>

#include "engine/query_processor.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"
#include "util/rng.h"
#include "workload/oracle.h"

namespace stratlearn {

/// Section 5.2's first-k-answers variant: the search stops only after k
/// success nodes have been reached (useful when a query is known to have
/// exactly k answers, e.g. parent(x, Y)).
class KAnswersProcessor {
 public:
  KAnswersProcessor(const InferenceGraph* graph, int64_t k)
      : processor_(graph), k_(k) {}

  Trace Execute(const Strategy& strategy, const Context& context) const {
    ExecutionOptions options;
    options.stop_after_successes = k_;
    return processor_.Execute(strategy, context, options);
  }

  double Cost(const Strategy& strategy, const Context& context) const {
    return Execute(strategy, context).cost;
  }

  int64_t k() const { return k_; }

 private:
  QueryProcessor processor_;
  int64_t k_;
};

/// Exact expected cost of the k-answers search under independent
/// experiment probabilities, by exhaustive context enumeration (test /
/// small-graph oracle; requires <= 20 experiments).
double EnumeratedExpectedCostK(const InferenceGraph& graph,
                               const Strategy& strategy,
                               const std::vector<double>& probs, int64_t k);

/// Monte-Carlo expected cost of the k-answers search over any oracle.
double MonteCarloExpectedCostK(const InferenceGraph& graph,
                               const Strategy& strategy,
                               ContextOracle& oracle, int64_t k,
                               int64_t samples, Rng& rng);

}  // namespace stratlearn

#endif  // STRATLEARN_APPS_KANSWERS_H_
