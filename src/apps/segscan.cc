#include "apps/segscan.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace stratlearn {

std::vector<double> SegmentGraph::HitProbabilities() const {
  std::vector<double> probs;
  probs.reserve(segments.size());
  for (const Segment& s : segments) probs.push_back(s.hit_probability);
  return probs;
}

SegmentGraph MakeSegmentGraph(std::vector<Segment> segments) {
  STRATLEARN_CHECK(!segments.empty());
  SegmentGraph out;
  NodeId root = out.graph.AddRoot("query");
  for (const Segment& s : segments) {
    STRATLEARN_CHECK(s.scan_cost > 0.0);
    STRATLEARN_CHECK(s.hit_probability >= 0.0 && s.hit_probability <= 1.0);
    out.graph.AddRetrieval(root, s.scan_cost, "scan:" + s.name);
  }
  out.segments = std::move(segments);
  return out;
}

std::vector<size_t> OptimalScanOrder(const std::vector<Segment>& segments) {
  std::vector<size_t> order(segments.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return segments[a].hit_probability / segments[a].scan_cost >
           segments[b].hit_probability / segments[b].scan_cost;
  });
  return order;
}

}  // namespace stratlearn
