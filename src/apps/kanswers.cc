#include "apps/kanswers.h"

#include "engine/context.h"
#include "util/check.h"

namespace stratlearn {

double EnumeratedExpectedCostK(const InferenceGraph& graph,
                               const Strategy& strategy,
                               const std::vector<double>& probs, int64_t k) {
  size_t n = graph.num_experiments();
  STRATLEARN_CHECK_MSG(n <= 20, "EnumeratedExpectedCostK is a test oracle");
  STRATLEARN_CHECK(probs.size() == n);
  KAnswersProcessor processor(&graph, k);
  double expected = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < n && weight > 0.0; ++i) {
      weight *= ((mask >> i) & 1) ? probs[i] : 1.0 - probs[i];
    }
    if (weight == 0.0) continue;
    expected += weight * processor.Cost(strategy, Context::FromMask(n, mask));
  }
  return expected;
}

double MonteCarloExpectedCostK(const InferenceGraph& graph,
                               const Strategy& strategy,
                               ContextOracle& oracle, int64_t k,
                               int64_t samples, Rng& rng) {
  STRATLEARN_CHECK(samples > 0);
  KAnswersProcessor processor(&graph, k);
  double total = 0.0;
  for (int64_t i = 0; i < samples; ++i) {
    total += processor.Cost(strategy, oracle.Next(rng));
  }
  return total / static_cast<double>(samples);
}

}  // namespace stratlearn
