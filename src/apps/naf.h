#ifndef STRATLEARN_APPS_NAF_H_
#define STRATLEARN_APPS_NAF_H_

#include "datalog/evaluator.h"

namespace stratlearn {

/// Negation as failure over the satisficing evaluator (Section 5.2's
/// pauper example): "pauper(X) :- not owns(X, Y)" holds exactly when the
/// satisficing search for a *single* owned item fails — the searcher
/// never needs to enumerate all possessions, which is why satisficing
/// strategies (and hence PIB/PAO) matter for NAF.
class NafEvaluator {
 public:
  NafEvaluator(const Database* db, const RuleBase* rules,
               EvaluatorOptions options = {})
      : evaluator_(db, rules, options) {}

  /// True when `atom` is NOT provable (closed-world negation). Returns
  /// an error if the underlying proof search exhausted its budget, since
  /// then neither answer is safe.
  Result<bool> Holds(const Atom& atom, SymbolTable* symbols) {
    Result<ProofResult> proof = evaluator_.Prove(atom, symbols);
    if (!proof.ok()) return proof.status();
    return !proof->proved;
  }

  /// The positive counterpart, exposing the satisficing search stats.
  Result<ProofResult> Prove(const Atom& atom, SymbolTable* symbols) {
    return evaluator_.Prove(atom, symbols);
  }

 private:
  Evaluator evaluator_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_APPS_NAF_H_
