#include "robust/fault_plan.h"

#include <cstdlib>

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace stratlearn::robust {

namespace {

constexpr std::string_view kHeader = "stratlearn-faultplan v1";

Result<FaultKind> ParseKind(std::string_view name) {
  if (name == "transient") return FaultKind::kTransient;
  if (name == "timeout") return FaultKind::kTimeout;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "cost_spike") return FaultKind::kCostSpike;
  return Status::InvalidArgument(
      StrFormat("unknown fault kind '%s' (expected transient, timeout, "
                "corrupt or cost_spike)",
                std::string(name).c_str()));
}

std::vector<std::string> Fields(std::string_view line) {
  std::vector<std::string> fields;
  for (const std::string& f : Split(line, ' ')) {
    if (!Trim(f).empty()) fields.emplace_back(Trim(f));
  }
  return fields;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kCostSpike: return "cost_spike";
  }
  return "none";
}

Result<FaultPlan> FaultPlan::Parse(std::string_view text) {
  FaultPlan plan;
  int line_number = 0;
  bool saw_header = false;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string clipped = raw.substr(0, raw.find('#'));
    std::string_view line = Trim(clipped);
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kHeader) {
        return Status::InvalidArgument(StrFormat(
            "fault plan must start with '%s'", std::string(kHeader).c_str()));
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string> fields = Fields(line);
    const std::string& key = fields[0];
    auto bad = [&](const char* expected) -> Status {
      return Status::InvalidArgument(StrFormat(
          "fault plan line %d: '%s' expects %s", line_number, key.c_str(),
          expected));
    };
    if (key == "seed" && fields.size() == 2) {
      plan.seed = std::strtoull(fields[1].c_str(), nullptr, 10);
    } else if (key == "seed") {
      return bad("one integer");
    } else if (key == "retries" && fields.size() == 2) {
      plan.resilience.max_retries = std::atoi(fields[1].c_str());
      if (plan.resilience.max_retries < 0) return bad("a count >= 0");
    } else if (key == "retries") {
      return bad("one integer");
    } else if (key == "backoff" && fields.size() == 4) {
      plan.resilience.backoff_base = std::atof(fields[1].c_str());
      plan.resilience.backoff_multiplier = std::atof(fields[2].c_str());
      plan.resilience.backoff_cap = std::atof(fields[3].c_str());
      if (plan.resilience.backoff_base < 0.0 ||
          plan.resilience.backoff_multiplier < 1.0 ||
          plan.resilience.backoff_cap < 0.0) {
        return bad("base >= 0, multiplier >= 1, cap >= 0");
      }
    } else if (key == "backoff") {
      return bad("'<base> <multiplier> <cap>'");
    } else if (key == "budget" && fields.size() == 2) {
      plan.resilience.cost_budget = std::atof(fields[1].c_str());
      if (plan.resilience.cost_budget < 0.0) return bad("a budget >= 0");
    } else if (key == "budget") {
      return bad("one number");
    } else if (key == "breaker" &&
               (fields.size() == 3 || fields.size() == 4)) {
      plan.resilience.breaker_threshold = std::atoi(fields[1].c_str());
      plan.resilience.breaker_cooldown = std::atoll(fields[2].c_str());
      if (fields.size() == 4) {
        plan.resilience.breaker_cooldown_cap = std::atoll(fields[3].c_str());
      }
      if (plan.resilience.breaker_threshold < 0 ||
          plan.resilience.breaker_cooldown < 1 ||
          plan.resilience.breaker_cooldown_cap < 0 ||
          (plan.resilience.breaker_cooldown_cap > 0 &&
           plan.resilience.breaker_cooldown_cap <
               plan.resilience.breaker_cooldown)) {
        return bad("threshold >= 0, cooldown >= 1 and an optional "
                   "backoff cap >= cooldown (0 = 8x cooldown)");
      }
    } else if (key == "breaker") {
      return bad("'<threshold> <cooldown> [cooldown_cap]'");
    } else if (key == "fault" &&
               (fields.size() == 4 || fields.size() == 5)) {
      FaultRule rule;
      Result<FaultKind> kind = ParseKind(fields[1]);
      if (!kind.ok()) {
        return Status::InvalidArgument(StrFormat(
            "fault plan line %d: %s", line_number,
            kind.status().message().c_str()));
      }
      rule.kind = *kind;
      rule.probability = std::atof(fields[2].c_str());
      rule.experiment = std::atoi(fields[3].c_str());
      if (fields.size() == 5) rule.magnitude = std::atof(fields[4].c_str());
      if (rule.probability < 0.0 || rule.probability > 1.0) {
        return bad("a probability in [0, 1]");
      }
      if (rule.experiment < -1) return bad("an experiment index or -1");
      if (rule.magnitude < 1.0) return bad("a magnitude >= 1");
      plan.rules.push_back(rule);
    } else if (key == "fault") {
      return bad("'<kind> <probability> <experiment|-1> [magnitude]'");
    } else {
      return Status::InvalidArgument(StrFormat(
          "fault plan line %d: unknown directive '%s'", line_number,
          key.c_str()));
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument(StrFormat(
        "fault plan must start with '%s'", std::string(kHeader).c_str()));
  }
  return plan;
}

Result<FaultPlan> FaultPlan::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string FaultPlan::Serialize() const {
  std::string out(kHeader);
  out += StrFormat("\nseed %llu\nretries %d\nbackoff %s %s %s\nbudget %s\n"
                   "breaker %d %lld %lld\n",
                   static_cast<unsigned long long>(seed),
                   resilience.max_retries,
                   FormatDouble(resilience.backoff_base, 17).c_str(),
                   FormatDouble(resilience.backoff_multiplier, 17).c_str(),
                   FormatDouble(resilience.backoff_cap, 17).c_str(),
                   FormatDouble(resilience.cost_budget, 17).c_str(),
                   resilience.breaker_threshold,
                   static_cast<long long>(resilience.breaker_cooldown),
                   static_cast<long long>(resilience.breaker_cooldown_cap));
  for (const FaultRule& rule : rules) {
    out += StrFormat("fault %s %s %d %s\n", FaultKindName(rule.kind),
                     FormatDouble(rule.probability, 17).c_str(),
                     rule.experiment,
                     FormatDouble(rule.magnitude, 17).c_str());
  }
  return out;
}

bool FaultPlan::ZeroFault() const {
  for (const FaultRule& rule : rules) {
    if (rule.probability > 0.0 && rule.kind != FaultKind::kNone) return false;
  }
  return true;
}

}  // namespace stratlearn::robust
