#ifndef STRATLEARN_ROBUST_RECOVERY_CONTROLLER_H_
#define STRATLEARN_ROBUST_RECOVERY_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pib.h"
#include "graph/inference_graph.h"
#include "obs/health/monitor.h"
#include "obs/observer.h"
#include "robust/checkpoint.h"
#include "robust/fault_injector.h"
#include "robust/recovery/policy.h"

namespace stratlearn::robust {

/// Ring of retained "known-good" checkpoints backing the recovery
/// policy's rollback action. Slot k of a ring of N lives at
/// "<base>.ring<k>" (CRC-32 container, like the main checkpoint);
/// writes rotate through the slots oldest-first. Callers only write
/// when the health monitor's verdict is healthy and stamp that verdict
/// into the payload, so every retained slot is pre-drift by
/// construction — rollback never restores state the detectors had
/// already flagged.
class CheckpointRing {
 public:
  CheckpointRing(std::string base_path, int64_t slots);

  int64_t slots() const { return slots_; }
  int64_t cursor() const { return cursor_; }
  int64_t writes() const { return writes_; }

  /// Reinstates the rotation cursor persisted in the main checkpoint,
  /// so a resumed run overwrites the oldest slot next, not slot 0.
  /// Out-of-range values are ignored (fresh rotation).
  void RestoreCursor(int64_t cursor, int64_t writes);

  /// Writes `data` into the next slot and advances the rotation.
  Status Write(const CheckpointData& data);

  /// Newest retained slot (by queries_done) whose container checksum,
  /// payload and health stamp all check out. Corrupt or unhealthy
  /// slots are skipped, so a ring where every slot was damaged simply
  /// reports NotFound and the caller degrades gracefully.
  Result<CheckpointData> LoadNewestGood(const InferenceGraph& graph) const;

  std::string SlotPath(int64_t slot) const;

 private:
  std::string base_;
  int64_t slots_ = 0;
  int64_t cursor_ = 0;  // next slot to overwrite
  int64_t writes_ = 0;  // lifetime writes, for retention tests
};

/// Executes a "stratlearn-recovery v1" policy against the health
/// monitor's window stream: install `Hook()` via
/// HealthMonitor::set_recovery_hook and every closed window's
/// drift/alert transitions are matched against the policy's rules,
/// producing graduated recovery actions instead of a cold restart.
///
/// The controller has two modes. In decide-only mode (the default) it
/// records which rules fire — this is what offline `health` replays
/// and the resume path use, and it is a pure function of the window
/// sequence, so online and offline transcripts match byte for byte.
/// After set_live(true) it additionally *executes* each action against
/// whatever targets are bound (unbound targets degrade the outcome to
/// "skipped_unsupported") and emits one RecoveryEvent plus, on audit
/// runs, one decision certificate per action, so tools/audit_verify
/// can re-derive why recovery fired from the trace alone.
///
/// Cooldown state is not checkpointed: a resumed run rebuilds it by
/// replaying the restored windows through this hook in decide-only
/// mode before going live.
class RecoveryController {
 public:
  explicit RecoveryController(RecoveryPolicy policy)
      : policy_(std::move(policy)) {}

  const RecoveryPolicy& policy() const { return policy_; }

  /// Live-action targets, all optional. Bound after construction
  /// because the learner/injector typically outlive the observer setup
  /// that installs the hook.
  void BindPib(Pib* pib) { pib_ = pib; }
  void BindInjector(FaultInjector* injector) { injector_ = injector; }
  void BindRing(CheckpointRing* ring) { ring_ = ring; }
  void BindObserver(obs::Observer* observer) { observer_ = observer; }
  void BindGraph(const InferenceGraph* graph) { graph_ = graph; }

  /// Decide-only (false, default) vs live execution (true).
  void set_live(bool live) { live_ = live; }
  bool live() const { return live_; }

  /// The monitor hook: decides which rules fire on this window's
  /// transitions (and executes them when live). Arc-scoped rules fire
  /// once per (rule, arc) pair; global rules once per rule per window.
  /// A rule's cooldown suppresses re-firing for that many subsequent
  /// windows per target.
  std::vector<obs::health::RecoveryLogEntry> OnWindow(
      const obs::TimeSeriesWindow& window,
      const std::vector<obs::DriftEvent>& drift,
      const std::vector<obs::AlertEvent>& alerts);

  /// Adapter for HealthMonitor::set_recovery_hook. The controller must
  /// outlive the monitor's hook.
  obs::health::RecoveryHook Hook();

  int64_t decisions() const { return decisions_; }
  int64_t actions_applied() const { return applied_; }

 private:
  /// Matched-transition tally for one (rule, target) in one window,
  /// echoing the first matching transition's numbers for the event.
  struct Match {
    int64_t count = 0;
    double statistic = 0.0;
    double reference = 0.0;
    double threshold = 0.0;
  };

  bool PassesCooldown(const RecoveryRule& rule, int64_t arc,
                      int64_t window) const;
  void Fire(const RecoveryRule& rule, const obs::TimeSeriesWindow& window,
            int64_t arc, const Match& match,
            std::vector<obs::health::RecoveryLogEntry>* out);
  std::string Execute(const RecoveryRule& rule, int64_t arc);

  RecoveryPolicy policy_;
  bool live_ = false;
  Pib* pib_ = nullptr;
  FaultInjector* injector_ = nullptr;
  CheckpointRing* ring_ = nullptr;
  obs::Observer* observer_ = nullptr;
  const InferenceGraph* graph_ = nullptr;
  /// Last window each (rule id, target arc; -1 = global) fired in.
  std::map<std::pair<std::string, int64_t>, int64_t> last_fired_;
  int64_t decisions_ = 0;
  int64_t applied_ = 0;
  bool warned_no_checkpoint_ = false;
};

}  // namespace stratlearn::robust

#endif  // STRATLEARN_ROBUST_RECOVERY_CONTROLLER_H_
