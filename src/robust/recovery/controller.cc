#include "robust/recovery/controller.h"

#include <cstdio>
#include <utility>

#include "util/string_util.h"

namespace stratlearn::robust {

CheckpointRing::CheckpointRing(std::string base_path, int64_t slots)
    : base_(std::move(base_path)), slots_(slots) {}

std::string CheckpointRing::SlotPath(int64_t slot) const {
  return StrFormat("%s.ring%lld", base_.c_str(), static_cast<long long>(slot));
}

void CheckpointRing::RestoreCursor(int64_t cursor, int64_t writes) {
  if (slots_ <= 0) return;
  if (cursor < 0 || cursor >= slots_ || writes < 0) return;
  cursor_ = cursor;
  writes_ = writes;
}

Status CheckpointRing::Write(const CheckpointData& data) {
  if (slots_ <= 0) {
    return Status::FailedPrecondition("checkpoint ring has no slots");
  }
  Status status = WriteCheckpoint(SlotPath(cursor_), data);
  if (!status.ok()) return status;
  cursor_ = (cursor_ + 1) % slots_;
  ++writes_;
  return Status::OK();
}

Result<CheckpointData> CheckpointRing::LoadNewestGood(
    const InferenceGraph& graph) const {
  Result<CheckpointData> best =
      Status::NotFound("no known-good ring checkpoint");
  int64_t best_queries = -1;
  for (int64_t slot = 0; slot < slots_; ++slot) {
    Result<CheckpointData> data = LoadCheckpoint(SlotPath(slot), graph);
    if (!data.ok()) continue;  // missing or corrupt slot: skip it
    if (!data->health.present || !data->health.healthy) continue;
    if (data->queries_done > best_queries) {
      best_queries = data->queries_done;
      best = std::move(data);
    }
  }
  return best;
}

std::vector<obs::health::RecoveryLogEntry> RecoveryController::OnWindow(
    const obs::TimeSeriesWindow& window,
    const std::vector<obs::DriftEvent>& drift,
    const std::vector<obs::AlertEvent>& alerts) {
  std::vector<obs::health::RecoveryLogEntry> out;
  for (const RecoveryRule& rule : policy_.rules) {
    if (RecoveryActionIsArcScoped(rule.action)) {
      // One firing per drifted arc. std::map keeps arc order (and so
      // the transcript) deterministic. Alert transitions carry no arc
      // and never justify a scoped action (MatchesTrigger agrees).
      std::map<int64_t, Match> per_arc;
      for (const obs::DriftEvent& e : drift) {
        if (!MatchesTrigger(rule, e)) continue;
        Match& m = per_arc[e.arc];
        if (m.count == 0) {
          m.statistic = e.statistic;
          m.reference = e.reference;
          m.threshold = e.threshold;
        }
        ++m.count;
      }
      for (const auto& [arc, match] : per_arc) {
        if (!PassesCooldown(rule, arc, window.index)) continue;
        Fire(rule, window, arc, match, &out);
      }
    } else {
      Match match;
      for (const obs::DriftEvent& e : drift) {
        if (!MatchesTrigger(rule, e)) continue;
        if (match.count == 0) {
          match.statistic = e.statistic;
          match.reference = e.reference;
          match.threshold = e.threshold;
        }
        ++match.count;
      }
      for (const obs::AlertEvent& e : alerts) {
        if (!MatchesTrigger(rule, e)) continue;
        if (match.count == 0) {
          match.statistic = e.value;
          match.threshold = e.threshold;
        }
        ++match.count;
      }
      if (match.count == 0) continue;
      if (!PassesCooldown(rule, -1, window.index)) continue;
      Fire(rule, window, -1, match, &out);
    }
  }
  return out;
}

obs::health::RecoveryHook RecoveryController::Hook() {
  return [this](const obs::TimeSeriesWindow& window,
                const std::vector<obs::DriftEvent>& drift,
                const std::vector<obs::AlertEvent>& alerts) {
    return OnWindow(window, drift, alerts);
  };
}

bool RecoveryController::PassesCooldown(const RecoveryRule& rule, int64_t arc,
                                        int64_t window) const {
  if (rule.cooldown <= 0) return true;
  auto it = last_fired_.find({rule.id, arc});
  return it == last_fired_.end() || window - it->second > rule.cooldown;
}

void RecoveryController::Fire(
    const RecoveryRule& rule, const obs::TimeSeriesWindow& window,
    int64_t arc, const Match& match,
    std::vector<obs::health::RecoveryLogEntry>* out) {
  last_fired_[{rule.id, arc}] = window.index;
  ++decisions_;
  obs::health::RecoveryLogEntry entry;
  entry.window = window.index;
  entry.rule = rule.id;
  entry.trigger = rule.trigger;
  entry.action = rule.action;
  entry.arc = arc;
  entry.matched = match.count;
  out->push_back(entry);
  if (!live_) return;

  std::string outcome = Execute(rule, arc);
  if (outcome == "applied") ++applied_;
  obs::TraceSink* sink = observer_ != nullptr ? observer_->sink() : nullptr;
  if (sink == nullptr) return;
  obs::RecoveryEvent event;
  event.t_us = observer_->NowUs();
  event.rule = rule.id;
  event.trigger = rule.trigger;
  event.action = rule.action;
  event.outcome = outcome;
  event.arc = arc;
  event.window = window.index;
  event.matched = match.count;
  event.statistic = match.statistic;
  event.reference = match.reference;
  event.threshold = match.threshold;
  sink->OnRecovery(event);
  if (observer_->audit_enabled()) {
    // The certificate's test is count-based (the detectors' internal
    // breach statistics are not all recoverable from their events):
    // "at least one matching trigger transition occurred in this
    // window", i.e. delta_sum = matched against threshold 1, so
    // audit_verify re-derives the margin by recounting transitions
    // with the same MatchesTrigger the decision used. No delta is
    // charged: recovery resets evidence, it never certifies a claim
    // about expected cost.
    obs::DecisionCertificateEvent cert;
    cert.t_us = observer_->NowUs();
    cert.learner = "recovery";
    cert.decision = rule.id;
    cert.verdict = rule.action;
    cert.at_context = window.index;
    cert.samples = match.count;
    cert.trials = 1;
    cert.subject = arc;
    cert.mean = match.statistic;
    cert.delta_sum = static_cast<double>(match.count);
    cert.threshold = 1.0;
    cert.margin = static_cast<double>(match.count) - 1.0;
    sink->OnDecisionCertificate(cert);
  }
}

std::string RecoveryController::Execute(const RecoveryRule& rule,
                                        int64_t arc) {
  if (rule.action == "rebaseline") {
    if (pib_ == nullptr) return "skipped_unsupported";
    pib_->Rebaseline(rule.trials_factor);
    return "applied";
  }
  if (rule.action == "restart_scoped") {
    if (pib_ == nullptr || arc < 0) return "skipped_unsupported";
    pib_->RestartScoped(static_cast<ArcId>(arc));
    return "applied";
  }
  if (rule.action == "quarantine") {
    if (injector_ == nullptr || arc < 0) return "skipped_unsupported";
    int64_t cooldown = rule.probe_cooldown > 0
                           ? rule.probe_cooldown
                           : injector_->resilience().breaker_cooldown;
    int64_t query = injector_->queries_begun();
    FaultInjectorState::BreakerEntry ledger =
        injector_->Quarantine(static_cast<ArcId>(arc), query, cooldown);
    if (observer_ != nullptr && observer_->sink() != nullptr) {
      int experiment =
          graph_ != nullptr &&
                  static_cast<size_t>(arc) < graph_->num_arcs()
              ? graph_->arc(static_cast<ArcId>(arc)).experiment
              : -1;
      observer_->sink()->OnBreaker({observer_->NowUs(), query,
                                    static_cast<uint32_t>(arc), experiment,
                                    "open", ledger.consecutive_failures,
                                    ledger.open_until});
    }
    return "applied";
  }
  if (rule.action == "rollback") {
    if (ring_ == nullptr || pib_ == nullptr || graph_ == nullptr) {
      return "skipped_unsupported";
    }
    Result<CheckpointData> good = ring_->LoadNewestGood(*graph_);
    if (!good.ok()) {
      if (!warned_no_checkpoint_) {
        warned_no_checkpoint_ = true;
        std::fprintf(stderr,
                     "warning: recovery rollback found no known-good ring "
                     "checkpoint; continuing without restoring\n");
      }
      return "skipped_no_checkpoint";
    }
    // Only the learner's estimate state rewinds — the workload position
    // and RNG march on (the world cannot be rolled back), and the audit
    // ledger keeps its current spend: confidence already consumed by
    // discarded decisions stays consumed, so Theorem 1's lifetime
    // budget remains an over-count, never an under-count.
    Pib::Checkpoint target = good->pib;
    Pib::Checkpoint current = pib_->GetCheckpoint();
    target.audit_delta_spent = current.audit_delta_spent;
    target.audit_rounds = current.audit_rounds;
    Status restored = pib_->RestoreCheckpoint(target);
    if (!restored.ok()) {
      if (!warned_no_checkpoint_) {
        warned_no_checkpoint_ = true;
        std::fprintf(stderr,
                     "warning: recovery rollback could not restore the ring "
                     "checkpoint (%s); continuing without restoring\n",
                     restored.message().c_str());
      }
      return "skipped_no_checkpoint";
    }
    return "applied";
  }
  return "skipped_unsupported";
}

}  // namespace stratlearn::robust
