#ifndef STRATLEARN_ROBUST_RECOVERY_POLICY_H_
#define STRATLEARN_ROBUST_RECOVERY_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.h"

namespace stratlearn::robust {

/// One trigger -> action mapping from a "stratlearn-recovery v1" policy
/// file. Triggers name health-monitor transitions:
///   drift:p_hat | drift:mean_cost | drift:rate | drift:any
///       a drift detector entered "detected" in the closed window
///   alert:<rule-id> | alert:any
///       an alert rule entered "firing" in the closed window
/// Actions are graduated: "rebaseline" (re-open the sequential test),
/// "rollback" (restore the last known-good ring checkpoint),
/// "restart_scoped" (cold-restart only the drifted subtree's
/// statistics), "quarantine" (force the arc's circuit breaker open on a
/// half-open probe schedule).
struct RecoveryRule {
  std::string id;
  std::string trigger;
  std::string action;
  /// Windows to suppress re-firing of this rule (per target arc for
  /// arc-scoped actions) after it fires. 0 = may fire every window.
  int64_t cooldown = 0;
  /// Rebaseline: the sequential trial counter is rewound to
  /// max(1, floor(trials * trials_factor)), widening the delta_i rung
  /// (and so epsilon(n, delta_i)) back toward an earlier test.
  double trials_factor = 1.0;
  /// Quarantine: breaker cooldown (resilient-query units) before the
  /// half-open probe; 0 = the fault plan's configured cooldown.
  int64_t probe_cooldown = 0;
};

/// A parsed recovery policy. `ring` is the number of retained
/// known-good checkpoint slots backing the "rollback" action (0 = no
/// ring; rollback then always reports skipped_no_checkpoint).
struct RecoveryPolicy {
  int64_t ring = 0;
  std::vector<RecoveryRule> rules;
};

/// Actions that target one arc (and therefore only fire on arc-bearing
/// drift transitions): restart_scoped and quarantine.
inline bool RecoveryActionIsArcScoped(const std::string& action) {
  return action == "restart_scoped" || action == "quarantine";
}

inline bool IsKnownRecoveryAction(const std::string& action) {
  return action == "rebaseline" || action == "rollback" ||
         RecoveryActionIsArcScoped(action);
}

/// Trigger matching is deliberately header-inline: the live controller,
/// the decide-only resume/offline replays and tools/audit_verify's
/// certificate re-derivation must all count the *same* transitions.
inline bool MatchesTrigger(const RecoveryRule& rule,
                           const obs::DriftEvent& e) {
  if (e.state != "detected") return false;
  if (rule.trigger != "drift:any" && rule.trigger != "drift:" + e.detector) {
    return false;
  }
  // Arc-scoped actions need a target arc; counter-rate detections
  // (arc == -1) cannot supply one.
  return !RecoveryActionIsArcScoped(rule.action) || e.arc >= 0;
}

inline bool MatchesTrigger(const RecoveryRule& rule,
                           const obs::AlertEvent& e) {
  if (e.state != "firing") return false;
  if (rule.trigger != "alert:any" && rule.trigger != "alert:" + e.rule) {
    return false;
  }
  // Alert transitions carry no arc, so they can never justify an
  // arc-scoped action.
  return !RecoveryActionIsArcScoped(rule.action);
}

}  // namespace stratlearn::robust

#endif  // STRATLEARN_ROBUST_RECOVERY_POLICY_H_
