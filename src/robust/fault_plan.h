#ifndef STRATLEARN_ROBUST_FAULT_PLAN_H_
#define STRATLEARN_ROBUST_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace stratlearn::robust {

/// The ways one physical retrieval attempt can misbehave. The paper's
/// model assumes every attempt of an experiment arc returns the true
/// blocked/unblocked outcome at the arc's fixed cost; a production
/// backend (ROADMAP north star) violates each of those assumptions in a
/// distinct way, so the harness injects each one separately.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The retrieval fails outright; nothing is learned about the
  /// experiment's true outcome. Retryable.
  kTransient,
  /// Like kTransient, but the attempt also costs `magnitude` times the
  /// arc's base cost before failing (a hung backend hitting a deadline).
  kTimeout,
  /// The attempt *appears* to complete but its result cannot be trusted
  /// (checksum/validation failure on the result set). Treated like a
  /// failed attempt — an untrusted sample must not feed the learners.
  kCorrupt,
  /// The retrieval completes correctly but costs `magnitude` times the
  /// arc's base cost (an overloaded backend). Never retried: the answer
  /// is valid, only expensive.
  kCostSpike,
};

/// "transient" | "timeout" | "corrupt" | "cost_spike" | "none".
const char* FaultKindName(FaultKind kind);

/// One seeded fault rule: with `probability`, a physical attempt of
/// `experiment` (or of every experiment when -1) suffers `kind`.
struct FaultRule {
  FaultKind kind = FaultKind::kNone;
  double probability = 0.0;
  int experiment = -1;
  /// Cost multiplier for kTimeout / kCostSpike (>= 1).
  double magnitude = 1.0;
};

/// Knobs of the resilient execution policy (all per FaultInjector, so a
/// fault plan file carries both what goes wrong and how the executor is
/// allowed to respond).
struct ResilienceOptions {
  /// Failed physical attempts are retried up to this many times.
  int max_retries = 3;
  /// Retry k (1-based) charges min(base * multiplier^(k-1), cap) extra
  /// cost to the query — capped exponential backoff, in cost units.
  double backoff_base = 0.25;
  double backoff_multiplier = 2.0;
  double backoff_cap = 2.0;
  /// Per-query cost budget; when the accrued cost reaches it, the query
  /// degrades to "unresolved" instead of running on. 0 disables.
  double cost_budget = 0.0;
  /// A retrieval arc whose retries are exhausted this many times in a
  /// row has its circuit breaker opened: the arc is skipped (pessimistic
  /// cost charged) for `breaker_cooldown` resilient queries, then given
  /// one half-open probe attempt. 0 disables the breaker.
  int breaker_threshold = 0;
  int64_t breaker_cooldown = 32;
  /// A failed half-open probe re-opens the breaker with its cooldown
  /// doubled each round, capped here. 0 means 8x `breaker_cooldown`.
  int64_t breaker_cooldown_cap = 0;
};

/// A deterministic, seeded fault-injection plan: the rules plus the
/// resilience policy, loadable from a "stratlearn-faultplan v1" file.
///
/// File format (one directive per line, '#' comments):
///   stratlearn-faultplan v1
///   seed 42
///   retries 3
///   backoff 0.25 2.0 2.0        # base multiplier cap
///   budget 0                    # per-query cost budget; 0 = unlimited
///   breaker 8 32 256            # threshold cooldown [cooldown-cap];
///                               # threshold 0 = off, cap 0 = 8x cooldown
///   fault transient 0.05 -1     # kind probability experiment [magnitude]
///   fault timeout 0.01 2 4.0
struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;
  ResilienceOptions resilience;

  static Result<FaultPlan> Parse(std::string_view text);
  static Result<FaultPlan> Load(const std::string& path);
  std::string Serialize() const;

  /// True when no rule can ever fire — the resilient executor then
  /// produces bit-identical traces to the plain one.
  bool ZeroFault() const;
};

}  // namespace stratlearn::robust

#endif  // STRATLEARN_ROBUST_FAULT_PLAN_H_
