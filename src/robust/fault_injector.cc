#include "robust/fault_injector.h"

#include <utility>

namespace stratlearn::robust {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

FaultKind FaultInjector::SampleFault(int experiment, double* magnitude) {
  *magnitude = 1.0;
  // Rules are tried in plan order; the first that fires wins. Each
  // applicable rule consumes exactly one Bernoulli draw until one fires,
  // so the fault stream is a pure function of the injector's RNG state —
  // which is what the checkpoint saves.
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.probability <= 0.0 || rule.kind == FaultKind::kNone) continue;
    if (rule.experiment >= 0 && rule.experiment != experiment) continue;
    if (rng_.NextBernoulli(rule.probability)) {
      *magnitude = rule.magnitude;
      return rule.kind;
    }
  }
  return FaultKind::kNone;
}

bool FaultInjector::BreakerOpen(ArcId arc, int64_t query) const {
  if (plan_.resilience.breaker_threshold <= 0) return false;
  auto it = breakers_.find(arc);
  if (it == breakers_.end()) return false;
  return it->second.consecutive_failures >=
             plan_.resilience.breaker_threshold &&
         query < it->second.open_until;
}

bool FaultInjector::RecordInfraFailure(ArcId arc, int64_t query) {
  if (plan_.resilience.breaker_threshold <= 0) return false;
  Breaker& breaker = breakers_[arc];
  bool was_open = breaker.consecutive_failures >=
                      plan_.resilience.breaker_threshold &&
                  query < breaker.open_until;
  ++breaker.consecutive_failures;
  if (breaker.consecutive_failures < plan_.resilience.breaker_threshold) {
    return false;
  }
  // Open (or re-open after a failed half-open trial): skip this arc for
  // the next `cooldown` resilient queries, then allow one trial attempt.
  breaker.open_until = query + plan_.resilience.breaker_cooldown + 1;
  return !was_open;
}

bool FaultInjector::RecordRecovery(ArcId arc) {
  if (plan_.resilience.breaker_threshold <= 0) return false;
  auto it = breakers_.find(arc);
  if (it == breakers_.end()) return false;
  bool was_open = it->second.consecutive_failures >=
                  plan_.resilience.breaker_threshold;
  breakers_.erase(it);
  return was_open;
}

FaultInjectorState::BreakerEntry FaultInjector::BreakerLedger(
    ArcId arc) const {
  FaultInjectorState::BreakerEntry entry;
  entry.arc = arc;
  auto it = breakers_.find(arc);
  if (it != breakers_.end()) {
    entry.consecutive_failures = it->second.consecutive_failures;
    entry.open_until = it->second.open_until;
  }
  return entry;
}

FaultInjectorState FaultInjector::SaveState() const {
  FaultInjectorState state;
  state.rng_state = rng_.SaveState();
  state.query_count = query_count_;
  state.breakers.reserve(breakers_.size());
  for (const auto& [arc, breaker] : breakers_) {
    state.breakers.push_back(
        {arc, breaker.consecutive_failures, breaker.open_until});
  }
  return state;
}

Status FaultInjector::RestoreState(const FaultInjectorState& state) {
  if (state.query_count < 0) {
    return Status::InvalidArgument("negative resilient-query counter");
  }
  rng_.RestoreState(state.rng_state);
  query_count_ = state.query_count;
  breakers_.clear();
  for (const FaultInjectorState::BreakerEntry& entry : state.breakers) {
    if (entry.arc == kInvalidArc || entry.consecutive_failures < 0) {
      return Status::InvalidArgument("malformed breaker ledger entry");
    }
    breakers_[entry.arc] = {entry.consecutive_failures, entry.open_until};
  }
  return Status::OK();
}

}  // namespace stratlearn::robust
