#include "robust/fault_injector.h"

#include <utility>

namespace stratlearn::robust {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

FaultKind FaultInjector::SampleFault(int experiment, double* magnitude) {
  *magnitude = 1.0;
  // Rules are tried in plan order; the first that fires wins. Each
  // applicable rule consumes exactly one Bernoulli draw until one fires,
  // so the fault stream is a pure function of the injector's RNG state —
  // which is what the checkpoint saves.
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.probability <= 0.0 || rule.kind == FaultKind::kNone) continue;
    if (rule.experiment >= 0 && rule.experiment != experiment) continue;
    if (rng_.NextBernoulli(rule.probability)) {
      *magnitude = rule.magnitude;
      return rule.kind;
    }
  }
  return FaultKind::kNone;
}

int64_t FaultInjector::BackoffCooldown(int open_rounds) const {
  int64_t cooldown = plan_.resilience.breaker_cooldown;
  int64_t cap = plan_.resilience.breaker_cooldown_cap > 0
                    ? plan_.resilience.breaker_cooldown_cap
                    : cooldown * 8;
  for (int i = 0; i < open_rounds; ++i) {
    if (cooldown >= cap) return cap;
    cooldown *= 2;
  }
  return cooldown < cap ? cooldown : cap;
}

BreakerDecision FaultInjector::CheckBreaker(ArcId arc, int64_t query) {
  auto it = breakers_.find(arc);
  if (it == breakers_.end() || !Armed(it->second)) {
    return BreakerDecision::kClosed;
  }
  Breaker& breaker = it->second;
  if (query < breaker.open_until) return BreakerDecision::kOpen;
  // Cooldown elapsed: half-open. Exactly one probe is admitted; it
  // resolves through RecordRecovery / RecordInfraFailure on this same
  // attempt, so an unresolved flag can only mean a concurrent attempt
  // raced the probe — keep that one skipped.
  if (breaker.probe_inflight) return BreakerDecision::kOpen;
  breaker.probe_inflight = true;
  return BreakerDecision::kHalfOpenProbe;
}

bool FaultInjector::BreakerOpen(ArcId arc, int64_t query) const {
  auto it = breakers_.find(arc);
  if (it == breakers_.end() || !Armed(it->second)) return false;
  return query < it->second.open_until || it->second.probe_inflight;
}

bool FaultInjector::RecordInfraFailure(ArcId arc, int64_t query) {
  auto existing = breakers_.find(arc);
  if (existing != breakers_.end() && existing->second.probe_inflight) {
    // A failed half-open probe: re-open with capped exponential backoff
    // instead of the base cooldown, so a persistently failing backend
    // is probed less and less often.
    Breaker& breaker = existing->second;
    breaker.probe_inflight = false;
    ++breaker.open_rounds;
    ++breaker.consecutive_failures;
    breaker.open_until = query + BackoffCooldown(breaker.open_rounds) + 1;
    return true;
  }
  if (plan_.resilience.breaker_threshold <= 0) return false;
  Breaker& breaker = breakers_[arc];
  bool was_open = Armed(breaker) && query < breaker.open_until;
  ++breaker.consecutive_failures;
  if (breaker.consecutive_failures < plan_.resilience.breaker_threshold) {
    return false;
  }
  // Open: skip this arc for the next `cooldown` resilient queries, then
  // admit one half-open probe attempt.
  breaker.open_until = query + plan_.resilience.breaker_cooldown + 1;
  breaker.open_rounds = 0;
  return !was_open;
}

bool FaultInjector::RecordRecovery(ArcId arc) {
  auto it = breakers_.find(arc);
  if (it == breakers_.end()) return false;
  bool was_open = Armed(it->second);
  breakers_.erase(it);
  return was_open;
}

FaultInjectorState::BreakerEntry FaultInjector::Quarantine(
    ArcId arc, int64_t query, int64_t cooldown) {
  Breaker& breaker = breakers_[arc];
  breaker.forced = true;
  breaker.probe_inflight = false;
  breaker.open_rounds = 0;
  breaker.open_until = query + cooldown + 1;
  return BreakerLedger(arc);
}

FaultInjectorState::BreakerEntry FaultInjector::BreakerLedger(
    ArcId arc) const {
  FaultInjectorState::BreakerEntry entry;
  entry.arc = arc;
  auto it = breakers_.find(arc);
  if (it != breakers_.end()) {
    entry.consecutive_failures = it->second.consecutive_failures;
    entry.open_until = it->second.open_until;
    entry.open_rounds = it->second.open_rounds;
    entry.forced = it->second.forced;
  }
  return entry;
}

FaultInjectorState FaultInjector::SaveState() const {
  FaultInjectorState state;
  state.rng_state = rng_.SaveState();
  state.query_count = query_count_;
  state.breakers.reserve(breakers_.size());
  for (const auto& [arc, breaker] : breakers_) {
    // probe_inflight is intentionally not persisted: a probe resolves
    // within the attempt that issued it, and checkpoints are only
    // written at query boundaries.
    state.breakers.push_back({arc, breaker.consecutive_failures,
                              breaker.open_until, breaker.open_rounds,
                              breaker.forced});
  }
  return state;
}

Status FaultInjector::RestoreState(const FaultInjectorState& state) {
  if (state.query_count < 0) {
    return Status::InvalidArgument("negative resilient-query counter");
  }
  rng_.RestoreState(state.rng_state);
  query_count_ = state.query_count;
  breakers_.clear();
  for (const FaultInjectorState::BreakerEntry& entry : state.breakers) {
    if (entry.arc == kInvalidArc || entry.consecutive_failures < 0 ||
        entry.open_rounds < 0) {
      return Status::InvalidArgument("malformed breaker ledger entry");
    }
    breakers_[entry.arc] = {entry.consecutive_failures, entry.open_until,
                            entry.open_rounds, false, entry.forced};
  }
  return Status::OK();
}

}  // namespace stratlearn::robust
