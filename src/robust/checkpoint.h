#ifndef STRATLEARN_ROBUST_CHECKPOINT_H_
#define STRATLEARN_ROBUST_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/palo.h"
#include "core/pib.h"
#include "engine/adaptive_qp.h"
#include "graph/inference_graph.h"
#include "obs/audit/audit_log.h"
#include "robust/fault_injector.h"
#include "util/status.h"

namespace stratlearn::robust {

/// Everything a learning run needs to resume exactly where it stopped:
/// which learner, the workload position (query count + RNG state), the
/// fault injector's state when faults were active, and the learner's own
/// estimate state. One of pib/palo/qpa is meaningful, per `learner`.
struct CheckpointData {
  /// "pib", "palo" or "pao".
  std::string learner;
  /// The run's workload seed (sanity-checked against --seed on resume).
  uint64_t seed = 0;
  /// Contexts already consumed from the workload stream.
  int64_t queries_done = 0;
  /// Workload RNG state *after* those contexts, so the resumed run draws
  /// the exact continuation of the stream.
  std::array<uint64_t, 4> rng_state{};

  bool has_injector = false;
  FaultInjectorState injector;

  Pib::Checkpoint pib;
  Palo::Checkpoint palo;
  AdaptiveQueryProcessor::Checkpoint qpa;

  /// Health-monitor verdict at checkpoint time. Ring-checkpoint slots
  /// (recovery rollback) are only eligible as rollback targets when
  /// stamped healthy, so "known-good" is decided when the checkpoint is
  /// written, not re-guessed when drift already corrupted the state.
  struct HealthStamp {
    bool present = false;
    bool healthy = true;
    int64_t windows_seen = 0;
    int64_t drift_active = 0;
    int64_t firing = 0;
  };
  HealthStamp health;

  /// Recovery checkpoint-ring bookkeeping (next slot to overwrite and
  /// total writes), so a resumed run keeps rotating the same ring.
  int64_t ring_cursor = 0;
  int64_t ring_writes = 0;

  /// Time-series collector cursor plus the retained windows as the raw
  /// JSON lines SerializeJsonl would emit. A resumed run replays these
  /// through its health monitor to rebuild detector/alert/recovery
  /// state, which is what makes the post-resume health report
  /// byte-identical to an uninterrupted run's.
  bool has_timeseries = false;
  int64_t ts_window_start = 0;
  int64_t ts_next_index = 0;
  int64_t ts_evicted = 0;
  std::vector<std::string> ts_windows;

  /// Audit-stream cursor (byte offset + writer counters), so a resumed
  /// --audit-out run truncates the killed process's trailing summary
  /// and continues the stream seamlessly.
  bool has_audit = false;
  obs::AuditLog::Cursor audit;
};

/// First line of every checkpoint payload (inside the CRC container).
inline constexpr std::string_view kCheckpointHeader =
    "stratlearn-checkpoint v1";

/// Renders the payload text (no checksum container).
std::string SerializeCheckpoint(const CheckpointData& data);

/// Parses a payload, validating structure and — where the graph gives us
/// ground truth — semantics (strategy arcs, swap node/arc ids). Numeric
/// consistency of the learner state is re-checked by the learner's own
/// RestoreCheckpoint.
Result<CheckpointData> ParseCheckpoint(const InferenceGraph& graph,
                                       std::string_view text);

/// Atomically writes `data` to `path` inside the CRC-32 container
/// (util/file_util): a crash mid-write leaves the previous checkpoint
/// intact, and any later corruption is caught by the checksum.
Status WriteCheckpoint(const std::string& path, const CheckpointData& data);

/// Reads and verifies the container, then parses the payload.
Result<CheckpointData> LoadCheckpoint(const std::string& path,
                                      const InferenceGraph& graph);

}  // namespace stratlearn::robust

#endif  // STRATLEARN_ROBUST_CHECKPOINT_H_
