#ifndef STRATLEARN_ROBUST_FAULT_INJECTOR_H_
#define STRATLEARN_ROBUST_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "graph/inference_graph.h"
#include "robust/fault_plan.h"
#include "util/rng.h"
#include "util/status.h"

namespace stratlearn::robust {

/// Checkpointable state of a FaultInjector: the fault stream's RNG, the
/// resilient-query counter and every arc's circuit-breaker ledger. Saved
/// into learner checkpoints so a resumed run replays the exact same
/// fault sequence (kill-and-resume equivalence).
struct FaultInjectorState {
  std::array<uint64_t, 4> rng_state{};
  int64_t query_count = 0;
  struct BreakerEntry {
    ArcId arc = kInvalidArc;
    int consecutive_failures = 0;
    int64_t open_until = 0;  // first resilient-query index allowed a trial
  };
  std::vector<BreakerEntry> breakers;  // sorted by arc
};

/// Deterministic fault source plus resilient-execution bookkeeping,
/// threaded into QueryProcessor behind a nullable pointer (mirroring the
/// Observer* pattern: a null injector costs one predicted branch and the
/// hot loop is untouched).
///
/// The injector owns its own RNG (seeded from the plan), so the fault
/// stream is independent of the workload stream: the same contexts are
/// drawn with and without faults, which is what lets tests compare
/// faulted runs against clean ones.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const ResilienceOptions& resilience() const { return plan_.resilience; }

  /// Starts one resilient query; returns its 0-based ordinal (the clock
  /// the circuit breakers run on).
  int64_t BeginQuery() { return query_count_++; }

  /// Samples the fault outcome of one physical attempt of `experiment`.
  /// First matching rule (in plan order) that fires wins; `*magnitude`
  /// receives its cost multiplier. Consumes no randomness when no rule
  /// with positive probability targets the experiment — a zero-fault
  /// plan therefore leaves every stream untouched.
  FaultKind SampleFault(int experiment, double* magnitude);

  /// True when `arc`'s breaker is open at resilient query `query`: the
  /// executor must skip the retrieval and charge its pessimistic cost.
  bool BreakerOpen(ArcId arc, int64_t query) const;

  /// Records an exhausted-retries failure of `arc` at resilient query
  /// `query`. Returns true when this transition *opened* the breaker
  /// (caller emits the "open" trace event).
  bool RecordInfraFailure(ArcId arc, int64_t query);

  /// Records a fault-free physical attempt of `arc`. Returns true when
  /// this *closed* a previously opened breaker ("closed" trace event).
  bool RecordRecovery(ArcId arc);

  /// Breaker ledger of `arc` (consecutive failures, open-until), for
  /// events and tests.
  FaultInjectorState::BreakerEntry BreakerLedger(ArcId arc) const;

  FaultInjectorState SaveState() const;
  Status RestoreState(const FaultInjectorState& state);

 private:
  struct Breaker {
    int consecutive_failures = 0;
    int64_t open_until = 0;
  };

  FaultPlan plan_;
  Rng rng_;
  int64_t query_count_ = 0;
  /// std::map keeps the serialization order deterministic.
  std::map<ArcId, Breaker> breakers_;
};

}  // namespace stratlearn::robust

#endif  // STRATLEARN_ROBUST_FAULT_INJECTOR_H_
