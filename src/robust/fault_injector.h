#ifndef STRATLEARN_ROBUST_FAULT_INJECTOR_H_
#define STRATLEARN_ROBUST_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "graph/inference_graph.h"
#include "robust/fault_plan.h"
#include "util/rng.h"
#include "util/status.h"

namespace stratlearn::robust {

/// Checkpointable state of a FaultInjector: the fault stream's RNG, the
/// resilient-query counter and every arc's circuit-breaker ledger. Saved
/// into learner checkpoints so a resumed run replays the exact same
/// fault sequence (kill-and-resume equivalence).
struct FaultInjectorState {
  std::array<uint64_t, 4> rng_state{};
  int64_t query_count = 0;
  struct BreakerEntry {
    ArcId arc = kInvalidArc;
    int consecutive_failures = 0;
    int64_t open_until = 0;  // first resilient-query index allowed a probe
    int open_rounds = 0;     // failed half-open probes (backoff exponent)
    bool forced = false;     // opened by quarantine, not by failures
  };
  std::vector<BreakerEntry> breakers;  // sorted by arc
};

/// What the executor should do with an arc under its circuit breaker.
enum class BreakerDecision {
  kClosed,         // attempt normally
  kOpen,           // skip, charge the pessimistic cost
  kHalfOpenProbe,  // cooldown elapsed: this attempt is the single probe
};

/// Deterministic fault source plus resilient-execution bookkeeping,
/// threaded into QueryProcessor behind a nullable pointer (mirroring the
/// Observer* pattern: a null injector costs one predicted branch and the
/// hot loop is untouched).
///
/// The injector owns its own RNG (seeded from the plan), so the fault
/// stream is independent of the workload stream: the same contexts are
/// drawn with and without faults, which is what lets tests compare
/// faulted runs against clean ones.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const ResilienceOptions& resilience() const { return plan_.resilience; }

  /// Starts one resilient query; returns its 0-based ordinal (the clock
  /// the circuit breakers run on).
  int64_t BeginQuery() { return query_count_++; }

  /// Resilient queries begun so far — the breaker clock's current
  /// reading, which quarantine cooldowns are measured from.
  int64_t queries_begun() const { return query_count_; }

  /// Samples the fault outcome of one physical attempt of `experiment`.
  /// First matching rule (in plan order) that fires wins; `*magnitude`
  /// receives its cost multiplier. Consumes no randomness when no rule
  /// with positive probability targets the experiment — a zero-fault
  /// plan therefore leaves every stream untouched.
  FaultKind SampleFault(int experiment, double* magnitude);

  /// Breaker state machine step for one attempt of `arc` at resilient
  /// query `query`. Open breakers skip the retrieval (pessimistic cost
  /// charged). Once `open_until` passes the breaker turns half-open and
  /// admits exactly one probe attempt: this call returns
  /// kHalfOpenProbe and later attempts return kOpen until the probe
  /// resolves through RecordRecovery (closes) or RecordInfraFailure
  /// (re-opens with capped exponential backoff).
  BreakerDecision CheckBreaker(ArcId arc, int64_t query);

  /// Convenience for tests: CheckBreaker != kClosed would admit a probe,
  /// so this reports only the hard-open state without consuming it.
  bool BreakerOpen(ArcId arc, int64_t query) const;

  /// Records an exhausted-retries failure of `arc` at resilient query
  /// `query`. Returns true when this transition *opened* (or re-opened
  /// after a failed probe) the breaker (caller emits the "open" trace
  /// event). A failed half-open probe doubles the cooldown each round,
  /// capped at ResilienceOptions::breaker_cooldown_cap.
  bool RecordInfraFailure(ArcId arc, int64_t query);

  /// Records a fault-free physical attempt of `arc`. Returns true when
  /// this *closed* a previously opened breaker ("closed" trace event).
  bool RecordRecovery(ArcId arc);

  /// Recovery-controller action: force `arc`'s breaker open for
  /// `cooldown` resilient queries (then the normal half-open probe
  /// schedule applies), regardless of its failure count or whether the
  /// plan configured a breaker threshold. Returns the resulting ledger
  /// entry for the caller's "open" trace event.
  FaultInjectorState::BreakerEntry Quarantine(ArcId arc, int64_t query,
                                              int64_t cooldown);

  /// Breaker ledger of `arc` (consecutive failures, open-until), for
  /// events and tests.
  FaultInjectorState::BreakerEntry BreakerLedger(ArcId arc) const;

  FaultInjectorState SaveState() const;
  Status RestoreState(const FaultInjectorState& state);

 private:
  struct Breaker {
    int consecutive_failures = 0;
    int64_t open_until = 0;
    int open_rounds = 0;
    bool probe_inflight = false;
    bool forced = false;
  };

  /// Whether the entry is in the open/half-open regime at all.
  bool Armed(const Breaker& breaker) const {
    return breaker.forced ||
           (plan_.resilience.breaker_threshold > 0 &&
            breaker.consecutive_failures >=
                plan_.resilience.breaker_threshold);
  }

  int64_t BackoffCooldown(int open_rounds) const;

  FaultPlan plan_;
  Rng rng_;
  int64_t query_count_ = 0;
  /// std::map keeps the serialization order deterministic.
  std::map<ArcId, Breaker> breakers_;
};

}  // namespace stratlearn::robust

#endif  // STRATLEARN_ROBUST_FAULT_INJECTOR_H_
