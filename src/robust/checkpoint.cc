#include "robust/checkpoint.h"

#include <cerrno>
#include <cstdlib>

#include "util/file_util.h"
#include "util/string_util.h"

namespace stratlearn::robust {

namespace {

// Checkpoints may be fed arbitrary bytes (bit-flips, truncation that
// happens to keep the CRC — or hand-edited files), so every token is
// parsed with an explicit end-of-token check instead of atoll-style
// best effort.
bool ParseI64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

bool ParseF64(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

Status Corrupt(int line_number, const char* what) {
  return Status::FailedPrecondition(
      StrFormat("checkpoint line %d: %s", line_number, what));
}

std::vector<std::string> Fields(std::string_view line) {
  std::vector<std::string> fields;
  for (const std::string& f : Split(line, ' ')) {
    if (!Trim(f).empty()) fields.emplace_back(Trim(f));
  }
  return fields;
}

void AppendRng(const char* key, const std::array<uint64_t, 4>& state,
               std::string* out) {
  *out += StrFormat("%s %llu %llu %llu %llu\n", key,
                    static_cast<unsigned long long>(state[0]),
                    static_cast<unsigned long long>(state[1]),
                    static_cast<unsigned long long>(state[2]),
                    static_cast<unsigned long long>(state[3]));
}

void AppendDoubles(const char* key, const std::vector<double>& values,
                   std::string* out) {
  *out += key;
  for (double v : values) {
    *out += ' ';
    *out += FormatDouble(v, 17);
  }
  *out += '\n';
}

bool ParseRngLine(const std::vector<std::string>& fields,
                  std::array<uint64_t, 4>* state) {
  if (fields.size() != 5) return false;
  for (int k = 0; k < 4; ++k) {
    if (!ParseU64(fields[k + 1], &(*state)[k])) return false;
  }
  return true;
}

}  // namespace

std::string SerializeCheckpoint(const CheckpointData& data) {
  std::string out(kCheckpointHeader);
  out += '\n';
  out += StrFormat("learner %s\n", data.learner.c_str());
  out += StrFormat("seed %llu\n", static_cast<unsigned long long>(data.seed));
  out += StrFormat("queries_done %lld\n",
                   static_cast<long long>(data.queries_done));
  AppendRng("rng", data.rng_state, &out);
  if (data.has_injector) {
    AppendRng("injector_rng", data.injector.rng_state, &out);
    out += StrFormat("injector_queries %lld\n",
                     static_cast<long long>(data.injector.query_count));
    for (const FaultInjectorState::BreakerEntry& b : data.injector.breakers) {
      out += StrFormat("breaker %u %d %lld %d %d\n", b.arc,
                       b.consecutive_failures,
                       static_cast<long long>(b.open_until), b.open_rounds,
                       b.forced ? 1 : 0);
    }
  }
  if (data.learner == "pib") {
    out += data.pib.strategy.Serialize();
    out += '\n';
    out += StrFormat("pib.contexts %lld\npib.trials %lld\npib.samples %lld\n",
                     static_cast<long long>(data.pib.contexts),
                     static_cast<long long>(data.pib.trials),
                     static_cast<long long>(data.pib.samples));
    AppendDoubles("pib.deltas", data.pib.neighbor_delta_sums, &out);
    out += StrFormat("pib.audit %s %lld\n",
                     FormatDouble(data.pib.audit_delta_spent, 17).c_str(),
                     static_cast<long long>(data.pib.audit_rounds));
    for (const Pib::Move& m : data.pib.moves) {
      out += StrFormat("pib.move %lld %lld %u %u %u %s %s %s\n",
                       static_cast<long long>(m.at_context),
                       static_cast<long long>(m.samples_used), m.swap.parent,
                       m.swap.arc_a, m.swap.arc_b,
                       FormatDouble(m.delta_sum, 17).c_str(),
                       FormatDouble(m.threshold, 17).c_str(),
                       FormatDouble(m.delta_spent, 17).c_str());
    }
  } else if (data.learner == "palo") {
    out += data.palo.strategy.Serialize();
    out += '\n';
    out += StrFormat(
        "palo.contexts %lld\npalo.trials %lld\npalo.samples %lld\n"
        "palo.moves %lld\npalo.finished %d\n",
        static_cast<long long>(data.palo.contexts),
        static_cast<long long>(data.palo.trials),
        static_cast<long long>(data.palo.samples),
        static_cast<long long>(data.palo.moves),
        data.palo.finished ? 1 : 0);
    AppendDoubles("palo.unders", data.palo.neighbor_under_sums, &out);
    AppendDoubles("palo.overs", data.palo.neighbor_over_sums, &out);
  } else if (data.learner == "pao") {
    out += StrFormat("pao.contexts %lld\n",
                     static_cast<long long>(data.qpa.contexts));
    out += "pao.remaining";
    for (int64_t r : data.qpa.remaining) {
      out += StrFormat(" %lld", static_cast<long long>(r));
    }
    out += '\n';
    for (const AdaptiveQueryProcessor::Checkpoint::Counter& c :
         data.qpa.counters) {
      out += StrFormat("pao.counter %lld %lld %lld\n",
                       static_cast<long long>(c.attempts),
                       static_cast<long long>(c.successes),
                       static_cast<long long>(c.blocked_aims));
    }
  }
  if (data.health.present) {
    out += StrFormat("health %d %lld %lld %lld\n", data.health.healthy ? 1 : 0,
                     static_cast<long long>(data.health.windows_seen),
                     static_cast<long long>(data.health.drift_active),
                     static_cast<long long>(data.health.firing));
  }
  if (data.ring_cursor > 0 || data.ring_writes > 0) {
    out += StrFormat("recovery.ring %lld %lld\n",
                     static_cast<long long>(data.ring_cursor),
                     static_cast<long long>(data.ring_writes));
  }
  if (data.has_timeseries) {
    out += StrFormat("ts.cursor %lld %lld %lld\n",
                     static_cast<long long>(data.ts_window_start),
                     static_cast<long long>(data.ts_next_index),
                     static_cast<long long>(data.ts_evicted));
    for (const std::string& line : data.ts_windows) {
      out += "ts ";
      out += line;
      out += '\n';
    }
  }
  if (data.has_audit) {
    out += StrFormat(
        "audit.cursor %lld %lld %lld %lld %lld %lld %lld %lld %lld %s %s\n",
        static_cast<long long>(data.audit.bytes),
        static_cast<long long>(data.audit.certificates),
        static_cast<long long>(data.audit.commits),
        static_cast<long long>(data.audit.rejects),
        static_cast<long long>(data.audit.stops),
        static_cast<long long>(data.audit.quotas_met),
        static_cast<long long>(data.audit.queries),
        static_cast<long long>(data.audit.window_queries),
        static_cast<long long>(data.audit.windows_written),
        FormatDouble(data.audit.window_cost, 17).c_str(),
        FormatDouble(data.audit.total_cost, 17).c_str());
    for (const obs::AuditLog::Cursor::EpochArc& a : data.audit.epoch) {
      out += StrFormat("audit.epoch %lld %lld %lld %lld %s\n",
                       static_cast<long long>(a.arc),
                       static_cast<long long>(a.experiment),
                       static_cast<long long>(a.attempts),
                       static_cast<long long>(a.successes),
                       FormatDouble(a.cost, 17).c_str());
    }
    for (const obs::AuditLog::Cursor::LedgerEntry& l : data.audit.ledgers) {
      out += StrFormat("audit.ledger %s %s %s\n", l.learner.c_str(),
                       FormatDouble(l.spent, 17).c_str(),
                       FormatDouble(l.budget, 17).c_str());
    }
  }
  return out;
}

Result<CheckpointData> ParseCheckpoint(const InferenceGraph& graph,
                                       std::string_view text) {
  CheckpointData data;
  bool saw_header = false;
  bool saw_rng = false;
  bool saw_strategy = false;
  bool saw_counts = false;
  int line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kCheckpointHeader) {
        return Status::FailedPrecondition(
            StrFormat("checkpoint must start with '%s'",
                      std::string(kCheckpointHeader).c_str()));
      }
      saw_header = true;
      continue;
    }
    // Raw time-series window lines carry JSON (embedded spaces), so
    // they are peeled off by prefix before field tokenization.
    if (line.size() > 3 && line.substr(0, 3) == "ts ") {
      data.ts_windows.emplace_back(Trim(line.substr(3)));
      data.has_timeseries = true;
      continue;
    }
    std::vector<std::string> fields = Fields(line);
    const std::string& key = fields[0];
    if (key == "learner") {
      if (fields.size() != 2 ||
          (fields[1] != "pib" && fields[1] != "palo" && fields[1] != "pao")) {
        return Corrupt(line_number, "unknown learner");
      }
      data.learner = fields[1];
    } else if (key == "seed") {
      if (fields.size() != 2 || !ParseU64(fields[1], &data.seed)) {
        return Corrupt(line_number, "malformed seed");
      }
    } else if (key == "queries_done") {
      if (fields.size() != 2 || !ParseI64(fields[1], &data.queries_done) ||
          data.queries_done < 0) {
        return Corrupt(line_number, "malformed query counter");
      }
    } else if (key == "rng") {
      if (!ParseRngLine(fields, &data.rng_state)) {
        return Corrupt(line_number, "malformed workload RNG state");
      }
      saw_rng = true;
    } else if (key == "injector_rng") {
      if (!ParseRngLine(fields, &data.injector.rng_state)) {
        return Corrupt(line_number, "malformed injector RNG state");
      }
      data.has_injector = true;
    } else if (key == "injector_queries") {
      if (fields.size() != 2 ||
          !ParseI64(fields[1], &data.injector.query_count) ||
          data.injector.query_count < 0) {
        return Corrupt(line_number, "malformed injector query counter");
      }
      data.has_injector = true;
    } else if (key == "breaker") {
      // 4 fields: the pre-recovery layout; 6 add the half-open backoff
      // round count and the quarantine flag.
      uint64_t arc = 0;
      int64_t consecutive = 0;
      int64_t open_until = 0;
      int64_t open_rounds = 0;
      bool forced = false;
      bool ok = (fields.size() == 4 || fields.size() == 6) &&
                ParseU64(fields[1], &arc) &&
                ParseI64(fields[2], &consecutive) &&
                ParseI64(fields[3], &open_until) && consecutive >= 0 &&
                arc < graph.num_arcs();
      if (ok && fields.size() == 6) {
        ok = ParseI64(fields[4], &open_rounds) && open_rounds >= 0 &&
             (fields[5] == "0" || fields[5] == "1");
        forced = fields[5] == "1";
      }
      if (!ok) {
        return Corrupt(line_number, "malformed breaker ledger entry");
      }
      data.injector.breakers.push_back({static_cast<ArcId>(arc),
                                        static_cast<int>(consecutive),
                                        open_until,
                                        static_cast<int>(open_rounds),
                                        forced});
      data.has_injector = true;
    } else if (key == "stratlearn-strategy") {
      Result<Strategy> strategy = Strategy::Deserialize(graph, line);
      if (!strategy.ok()) {
        return Status::FailedPrecondition(
            StrFormat("checkpoint line %d: %s", line_number,
                      strategy.status().message().c_str()));
      }
      data.pib.strategy = *strategy;
      data.palo.strategy = *std::move(strategy);
      saw_strategy = true;
    } else if (key == "pib.contexts" || key == "pib.trials" ||
               key == "pib.samples" || key == "palo.contexts" ||
               key == "palo.trials" || key == "palo.samples" ||
               key == "palo.moves" || key == "pao.contexts") {
      int64_t value = 0;
      if (fields.size() != 2 || !ParseI64(fields[1], &value) || value < 0) {
        return Corrupt(line_number, "malformed counter");
      }
      if (key == "pib.contexts") data.pib.contexts = value;
      else if (key == "pib.trials") data.pib.trials = value;
      else if (key == "pib.samples") data.pib.samples = value;
      else if (key == "palo.contexts") data.palo.contexts = value;
      else if (key == "palo.trials") data.palo.trials = value;
      else if (key == "palo.samples") data.palo.samples = value;
      else if (key == "palo.moves") data.palo.moves = value;
      else data.qpa.contexts = value;
      saw_counts = true;
    } else if (key == "palo.finished") {
      if (fields.size() != 2 || (fields[1] != "0" && fields[1] != "1")) {
        return Corrupt(line_number, "malformed finished flag");
      }
      data.palo.finished = fields[1] == "1";
    } else if (key == "pib.deltas" || key == "palo.unders" ||
               key == "palo.overs") {
      std::vector<double>* target =
          key == "pib.deltas" ? &data.pib.neighbor_delta_sums
          : key == "palo.unders" ? &data.palo.neighbor_under_sums
                                 : &data.palo.neighbor_over_sums;
      target->clear();
      target->reserve(fields.size() - 1);
      for (size_t k = 1; k < fields.size(); ++k) {
        double value = 0.0;
        if (!ParseF64(fields[k], &value)) {
          return Corrupt(line_number, "malformed estimate ledger");
        }
        target->push_back(value);
      }
    } else if (key == "pib.move") {
      Pib::Move move;
      uint64_t parent = 0;
      uint64_t arc_a = 0;
      uint64_t arc_b = 0;
      if (fields.size() != 9 || !ParseI64(fields[1], &move.at_context) ||
          !ParseI64(fields[2], &move.samples_used) ||
          !ParseU64(fields[3], &parent) || !ParseU64(fields[4], &arc_a) ||
          !ParseU64(fields[5], &arc_b) ||
          !ParseF64(fields[6], &move.delta_sum) ||
          !ParseF64(fields[7], &move.threshold) ||
          !ParseF64(fields[8], &move.delta_spent) ||
          parent >= graph.num_nodes() || arc_a >= graph.num_arcs() ||
          arc_b >= graph.num_arcs()) {
        return Corrupt(line_number, "malformed climb-history entry");
      }
      move.swap.parent = static_cast<NodeId>(parent);
      move.swap.arc_a = static_cast<ArcId>(arc_a);
      move.swap.arc_b = static_cast<ArcId>(arc_b);
      data.pib.moves.push_back(move);
    } else if (key == "pao.remaining") {
      data.qpa.remaining.clear();
      for (size_t k = 1; k < fields.size(); ++k) {
        int64_t value = 0;
        if (!ParseI64(fields[k], &value)) {
          return Corrupt(line_number, "malformed remaining-quota vector");
        }
        data.qpa.remaining.push_back(value);
      }
    } else if (key == "pao.counter") {
      AdaptiveQueryProcessor::Checkpoint::Counter counter;
      if (fields.size() != 4 || !ParseI64(fields[1], &counter.attempts) ||
          !ParseI64(fields[2], &counter.successes) ||
          !ParseI64(fields[3], &counter.blocked_aims)) {
        return Corrupt(line_number, "malformed experiment counter");
      }
      data.qpa.counters.push_back(counter);
    } else if (key == "pib.audit") {
      if (fields.size() != 3 ||
          !ParseF64(fields[1], &data.pib.audit_delta_spent) ||
          !ParseI64(fields[2], &data.pib.audit_rounds) ||
          data.pib.audit_delta_spent < 0.0 || data.pib.audit_rounds < 0) {
        return Corrupt(line_number, "malformed audit ledger");
      }
    } else if (key == "health") {
      int64_t windows_seen = 0;
      int64_t drift_active = 0;
      int64_t firing = 0;
      if (fields.size() != 5 || (fields[1] != "0" && fields[1] != "1") ||
          !ParseI64(fields[2], &windows_seen) ||
          !ParseI64(fields[3], &drift_active) ||
          !ParseI64(fields[4], &firing) || windows_seen < 0 ||
          drift_active < 0 || firing < 0) {
        return Corrupt(line_number, "malformed health stamp");
      }
      data.health.present = true;
      data.health.healthy = fields[1] == "1";
      data.health.windows_seen = windows_seen;
      data.health.drift_active = drift_active;
      data.health.firing = firing;
    } else if (key == "recovery.ring") {
      if (fields.size() != 3 || !ParseI64(fields[1], &data.ring_cursor) ||
          !ParseI64(fields[2], &data.ring_writes) || data.ring_cursor < 0 ||
          data.ring_writes < 0) {
        return Corrupt(line_number, "malformed recovery ring cursor");
      }
    } else if (key == "ts.cursor") {
      if (fields.size() != 4 || !ParseI64(fields[1], &data.ts_window_start) ||
          !ParseI64(fields[2], &data.ts_next_index) ||
          !ParseI64(fields[3], &data.ts_evicted) ||
          data.ts_window_start < 0 || data.ts_next_index < 0 ||
          data.ts_evicted < 0) {
        return Corrupt(line_number, "malformed time-series cursor");
      }
      data.has_timeseries = true;
    } else if (key == "audit.cursor") {
      obs::AuditLog::Cursor& c = data.audit;
      if (fields.size() != 12 || !ParseI64(fields[1], &c.bytes) ||
          !ParseI64(fields[2], &c.certificates) ||
          !ParseI64(fields[3], &c.commits) ||
          !ParseI64(fields[4], &c.rejects) ||
          !ParseI64(fields[5], &c.stops) ||
          !ParseI64(fields[6], &c.quotas_met) ||
          !ParseI64(fields[7], &c.queries) ||
          !ParseI64(fields[8], &c.window_queries) ||
          !ParseI64(fields[9], &c.windows_written) ||
          !ParseF64(fields[10], &c.window_cost) ||
          !ParseF64(fields[11], &c.total_cost) || c.bytes < -1 ||
          c.certificates < 0 || c.commits < 0 || c.rejects < 0 ||
          c.stops < 0 || c.quotas_met < 0 || c.queries < 0 ||
          c.window_queries < 0 || c.windows_written < 0) {
        return Corrupt(line_number, "malformed audit cursor");
      }
      data.has_audit = true;
    } else if (key == "audit.epoch") {
      obs::AuditLog::Cursor::EpochArc a;
      if (fields.size() != 6 || !ParseI64(fields[1], &a.arc) ||
          !ParseI64(fields[2], &a.experiment) ||
          !ParseI64(fields[3], &a.attempts) ||
          !ParseI64(fields[4], &a.successes) ||
          !ParseF64(fields[5], &a.cost) || a.arc < 0 ||
          static_cast<uint64_t>(a.arc) >= graph.num_arcs() ||
          a.experiment < -1 || a.attempts < 0 || a.successes < 0 ||
          a.successes > a.attempts) {
        return Corrupt(line_number, "malformed audit epoch tally");
      }
      data.audit.epoch.push_back(a);
      data.has_audit = true;
    } else if (key == "audit.ledger") {
      obs::AuditLog::Cursor::LedgerEntry l;
      if (fields.size() != 4 || !ParseF64(fields[2], &l.spent) ||
          !ParseF64(fields[3], &l.budget) || l.spent < 0.0 ||
          l.budget < 0.0) {
        return Corrupt(line_number, "malformed audit ledger entry");
      }
      l.learner = fields[1];
      data.audit.ledgers.push_back(l);
      data.has_audit = true;
    } else {
      return Corrupt(line_number, "unknown directive");
    }
  }
  if (!saw_header) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint must start with '%s'",
                  std::string(kCheckpointHeader).c_str()));
  }
  if (data.learner.empty()) {
    return Status::FailedPrecondition("checkpoint names no learner");
  }
  if (!saw_rng) {
    return Status::FailedPrecondition(
        "checkpoint carries no workload RNG state");
  }
  if ((data.learner == "pib" || data.learner == "palo") && !saw_strategy) {
    return Status::FailedPrecondition(
        "checkpoint carries no strategy for its learner");
  }
  if (!saw_counts) {
    return Status::FailedPrecondition(
        "checkpoint carries no learner counters");
  }
  return data;
}

Status WriteCheckpoint(const std::string& path, const CheckpointData& data) {
  if (!WriteFileChecksummed(path, SerializeCheckpoint(data))) {
    return Status::Internal(
        StrFormat("cannot write checkpoint '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<CheckpointData> LoadCheckpoint(const std::string& path,
                                      const InferenceGraph& graph) {
  Result<std::string> payload = ReadFileChecksummed(path);
  if (!payload.ok()) return payload.status();
  return ParseCheckpoint(graph, *payload);
}

}  // namespace stratlearn::robust
