#include "util/rng.h"

#include <cmath>

namespace stratlearn {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  STRATLEARN_CHECK(bound > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  STRATLEARN_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextUniform(double lo, double hi) {
  STRATLEARN_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box–Muller; draws until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  STRATLEARN_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    STRATLEARN_CHECK(w >= 0.0);
    total += w;
  }
  STRATLEARN_CHECK(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating point slop: return the last index with positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::array<uint64_t, 4> Rng::SaveState() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Rng::RestoreState(const std::array<uint64_t, 4>& state) {
  for (size_t i = 0; i < 4; ++i) state_[i] = state[i];
}

}  // namespace stratlearn
