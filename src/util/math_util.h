#ifndef STRATLEARN_UTIL_MATH_UTIL_H_
#define STRATLEARN_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace stratlearn {

inline constexpr double kPi = 3.14159265358979323846;

/// Approximate equality for floating-point comparisons in tests and
/// invariant checks: |a - b| <= tol * max(1, |a|, |b|).
inline bool AlmostEqual(double a, double b, double tol = 1e-9) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

/// Clamps `p` into [0, 1].
inline double ClampProbability(double p) {
  return std::min(1.0, std::max(0.0, p));
}

/// Integer ceiling of a / b for positive b.
inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// n! for small n (n <= 20 fits in uint64_t).
uint64_t Factorial(unsigned n);

}  // namespace stratlearn

#endif  // STRATLEARN_UTIL_MATH_UTIL_H_
