#ifndef STRATLEARN_UTIL_RNG_H_
#define STRATLEARN_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace stratlearn {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). All randomness in the library flows through an Rng that the
/// caller seeds, so every experiment is reproducible from its printed seed.
///
/// Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Re-initialises the state from `seed`.
  void Reseed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli trial: true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal deviate (Box–Muller; one value per call).
  double NextGaussian();

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Spawns an independent child generator; useful for giving each
  /// repetition of an experiment its own stream.
  Rng Fork();

  /// Raw engine state, for crash-safe checkpointing: restoring a saved
  /// state resumes the exact output stream, which is what makes a
  /// resumed learner run byte-identical to an uninterrupted one.
  std::array<uint64_t, 4> SaveState() const;
  void RestoreState(const std::array<uint64_t, 4>& state);

 private:
  uint64_t state_[4];
};

}  // namespace stratlearn

#endif  // STRATLEARN_UTIL_RNG_H_
