#ifndef STRATLEARN_UTIL_CHECK_H_
#define STRATLEARN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace stratlearn::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace stratlearn::internal

/// Aborts with a diagnostic if `cond` is false. Used for invariants whose
/// violation is a programming error (never for user input — that returns
/// Status).
#define STRATLEARN_CHECK(cond)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::stratlearn::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
  } while (false)

#define STRATLEARN_CHECK_MSG(cond, msg)                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::stratlearn::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
  } while (false)

#ifdef NDEBUG
#define STRATLEARN_DCHECK(cond) \
  do {                          \
  } while (false)
#else
#define STRATLEARN_DCHECK(cond) STRATLEARN_CHECK(cond)
#endif

#endif  // STRATLEARN_UTIL_CHECK_H_
