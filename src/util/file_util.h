#ifndef STRATLEARN_UTIL_FILE_UTIL_H_
#define STRATLEARN_UTIL_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace stratlearn {

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// file in the same directory, which is then renamed over `path`. A
/// reader (or a process killed mid-write) therefore sees either the old
/// file or the complete new one, never a torn prefix — the property the
/// BENCH_*.json / STRATLEARN_JSON_OUT consumers (bench_compare, CI
/// report scrapers) rely on. Returns false on any I/O failure; the
/// temporary file is removed on failure.
bool WriteFileAtomic(const std::string& path, std::string_view contents);

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `data`.
uint32_t Crc32(std::string_view data);

/// First line of a checksummed file: "stratlearn-crc32 <crc-8hex> <len>".
inline constexpr std::string_view kChecksumHeaderTag = "stratlearn-crc32";

/// Wraps `payload` in a one-line CRC-32 + length header and writes the
/// result atomically (see WriteFileAtomic). The learner checkpoints use
/// this so a torn, truncated or bit-flipped file is *detected* on read
/// instead of silently corrupting a resumed run.
bool WriteFileChecksummed(const std::string& path, std::string_view payload);

/// Verifies a checksummed container held in memory and returns its
/// payload. `name` scopes the error messages (a path, or "<input>").
/// FailedPrecondition when the header is missing/malformed, the length
/// disagrees (truncation), or the CRC does not match (corruption).
Result<std::string> DecodeChecksummed(std::string_view contents,
                                      const std::string& name);

/// Reads a WriteFileChecksummed file and returns the verified payload.
/// NotFound when the file cannot be opened; otherwise as
/// DecodeChecksummed.
Result<std::string> ReadFileChecksummed(const std::string& path);

}  // namespace stratlearn

#endif  // STRATLEARN_UTIL_FILE_UTIL_H_
