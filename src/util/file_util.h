#ifndef STRATLEARN_UTIL_FILE_UTIL_H_
#define STRATLEARN_UTIL_FILE_UTIL_H_

#include <string>
#include <string_view>

namespace stratlearn {

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// file in the same directory, which is then renamed over `path`. A
/// reader (or a process killed mid-write) therefore sees either the old
/// file or the complete new one, never a torn prefix — the property the
/// BENCH_*.json / STRATLEARN_JSON_OUT consumers (bench_compare, CI
/// report scrapers) rely on. Returns false on any I/O failure; the
/// temporary file is removed on failure.
bool WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace stratlearn

#endif  // STRATLEARN_UTIL_FILE_UTIL_H_
