#include "util/math_util.h"

#include "util/check.h"

namespace stratlearn {

uint64_t Factorial(unsigned n) {
  STRATLEARN_CHECK(n <= 20);
  uint64_t out = 1;
  for (unsigned i = 2; i <= n; ++i) out *= i;
  return out;
}

}  // namespace stratlearn
