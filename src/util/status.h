#ifndef STRATLEARN_UTIL_STATUS_H_
#define STRATLEARN_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace stratlearn {

/// Canonical error codes, modelled on the RocksDB/Abseil Status idiom.
/// Library code never throws; every fallible operation returns a Status
/// (or a Result<T> that wraps one).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case
/// (no allocation); carries a message string otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result aborts (programming error), matching CHECK semantics.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites
  /// (`return MakeGraph(...)` / `return Status::InvalidArgument(...)`)
  /// readable; this mirrors absl::StatusOr.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : payload_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : payload_(std::move(status)) {
    STRATLEARN_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    STRATLEARN_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T& value() & {
    STRATLEARN_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T&& value() && {
    STRATLEARN_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define STRATLEARN_RETURN_IF_ERROR(expr)                  \
  do {                                                    \
    ::stratlearn::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                            \
  } while (false)

}  // namespace stratlearn

#endif  // STRATLEARN_UTIL_STATUS_H_
