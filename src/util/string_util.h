#ifndef STRATLEARN_UTIL_STRING_UTIL_H_
#define STRATLEARN_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace stratlearn {

/// Splits `input` on `sep`, trimming nothing; empty pieces are kept.
std::vector<std::string> Split(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `pieces` with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("3.7", "0.012").
std::string FormatDouble(double value, int digits = 6);

}  // namespace stratlearn

#endif  // STRATLEARN_UTIL_STRING_UTIL_H_
