#include "util/file_util.h"

#include <cstdio>

#include <fstream>

namespace stratlearn {

bool WriteFileAtomic(const std::string& path, std::string_view contents) {
  // The temp file must live in the target directory: rename(2) is only
  // atomic within one filesystem.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace stratlearn
