#include "util/file_util.h"

#include <array>
#include <cstdio>
#include <cstdlib>

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace stratlearn {

bool WriteFileAtomic(const std::string& path, std::string_view contents) {
  // The temp file must live in the target directory: rename(2) is only
  // atomic within one filesystem.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

uint32_t Crc32(std::string_view data) {
  // Table-driven CRC-32 (reflected 0xEDB88320); built once, lazily.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool WriteFileChecksummed(const std::string& path, std::string_view payload) {
  char header[64];
  std::snprintf(header, sizeof(header), "%s %08x %zu\n",
                std::string(kChecksumHeaderTag).c_str(), Crc32(payload),
                payload.size());
  std::string contents = header;
  contents.append(payload);
  return WriteFileAtomic(path, contents);
}

Result<std::string> DecodeChecksummed(std::string_view contents,
                                      const std::string& name) {
  size_t newline = contents.find('\n');
  if (newline == std::string::npos ||
      !StartsWith(contents, kChecksumHeaderTag)) {
    return Status::FailedPrecondition(StrFormat(
        "'%s' has no '%s' header", name.c_str(),
        std::string(kChecksumHeaderTag).c_str()));
  }
  std::string header(contents.substr(0, newline));
  std::vector<std::string> fields;
  for (const std::string& f : Split(header, ' ')) {
    if (!Trim(f).empty()) fields.emplace_back(Trim(f));
  }
  if (fields.size() != 3) {
    return Status::FailedPrecondition(
        StrFormat("'%s' has a malformed checksum header", name.c_str()));
  }
  char* end = nullptr;
  uint32_t expected_crc =
      static_cast<uint32_t>(std::strtoul(fields[1].c_str(), &end, 16));
  if (end != fields[1].c_str() + fields[1].size()) {
    return Status::FailedPrecondition(
        StrFormat("'%s' has a malformed checksum header", name.c_str()));
  }
  unsigned long long expected_len = std::strtoull(fields[2].c_str(), &end, 10);
  if (end != fields[2].c_str() + fields[2].size()) {
    return Status::FailedPrecondition(
        StrFormat("'%s' has a malformed checksum header", name.c_str()));
  }
  std::string payload(contents.substr(newline + 1));
  if (payload.size() != expected_len) {
    return Status::FailedPrecondition(StrFormat(
        "'%s' is truncated: header promises %llu payload bytes, found %zu",
        name.c_str(), expected_len, payload.size()));
  }
  uint32_t actual_crc = Crc32(payload);
  if (actual_crc != expected_crc) {
    return Status::FailedPrecondition(StrFormat(
        "'%s' is corrupt: CRC-32 mismatch (header %08x, payload %08x)",
        name.c_str(), expected_crc, actual_crc));
  }
  return payload;
}

Result<std::string> ReadFileChecksummed(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DecodeChecksummed(buffer.str(), path);
}

}  // namespace stratlearn
