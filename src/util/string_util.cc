#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace stratlearn {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  std::string s = StrFormat("%.*g", digits, value);
  return s;
}

}  // namespace stratlearn
