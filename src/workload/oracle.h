#ifndef STRATLEARN_WORKLOAD_ORACLE_H_
#define STRATLEARN_WORKLOAD_ORACLE_H_

#include "engine/context.h"
#include "util/rng.h"

namespace stratlearn {

/// Source of query-processing contexts drawn i.i.d. from a stationary
/// distribution (Section 2.1). In production this is the user posing
/// queries; here it is a workload model. PIB and PAO consume contexts
/// only through this interface.
class ContextOracle {
 public:
  virtual ~ContextOracle() = default;

  /// Draws the next context.
  virtual Context Next(Rng& rng) = 0;

  /// Number of experiments of the graph the contexts are for.
  virtual size_t num_experiments() const = 0;
};

}  // namespace stratlearn

#endif  // STRATLEARN_WORKLOAD_ORACLE_H_
