#ifndef STRATLEARN_WORKLOAD_RANDOM_TREE_H_
#define STRATLEARN_WORKLOAD_RANDOM_TREE_H_

#include <vector>

#include "graph/inference_graph.h"
#include "util/rng.h"

namespace stratlearn {

/// Parameters for random AOT inference-graph generation.
struct RandomTreeOptions {
  /// Depth of the reduction tree above the retrievals.
  int depth = 3;
  /// Number of children per internal node, drawn uniformly per node.
  int min_branch = 2;
  int max_branch = 3;
  /// Arc cost range (uniform).
  double min_cost = 0.5;
  double max_cost = 2.0;
  /// Success-probability range for leaf retrievals (uniform).
  double min_prob = 0.05;
  double max_prob = 0.95;
  /// With this probability an internal node's subtree is cut short and
  /// replaced by a retrieval leaf (varies tree shapes).
  double early_leaf_prob = 0.25;
  /// Probability that a reduction arc is itself a guarded experiment
  /// (Theorem 3's internal probabilistic experiments). 0 keeps the graph
  /// in the simple disjunctive class where Upsilon_AOT is exact.
  double internal_experiment_prob = 0.0;
  /// Upper bound for the Note 4 / [OG90] outcome-dependent extra costs:
  /// each arc gets success/failure extras uniform in [0, this]. 0 (the
  /// default) keeps the paper's basic fixed-cost model.
  double max_outcome_cost = 0.0;
};

/// A random tree-shaped inference graph plus the true per-experiment
/// success probabilities of its generating distribution.
struct RandomTree {
  InferenceGraph graph;
  std::vector<double> probs;  // indexed by experiment index
};

/// Generates a random AOT graph. Always produces at least two leaves.
RandomTree MakeRandomTree(Rng& rng, const RandomTreeOptions& options = {});

/// Generates a flat one-level graph: root with `n` retrieval children.
/// Costs/probabilities uniform in the option ranges. This is the shape
/// of the horizontally-segmented scan application (Section 5.2) and the
/// classic satisficing-ordering testbed.
RandomTree MakeFlatTree(Rng& rng, int n, const RandomTreeOptions& options = {});

}  // namespace stratlearn

#endif  // STRATLEARN_WORKLOAD_RANDOM_TREE_H_
