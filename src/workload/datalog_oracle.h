#ifndef STRATLEARN_WORKLOAD_DATALOG_ORACLE_H_
#define STRATLEARN_WORKLOAD_DATALOG_ORACLE_H_

#include <vector>

#include "datalog/database.h"
#include "graph/builder.h"
#include "workload/oracle.h"

namespace stratlearn {

/// A workload of concrete queries: each entry is a tuple of constants for
/// the query form's bound positions, with a sampling weight. This models
/// "the system's user" of Section 3.1 — e.g. 60% instructor(russ), 15%
/// instructor(manolis), 25% instructor(fred).
struct QueryWorkload {
  struct Entry {
    std::vector<SymbolId> args;
    double weight = 1.0;
  };
  std::vector<Entry> entries;
};

/// Materialises contexts from real <query, database> pairs: samples a
/// query from the workload, then determines each experiment's outcome by
/// actually attempting its retrieval (or evaluating its guard) against
/// the database. This is the bridge between the Datalog substrate and
/// the blocked-arc-set view of Note 2.
class DatalogOracle : public ContextOracle {
 public:
  /// `built` and `db` must outlive the oracle.
  DatalogOracle(const BuiltGraph* built, const Database* db,
                QueryWorkload workload);

  Context Next(Rng& rng) override;
  size_t num_experiments() const override;

  /// Deterministically maps one concrete query to its context.
  Context ContextFor(const std::vector<SymbolId>& query_args) const;

  /// The last sampled query's arguments (for tracing/examples).
  const std::vector<SymbolId>& last_query_args() const { return last_args_; }

  /// Exact per-experiment marginal success probabilities under the
  /// workload distribution (the "true" p vector PAO is estimating).
  std::vector<double> TrueMarginalProbs() const;

 private:
  const BuiltGraph* built_;
  const Database* db_;
  QueryWorkload workload_;
  std::vector<double> weights_;
  std::vector<SymbolId> last_args_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_WORKLOAD_DATALOG_ORACLE_H_
