#include "workload/faulty_oracle.h"

namespace stratlearn {

FaultyOracle::FaultyOracle(ContextOracle* inner,
                           const robust::FaultPlan& plan)
    : inner_(inner), rng_(plan.seed) {
  for (const robust::FaultRule& rule : plan.rules) {
    if (rule.kind == robust::FaultKind::kCorrupt && rule.probability > 0.0) {
      rules_.push_back(rule);
    }
  }
}

Context FaultyOracle::Next(Rng& rng) {
  Context context = inner_->Next(rng);
  for (const robust::FaultRule& rule : rules_) {
    for (size_t e = 0; e < context.num_experiments(); ++e) {
      if (rule.experiment >= 0 &&
          static_cast<size_t>(rule.experiment) != e) {
        continue;
      }
      if (rng_.NextBernoulli(rule.probability)) {
        context.Set(e, !context.Unblocked(e));
        ++corruptions_;
      }
    }
  }
  return context;
}

}  // namespace stratlearn
