#ifndef STRATLEARN_WORKLOAD_SYNTHETIC_ORACLE_H_
#define STRATLEARN_WORKLOAD_SYNTHETIC_ORACLE_H_

#include <vector>

#include "workload/oracle.h"

namespace stratlearn {

/// Samples each experiment's outcome independently: experiment i is
/// unblocked with probability p[i]. This realises the independence
/// assumption under which Upsilon_AOT (and hence PAO) is exact.
class IndependentOracle : public ContextOracle {
 public:
  explicit IndependentOracle(std::vector<double> success_probs);

  Context Next(Rng& rng) override;
  size_t num_experiments() const override { return probs_.size(); }

  const std::vector<double>& success_probs() const { return probs_; }

 private:
  std::vector<double> probs_;
};

/// A finite mixture of independent profiles: each draw first picks a
/// profile by weight, then samples outcomes from that profile's
/// probability vector. With distinct profiles the per-experiment
/// marginals become *dependent*, exercising the caveat of footnote 8 —
/// PIB stays correct on such workloads, PAO's optimality guarantee does
/// not apply.
class MixtureOracle : public ContextOracle {
 public:
  struct Profile {
    double weight = 1.0;
    std::vector<double> success_probs;
  };

  explicit MixtureOracle(std::vector<Profile> profiles);

  Context Next(Rng& rng) override;
  size_t num_experiments() const override;

  /// Marginal success probability of each experiment under the mixture.
  std::vector<double> MarginalProbs() const;

 private:
  std::vector<Profile> profiles_;
  std::vector<double> weights_;
};

/// A *non-stationary* independent oracle: per-experiment success
/// probabilities start at `before` and shift to `after` at draw
/// `drift_at` — as a step when `ramp_len` is 0, or linearly
/// interpolated over the next `ramp_len` draws. This deliberately
/// violates the stationarity assumption of Section 2.1 that PIB's and
/// PAO's guarantees rest on; it exists to exercise the statistical
/// drift detectors in obs/health, which watch the telemetry stream for
/// exactly this kind of workload shift.
///
/// `set_revert_at(draw)` arms a second, reverse shift: from that draw
/// on the pre-drift `before` vector applies again (stepwise — the ramp
/// only shapes the forward shift). A drift-then-revert workload is the
/// shape transient regressions take in production, and it is what the
/// recovery controller's rebaseline/rollback actions are judged
/// against: after the revert, pre-drift state is correct again, so a
/// policy that preserved it re-converges faster than a cold restart.
class DriftingOracle : public ContextOracle {
 public:
  DriftingOracle(std::vector<double> before, std::vector<double> after,
                 int64_t drift_at, int64_t ramp_len = 0);

  /// Arms the revert: draws >= `revert_at` use `before` again. Must be
  /// past the forward shift (and its ramp); 0 disarms.
  void set_revert_at(int64_t revert_at);
  int64_t revert_at() const { return revert_at_; }

  Context Next(Rng& rng) override;
  size_t num_experiments() const override { return before_.size(); }

  /// The probability vector in effect for draw number `draw` (0-based).
  std::vector<double> ProbsAt(int64_t draw) const;

  /// Number of contexts drawn so far.
  int64_t draws() const { return draws_; }

 private:
  std::vector<double> before_;
  std::vector<double> after_;
  int64_t drift_at_;
  int64_t ramp_len_;
  int64_t revert_at_ = 0;  // 0 = never revert
  int64_t draws_ = 0;
};

}  // namespace stratlearn

#endif  // STRATLEARN_WORKLOAD_SYNTHETIC_ORACLE_H_
