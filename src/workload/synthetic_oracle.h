#ifndef STRATLEARN_WORKLOAD_SYNTHETIC_ORACLE_H_
#define STRATLEARN_WORKLOAD_SYNTHETIC_ORACLE_H_

#include <vector>

#include "workload/oracle.h"

namespace stratlearn {

/// Samples each experiment's outcome independently: experiment i is
/// unblocked with probability p[i]. This realises the independence
/// assumption under which Upsilon_AOT (and hence PAO) is exact.
class IndependentOracle : public ContextOracle {
 public:
  explicit IndependentOracle(std::vector<double> success_probs);

  Context Next(Rng& rng) override;
  size_t num_experiments() const override { return probs_.size(); }

  const std::vector<double>& success_probs() const { return probs_; }

 private:
  std::vector<double> probs_;
};

/// A finite mixture of independent profiles: each draw first picks a
/// profile by weight, then samples outcomes from that profile's
/// probability vector. With distinct profiles the per-experiment
/// marginals become *dependent*, exercising the caveat of footnote 8 —
/// PIB stays correct on such workloads, PAO's optimality guarantee does
/// not apply.
class MixtureOracle : public ContextOracle {
 public:
  struct Profile {
    double weight = 1.0;
    std::vector<double> success_probs;
  };

  explicit MixtureOracle(std::vector<Profile> profiles);

  Context Next(Rng& rng) override;
  size_t num_experiments() const override;

  /// Marginal success probability of each experiment under the mixture.
  std::vector<double> MarginalProbs() const;

 private:
  std::vector<Profile> profiles_;
  std::vector<double> weights_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_WORKLOAD_SYNTHETIC_ORACLE_H_
