#include "workload/random_tree.h"

#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn {

namespace {

/// Recursively grows the tree below `parent`.
void MaybeAddOutcomeCosts(InferenceGraph& g, ArcId arc, Rng& rng,
                          const RandomTreeOptions& opt) {
  if (opt.max_outcome_cost <= 0.0) return;
  g.SetOutcomeCosts(arc, rng.NextUniform(0.0, opt.max_outcome_cost),
                    rng.NextUniform(0.0, opt.max_outcome_cost));
}

void Grow(InferenceGraph& g, std::vector<double>& probs, Rng& rng,
          const RandomTreeOptions& opt, NodeId parent, int depth_left,
          int* counter) {
  int children = static_cast<int>(
      rng.NextInt(opt.min_branch, opt.max_branch));
  for (int i = 0; i < children; ++i) {
    double cost = rng.NextUniform(opt.min_cost, opt.max_cost);
    bool leaf = depth_left <= 1 || rng.NextBernoulli(opt.early_leaf_prob);
    int id = (*counter)++;
    if (leaf) {
      ArcId arc = g.AddRetrieval(parent, cost, StrFormat("d%d", id)).arc;
      MaybeAddOutcomeCosts(g, arc, rng, opt);
      probs.push_back(rng.NextUniform(opt.min_prob, opt.max_prob));
    } else {
      bool guarded = rng.NextBernoulli(opt.internal_experiment_prob);
      auto added = g.AddChild(parent, StrFormat("n%d", id),
                              ArcKind::kReduction, cost,
                              StrFormat("r%d", id), guarded);
      MaybeAddOutcomeCosts(g, added.arc, rng, opt);
      if (guarded) probs.push_back(rng.NextUniform(opt.min_prob, opt.max_prob));
      Grow(g, probs, rng, opt, added.node, depth_left - 1, counter);
    }
  }
}

}  // namespace

RandomTree MakeRandomTree(Rng& rng, const RandomTreeOptions& options) {
  STRATLEARN_CHECK(options.depth >= 1);
  STRATLEARN_CHECK(options.min_branch >= 1);
  STRATLEARN_CHECK(options.max_branch >= options.min_branch);
  for (int attempt = 0; attempt < 100; ++attempt) {
    RandomTree tree;
    tree.graph.AddRoot("goal");
    int counter = 0;
    Grow(tree.graph, tree.probs, rng, options, tree.graph.root(),
         options.depth, &counter);
    if (tree.graph.SuccessArcs().size() >= 2) {
      STRATLEARN_CHECK(tree.graph.Validate().ok());
      STRATLEARN_CHECK(tree.probs.size() == tree.graph.num_experiments());
      return tree;
    }
  }
  // Degenerate options: fall back to a guaranteed two-leaf tree.
  RandomTree tree;
  NodeId root = tree.graph.AddRoot("goal");
  for (int i = 0; i < 2; ++i) {
    tree.graph.AddRetrieval(root, rng.NextUniform(options.min_cost,
                                                  options.max_cost),
                            StrFormat("d%d", i));
    tree.probs.push_back(rng.NextUniform(options.min_prob, options.max_prob));
  }
  return tree;
}

RandomTree MakeFlatTree(Rng& rng, int n, const RandomTreeOptions& options) {
  STRATLEARN_CHECK(n >= 1);
  RandomTree tree;
  NodeId root = tree.graph.AddRoot("goal");
  for (int i = 0; i < n; ++i) {
    ArcId arc = tree.graph
                    .AddRetrieval(root, rng.NextUniform(options.min_cost,
                                                        options.max_cost),
                                  StrFormat("d%d", i))
                    .arc;
    MaybeAddOutcomeCosts(tree.graph, arc, rng, options);
    tree.probs.push_back(rng.NextUniform(options.min_prob, options.max_prob));
  }
  return tree;
}

}  // namespace stratlearn
