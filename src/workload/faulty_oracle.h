#ifndef STRATLEARN_WORKLOAD_FAULTY_ORACLE_H_
#define STRATLEARN_WORKLOAD_FAULTY_ORACLE_H_

#include <cstdint>
#include <vector>

#include "robust/fault_plan.h"
#include "workload/oracle.h"

namespace stratlearn {

/// Decorator that injects *data* faults into an oracle's context stream:
/// each drawn context's experiment outcomes are flipped according to the
/// plan's `corrupt` rules (a retrieval backend returning wrong rows looks
/// to the learners like a context whose ground truth changed). Execution
/// faults — transient failures, timeouts, cost spikes — live in
/// robust::FaultInjector instead; the split keeps "the world lied" and
/// "the transport failed" separately testable.
///
/// The decorator owns its own RNG seeded from the plan, so the inner
/// oracle draws the exact same context stream with and without
/// corruption (tests diff the two runs).
class FaultyOracle : public ContextOracle {
 public:
  /// `inner` is not owned and must outlive the decorator.
  FaultyOracle(ContextOracle* inner, const robust::FaultPlan& plan);

  Context Next(Rng& rng) override;
  size_t num_experiments() const override { return inner_->num_experiments(); }

  /// Total experiment outcomes flipped so far.
  int64_t corruptions() const { return corruptions_; }

 private:
  ContextOracle* inner_;
  /// The plan's corrupt rules only, in plan order.
  std::vector<robust::FaultRule> rules_;
  Rng rng_;
  int64_t corruptions_ = 0;
};

}  // namespace stratlearn

#endif  // STRATLEARN_WORKLOAD_FAULTY_ORACLE_H_
