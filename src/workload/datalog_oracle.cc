#include "workload/datalog_oracle.h"

#include "util/check.h"
#include "util/math_util.h"

namespace stratlearn {

DatalogOracle::DatalogOracle(const BuiltGraph* built, const Database* db,
                             QueryWorkload workload)
    : built_(built), db_(db), workload_(std::move(workload)) {
  STRATLEARN_CHECK(!workload_.entries.empty());
  weights_.reserve(workload_.entries.size());
  for (const auto& e : workload_.entries) {
    STRATLEARN_CHECK(e.weight >= 0.0);
    weights_.push_back(e.weight);
  }
}

size_t DatalogOracle::num_experiments() const {
  return built_->graph.num_experiments();
}

Context DatalogOracle::ContextFor(
    const std::vector<SymbolId>& query_args) const {
  Context c(built_->graph.num_experiments());
  for (size_t e = 0; e < built_->graph.num_experiments(); ++e) {
    ArcId arc = built_->graph.experiments()[e];
    auto retrieval = built_->retrievals.find(arc);
    if (retrieval != built_->retrievals.end()) {
      c.Set(e, retrieval->second.Succeeds(*db_, query_args));
      continue;
    }
    auto guard = built_->guards.find(arc);
    STRATLEARN_CHECK_MSG(guard != built_->guards.end(),
                         "experiment arc has neither retrieval nor guard");
    c.Set(e, guard->second.Satisfied(query_args));
  }
  return c;
}

Context DatalogOracle::Next(Rng& rng) {
  const auto& entry = workload_.entries[rng.NextDiscrete(weights_)];
  last_args_ = entry.args;
  return ContextFor(entry.args);
}

std::vector<double> DatalogOracle::TrueMarginalProbs() const {
  double total_weight = 0.0;
  for (const auto& e : workload_.entries) total_weight += e.weight;
  STRATLEARN_CHECK(total_weight > 0.0);
  std::vector<double> probs(built_->graph.num_experiments(), 0.0);
  for (const auto& e : workload_.entries) {
    Context c = ContextFor(e.args);
    for (size_t i = 0; i < probs.size(); ++i) {
      if (c.Unblocked(i)) probs[i] += e.weight / total_weight;
    }
  }
  // Accumulated floating-point error can push a certain event a hair
  // past 1.0; clamp so the probabilities stay valid.
  for (double& p : probs) p = ClampProbability(p);
  return probs;
}

}  // namespace stratlearn
