#include "workload/synthetic_oracle.h"

#include "util/check.h"

namespace stratlearn {

IndependentOracle::IndependentOracle(std::vector<double> success_probs)
    : probs_(std::move(success_probs)) {
  for (double p : probs_) STRATLEARN_CHECK(p >= 0.0 && p <= 1.0);
}

Context IndependentOracle::Next(Rng& rng) {
  Context c(probs_.size());
  for (size_t i = 0; i < probs_.size(); ++i) {
    c.Set(i, rng.NextBernoulli(probs_[i]));
  }
  return c;
}

MixtureOracle::MixtureOracle(std::vector<Profile> profiles)
    : profiles_(std::move(profiles)) {
  STRATLEARN_CHECK(!profiles_.empty());
  weights_.reserve(profiles_.size());
  for (const Profile& p : profiles_) {
    STRATLEARN_CHECK(p.weight >= 0.0);
    STRATLEARN_CHECK(p.success_probs.size() ==
                     profiles_[0].success_probs.size());
    weights_.push_back(p.weight);
  }
}

Context MixtureOracle::Next(Rng& rng) {
  const Profile& profile = profiles_[rng.NextDiscrete(weights_)];
  Context c(profile.success_probs.size());
  for (size_t i = 0; i < profile.success_probs.size(); ++i) {
    c.Set(i, rng.NextBernoulli(profile.success_probs[i]));
  }
  return c;
}

size_t MixtureOracle::num_experiments() const {
  return profiles_[0].success_probs.size();
}

std::vector<double> MixtureOracle::MarginalProbs() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  std::vector<double> out(num_experiments(), 0.0);
  for (const Profile& p : profiles_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += p.weight / total * p.success_probs[i];
    }
  }
  return out;
}

}  // namespace stratlearn
