#include "workload/synthetic_oracle.h"

#include "util/check.h"

namespace stratlearn {

IndependentOracle::IndependentOracle(std::vector<double> success_probs)
    : probs_(std::move(success_probs)) {
  for (double p : probs_) STRATLEARN_CHECK(p >= 0.0 && p <= 1.0);
}

Context IndependentOracle::Next(Rng& rng) {
  Context c(probs_.size());
  for (size_t i = 0; i < probs_.size(); ++i) {
    c.Set(i, rng.NextBernoulli(probs_[i]));
  }
  return c;
}

MixtureOracle::MixtureOracle(std::vector<Profile> profiles)
    : profiles_(std::move(profiles)) {
  STRATLEARN_CHECK(!profiles_.empty());
  weights_.reserve(profiles_.size());
  for (const Profile& p : profiles_) {
    STRATLEARN_CHECK(p.weight >= 0.0);
    STRATLEARN_CHECK(p.success_probs.size() ==
                     profiles_[0].success_probs.size());
    weights_.push_back(p.weight);
  }
}

Context MixtureOracle::Next(Rng& rng) {
  const Profile& profile = profiles_[rng.NextDiscrete(weights_)];
  Context c(profile.success_probs.size());
  for (size_t i = 0; i < profile.success_probs.size(); ++i) {
    c.Set(i, rng.NextBernoulli(profile.success_probs[i]));
  }
  return c;
}

size_t MixtureOracle::num_experiments() const {
  return profiles_[0].success_probs.size();
}

std::vector<double> MixtureOracle::MarginalProbs() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  std::vector<double> out(num_experiments(), 0.0);
  for (const Profile& p : profiles_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += p.weight / total * p.success_probs[i];
    }
  }
  return out;
}

DriftingOracle::DriftingOracle(std::vector<double> before,
                               std::vector<double> after, int64_t drift_at,
                               int64_t ramp_len)
    : before_(std::move(before)),
      after_(std::move(after)),
      drift_at_(drift_at),
      ramp_len_(ramp_len) {
  STRATLEARN_CHECK(before_.size() == after_.size());
  STRATLEARN_CHECK(drift_at_ >= 0);
  STRATLEARN_CHECK(ramp_len_ >= 0);
  for (double p : before_) STRATLEARN_CHECK(p >= 0.0 && p <= 1.0);
  for (double p : after_) STRATLEARN_CHECK(p >= 0.0 && p <= 1.0);
}

void DriftingOracle::set_revert_at(int64_t revert_at) {
  STRATLEARN_CHECK(revert_at == 0 || revert_at >= drift_at_ + ramp_len_);
  revert_at_ = revert_at;
}

std::vector<double> DriftingOracle::ProbsAt(int64_t draw) const {
  if (revert_at_ > 0 && draw >= revert_at_) return before_;
  if (draw < drift_at_) return before_;
  if (ramp_len_ == 0 || draw >= drift_at_ + ramp_len_) return after_;
  // Linear ramp: the first post-drift draw already moves 1/ramp_len of
  // the way, the last one lands exactly on `after`.
  double t = static_cast<double>(draw - drift_at_ + 1) /
             static_cast<double>(ramp_len_);
  std::vector<double> out(before_.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = before_[i] + t * (after_[i] - before_[i]);
  }
  return out;
}

Context DriftingOracle::Next(Rng& rng) {
  std::vector<double> probs = ProbsAt(draws_);
  ++draws_;
  Context c(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    c.Set(i, rng.NextBernoulli(probs[i]));
  }
  return c;
}

}  // namespace stratlearn
