#ifndef STRATLEARN_ENGINE_CONTEXT_H_
#define STRATLEARN_ENGINE_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace stratlearn {

/// A query-processing context, reduced to what determines every
/// strategy's cost (Note 2): the blocked/unblocked outcome of each
/// probabilistic experiment of the graph, indexed by experiment index.
///
/// A concrete <query, database> pair maps to a Context by attempting each
/// retrieval/guard; the synthetic oracles sample Contexts directly.
class Context {
 public:
  /// All experiments blocked by default.
  explicit Context(size_t num_experiments)
      : unblocked_(num_experiments, 0) {}

  static Context AllBlocked(size_t n) { return Context(n); }
  static Context AllUnblocked(size_t n) {
    Context c(n);
    for (size_t i = 0; i < n; ++i) c.unblocked_[i] = 1;
    return c;
  }

  /// Decodes a bitmask (bit i = experiment i unblocked); n <= 64. Used to
  /// enumerate all 2^n equivalence classes exhaustively in tests.
  static Context FromMask(size_t n, uint64_t mask) {
    STRATLEARN_CHECK(n <= 64);
    Context c(n);
    for (size_t i = 0; i < n; ++i) c.unblocked_[i] = (mask >> i) & 1;
    return c;
  }

  void Set(size_t experiment, bool unblocked) {
    STRATLEARN_CHECK(experiment < unblocked_.size());
    unblocked_[experiment] = unblocked ? 1 : 0;
  }

  bool Unblocked(size_t experiment) const {
    STRATLEARN_CHECK(experiment < unblocked_.size());
    return unblocked_[experiment] != 0;
  }

  size_t num_experiments() const { return unblocked_.size(); }

  uint64_t EncodeMask() const {
    STRATLEARN_CHECK(unblocked_.size() <= 64);
    uint64_t mask = 0;
    for (size_t i = 0; i < unblocked_.size(); ++i) {
      if (unblocked_[i]) mask |= (uint64_t{1} << i);
    }
    return mask;
  }

  friend bool operator==(const Context& a, const Context& b) {
    return a.unblocked_ == b.unblocked_;
  }

 private:
  std::vector<uint8_t> unblocked_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_ENGINE_CONTEXT_H_
