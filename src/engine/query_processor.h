#ifndef STRATLEARN_ENGINE_QUERY_PROCESSOR_H_
#define STRATLEARN_ENGINE_QUERY_PROCESSOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/context.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"
#include "obs/observer.h"

namespace stratlearn {

namespace robust {
class FaultInjector;
}  // namespace robust

/// One attempted arc traversal and its outcome.
struct ArcAttempt {
  ArcId arc = kInvalidArc;
  bool unblocked = false;
  /// True when the *observed* outcome is an infrastructure artifact, not
  /// a semantic sample: the retrieval's retries were exhausted or its
  /// circuit breaker was open, and the attempt was recorded as blocked
  /// with the arc's pessimistic cost. QP^A must not count such attempts
  /// against its Equation 7/8 quotas (they carry no information about
  /// the experiment's true outcome); Delta~ may keep them — observing
  /// "blocked at pessimistic cost" only deepens the under-estimate's
  /// conservatism.
  bool infra_failure = false;
  /// Full cost actually paid for this attempt (base + outcome extra +
  /// any fault surcharges and retry backoff). Lets observers attribute
  /// per-arc cost without re-deriving it from the arc table, which would
  /// be wrong under injected faults.
  double cost = 0.0;
};

/// The record of one query execution: what the learners observe
/// (Section 5.1: everything PIB/PAO need can be read off this trace).
struct Trace {
  std::vector<ArcAttempt> attempts;
  double cost = 0.0;
  /// Number of success nodes reached (0 or 1 for satisficing search).
  int64_t successes = 0;
  /// True when the required number of answers was found.
  bool success = false;
  /// The arc whose traversal reached the first success node.
  ArcId first_success_arc = kInvalidArc;
  /// False when the resilient executor abandoned the query on its cost/
  /// deadline budget: the trace is a *prefix* of the full execution and
  /// `cost` under-states the strategy's true c(Theta, I) — still safe to
  /// feed PIB/PALO, whose Delta~ only needs an under-estimate.
  bool resolved = true;

  /// True iff the experiment with this index was attempted.
  bool Attempted(const InferenceGraph& graph, int experiment) const;
};

struct ExecutionOptions {
  /// Stop after this many success nodes have been reached. 1 is the
  /// paper's satisficing search; Section 5.2's first-k-answers variant
  /// uses k > 1.
  int64_t stop_after_successes = 1;
};

/// Executes strategies over contexts: QP = <G, Theta> applied to I.
///
/// Traversal semantics (Section 2.1): arcs are considered in strategy
/// order; an arc whose tail node has not been reached is skipped at no
/// cost; attempting an arc always costs f(arc); a blocked arc does not
/// make its head reachable; reaching a success node counts an answer.
class QueryProcessor {
 public:
  explicit QueryProcessor(const InferenceGraph* graph,
                          obs::Observer* observer = nullptr)
      : graph_(graph) {
    set_observer(observer);
  }

  /// Attaches (or detaches, with nullptr) an observer. When attached,
  /// Execute records qp.* metrics and emits QueryStart/ArcAttempt/
  /// QueryEnd events; when absent the hot loop is untouched.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() const { return observer_; }

  /// Attaches (or detaches) a fault injector. When attached, Execute
  /// runs the resilient path: seeded faults are injected into every
  /// experiment-arc attempt, failed attempts are retried with capped
  /// exponential backoff, persistently failing arcs are skipped by a
  /// circuit breaker at their pessimistic cost, and the per-query cost
  /// budget degrades runaway queries to "unresolved". Null (the
  /// default) keeps the paper's fault-free hot loop at one extra
  /// predicted branch.
  void set_fault_injector(robust::FaultInjector* injector);
  robust::FaultInjector* fault_injector() const { return injector_; }

  /// Inline dispatch keeps the unobserved path at the same call depth
  /// as an uninstrumented processor: one predicted branch, then the
  /// hot loop.
  Trace Execute(const Strategy& strategy, const Context& context,
                const ExecutionOptions& options = {}) const {
    if (observer_ != nullptr) [[unlikely]] {
      return ExecuteObserved(strategy, context, options);
    }
    if (injector_ != nullptr) [[unlikely]] {
      return ExecuteResilient(strategy, context, options, nullptr, 0);
    }
    return ExecuteImpl(strategy, context, options);
  }

  /// Convenience: the cost c(Theta, I) alone.
  double Cost(const Strategy& strategy, const Context& context) const;

  const InferenceGraph& graph() const { return *graph_; }

 private:
  Trace ExecuteImpl(const Strategy& strategy, const Context& context,
                    const ExecutionOptions& options) const;
  Trace ExecuteObserved(const Strategy& strategy, const Context& context,
                        const ExecutionOptions& options) const;
  /// The fault-injected path. `sink`/`query_index` carry the observed
  /// event stream when called from ExecuteObserved (null/0 otherwise).
  Trace ExecuteResilient(const Strategy& strategy, const Context& context,
                         const ExecutionOptions& options,
                         obs::TraceSink* sink, int64_t query_index) const;

  const InferenceGraph* graph_;
  obs::Observer* observer_ = nullptr;
  robust::FaultInjector* injector_ = nullptr;
  /// Metric handles resolved once in set_observer (null when no
  /// registry) so the observed path does no name lookups per query.
  struct Handles {
    obs::Counter* queries = nullptr;
    obs::Counter* arc_attempts = nullptr;
    obs::Counter* arcs_unblocked = nullptr;
    obs::Counter* successes = nullptr;
    obs::Histogram* query_cost = nullptr;
    obs::Histogram* query_wall_us = nullptr;
    // robust.* counters; only touched on the resilient path.
    obs::Counter* faults = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* gave_up = nullptr;
    obs::Counter* breaker_opens = nullptr;
    obs::Counter* breaker_skips = nullptr;
    obs::Counter* degraded = nullptr;
  };
  Handles handles_;
  /// Query ordinal for span events (Execute stays const for callers).
  /// Atomic so concurrent Execute calls on one processor draw distinct
  /// ordinals; relaxed is enough — nothing orders on this value.
  mutable std::atomic<int64_t> queries_executed_{0};
};

}  // namespace stratlearn

#endif  // STRATLEARN_ENGINE_QUERY_PROCESSOR_H_
