#ifndef STRATLEARN_ENGINE_QUERY_PROCESSOR_H_
#define STRATLEARN_ENGINE_QUERY_PROCESSOR_H_

#include <cstdint>
#include <vector>

#include "engine/context.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"

namespace stratlearn {

/// One attempted arc traversal and its outcome.
struct ArcAttempt {
  ArcId arc = kInvalidArc;
  bool unblocked = false;
};

/// The record of one query execution: what the learners observe
/// (Section 5.1: everything PIB/PAO need can be read off this trace).
struct Trace {
  std::vector<ArcAttempt> attempts;
  double cost = 0.0;
  /// Number of success nodes reached (0 or 1 for satisficing search).
  int64_t successes = 0;
  /// True when the required number of answers was found.
  bool success = false;
  /// The arc whose traversal reached the first success node.
  ArcId first_success_arc = kInvalidArc;

  /// True iff the experiment with this index was attempted.
  bool Attempted(const InferenceGraph& graph, int experiment) const;
};

struct ExecutionOptions {
  /// Stop after this many success nodes have been reached. 1 is the
  /// paper's satisficing search; Section 5.2's first-k-answers variant
  /// uses k > 1.
  int64_t stop_after_successes = 1;
};

/// Executes strategies over contexts: QP = <G, Theta> applied to I.
///
/// Traversal semantics (Section 2.1): arcs are considered in strategy
/// order; an arc whose tail node has not been reached is skipped at no
/// cost; attempting an arc always costs f(arc); a blocked arc does not
/// make its head reachable; reaching a success node counts an answer.
class QueryProcessor {
 public:
  explicit QueryProcessor(const InferenceGraph* graph) : graph_(graph) {}

  Trace Execute(const Strategy& strategy, const Context& context,
                const ExecutionOptions& options = {}) const;

  /// Convenience: the cost c(Theta, I) alone.
  double Cost(const Strategy& strategy, const Context& context) const;

  const InferenceGraph& graph() const { return *graph_; }

 private:
  const InferenceGraph* graph_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_ENGINE_QUERY_PROCESSOR_H_
