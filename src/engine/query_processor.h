#ifndef STRATLEARN_ENGINE_QUERY_PROCESSOR_H_
#define STRATLEARN_ENGINE_QUERY_PROCESSOR_H_

#include <cstdint>
#include <vector>

#include "engine/context.h"
#include "engine/strategy.h"
#include "graph/inference_graph.h"
#include "obs/observer.h"

namespace stratlearn {

/// One attempted arc traversal and its outcome.
struct ArcAttempt {
  ArcId arc = kInvalidArc;
  bool unblocked = false;
};

/// The record of one query execution: what the learners observe
/// (Section 5.1: everything PIB/PAO need can be read off this trace).
struct Trace {
  std::vector<ArcAttempt> attempts;
  double cost = 0.0;
  /// Number of success nodes reached (0 or 1 for satisficing search).
  int64_t successes = 0;
  /// True when the required number of answers was found.
  bool success = false;
  /// The arc whose traversal reached the first success node.
  ArcId first_success_arc = kInvalidArc;

  /// True iff the experiment with this index was attempted.
  bool Attempted(const InferenceGraph& graph, int experiment) const;
};

struct ExecutionOptions {
  /// Stop after this many success nodes have been reached. 1 is the
  /// paper's satisficing search; Section 5.2's first-k-answers variant
  /// uses k > 1.
  int64_t stop_after_successes = 1;
};

/// Executes strategies over contexts: QP = <G, Theta> applied to I.
///
/// Traversal semantics (Section 2.1): arcs are considered in strategy
/// order; an arc whose tail node has not been reached is skipped at no
/// cost; attempting an arc always costs f(arc); a blocked arc does not
/// make its head reachable; reaching a success node counts an answer.
class QueryProcessor {
 public:
  explicit QueryProcessor(const InferenceGraph* graph,
                          obs::Observer* observer = nullptr)
      : graph_(graph) {
    set_observer(observer);
  }

  /// Attaches (or detaches, with nullptr) an observer. When attached,
  /// Execute records qp.* metrics and emits QueryStart/ArcAttempt/
  /// QueryEnd events; when absent the hot loop is untouched.
  void set_observer(obs::Observer* observer);
  obs::Observer* observer() const { return observer_; }

  /// Inline dispatch keeps the unobserved path at the same call depth
  /// as an uninstrumented processor: one predicted branch, then the
  /// hot loop.
  Trace Execute(const Strategy& strategy, const Context& context,
                const ExecutionOptions& options = {}) const {
    if (observer_ != nullptr) [[unlikely]] {
      return ExecuteObserved(strategy, context, options);
    }
    return ExecuteImpl(strategy, context, options);
  }

  /// Convenience: the cost c(Theta, I) alone.
  double Cost(const Strategy& strategy, const Context& context) const;

  const InferenceGraph& graph() const { return *graph_; }

 private:
  Trace ExecuteImpl(const Strategy& strategy, const Context& context,
                    const ExecutionOptions& options) const;
  Trace ExecuteObserved(const Strategy& strategy, const Context& context,
                        const ExecutionOptions& options) const;

  const InferenceGraph* graph_;
  obs::Observer* observer_ = nullptr;
  /// Metric handles resolved once in set_observer (null when no
  /// registry) so the observed path does no name lookups per query.
  struct Handles {
    obs::Counter* queries = nullptr;
    obs::Counter* arc_attempts = nullptr;
    obs::Counter* arcs_unblocked = nullptr;
    obs::Counter* successes = nullptr;
    obs::Histogram* query_cost = nullptr;
    obs::Histogram* query_wall_us = nullptr;
  };
  Handles handles_;
  /// Query ordinal for span events (Execute stays const for callers).
  mutable int64_t queries_executed_ = 0;
};

}  // namespace stratlearn

#endif  // STRATLEARN_ENGINE_QUERY_PROCESSOR_H_
