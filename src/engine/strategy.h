#ifndef STRATLEARN_ENGINE_STRATEGY_H_
#define STRATLEARN_ENGINE_STRATEGY_H_

#include <string>
#include <vector>

#include "graph/inference_graph.h"
#include "util/status.h"

namespace stratlearn {

/// A query-processing strategy: the complete sequence of the graph's arcs
/// in the order the processor will consider them (Section 2.1). The
/// processor skips arcs whose tail it has not reached, and stops at the
/// first success (satisficing), so later entries may never execute.
class Strategy {
 public:
  Strategy() = default;

  /// Validates `arcs` against `graph`: the sequence must contain every
  /// arc exactly once, and each arc's tail must be the root or the head
  /// of an earlier arc.
  static Result<Strategy> FromArcOrder(const InferenceGraph& graph,
                                       std::vector<ArcId> arcs);

  /// Canonical "lazy" strategy realising a given visiting order of the
  /// success (leaf) arcs: for each leaf in order, the unvisited arcs of
  /// its root path are appended just in time. Every optimal strategy of
  /// an AOT graph has this form (prefix arcs are never paid early).
  static Strategy FromLeafOrder(const InferenceGraph& graph,
                                const std::vector<ArcId>& leaf_arcs);

  /// The default strategy: depth-first, left-to-right in rule order
  /// (Equation 4's Theta_ABCD for Figure 2).
  static Strategy DepthFirst(const InferenceGraph& graph);

  const std::vector<ArcId>& arcs() const { return arcs_; }
  size_t size() const { return arcs_.size(); }

  /// The order in which this strategy first visits the success arcs.
  std::vector<ArcId> LeafOrder(const InferenceGraph& graph) const;

  /// Note 3's path decomposition: maximal runs of arcs where each arc
  /// descends from the head of the previous one.
  std::vector<std::vector<ArcId>> Paths(const InferenceGraph& graph) const;

  /// Re-canonicalises to the lazy strategy with the same leaf order.
  Strategy Canonicalized(const InferenceGraph& graph) const;

  /// "<R_p D_p R_g D_g>" using arc labels.
  std::string ToString(const InferenceGraph& graph) const;

  /// One-line text form ("stratlearn-strategy v1 <arc ids>") for
  /// persisting a learned strategy alongside its serialised graph.
  std::string Serialize() const;

  /// Parses Serialize() output and validates it against `graph`.
  static Result<Strategy> Deserialize(const InferenceGraph& graph,
                                      std::string_view text);

  friend bool operator==(const Strategy& a, const Strategy& b) {
    return a.arcs_ == b.arcs_;
  }
  friend bool operator!=(const Strategy& a, const Strategy& b) {
    return !(a == b);
  }

 private:
  explicit Strategy(std::vector<ArcId> arcs) : arcs_(std::move(arcs)) {}

  std::vector<ArcId> arcs_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_ENGINE_STRATEGY_H_
