#include "engine/adaptive_qp.h"

#include "stats/chernoff.h"
#include "util/check.h"

namespace stratlearn {

AdaptiveQueryProcessor::AdaptiveQueryProcessor(const InferenceGraph* graph,
                                               std::vector<int64_t> quotas,
                                               QuotaMode mode,
                                               obs::Observer* observer)
    : graph_(graph),
      processor_(graph),
      initial_quotas_(quotas),
      remaining_(std::move(quotas)),
      mode_(mode),
      counters_(graph->num_experiments()) {
  STRATLEARN_CHECK(remaining_.size() == graph_->num_experiments());
  set_observer(observer);
}

void AdaptiveQueryProcessor::set_observer(obs::Observer* observer) {
  observer_ = observer;
  processor_.set_observer(observer);
  handles_ = Handles{};
  if (observer_ == nullptr || observer_->metrics() == nullptr) return;
  obs::MetricsRegistry* r = observer_->metrics();
  handles_.contexts = &r->GetCounter("qpa.contexts");
  handles_.blocked_aims = &r->GetCounter("qpa.blocked_aims");
  handles_.quota_remaining = &r->GetGauge("qpa.quota_remaining");
}

void AdaptiveQueryProcessor::set_audit_params(double delta, double epsilon) {
  audit_delta_ = delta;
  audit_epsilon_ = epsilon;
}

int AdaptiveQueryProcessor::PickTarget() const {
  int best = -1;
  int64_t best_remaining = 0;
  for (size_t i = 0; i < remaining_.size(); ++i) {
    if (remaining_[i] > best_remaining) {
      best_remaining = remaining_[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

Strategy AdaptiveQueryProcessor::AimingStrategy(int target_experiment) const {
  if (target_experiment < 0) return Strategy::DepthFirst(*graph_);
  ArcId target_arc = graph_->experiments()[target_experiment];
  std::vector<ArcId> order = graph_->Pi(target_arc);
  order.push_back(target_arc);
  std::vector<char> included(graph_->num_arcs(), 0);
  for (ArcId a : order) included[a] = 1;
  Strategy depth_first = Strategy::DepthFirst(*graph_);
  for (ArcId a : depth_first.arcs()) {
    if (!included[a]) order.push_back(a);
  }
  Result<Strategy> strategy = Strategy::FromArcOrder(*graph_, std::move(order));
  STRATLEARN_CHECK_MSG(strategy.ok(), "aiming strategy must be valid");
  return *std::move(strategy);
}

AdaptiveQueryProcessor::StepResult AdaptiveQueryProcessor::Process(
    const Context& context) {
  ++contexts_processed_;
  StepResult result;
  result.aimed_experiment = PickTarget();
  Strategy strategy = AimingStrategy(result.aimed_experiment);
  // Quota-transition detection for the audit layer: which experiments
  // still owed samples before this context ran.
  std::vector<int64_t> remaining_before;
  bool audit = observer_ != nullptr && observer_->audit_enabled() &&
               audit_delta_ > 0.0 && audit_delta_ < 1.0;
  if (audit) remaining_before = remaining_;
  result.trace = processor_.Execute(strategy, context);

  // Every attempted experiment yields a sample (and, having been reached,
  // an attempted reach as well). Attempts flagged as infrastructure
  // failures (retries exhausted, breaker open) are pessimistic
  // placeholders, not draws from the experiment's true distribution, so
  // they must not reduce the Equation 7/8 quotas.
  std::vector<char> attempted(graph_->num_experiments(), 0);
  for (const ArcAttempt& at : result.trace.attempts) {
    int e = graph_->arc(at.arc).experiment;
    if (e < 0 || at.infra_failure) continue;
    attempted[e] = 1;
    counters_[e].RecordAttempt(at.unblocked);
    --remaining_[e];
  }
  if (result.aimed_experiment >= 0) {
    result.reached = attempted[result.aimed_experiment] != 0;
    if (!result.reached) {
      // Aimed but blocked en route: Definition 1's attempted reach.
      counters_[result.aimed_experiment].RecordBlockedAim();
      if (mode_ == QuotaMode::kReachAttempts) {
        --remaining_[result.aimed_experiment];
      }
      if (handles_.blocked_aims != nullptr) {
        handles_.blocked_aims->Increment();
      }
    }
  }
  if (observer_ != nullptr) {
    int64_t remaining_max = 0;
    int64_t remaining_total = 0;
    for (int64_t r : remaining_) {
      if (r > 0) {
        remaining_total += r;
        if (r > remaining_max) remaining_max = r;
      }
    }
    if (handles_.contexts != nullptr) {
      handles_.contexts->Increment();
      handles_.quota_remaining->Set(static_cast<double>(remaining_total));
    }
    if (obs::TraceSink* sink = observer_->sink()) {
      sink->OnQuotaProgress({observer_->NowUs(), contexts_processed_,
                             result.aimed_experiment, result.reached,
                             remaining_max, remaining_total});
      // One certificate per experiment whose quota this context
      // completed (remaining crossed from positive to <= 0), carrying
      // the per-experiment tail delta/(2n) the Equation 7/8 quota
      // formulas allocate and the measured p-hat the samples back.
      if (audit) {
        int64_t n = static_cast<int64_t>(remaining_.size());
        double delta_step = audit_delta_ / (2.0 * static_cast<double>(n));
        for (size_t e = 0; e < remaining_.size(); ++e) {
          if (remaining_before[e] <= 0 || remaining_[e] > 0) continue;
          const ExperimentCounter& c = counters_[e];
          int64_t samples = mode_ == QuotaMode::kReachAttempts
                                ? c.reach_attempts()
                                : c.attempts();
          obs::DecisionCertificateEvent cert;
          cert.t_us = observer_->NowUs();
          cert.learner = "pao";
          cert.decision = "quota";
          cert.verdict = "met";
          cert.at_context = contexts_processed_;
          cert.samples = samples;
          cert.trials = 1;
          cert.subject = static_cast<int64_t>(e);
          cert.mean = c.SuccessFrequency();
          cert.delta_sum = static_cast<double>(samples);
          cert.threshold = static_cast<double>(initial_quotas_[e]);
          cert.margin = cert.delta_sum - cert.threshold;
          cert.range = 1.0;  // p-hat estimates live in [0, 1]
          cert.epsilon_n =
              samples > 0 && delta_step > 0.0 && delta_step < 1.0
                  ? HoeffdingDeviation(samples, delta_step, 1.0)
                  : 0.0;
          cert.delta_step = delta_step;
          cert.delta_budget = audit_delta_;
          audit_delta_spent_ += delta_step;
          cert.delta_spent_total = audit_delta_spent_;
          cert.bound_samples = initial_quotas_[e];
          cert.epsilon = audit_epsilon_;
          sink->OnDecisionCertificate(cert);
        }
      }
    }
  }
  return result;
}

bool AdaptiveQueryProcessor::QuotasMet() const {
  for (int64_t r : remaining_) {
    if (r > 0) return false;
  }
  return true;
}

AdaptiveQueryProcessor::Snapshot AdaptiveQueryProcessor::snapshot() const {
  Snapshot snap;
  snap.contexts = contexts_processed_;
  snap.quotas_met = QuotasMet();
  snap.experiments.reserve(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    Snapshot::Experiment e;
    e.quota = initial_quotas_[i];
    e.remaining = remaining_[i];
    e.attempts = counters_[i].attempts();
    e.successes = counters_[i].successes();
    e.blocked_aims = counters_[i].reach_attempts() - counters_[i].attempts();
    e.p_hat = counters_[i].SuccessFrequency();
    e.reach_hat = counters_[i].ReachFrequency();
    snap.experiments.push_back(e);
  }
  return snap;
}

AdaptiveQueryProcessor::Checkpoint AdaptiveQueryProcessor::GetCheckpoint()
    const {
  Checkpoint checkpoint;
  checkpoint.contexts = contexts_processed_;
  checkpoint.remaining = remaining_;
  checkpoint.counters.reserve(counters_.size());
  for (const ExperimentCounter& c : counters_) {
    checkpoint.counters.push_back(
        {c.attempts(), c.successes(),
         c.reach_attempts() - c.attempts()});
  }
  return checkpoint;
}

Status AdaptiveQueryProcessor::RestoreCheckpoint(
    const Checkpoint& checkpoint) {
  if (checkpoint.contexts < 0) {
    return Status::InvalidArgument("negative context counter");
  }
  if (checkpoint.remaining.size() != remaining_.size() ||
      checkpoint.counters.size() != counters_.size()) {
    return Status::InvalidArgument(
        "sampler checkpoint shape does not match the graph's experiments");
  }
  for (const Checkpoint::Counter& c : checkpoint.counters) {
    if (c.attempts < 0 || c.successes < 0 || c.successes > c.attempts ||
        c.blocked_aims < 0) {
      return Status::InvalidArgument("inconsistent experiment counters");
    }
  }
  contexts_processed_ = checkpoint.contexts;
  remaining_ = checkpoint.remaining;
  for (size_t i = 0; i < counters_.size(); ++i) {
    const Checkpoint::Counter& c = checkpoint.counters[i];
    counters_[i].Restore(c.attempts, c.successes, c.blocked_aims);
  }
  return Status::OK();
}

std::vector<double> AdaptiveQueryProcessor::SuccessFrequencies(
    double fallback) const {
  std::vector<double> p;
  p.reserve(counters_.size());
  for (const ExperimentCounter& c : counters_) {
    p.push_back(c.SuccessFrequency(fallback));
  }
  return p;
}

}  // namespace stratlearn
