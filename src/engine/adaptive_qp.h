#ifndef STRATLEARN_ENGINE_ADAPTIVE_QP_H_
#define STRATLEARN_ENGINE_ADAPTIVE_QP_H_

#include <cstdint>
#include <vector>

#include "engine/query_processor.h"
#include "robust/fault_injector.h"
#include "stats/counters.h"
#include "util/status.h"

namespace stratlearn {

/// The adaptive query processor QP^A of Section 4.1. A fixed strategy
/// cannot guarantee samples of every retrieval (if D_p always succeeds,
/// D_g is never attempted), so QP^A re-plans per context: it *aims* at
/// the experiment with the largest remaining sample quota by putting that
/// experiment's root path first, then answers the query normally with the
/// remaining arcs in default order. Each context still gets answered;
/// sampling is a side effect, as the paper's unobtrusiveness goal
/// requires.
class AdaptiveQueryProcessor {
 public:
  /// Which events count against the quotas.
  enum class QuotaMode {
    /// Theorem 2: quota counts actual attempts of the experiment
    /// (retrieval samples).
    kAttempts,
    /// Theorem 3: quota counts attempted reaches (Definition 1) —
    /// arrivals plus aims blocked en route.
    kReachAttempts,
  };

  /// `quotas[i]` is the required number of samples of experiment i
  /// (Equation 7 or 8). An optional observer records qpa.* metrics and
  /// QuotaProgress events (and is forwarded to the inner processor).
  AdaptiveQueryProcessor(const InferenceGraph* graph,
                         std::vector<int64_t> quotas, QuotaMode mode,
                         obs::Observer* observer = nullptr);

  void set_observer(obs::Observer* observer);

  /// PAO's confidence/accuracy parameters, for the audit layer: each
  /// experiment whose Equation 7/8 quota is met emits one "quota"
  /// DecisionCertificateEvent whose delta_step is the per-experiment
  /// tail delta/(2n) the quota formulas allocate. Without this call (or
  /// with an observer that has audit disabled) no certificate is
  /// emitted.
  void set_audit_params(double delta, double epsilon);

  /// Forwards a fault injector to the inner processor: every context is
  /// then answered on the resilient path. Infra-failed attempts (retries
  /// exhausted, breaker open) carry no information about the
  /// experiment's true outcome, so Process excludes them from the
  /// Equation 7/8 quota accounting; an *aimed* experiment whose attempt
  /// infra-failed counts as a blocked aim instead.
  void set_fault_injector(robust::FaultInjector* injector) {
    processor_.set_fault_injector(injector);
  }

  /// Read-only view of the sampler's estimate state: per-experiment
  /// quotas, progress and measured frequencies. Self-contained, so it
  /// can outlive the processor (PaoResult carries one).
  struct Snapshot {
    struct Experiment {
      int64_t quota = 0;        // Equation 7/8 requirement
      int64_t remaining = 0;    // may be negative after overshoot
      int64_t attempts = 0;
      int64_t successes = 0;
      int64_t blocked_aims = 0;
      double p_hat = 0.5;       // success frequency (0.5 fallback)
      double reach_hat = 0.0;   // measured rho(e)
    };
    int64_t contexts = 0;
    bool quotas_met = false;
    std::vector<Experiment> experiments;
  };
  Snapshot snapshot() const;

  struct StepResult {
    Trace trace;
    /// Which experiment this context aimed at (-1 if all quotas were
    /// already met and a plain depth-first strategy was used).
    int aimed_experiment = -1;
    /// Whether the aimed experiment was actually attempted.
    bool reached = false;
  };

  /// Processes one context, updating counters and quotas.
  StepResult Process(const Context& context);

  /// True when every experiment's remaining quota is <= 0.
  bool QuotasMet() const;

  /// Remaining quota per experiment (may be negative after overshoot).
  const std::vector<int64_t>& remaining() const { return remaining_; }

  /// Per-experiment attempt/success/aim counters.
  const std::vector<ExperimentCounter>& counters() const { return counters_; }

  /// Success-frequency vector p^ (fallback 0.5 for never-attempted
  /// experiments, as in Theorem 3).
  std::vector<double> SuccessFrequencies(double fallback = 0.5) const;

  /// Total contexts processed.
  int64_t contexts_processed() const { return contexts_processed_; }

  /// Checkpointable sampler state: context count, remaining quotas and
  /// the per-experiment counter triples. Together with the workload RNG
  /// state this is everything needed to resume a PAO run mid-stream.
  struct Checkpoint {
    struct Counter {
      int64_t attempts = 0;
      int64_t successes = 0;
      int64_t blocked_aims = 0;
    };
    int64_t contexts = 0;
    std::vector<int64_t> remaining;
    std::vector<Counter> counters;
  };
  Checkpoint GetCheckpoint() const;
  /// Rejects checkpoints whose shape or invariants do not match this
  /// processor's graph; on error the processor is left unchanged.
  Status RestoreCheckpoint(const Checkpoint& checkpoint);

 private:
  /// Index of the experiment with the largest remaining quota (> 0), or
  /// -1 when all quotas are met.
  int PickTarget() const;

  /// Strategy that visits `target`'s root path first, then the rest of
  /// the graph depth-first.
  Strategy AimingStrategy(int target_experiment) const;

  const InferenceGraph* graph_;
  QueryProcessor processor_;
  std::vector<int64_t> initial_quotas_;
  std::vector<int64_t> remaining_;
  QuotaMode mode_;
  std::vector<ExperimentCounter> counters_;
  int64_t contexts_processed_ = 0;
  /// Audit mode (set_audit_params): configured delta/epsilon and the
  /// running delta spend of emitted quota certificates.
  double audit_delta_ = 0.0;
  double audit_epsilon_ = 0.0;
  double audit_delta_spent_ = 0.0;
  obs::Observer* observer_ = nullptr;
  struct Handles {
    obs::Counter* contexts = nullptr;
    obs::Counter* blocked_aims = nullptr;
    obs::Gauge* quota_remaining = nullptr;
  };
  Handles handles_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_ENGINE_ADAPTIVE_QP_H_
