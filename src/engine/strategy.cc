#include "engine/strategy.h"

#include <cstdlib>
#include <unordered_set>

#include "util/string_util.h"

namespace stratlearn {

Result<Strategy> Strategy::FromArcOrder(const InferenceGraph& graph,
                                        std::vector<ArcId> arcs) {
  if (arcs.size() != graph.num_arcs()) {
    return Status::InvalidArgument(
        StrFormat("strategy has %zu arcs; graph has %zu", arcs.size(),
                  graph.num_arcs()));
  }
  std::vector<char> seen(graph.num_arcs(), 0);
  std::vector<char> visited(graph.num_nodes(), 0);
  visited[graph.root()] = 1;
  for (ArcId a : arcs) {
    if (a >= graph.num_arcs()) {
      return Status::InvalidArgument(StrFormat("unknown arc id %u", a));
    }
    if (seen[a]) {
      return Status::InvalidArgument(
          StrFormat("arc %u appears twice in strategy", a));
    }
    seen[a] = 1;
    const Arc& arc = graph.arc(a);
    if (!visited[arc.from]) {
      return Status::InvalidArgument(StrFormat(
          "arc %u (%s) appears before its tail node is reachable", a,
          arc.label.c_str()));
    }
    visited[arc.to] = 1;
  }
  return Strategy(std::move(arcs));
}

Strategy Strategy::FromLeafOrder(const InferenceGraph& graph,
                                 const std::vector<ArcId>& leaf_arcs) {
  std::vector<ArcId> arcs;
  arcs.reserve(graph.num_arcs());
  std::vector<char> included(graph.num_arcs(), 0);
  for (ArcId leaf : leaf_arcs) {
    for (ArcId a : graph.Pi(leaf)) {
      if (!included[a]) {
        included[a] = 1;
        arcs.push_back(a);
      }
    }
    if (!included[leaf]) {
      included[leaf] = 1;
      arcs.push_back(leaf);
    }
  }
  // Any arcs not on a success path (dead ends) are appended last so the
  // strategy still covers the whole graph.
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    if (!included[a]) {
      for (ArcId p : graph.Pi(a)) {
        if (!included[p]) {
          included[p] = 1;
          arcs.push_back(p);
        }
      }
      included[a] = 1;
      arcs.push_back(a);
    }
  }
  return Strategy(std::move(arcs));
}

Strategy Strategy::DepthFirst(const InferenceGraph& graph) {
  std::vector<ArcId> arcs;
  arcs.reserve(graph.num_arcs());
  // Preorder DFS from the root, children in rule order.
  std::vector<ArcId> stack;
  const Node& root = graph.node(graph.root());
  for (auto it = root.out_arcs.rbegin(); it != root.out_arcs.rend(); ++it) {
    stack.push_back(*it);
  }
  while (!stack.empty()) {
    ArcId a = stack.back();
    stack.pop_back();
    arcs.push_back(a);
    const Node& head = graph.node(graph.arc(a).to);
    for (auto it = head.out_arcs.rbegin(); it != head.out_arcs.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return Strategy(std::move(arcs));
}

std::vector<ArcId> Strategy::LeafOrder(const InferenceGraph& graph) const {
  std::vector<ArcId> leaves;
  for (ArcId a : arcs_) {
    if (graph.node(graph.arc(a).to).is_success) leaves.push_back(a);
  }
  return leaves;
}

std::vector<std::vector<ArcId>> Strategy::Paths(
    const InferenceGraph& graph) const {
  std::vector<std::vector<ArcId>> paths;
  for (size_t i = 0; i < arcs_.size(); ++i) {
    bool continues = false;
    if (i > 0) {
      continues = graph.arc(arcs_[i]).from == graph.arc(arcs_[i - 1]).to;
    }
    if (!continues) paths.emplace_back();
    paths.back().push_back(arcs_[i]);
  }
  return paths;
}

Strategy Strategy::Canonicalized(const InferenceGraph& graph) const {
  return FromLeafOrder(graph, LeafOrder(graph));
}

std::string Strategy::Serialize() const {
  std::string out = "stratlearn-strategy v1";
  for (ArcId a : arcs_) out += StrFormat(" %u", a);
  return out;
}

Result<Strategy> Strategy::Deserialize(const InferenceGraph& graph,
                                       std::string_view text) {
  std::vector<std::string> tokens;
  for (const std::string& piece : Split(Trim(text), ' ')) {
    if (!piece.empty()) tokens.push_back(piece);
  }
  if (tokens.size() < 2 || tokens[0] != "stratlearn-strategy" ||
      tokens[1] != "v1") {
    return Status::InvalidArgument(
        "missing 'stratlearn-strategy v1' header");
  }
  std::vector<ArcId> arcs;
  arcs.reserve(tokens.size() - 2);
  for (size_t i = 2; i < tokens.size(); ++i) {
    char* end = nullptr;
    unsigned long value = std::strtoul(tokens[i].c_str(), &end, 10);
    if (end != tokens[i].c_str() + tokens[i].size()) {
      return Status::InvalidArgument("bad arc id '" + tokens[i] + "'");
    }
    arcs.push_back(static_cast<ArcId>(value));
  }
  return FromArcOrder(graph, std::move(arcs));
}

std::string Strategy::ToString(const InferenceGraph& graph) const {
  std::vector<std::string> labels;
  labels.reserve(arcs_.size());
  for (ArcId a : arcs_) labels.push_back(graph.arc(a).label);
  return "<" + Join(labels, " ") + ">";
}

}  // namespace stratlearn
