#include "engine/query_processor.h"

#include <cmath>

#include "robust/fault_injector.h"
#include "util/check.h"

namespace stratlearn {

bool Trace::Attempted(const InferenceGraph& graph, int experiment) const {
  for (const ArcAttempt& a : attempts) {
    if (graph.arc(a.arc).experiment == experiment) return true;
  }
  return false;
}

void QueryProcessor::set_observer(obs::Observer* observer) {
  observer_ = observer;
  handles_ = Handles{};
  if (observer_ == nullptr || observer_->metrics() == nullptr) return;
  obs::MetricsRegistry* r = observer_->metrics();
  handles_.queries = &r->GetCounter("qp.queries");
  handles_.arc_attempts = &r->GetCounter("qp.arc_attempts");
  handles_.arcs_unblocked = &r->GetCounter("qp.arcs_unblocked");
  handles_.successes = &r->GetCounter("qp.successes");
  handles_.query_cost = &r->GetHistogram("qp.query_cost");
  handles_.query_wall_us = &r->GetHistogram("qp.query_wall_us");
  handles_.faults = &r->GetCounter("robust.faults");
  handles_.retries = &r->GetCounter("robust.retries");
  handles_.gave_up = &r->GetCounter("robust.gave_up");
  handles_.breaker_opens = &r->GetCounter("robust.breaker_opens");
  handles_.breaker_skips = &r->GetCounter("robust.breaker_skips");
  handles_.degraded = &r->GetCounter("robust.degraded");
}

void QueryProcessor::set_fault_injector(robust::FaultInjector* injector) {
  injector_ = injector;
}

Trace QueryProcessor::ExecuteObserved(const Strategy& strategy,
                                      const Context& context,
                                      const ExecutionOptions& options) const {
  int64_t query_index =
      queries_executed_.fetch_add(1, std::memory_order_relaxed);
  int64_t t0 = observer_->NowUs();
  obs::TraceSink* sink = observer_->sink();
  if (sink != nullptr) sink->OnQueryStart({query_index, t0});

  Trace trace =
      injector_ != nullptr
          ? ExecuteResilient(strategy, context, options, sink, query_index)
          : ExecuteImpl(strategy, context, options);
  int64_t t1 = observer_->NowUs();

  if (handles_.queries != nullptr) {
    handles_.queries->Increment();
    handles_.arc_attempts->Increment(
        static_cast<int64_t>(trace.attempts.size()));
    int64_t unblocked = 0;
    for (const ArcAttempt& a : trace.attempts) {
      if (a.unblocked) ++unblocked;
    }
    handles_.arcs_unblocked->Increment(unblocked);
    handles_.successes->Increment(trace.successes);
    handles_.query_cost->Record(trace.cost);
    handles_.query_wall_us->Record(static_cast<double>(t1 - t0));
  }
  if (sink != nullptr) {
    for (const ArcAttempt& a : trace.attempts) {
      const Arc& arc = graph_->arc(a.arc);
      sink->OnArcAttempt({query_index, t1, a.arc, arc.experiment,
                          a.unblocked, a.cost});
    }
    sink->OnQueryEnd({query_index, t0, t1 - t0, trace.cost,
                      static_cast<int64_t>(trace.attempts.size()),
                      trace.successes, trace.success});
  }
  return trace;
}

Trace QueryProcessor::ExecuteImpl(const Strategy& strategy,
                                  const Context& context,
                                  const ExecutionOptions& options) const {
  STRATLEARN_CHECK(context.num_experiments() == graph_->num_experiments());
  Trace trace;
  std::vector<char> visited(graph_->num_nodes(), 0);
  visited[graph_->root()] = 1;

  for (ArcId a : strategy.arcs()) {
    const Arc& arc = graph_->arc(a);
    if (!visited[arc.from]) continue;  // unreachable: skipped at no cost
    bool unblocked = arc.experiment < 0 ||
                     context.Unblocked(static_cast<size_t>(arc.experiment));
    double attempt_cost =
        arc.cost + (unblocked ? arc.success_cost : arc.failure_cost);
    trace.cost += attempt_cost;
    trace.attempts.push_back({a, unblocked, false, attempt_cost});
    if (!unblocked) continue;
    visited[arc.to] = 1;
    if (graph_->node(arc.to).is_success) {
      ++trace.successes;
      if (trace.first_success_arc == kInvalidArc) trace.first_success_arc = a;
      if (trace.successes >= options.stop_after_successes) break;
    }
  }
  trace.success = trace.successes >= options.stop_after_successes;
  return trace;
}

Trace QueryProcessor::ExecuteResilient(const Strategy& strategy,
                                       const Context& context,
                                       const ExecutionOptions& options,
                                       obs::TraceSink* sink,
                                       int64_t query_index) const {
  STRATLEARN_CHECK(context.num_experiments() == graph_->num_experiments());
  const robust::ResilienceOptions& res = injector_->resilience();
  // The breaker clock is the injector's own query counter, independent of
  // the observer's ordinal, so checkpointed resumption replays cooldowns
  // exactly even when the observed ordinal restarts.
  int64_t rq = injector_->BeginQuery();

  Trace trace;
  std::vector<char> visited(graph_->num_nodes(), 0);
  visited[graph_->root()] = 1;

  for (ArcId a : strategy.arcs()) {
    const Arc& arc = graph_->arc(a);
    if (!visited[arc.from]) continue;
    if (res.cost_budget > 0.0 && trace.cost >= res.cost_budget) {
      // Budget exhausted: the query degrades to "unresolved" rather than
      // running (or crashing) on. The truncated trace under-states
      // c(Theta, I), which Delta~ tolerates by construction.
      trace.resolved = false;
      if (handles_.degraded != nullptr) handles_.degraded->Increment();
      if (sink != nullptr) {
        sink->OnDegraded({observer_->NowUs(), query_index, trace.cost,
                          res.cost_budget,
                          static_cast<int64_t>(trace.attempts.size())});
      }
      break;
    }

    if (arc.experiment < 0) {
      // Deterministic arcs model local computation, not retrievals; the
      // fault model leaves them alone.
      bool unblocked = true;
      double attempt_cost = arc.cost + arc.success_cost;
      trace.cost += attempt_cost;
      trace.attempts.push_back({a, unblocked, false, attempt_cost});
      visited[arc.to] = 1;
      if (graph_->node(arc.to).is_success) {
        ++trace.successes;
        if (trace.first_success_arc == kInvalidArc) {
          trace.first_success_arc = a;
        }
        if (trace.successes >= options.stop_after_successes) break;
      }
      continue;
    }

    robust::BreakerDecision breaker = injector_->CheckBreaker(a, rq);
    if (breaker == robust::BreakerDecision::kOpen) {
      // Persistently failing retrieval: skip it outright, record it as
      // blocked at the arc's pessimistic cost. Charging failure_cost
      // keeps PIB's Delta~ a conservative under-estimate while the
      // breaker shields the run from the failing backend.
      double attempt_cost = arc.cost + arc.failure_cost;
      trace.cost += attempt_cost;
      trace.attempts.push_back({a, false, true, attempt_cost});
      if (handles_.breaker_skips != nullptr) {
        handles_.breaker_skips->Increment();
      }
      continue;
    }
    if (breaker == robust::BreakerDecision::kHalfOpenProbe &&
        sink != nullptr) {
      // The cooldown elapsed and this attempt is the single probe; its
      // outcome below either closes the breaker or re-opens it with
      // backed-off cooldown.
      robust::FaultInjectorState::BreakerEntry ledger =
          injector_->BreakerLedger(a);
      sink->OnBreaker({observer_->NowUs(), query_index, a, arc.experiment,
                       "half_open", ledger.consecutive_failures,
                       ledger.open_until});
    }

    bool true_unblocked =
        context.Unblocked(static_cast<size_t>(arc.experiment));
    bool observed_unblocked = false;
    bool infra_failure = false;
    double attempt_cost = 0.0;
    int tries = 0;
    for (;;) {
      double magnitude = 1.0;
      robust::FaultKind fault =
          injector_->SampleFault(arc.experiment, &magnitude);
      if (fault == robust::FaultKind::kNone ||
          fault == robust::FaultKind::kCostSpike) {
        // The attempt completed with a trustworthy result (a cost spike
        // only inflates the base cost, it does not corrupt the answer).
        double base = fault == robust::FaultKind::kCostSpike
                          ? arc.cost * magnitude
                          : arc.cost;
        attempt_cost += base + (true_unblocked ? arc.success_cost
                                               : arc.failure_cost);
        observed_unblocked = true_unblocked;
        if (fault == robust::FaultKind::kCostSpike &&
            handles_.faults != nullptr) {
          handles_.faults->Increment();
        }
        if (injector_->RecordRecovery(a) && sink != nullptr) {
          robust::FaultInjectorState::BreakerEntry ledger =
              injector_->BreakerLedger(a);
          sink->OnBreaker({observer_->NowUs(), query_index, a,
                           arc.experiment, "closed",
                           ledger.consecutive_failures, ledger.open_until});
        }
        break;
      }
      // kTransient / kCorrupt / kTimeout: the attempt yields nothing a
      // learner may trust. Its cost is still paid.
      attempt_cost +=
          fault == robust::FaultKind::kTimeout ? arc.cost * magnitude
                                               : arc.cost;
      if (handles_.faults != nullptr) handles_.faults->Increment();
      if (tries < res.max_retries) {
        double backoff =
            std::min(res.backoff_base * std::pow(res.backoff_multiplier,
                                                 static_cast<double>(tries)),
                     res.backoff_cap);
        attempt_cost += backoff;
        if (handles_.retries != nullptr) handles_.retries->Increment();
        if (sink != nullptr) {
          sink->OnRetry({observer_->NowUs(), query_index, a, arc.experiment,
                         robust::FaultKindName(fault), tries + 1, backoff,
                         false});
        }
        ++tries;
        continue;
      }
      // Retries exhausted: record the retrieval as blocked at its
      // pessimistic outcome cost and feed the circuit breaker.
      attempt_cost += arc.failure_cost;
      observed_unblocked = false;
      infra_failure = true;
      if (handles_.gave_up != nullptr) handles_.gave_up->Increment();
      if (sink != nullptr) {
        sink->OnRetry({observer_->NowUs(), query_index, a, arc.experiment,
                       robust::FaultKindName(fault), tries, 0.0, true});
      }
      if (injector_->RecordInfraFailure(a, rq)) {
        if (handles_.breaker_opens != nullptr) {
          handles_.breaker_opens->Increment();
        }
        if (sink != nullptr) {
          robust::FaultInjectorState::BreakerEntry ledger =
              injector_->BreakerLedger(a);
          sink->OnBreaker({observer_->NowUs(), query_index, a,
                           arc.experiment, "open",
                           ledger.consecutive_failures, ledger.open_until});
        }
      }
      break;
    }

    trace.cost += attempt_cost;
    trace.attempts.push_back({a, observed_unblocked, infra_failure,
                              attempt_cost});
    if (!observed_unblocked) continue;
    visited[arc.to] = 1;
    if (graph_->node(arc.to).is_success) {
      ++trace.successes;
      if (trace.first_success_arc == kInvalidArc) trace.first_success_arc = a;
      if (trace.successes >= options.stop_after_successes) break;
    }
  }
  trace.success = trace.successes >= options.stop_after_successes;
  return trace;
}

double QueryProcessor::Cost(const Strategy& strategy,
                            const Context& context) const {
  return Execute(strategy, context).cost;
}

}  // namespace stratlearn
