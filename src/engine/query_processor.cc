#include "engine/query_processor.h"

#include "util/check.h"

namespace stratlearn {

bool Trace::Attempted(const InferenceGraph& graph, int experiment) const {
  for (const ArcAttempt& a : attempts) {
    if (graph.arc(a.arc).experiment == experiment) return true;
  }
  return false;
}

void QueryProcessor::set_observer(obs::Observer* observer) {
  observer_ = observer;
  handles_ = Handles{};
  if (observer_ == nullptr || observer_->metrics() == nullptr) return;
  obs::MetricsRegistry* r = observer_->metrics();
  handles_.queries = &r->GetCounter("qp.queries");
  handles_.arc_attempts = &r->GetCounter("qp.arc_attempts");
  handles_.arcs_unblocked = &r->GetCounter("qp.arcs_unblocked");
  handles_.successes = &r->GetCounter("qp.successes");
  handles_.query_cost = &r->GetHistogram("qp.query_cost");
  handles_.query_wall_us = &r->GetHistogram("qp.query_wall_us");
}

Trace QueryProcessor::ExecuteObserved(const Strategy& strategy,
                                      const Context& context,
                                      const ExecutionOptions& options) const {
  int64_t query_index = queries_executed_++;
  int64_t t0 = observer_->NowUs();
  obs::TraceSink* sink = observer_->sink();
  if (sink != nullptr) sink->OnQueryStart({query_index, t0});

  Trace trace = ExecuteImpl(strategy, context, options);
  int64_t t1 = observer_->NowUs();

  if (handles_.queries != nullptr) {
    handles_.queries->Increment();
    handles_.arc_attempts->Increment(
        static_cast<int64_t>(trace.attempts.size()));
    int64_t unblocked = 0;
    for (const ArcAttempt& a : trace.attempts) {
      if (a.unblocked) ++unblocked;
    }
    handles_.arcs_unblocked->Increment(unblocked);
    handles_.successes->Increment(trace.successes);
    handles_.query_cost->Record(trace.cost);
    handles_.query_wall_us->Record(static_cast<double>(t1 - t0));
  }
  if (sink != nullptr) {
    for (const ArcAttempt& a : trace.attempts) {
      const Arc& arc = graph_->arc(a.arc);
      double attempt_cost =
          arc.cost + (a.unblocked ? arc.success_cost : arc.failure_cost);
      sink->OnArcAttempt({query_index, t1, a.arc, arc.experiment,
                          a.unblocked, attempt_cost});
    }
    sink->OnQueryEnd({query_index, t0, t1 - t0, trace.cost,
                      static_cast<int64_t>(trace.attempts.size()),
                      trace.successes, trace.success});
  }
  return trace;
}

Trace QueryProcessor::ExecuteImpl(const Strategy& strategy,
                                  const Context& context,
                                  const ExecutionOptions& options) const {
  STRATLEARN_CHECK(context.num_experiments() == graph_->num_experiments());
  Trace trace;
  std::vector<char> visited(graph_->num_nodes(), 0);
  visited[graph_->root()] = 1;

  for (ArcId a : strategy.arcs()) {
    const Arc& arc = graph_->arc(a);
    if (!visited[arc.from]) continue;  // unreachable: skipped at no cost
    bool unblocked = arc.experiment < 0 ||
                     context.Unblocked(static_cast<size_t>(arc.experiment));
    trace.cost += arc.cost +
                  (unblocked ? arc.success_cost : arc.failure_cost);
    trace.attempts.push_back({a, unblocked});
    if (!unblocked) continue;
    visited[arc.to] = 1;
    if (graph_->node(arc.to).is_success) {
      ++trace.successes;
      if (trace.first_success_arc == kInvalidArc) trace.first_success_arc = a;
      if (trace.successes >= options.stop_after_successes) break;
    }
  }
  trace.success = trace.successes >= options.stop_after_successes;
  return trace;
}

double QueryProcessor::Cost(const Strategy& strategy,
                            const Context& context) const {
  return Execute(strategy, context).cost;
}

}  // namespace stratlearn
