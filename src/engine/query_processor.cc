#include "engine/query_processor.h"

#include "util/check.h"

namespace stratlearn {

bool Trace::Attempted(const InferenceGraph& graph, int experiment) const {
  for (const ArcAttempt& a : attempts) {
    if (graph.arc(a.arc).experiment == experiment) return true;
  }
  return false;
}

Trace QueryProcessor::Execute(const Strategy& strategy,
                              const Context& context,
                              const ExecutionOptions& options) const {
  STRATLEARN_CHECK(context.num_experiments() == graph_->num_experiments());
  Trace trace;
  std::vector<char> visited(graph_->num_nodes(), 0);
  visited[graph_->root()] = 1;

  for (ArcId a : strategy.arcs()) {
    const Arc& arc = graph_->arc(a);
    if (!visited[arc.from]) continue;  // unreachable: skipped at no cost
    bool unblocked = arc.experiment < 0 ||
                     context.Unblocked(static_cast<size_t>(arc.experiment));
    trace.cost += arc.cost +
                  (unblocked ? arc.success_cost : arc.failure_cost);
    trace.attempts.push_back({a, unblocked});
    if (!unblocked) continue;
    visited[arc.to] = 1;
    if (graph_->node(arc.to).is_success) {
      ++trace.successes;
      if (trace.first_success_arc == kInvalidArc) trace.first_success_arc = a;
      if (trace.successes >= options.stop_after_successes) break;
    }
  }
  trace.success = trace.successes >= options.stop_after_successes;
  return trace;
}

double QueryProcessor::Cost(const Strategy& strategy,
                            const Context& context) const {
  return Execute(strategy, context).cost;
}

}  // namespace stratlearn
