#ifndef STRATLEARN_DATALOG_SYMBOL_TABLE_H_
#define STRATLEARN_DATALOG_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stratlearn {

/// Interned identifier for a predicate name, constant, or variable name.
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = 0xffffffffu;

/// Bidirectional string <-> SymbolId interning table. All Datalog
/// structures store SymbolIds; the table is needed only to print them or
/// to parse text. Not thread-safe.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = default;
  SymbolTable& operator=(const SymbolTable&) = default;

  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidSymbol if it was never interned.
  SymbolId Lookup(std::string_view name) const;

  /// Returns the string for an id interned earlier. Aborts on bad ids.
  const std::string& Name(SymbolId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_SYMBOL_TABLE_H_
