#include "datalog/evaluator.h"

#include "util/check.h"

namespace stratlearn {

Result<ProofResult> Evaluator::Prove(const Atom& query,
                                     SymbolTable* symbols) {
  STRATLEARN_CHECK(symbols != nullptr);
  SearchState state;
  std::vector<Atom> goals = {query};
  SolveGoals(goals, 0, Substitution(), 0, symbols, &state);
  if (state.exhausted && state.stats.answers_found == 0) {
    return Status::ResourceExhausted(
        "proof search exceeded its step budget before finding an answer");
  }
  state.stats.proved = state.stats.answers_found > 0;
  return state.stats;
}

bool Evaluator::SolveGoals(const std::vector<Atom>& goals, size_t goal_index,
                           Substitution subst, int depth,
                           SymbolTable* symbols, SearchState* state) {
  if (state->exhausted) return true;
  if (goal_index == goals.size()) {
    ++state->stats.answers_found;
    return state->stats.answers_found >= options_.max_answers;
  }
  if (depth > options_.max_depth) return false;
  if (++state->steps > options_.max_steps) {
    state->exhausted = true;
    return true;
  }

  Atom goal = subst.Apply(goals[goal_index]);

  // Extensional branch: try facts in the database.
  if (goal.IsGround()) {
    ++state->stats.retrievals;
    if (db_->Contains(goal)) {
      if (SolveGoals(goals, goal_index + 1, subst, depth, symbols, state)) {
        return true;
      }
    }
  } else {
    std::vector<FactTuple> matches;
    db_->Match(goal, &matches);
    state->stats.retrievals += static_cast<int64_t>(matches.size()) + 1;
    for (const FactTuple& tuple : matches) {
      Substitution extended = subst;
      bool ok = true;
      for (size_t i = 0; i < goal.args.size() && ok; ++i) {
        if (goal.args[i].is_variable()) {
          ok = extended.Bind(goal.args[i].symbol, Term::Constant(tuple[i]));
        }
      }
      if (!ok) continue;
      if (SolveGoals(goals, goal_index + 1, extended, depth, symbols,
                     state)) {
        return true;
      }
    }
  }

  // Intensional branch: try each rule whose head unifies with the goal.
  for (const Clause& rule : rules_->RulesFor(goal.predicate)) {
    Clause fresh = RenameClause(rule, state->rename_counter++, symbols);
    Substitution extended = subst;
    if (!UnifyAtoms(goal, fresh.head, &extended)) continue;
    ++state->stats.reductions;
    // Splice the rule body in front of the remaining goals.
    std::vector<Atom> next_goals;
    next_goals.reserve(fresh.body.size() + goals.size() - goal_index - 1);
    for (const Atom& b : fresh.body) next_goals.push_back(b);
    for (size_t i = goal_index + 1; i < goals.size(); ++i) {
      next_goals.push_back(goals[i]);
    }
    if (SolveGoals(next_goals, 0, extended, depth + 1, symbols, state)) {
      return true;
    }
  }
  return false;
}

}  // namespace stratlearn
