#ifndef STRATLEARN_DATALOG_TERM_H_
#define STRATLEARN_DATALOG_TERM_H_

#include <cstdint>
#include <functional>

#include "datalog/symbol_table.h"

namespace stratlearn {

/// A Datalog term: either a constant or a variable (the language is
/// function-free, so there are no compound terms).
struct Term {
  enum class Kind : uint8_t { kConstant, kVariable };

  Kind kind = Kind::kConstant;
  SymbolId symbol = kInvalidSymbol;

  static Term Constant(SymbolId s) { return Term{Kind::kConstant, s}; }
  static Term Variable(SymbolId s) { return Term{Kind::kVariable, s}; }

  bool is_constant() const { return kind == Kind::kConstant; }
  bool is_variable() const { return kind == Kind::kVariable; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.symbol == b.symbol;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
};

struct TermHash {
  size_t operator()(const Term& t) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(t.symbol) << 1) |
                                 static_cast<uint64_t>(t.kind));
  }
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_TERM_H_
