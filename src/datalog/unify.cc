#include "datalog/unify.h"

#include "util/string_util.h"

namespace stratlearn {

Term Substitution::Walk(Term t) const {
  while (t.is_variable()) {
    auto it = bindings_.find(t.symbol);
    if (it == bindings_.end()) break;
    t = it->second;
  }
  return t;
}

bool Substitution::Bind(SymbolId var, Term value) {
  Term existing = Walk(Term::Variable(var));
  Term target = Walk(value);
  if (existing.is_variable()) {
    if (target.is_variable() && target.symbol == existing.symbol) return true;
    bindings_[existing.symbol] = target;
    return true;
  }
  // existing is a constant; target must match.
  if (target.is_variable()) {
    bindings_[target.symbol] = existing;
    return true;
  }
  return existing.symbol == target.symbol;
}

Atom Substitution::Apply(const Atom& atom) const {
  Atom out;
  out.predicate = atom.predicate;
  out.args.reserve(atom.args.size());
  for (const Term& t : atom.args) out.args.push_back(Walk(t));
  return out;
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst) {
  if (a.predicate != b.predicate || a.arity() != b.arity()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    Term ta = subst->Walk(a.args[i]);
    Term tb = subst->Walk(b.args[i]);
    if (ta.is_constant() && tb.is_constant()) {
      if (ta.symbol != tb.symbol) return false;
    } else if (ta.is_variable()) {
      if (!subst->Bind(ta.symbol, tb)) return false;
    } else {  // tb variable, ta constant
      if (!subst->Bind(tb.symbol, ta)) return false;
    }
  }
  return true;
}

Clause RenameClause(const Clause& clause, int invocation,
                    SymbolTable* symbols) {
  auto rename_atom = [&](const Atom& atom) {
    Atom out;
    out.predicate = atom.predicate;
    out.args.reserve(atom.args.size());
    for (const Term& t : atom.args) {
      if (t.is_variable()) {
        std::string fresh =
            StrFormat("%s@%d", symbols->Name(t.symbol).c_str(), invocation);
        out.args.push_back(Term::Variable(symbols->Intern(fresh)));
      } else {
        out.args.push_back(t);
      }
    }
    return out;
  };
  Clause out;
  out.head = rename_atom(clause.head);
  out.body.reserve(clause.body.size());
  for (const Atom& b : clause.body) out.body.push_back(rename_atom(b));
  return out;
}

}  // namespace stratlearn
