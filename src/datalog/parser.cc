#include "datalog/parser.h"

#include <cctype>

#include "util/string_util.h"

namespace stratlearn {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

void Parser::SkipSpace(Cursor& c) {
  while (c.pos < c.text.size()) {
    char ch = c.text[c.pos];
    if (ch == '\n') {
      ++c.line;
      ++c.pos;
    } else if (std::isspace(static_cast<unsigned char>(ch))) {
      ++c.pos;
    } else if (ch == '%' || ch == '#') {
      while (c.pos < c.text.size() && c.text[c.pos] != '\n') ++c.pos;
    } else {
      break;
    }
  }
}

bool Parser::Consume(Cursor& c, char ch) {
  SkipSpace(c);
  if (c.pos < c.text.size() && c.text[c.pos] == ch) {
    ++c.pos;
    return true;
  }
  return false;
}

Status Parser::ErrorAt(const Cursor& c, const std::string& what) {
  return Status::InvalidArgument(
      StrFormat("parse error at line %d: %s", c.line, what.c_str()));
}

Result<Term> Parser::ParseTerm(Cursor& c) {
  SkipSpace(c);
  if (c.pos >= c.text.size()) return ErrorAt(c, "expected term");
  char first = c.text[c.pos];

  if (first == '\'') {
    // Quoted constant.
    size_t start = ++c.pos;
    while (c.pos < c.text.size() && c.text[c.pos] != '\'') ++c.pos;
    if (c.pos >= c.text.size()) return ErrorAt(c, "unterminated quote");
    std::string_view name = c.text.substr(start, c.pos - start);
    ++c.pos;  // closing quote
    return Term::Constant(symbols_->Intern(name));
  }
  if (std::isdigit(static_cast<unsigned char>(first))) {
    size_t start = c.pos;
    while (c.pos < c.text.size() &&
           std::isdigit(static_cast<unsigned char>(c.text[c.pos]))) {
      ++c.pos;
    }
    return Term::Constant(symbols_->Intern(c.text.substr(start, c.pos - start)));
  }
  if (!IsIdentStart(first)) return ErrorAt(c, "expected term");
  size_t start = c.pos;
  while (c.pos < c.text.size() && IsIdentChar(c.text[c.pos])) ++c.pos;
  std::string_view name = c.text.substr(start, c.pos - start);
  bool is_var = std::isupper(static_cast<unsigned char>(first)) || first == '_';
  SymbolId id = symbols_->Intern(name);
  return is_var ? Term::Variable(id) : Term::Constant(id);
}

Result<Atom> Parser::ParseAtomAt(Cursor& c) {
  SkipSpace(c);
  if (c.pos >= c.text.size() || !IsIdentStart(c.text[c.pos]) ||
      std::isupper(static_cast<unsigned char>(c.text[c.pos]))) {
    return ErrorAt(c, "expected predicate name");
  }
  size_t start = c.pos;
  while (c.pos < c.text.size() && IsIdentChar(c.text[c.pos])) ++c.pos;
  SymbolId pred = symbols_->Intern(c.text.substr(start, c.pos - start));

  Atom atom;
  atom.predicate = pred;
  if (!Consume(c, '(')) return atom;  // propositional atom
  if (Consume(c, ')')) return atom;   // empty argument list
  for (;;) {
    Result<Term> term = ParseTerm(c);
    if (!term.ok()) return term.status();
    atom.args.push_back(*term);
    if (Consume(c, ')')) break;
    if (!Consume(c, ',')) return ErrorAt(c, "expected ',' or ')'");
  }
  return atom;
}

bool Parser::ConsumeNegation(Cursor& c) {
  SkipSpace(c);
  if (c.pos + 1 < c.text.size() && c.text[c.pos] == '\\' &&
      c.text[c.pos + 1] == '+') {
    c.pos += 2;
    return true;
  }
  // `not` is a keyword only when followed by a separate atom, so a
  // predicate named `not` ("not." / "not(X)") still parses as an atom.
  if (c.text.substr(c.pos, 3) == "not" &&
      c.pos + 3 < c.text.size() &&
      std::isspace(static_cast<unsigned char>(c.text[c.pos + 3]))) {
    size_t after = c.pos + 3;
    Cursor probe = c;
    probe.pos = after;
    SkipSpace(probe);
    if (probe.pos < c.text.size() && IsIdentStart(c.text[probe.pos]) &&
        !std::isupper(static_cast<unsigned char>(c.text[probe.pos]))) {
      c = probe;
      return true;
    }
  }
  return false;
}

Result<Clause> Parser::ParseClauseAt(Cursor& c) {
  Result<Atom> head = ParseAtomAt(c);
  if (!head.ok()) return head.status();
  Clause clause;
  clause.head = *head;

  SkipSpace(c);
  if (c.pos + 1 < c.text.size() && c.text[c.pos] == ':' &&
      c.text[c.pos + 1] == '-') {
    c.pos += 2;
    for (;;) {
      bool negated = ConsumeNegation(c);
      Result<Atom> body_atom = ParseAtomAt(c);
      if (!body_atom.ok()) return body_atom.status();
      clause.body.push_back(*body_atom);
      clause.negated.push_back(negated ? 1 : 0);
      SkipSpace(c);
      if (!Consume(c, ',')) break;
    }
  }
  if (!Consume(c, '.')) return ErrorAt(c, "expected '.' at end of clause");
  return clause;
}

Result<Program> Parser::ParseProgram(std::string_view text) {
  Cursor c{text, 0, 1};
  Program program;
  for (;;) {
    SkipSpace(c);
    if (c.pos >= c.text.size()) break;
    int line = c.line;
    Result<Clause> clause = ParseClauseAt(c);
    if (!clause.ok()) return clause.status();
    if (clause->IsFact()) {
      program.facts.push_back(std::move(*clause));
      program.fact_lines.push_back(line);
    } else {
      program.rules.push_back(std::move(*clause));
      program.rule_lines.push_back(line);
    }
  }
  return program;
}

Result<Atom> Parser::ParseAtom(std::string_view text) {
  Cursor c{text, 0, 1};
  Result<Atom> atom = ParseAtomAt(c);
  if (!atom.ok()) return atom;
  SkipSpace(c);
  Consume(c, '.');  // trailing period is optional for queries
  SkipSpace(c);
  if (c.pos != c.text.size()) {
    return ErrorAt(c, "trailing input after atom");
  }
  return atom;
}

Status Parser::LoadProgram(std::string_view text, Database* db,
                           RuleBase* rules) {
  Result<Program> program = ParseProgram(text);
  if (!program.ok()) return program.status();
  for (size_t i = 0; i < program->facts.size(); ++i) {
    const Clause& fact = program->facts[i];
    if (!fact.head.IsGround()) {
      return Status::InvalidArgument(StrFormat(
          "line %d: fact '%s' is not ground", program->fact_lines[i],
          fact.head.ToString(*symbols_).c_str()));
    }
    STRATLEARN_RETURN_IF_ERROR(db->Insert(fact.head));
  }
  for (size_t i = 0; i < program->rules.size(); ++i) {
    Clause& rule = program->rules[i];
    if (rule.HasNegation()) {
      return Status::Unimplemented(StrFormat(
          "line %d: rule '%s' uses negation as failure, which the "
          "executable engines do not evaluate inside rule bodies "
          "(see apps/naf.h); `stratlearn_cli verify` can still check it",
          program->rule_lines[i], rule.ToString(*symbols_).c_str()));
    }
    STRATLEARN_RETURN_IF_ERROR(rules->AddRule(std::move(rule)));
  }
  return Status::OK();
}

}  // namespace stratlearn
