#include "datalog/atom.h"

namespace stratlearn {

bool Atom::IsGround() const {
  for (const Term& t : args) {
    if (t.is_variable()) return false;
  }
  return true;
}

std::string Atom::ToString(const SymbolTable& symbols) const {
  std::string out = symbols.Name(predicate);
  if (args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.Name(args[i].symbol);
  }
  out += ")";
  return out;
}

size_t AtomHash::operator()(const Atom& a) const {
  size_t h = std::hash<uint32_t>()(a.predicate);
  TermHash th;
  for (const Term& t : a.args) {
    h = h * 1000003u + th(t);
  }
  return h;
}

}  // namespace stratlearn
