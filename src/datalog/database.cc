#include "datalog/database.h"

#include <unordered_map>

#include "util/string_util.h"

namespace stratlearn {

std::string Database::EncodeTuple(const FactTuple& t) {
  std::string key;
  key.reserve(t.size() * sizeof(SymbolId));
  for (SymbolId s : t) {
    key.append(reinterpret_cast<const char*>(&s), sizeof(SymbolId));
  }
  return key;
}

Status Database::Insert(const Atom& fact) {
  if (!fact.IsGround()) {
    return Status::InvalidArgument("database facts must be ground");
  }
  FactTuple tuple;
  tuple.reserve(fact.args.size());
  for (const Term& t : fact.args) tuple.push_back(t.symbol);
  return Insert(fact.predicate, std::move(tuple));
}

Status Database::Insert(SymbolId predicate, FactTuple args) {
  Relation& rel = relations_[predicate];
  if (rel.arity < 0) {
    rel.arity = static_cast<int>(args.size());
  } else if (rel.arity != static_cast<int>(args.size())) {
    return Status::FailedPrecondition(
        StrFormat("arity mismatch for predicate %u: have %d, got %zu",
                  predicate, rel.arity, args.size()));
  }
  std::string key = EncodeTuple(args);
  if (rel.members.insert(key).second) {
    if (!args.empty()) {
      rel.first_arg_index[args[0]].push_back(
          static_cast<uint32_t>(rel.tuples.size()));
    }
    rel.tuples.push_back(std::move(args));
  }
  return Status::OK();
}

bool Database::Contains(const Atom& fact) const {
  if (!fact.IsGround()) return false;
  FactTuple tuple;
  tuple.reserve(fact.args.size());
  for (const Term& t : fact.args) tuple.push_back(t.symbol);
  return Contains(fact.predicate, tuple);
}

bool Database::Contains(SymbolId predicate, const FactTuple& args) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  if (it->second.arity != static_cast<int>(args.size())) return false;
  return it->second.members.count(EncodeTuple(args)) > 0;
}

void Database::Match(const Atom& pattern, std::vector<FactTuple>* out) const {
  auto it = relations_.find(pattern.predicate);
  if (it == relations_.end()) return;
  const Relation& rel = it->second;
  if (rel.arity != static_cast<int>(pattern.args.size())) return;

  // Matches `tuple` against the pattern, honouring repeated variables.
  auto matches = [&pattern](const FactTuple& tuple) {
    std::unordered_map<SymbolId, SymbolId> bindings;
    for (size_t i = 0; i < pattern.args.size(); ++i) {
      const Term& t = pattern.args[i];
      if (t.is_constant()) {
        if (tuple[i] != t.symbol) return false;
      } else {
        auto [bit, inserted] = bindings.emplace(t.symbol, tuple[i]);
        if (!inserted && bit->second != tuple[i]) return false;
      }
    }
    return true;
  };

  // Use the first-argument index when the first position is bound.
  if (!pattern.args.empty() && pattern.args[0].is_constant()) {
    auto idx = rel.first_arg_index.find(pattern.args[0].symbol);
    if (idx == rel.first_arg_index.end()) return;
    for (uint32_t ti : idx->second) {
      if (matches(rel.tuples[ti])) out->push_back(rel.tuples[ti]);
    }
    return;
  }
  for (const FactTuple& tuple : rel.tuples) {
    if (matches(tuple)) out->push_back(tuple);
  }
}

int64_t Database::CountFacts(SymbolId predicate) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return 0;
  return static_cast<int64_t>(it->second.tuples.size());
}

int64_t Database::TotalFacts() const {
  int64_t total = 0;
  for (const auto& [pred, rel] : relations_) {
    (void)pred;
    total += static_cast<int64_t>(rel.tuples.size());
  }
  return total;
}

int Database::Arity(SymbolId predicate) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return -1;
  return it->second.arity;
}

std::vector<SymbolId> Database::Predicates() const {
  std::vector<SymbolId> out;
  out.reserve(relations_.size());
  for (const auto& [pred, rel] : relations_) {
    (void)rel;
    out.push_back(pred);
  }
  return out;
}

void Database::Clear() { relations_.clear(); }

}  // namespace stratlearn
