#ifndef STRATLEARN_DATALOG_CLAUSE_H_
#define STRATLEARN_DATALOG_CLAUSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/atom.h"

namespace stratlearn {

/// A clause: head :- body_1, ..., body_k. A fact is a clause with an
/// empty body and a ground head. Body literals may be negated
/// (negation-as-failure, Section 5.2); `negated` is either empty (all
/// positive) or parallel to `body`.
struct Clause {
  Atom head;
  std::vector<Atom> body;
  std::vector<uint8_t> negated;

  Clause() = default;
  Clause(Atom h, std::vector<Atom> b)
      : head(std::move(h)), body(std::move(b)) {}

  bool IsFact() const { return body.empty(); }

  /// True when body literal `i` is negated ("not p(X)").
  bool IsNegated(size_t i) const {
    return i < negated.size() && negated[i] != 0;
  }

  /// True when any body literal is negated.
  bool HasNegation() const;

  /// A clause is *range restricted* (safe) when every variable of the
  /// head also appears in a positive body literal. Facts must be ground.
  bool IsRangeRestricted() const;

  /// "head :- b1, not b2." or "head." for facts.
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Clause& a, const Clause& b) {
    if (a.head != b.head || a.body != b.body) return false;
    for (size_t i = 0; i < a.body.size(); ++i) {
      if (a.IsNegated(i) != b.IsNegated(i)) return false;
    }
    return true;
  }
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_CLAUSE_H_
