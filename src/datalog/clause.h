#ifndef STRATLEARN_DATALOG_CLAUSE_H_
#define STRATLEARN_DATALOG_CLAUSE_H_

#include <string>
#include <vector>

#include "datalog/atom.h"

namespace stratlearn {

/// A definite clause: head :- body_1, ..., body_k. A fact is a clause
/// with an empty body and a ground head.
struct Clause {
  Atom head;
  std::vector<Atom> body;

  Clause() = default;
  Clause(Atom h, std::vector<Atom> b)
      : head(std::move(h)), body(std::move(b)) {}

  bool IsFact() const { return body.empty(); }

  /// A clause is *range restricted* (safe) when every variable of the
  /// head also appears in the body. Facts must be ground.
  bool IsRangeRestricted() const;

  /// "head :- b1, b2." or "head." for facts.
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Clause& a, const Clause& b) {
    return a.head == b.head && a.body == b.body;
  }
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_CLAUSE_H_
