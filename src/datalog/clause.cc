#include "datalog/clause.h"

#include <unordered_set>

namespace stratlearn {

bool Clause::HasNegation() const {
  for (uint8_t n : negated) {
    if (n != 0) return true;
  }
  return false;
}

bool Clause::IsRangeRestricted() const {
  if (IsFact()) return head.IsGround();
  std::unordered_set<SymbolId> body_vars;
  for (size_t i = 0; i < body.size(); ++i) {
    if (IsNegated(i)) continue;  // only positive literals bind variables
    for (const Term& t : body[i].args) {
      if (t.is_variable()) body_vars.insert(t.symbol);
    }
  }
  for (const Term& t : head.args) {
    if (t.is_variable() && body_vars.count(t.symbol) == 0) return false;
  }
  return true;
}

std::string Clause::ToString(const SymbolTable& symbols) const {
  std::string out = head.ToString(symbols);
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      if (IsNegated(i)) out += "not ";
      out += body[i].ToString(symbols);
    }
  }
  out += ".";
  return out;
}

}  // namespace stratlearn
