#include "datalog/clause.h"

#include <unordered_set>

namespace stratlearn {

bool Clause::IsRangeRestricted() const {
  if (IsFact()) return head.IsGround();
  std::unordered_set<SymbolId> body_vars;
  for (const Atom& a : body) {
    for (const Term& t : a.args) {
      if (t.is_variable()) body_vars.insert(t.symbol);
    }
  }
  for (const Term& t : head.args) {
    if (t.is_variable() && body_vars.count(t.symbol) == 0) return false;
  }
  return true;
}

std::string Clause::ToString(const SymbolTable& symbols) const {
  std::string out = head.ToString(symbols);
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString(symbols);
    }
  }
  out += ".";
  return out;
}

}  // namespace stratlearn
