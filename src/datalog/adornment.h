#ifndef STRATLEARN_DATALOG_ADORNMENT_H_
#define STRATLEARN_DATALOG_ADORNMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datalog/clause.h"
#include "datalog/symbol_table.h"

namespace stratlearn {

/// A binding pattern ("adornment" in the magic-sets / QSQ literature):
/// one flag per argument position, true when the argument is bound to a
/// constant at call time. Written as a b/f string — instructor^b,
/// path^bf — matching the paper's query-form notation q^alpha.
struct Adornment {
  std::vector<bool> bound;

  static Adornment AllFree(size_t arity) {
    Adornment a;
    a.bound.assign(arity, false);
    return a;
  }

  size_t arity() const { return bound.size(); }

  /// True when no argument is bound (and there is at least one
  /// argument): calls with this pattern can only be answered by a full
  /// scan of the predicate's extension.
  bool IsAllFree() const {
    for (bool b : bound) {
      if (b) return false;
    }
    return !bound.empty();
  }

  bool IsAllBound() const {
    for (bool b : bound) {
      if (!b) return false;
    }
    return true;
  }

  /// "bf" / "bbf"; arity 0 renders as "" (a propositional call has no
  /// binding pattern).
  std::string ToString() const;

  friend bool operator==(const Adornment& a, const Adornment& b) {
    return a.bound == b.bound;
  }
  friend bool operator<(const Adornment& a, const Adornment& b) {
    return a.bound < b.bound;
  }
};

/// A deterministically ordered set of adornments (sorted vector; at
/// most 2^arity entries, so the per-predicate lattice is bounded). This
/// is the join-semilattice element of the binding-pattern dataflow: the
/// join is set union, bottom is the empty set.
class AdornmentSet {
 public:
  /// Inserts `a`, keeping the set sorted. Returns true when new.
  bool Insert(const Adornment& a);

  /// Set union. Returns true when `this` grew.
  bool UnionWith(const AdornmentSet& other);

  bool Contains(const Adornment& a) const;

  const std::vector<Adornment>& adornments() const { return adornments_; }
  size_t size() const { return adornments_.size(); }
  bool empty() const { return adornments_.empty(); }

  friend bool operator==(const AdornmentSet& a, const AdornmentSet& b) {
    return a.adornments_ == b.adornments_;
  }

 private:
  std::vector<Adornment> adornments_;
};

/// One body literal's slot in a sideways-information-passing ordering:
/// which literal was selected, the adornment it is called with, and
/// whether selecting it bound at least one previously free variable
/// (i.e. whether it *contributes* bindings rather than merely testing).
struct SipStep {
  size_t literal = 0;
  Adornment adornment;
  bool contributes = false;
  /// False when the literal was selected with every argument free even
  /// though other orders were tried first (the infeasible case).
  bool feasible = true;
};

/// A sideways-information-passing ordering of one rule body for one
/// head adornment. Feasibility means every positive literal could be
/// selected with at least one bound argument (arity-0 literals are
/// trivially feasible) and every negated literal with all its variables
/// bound. Because selecting a feasible literal only ever grows the set
/// of bound variables, feasibility is order-independent: if the greedy
/// ordering below gets stuck, every ordering does.
struct SipOrdering {
  std::vector<SipStep> steps;
  bool feasible = true;
};

/// Computes the deterministic greedy SIP ordering of `rule`'s body for
/// a call with `head` adornment: bind the head variables in bound
/// positions (and all constants), then repeatedly select the first
/// not-yet-selected literal that is currently callable — a positive
/// literal with >= 1 bound argument or arity 0, or a negated literal
/// with every variable bound — and mark all its variables bound
/// (negated literals bind nothing; negation as failure only tests).
/// When no literal is callable the first remaining one is selected
/// infeasibly with its actual (all-free) pattern.
SipOrdering ComputeSip(const Clause& rule, const Adornment& head);

/// The binding-pattern (adornment) dataflow result over a whole
/// program: for every predicate, the set of adornments it can be called
/// with when queries arrive with the seed form's pattern. This is the
/// static half of Query-Subquery evaluation — QSQ nets key their
/// subquery tables by exactly these adornments.
struct AdornmentTable {
  SymbolId predicate = kInvalidSymbol;
  /// True when the predicate heads at least one rule (intensional).
  bool intensional = false;
  AdornmentSet callable;
};

struct AdornmentAnalysis {
  /// One row per predicate mentioned anywhere in the program, sorted by
  /// predicate name (deterministic across interning orders).
  std::vector<AdornmentTable> tables;
  /// False when the fixpoint hit its iteration cap (values are then a
  /// sound under-approximation; see verify's V-D005).
  bool converged = true;
  int64_t iterations = 0;

  /// The table row for `predicate`, or nullptr.
  const AdornmentTable* Find(SymbolId predicate) const;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_ADORNMENT_H_
