#include "datalog/rule_base.h"

#include <unordered_set>

namespace stratlearn {

Status RuleBase::AddRule(Clause rule) {
  if (rule.IsFact()) {
    return Status::InvalidArgument(
        "facts belong in the Database, not the RuleBase");
  }
  if (!rule.IsRangeRestricted()) {
    return Status::InvalidArgument("rule is not range restricted");
  }
  by_head_[rule.head.predicate].push_back(rule);
  rules_.push_back(std::move(rule));
  return Status::OK();
}

const std::vector<Clause>& RuleBase::RulesFor(SymbolId predicate) const {
  static const std::vector<Clause>* empty = new std::vector<Clause>();
  auto it = by_head_.find(predicate);
  if (it == by_head_.end()) return *empty;
  return it->second;
}

bool RuleBase::IsRecursive(SymbolId predicate) const {
  // DFS over the predicate-dependency graph looking for a cycle back to
  // `predicate`.
  std::unordered_set<SymbolId> visited;
  std::vector<SymbolId> stack = {predicate};
  bool first = true;
  while (!stack.empty()) {
    SymbolId p = stack.back();
    stack.pop_back();
    if (!first && p == predicate) return true;
    first = false;
    if (!visited.insert(p).second && p != predicate) continue;
    auto it = by_head_.find(p);
    if (it == by_head_.end()) continue;
    for (const Clause& rule : it->second) {
      for (const Atom& b : rule.body) {
        if (b.predicate == predicate) return true;
        if (visited.count(b.predicate) == 0) stack.push_back(b.predicate);
      }
    }
  }
  return false;
}

}  // namespace stratlearn
