#ifndef STRATLEARN_DATALOG_EVALUATOR_H_
#define STRATLEARN_DATALOG_EVALUATOR_H_

#include <cstdint>

#include "datalog/atom.h"
#include "datalog/database.h"
#include "datalog/rule_base.h"
#include "datalog/unify.h"
#include "util/status.h"

namespace stratlearn {

/// Options for the reference evaluator.
struct EvaluatorOptions {
  /// Maximum resolution depth before a branch is abandoned. Guards
  /// against recursive rule sets.
  int max_depth = 64;
  /// Total budget of resolution + retrieval steps; exceeding it aborts the
  /// proof attempt with ResourceExhausted.
  int64_t max_steps = 1'000'000;
  /// Stop after this many distinct proofs have been found (satisficing
  /// search uses 1; Section 5.2's first-k-answers variant uses k).
  int64_t max_answers = 1;
};

/// Outcome of a proof attempt.
struct ProofResult {
  bool proved = false;
  /// Number of proofs found (<= options.max_answers).
  int64_t answers_found = 0;
  /// Resolution (rule reduction) steps performed.
  int64_t reductions = 0;
  /// Database retrievals attempted (ground membership checks plus
  /// enumerated match candidates).
  int64_t retrievals = 0;
};

/// Reference top-down SLD evaluator over a Database + RuleBase. This is
/// the general substrate evaluator: it handles conjunctive rule bodies,
/// non-ground subgoals (enumerating database matches) and recursion (via
/// the depth/step budgets). The strategy-learning layer uses the
/// specialised engine in src/engine instead; this evaluator grounds the
/// Datalog-backed workloads and the examples, and serves as an oracle in
/// integration tests.
class Evaluator {
 public:
  Evaluator(const Database* db, const RuleBase* rules,
            EvaluatorOptions options = {})
      : db_(db), rules_(rules), options_(options) {}

  /// Attempts to prove `query` (ground or existential). Returns
  /// ResourceExhausted if the step budget is hit before a decision.
  Result<ProofResult> Prove(const Atom& query, SymbolTable* symbols);

 private:
  struct SearchState {
    ProofResult stats;
    int64_t steps = 0;
    int rename_counter = 0;
    bool exhausted = false;
  };

  /// Proves the goal list `goals[goal_index..]` under `subst`. Returns
  /// true if enough answers were found to stop the whole search.
  bool SolveGoals(const std::vector<Atom>& goals, size_t goal_index,
                  Substitution subst, int depth, SymbolTable* symbols,
                  SearchState* state);

  const Database* db_;
  const RuleBase* rules_;
  EvaluatorOptions options_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_EVALUATOR_H_
