#ifndef STRATLEARN_DATALOG_PARSER_H_
#define STRATLEARN_DATALOG_PARSER_H_

#include <string_view>
#include <vector>

#include "datalog/clause.h"
#include "datalog/database.h"
#include "datalog/rule_base.h"
#include "util/status.h"

namespace stratlearn {

/// A parsed Datalog program: facts plus rules, with the source line of
/// each clause (parallel vectors) so static analysis can point at the
/// offending clause. Facts are clauses with an empty body; groundness is
/// checked at load time (LoadProgram) or by `stratlearn_cli verify`, not
/// here, so the verifier can diagnose non-ground facts instead of
/// aborting the parse.
struct Program {
  std::vector<Clause> facts;
  std::vector<Clause> rules;
  std::vector<int> fact_lines;
  std::vector<int> rule_lines;
};

/// Recursive-descent parser for a small Datalog syntax:
///
///   prof(russ).                       % fact
///   instructor(X) :- prof(X).        % rule
///   path(X, Y) :- edge(X, Z), path(Z, Y).
///   pauper(X) :- person(X), not owns(X, anything).   % NAF literal
///
/// Identifiers starting with a lowercase letter (or digits, or quoted
/// 'strings') are constants/predicates; identifiers starting with an
/// uppercase letter or '_' are variables. '%' and '#' start comments that
/// run to end of line. Every clause ends with '.'. Body literals may be
/// negated with `not` or `\+` (negation as failure); such rules parse —
/// so the static verifier can check safety and stratification — but are
/// rejected by LoadProgram, since the executable engines implement NAF
/// at the application layer (apps/naf.h), not inside rule bodies.
class Parser {
 public:
  explicit Parser(SymbolTable* symbols) : symbols_(symbols) {}

  /// Parses a whole program text.
  Result<Program> ParseProgram(std::string_view text);

  /// Parses a single atom, e.g. a query "instructor(manolis)".
  Result<Atom> ParseAtom(std::string_view text);

  /// Loads a program's facts into `db` and rules into `rules`.
  Status LoadProgram(std::string_view text, Database* db, RuleBase* rules);

 private:
  struct Cursor {
    std::string_view text;
    size_t pos = 0;
    int line = 1;
  };

  void SkipSpace(Cursor& c);
  bool Consume(Cursor& c, char ch);
  bool ConsumeNegation(Cursor& c);
  Result<Term> ParseTerm(Cursor& c);
  Result<Atom> ParseAtomAt(Cursor& c);
  Result<Clause> ParseClauseAt(Cursor& c);
  Status ErrorAt(const Cursor& c, const std::string& what);

  SymbolTable* symbols_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_PARSER_H_
