#ifndef STRATLEARN_DATALOG_PARSER_H_
#define STRATLEARN_DATALOG_PARSER_H_

#include <string_view>
#include <vector>

#include "datalog/clause.h"
#include "datalog/database.h"
#include "datalog/rule_base.h"
#include "util/status.h"

namespace stratlearn {

/// A parsed Datalog program: ground facts plus rules.
struct Program {
  std::vector<Clause> facts;
  std::vector<Clause> rules;
};

/// Recursive-descent parser for a small Datalog syntax:
///
///   prof(russ).                       % fact
///   instructor(X) :- prof(X).        % rule
///   path(X, Y) :- edge(X, Z), path(Z, Y).
///
/// Identifiers starting with a lowercase letter (or digits, or quoted
/// 'strings') are constants/predicates; identifiers starting with an
/// uppercase letter or '_' are variables. '%' and '#' start comments that
/// run to end of line. Every clause ends with '.'.
class Parser {
 public:
  explicit Parser(SymbolTable* symbols) : symbols_(symbols) {}

  /// Parses a whole program text.
  Result<Program> ParseProgram(std::string_view text);

  /// Parses a single atom, e.g. a query "instructor(manolis)".
  Result<Atom> ParseAtom(std::string_view text);

  /// Loads a program's facts into `db` and rules into `rules`.
  Status LoadProgram(std::string_view text, Database* db, RuleBase* rules);

 private:
  struct Cursor {
    std::string_view text;
    size_t pos = 0;
    int line = 1;
  };

  void SkipSpace(Cursor& c);
  bool Consume(Cursor& c, char ch);
  Result<Term> ParseTerm(Cursor& c);
  Result<Atom> ParseAtomAt(Cursor& c);
  Result<Clause> ParseClauseAt(Cursor& c);
  Status ErrorAt(const Cursor& c, const std::string& what);

  SymbolTable* symbols_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_PARSER_H_
