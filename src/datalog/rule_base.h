#ifndef STRATLEARN_DATALOG_RULE_BASE_H_
#define STRATLEARN_DATALOG_RULE_BASE_H_

#include <unordered_map>
#include <vector>

#include "datalog/clause.h"
#include "util/status.h"

namespace stratlearn {

/// The static rule component of a knowledge base: all non-atomic definite
/// clauses, grouped by head predicate and kept in insertion order (the
/// initial strategy of a query processor follows rule order).
class RuleBase {
 public:
  RuleBase() = default;

  /// Adds a rule. Returns InvalidArgument for facts (empty body) or
  /// clauses that are not range restricted.
  Status AddRule(Clause rule);

  /// All rules whose head predicate is `predicate`, in insertion order.
  const std::vector<Clause>& RulesFor(SymbolId predicate) const;

  /// Every rule, in insertion order.
  const std::vector<Clause>& AllRules() const { return rules_; }

  size_t size() const { return rules_.size(); }

  /// True when `predicate` can (transitively) invoke itself through the
  /// rule set. The inference-graph builder refuses such predicates.
  bool IsRecursive(SymbolId predicate) const;

  /// Predicates that head at least one rule. A predicate with no rules is
  /// a database (extensional) predicate.
  bool IsIntensional(SymbolId predicate) const {
    return by_head_.count(predicate) > 0;
  }

 private:
  std::vector<Clause> rules_;
  std::unordered_map<SymbolId, std::vector<Clause>> by_head_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_RULE_BASE_H_
