#ifndef STRATLEARN_DATALOG_DATABASE_H_
#define STRATLEARN_DATALOG_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/atom.h"
#include "util/status.h"

namespace stratlearn {

/// A fact tuple: the constant arguments of one ground atom.
using FactTuple = std::vector<SymbolId>;

/// Store of ground atomic facts, grouped by predicate.
///
/// Supports the operations the query processor needs:
///  * `Contains` — exact ground-atom membership (the "attempted database
///    retrieval" of the paper), O(1) expected;
///  * `Match` — enumerate tuples compatible with a partially-bound
///    pattern, accelerated by a first-bound-argument index;
///  * `CountFacts` — per-predicate fact counts, which the Smith [Smi89]
///    baseline uses as (questionable) probability surrogates.
class Database {
 public:
  Database() = default;

  /// Inserts a ground fact. Returns InvalidArgument for non-ground atoms
  /// and FailedPrecondition on arity mismatch with earlier facts of the
  /// same predicate. Duplicate inserts are OK (set semantics).
  Status Insert(const Atom& fact);

  /// Convenience: insert predicate + constant arguments directly.
  Status Insert(SymbolId predicate, FactTuple args);

  /// True when the exact ground atom is present.
  bool Contains(const Atom& fact) const;
  bool Contains(SymbolId predicate, const FactTuple& args) const;

  /// Appends every stored tuple of `pattern.predicate` that agrees with
  /// `pattern` on its constant positions. Variable positions match
  /// anything (repeated variables must bind consistently).
  void Match(const Atom& pattern, std::vector<FactTuple>* out) const;

  /// Number of facts stored for `predicate` (0 if unknown).
  int64_t CountFacts(SymbolId predicate) const;

  /// Total number of facts across predicates.
  int64_t TotalFacts() const;

  /// Arity recorded for `predicate`, or -1 if no facts were inserted.
  int Arity(SymbolId predicate) const;

  /// All predicates that have at least one fact.
  std::vector<SymbolId> Predicates() const;

  void Clear();

 private:
  struct Relation {
    int arity = -1;
    std::vector<FactTuple> tuples;
    // Encoded-tuple membership set for O(1) Contains.
    std::unordered_set<std::string> members;
    // (arg position, symbol) -> tuple indexes, built lazily for position 0.
    std::unordered_map<SymbolId, std::vector<uint32_t>> first_arg_index;
  };

  static std::string EncodeTuple(const FactTuple& t);

  std::unordered_map<SymbolId, Relation> relations_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_DATABASE_H_
