#ifndef STRATLEARN_DATALOG_ATOM_H_
#define STRATLEARN_DATALOG_ATOM_H_

#include <string>
#include <vector>

#include "datalog/symbol_table.h"
#include "datalog/term.h"

namespace stratlearn {

/// An atomic formula p(t1, ..., tn). Arity 0 is allowed.
struct Atom {
  SymbolId predicate = kInvalidSymbol;
  std::vector<Term> args;

  Atom() = default;
  Atom(SymbolId pred, std::vector<Term> a)
      : predicate(pred), args(std::move(a)) {}

  size_t arity() const { return args.size(); }

  /// True when every argument is a constant.
  bool IsGround() const;

  /// Renders "p(a, X)" using `symbols` for names.
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
};

struct AtomHash {
  size_t operator()(const Atom& a) const;
};

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_ATOM_H_
