#ifndef STRATLEARN_DATALOG_UNIFY_H_
#define STRATLEARN_DATALOG_UNIFY_H_

#include <optional>
#include <unordered_map>

#include "datalog/atom.h"
#include "datalog/clause.h"

namespace stratlearn {

/// A substitution mapping variable symbols to terms. Function-free, so a
/// variable binds either to a constant or to another variable.
class Substitution {
 public:
  Substitution() = default;

  /// Resolves `t` through the binding chain until a constant or an
  /// unbound variable is reached.
  Term Walk(Term t) const;

  /// Binds variable `var` to `value`. Returns false on a conflicting
  /// existing binding.
  bool Bind(SymbolId var, Term value);

  /// Applies the substitution to every argument of `atom`.
  Atom Apply(const Atom& atom) const;

  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }

 private:
  std::unordered_map<SymbolId, Term> bindings_;
};

/// Unifies two atoms (same predicate and arity required), extending
/// `subst`. Returns false and leaves `subst` in an unspecified state on
/// failure; callers should copy first when they need rollback.
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst);

/// Renames every variable in `clause` by suffixing a fresh index, so
/// different rule invocations cannot capture each other's variables.
Clause RenameClause(const Clause& clause, int invocation, SymbolTable* symbols);

}  // namespace stratlearn

#endif  // STRATLEARN_DATALOG_UNIFY_H_
