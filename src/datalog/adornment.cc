#include "datalog/adornment.h"

#include <algorithm>
#include <unordered_set>

namespace stratlearn {

std::string Adornment::ToString() const {
  std::string out;
  out.reserve(bound.size());
  for (bool b : bound) out.push_back(b ? 'b' : 'f');
  return out;
}

bool AdornmentSet::Insert(const Adornment& a) {
  auto it = std::lower_bound(adornments_.begin(), adornments_.end(), a);
  if (it != adornments_.end() && *it == a) return false;
  adornments_.insert(it, a);
  return true;
}

bool AdornmentSet::UnionWith(const AdornmentSet& other) {
  bool grew = false;
  for (const Adornment& a : other.adornments_) {
    grew = Insert(a) || grew;
  }
  return grew;
}

bool AdornmentSet::Contains(const Adornment& a) const {
  return std::binary_search(adornments_.begin(), adornments_.end(), a);
}

namespace {

/// The adornment a literal is called with, given the currently bound
/// variables: constants are bound, variables are bound iff seen.
Adornment LiteralAdornment(const Atom& literal,
                           const std::unordered_set<SymbolId>& bound_vars) {
  Adornment a = Adornment::AllFree(literal.args.size());
  for (size_t i = 0; i < literal.args.size(); ++i) {
    const Term& t = literal.args[i];
    a.bound[i] = t.is_constant() || bound_vars.count(t.symbol) > 0;
  }
  return a;
}

/// Whether a literal may be selected now. Positive literals need one
/// bound argument (or arity 0) to avoid an unconstrained scan; negated
/// literals need every variable bound (NAF only tests, never binds).
bool IsCallable(const Atom& literal, bool negated, const Adornment& a) {
  if (negated) {
    for (size_t i = 0; i < literal.args.size(); ++i) {
      if (literal.args[i].is_variable() && !a.bound[i]) return false;
    }
    return true;
  }
  if (literal.args.empty()) return true;
  for (bool b : a.bound) {
    if (b) return true;
  }
  return false;
}

}  // namespace

SipOrdering ComputeSip(const Clause& rule, const Adornment& head) {
  std::unordered_set<SymbolId> bound_vars;
  size_t head_arity =
      std::min(rule.head.args.size(), head.bound.size());
  for (size_t i = 0; i < head_arity; ++i) {
    if (head.bound[i] && rule.head.args[i].is_variable()) {
      bound_vars.insert(rule.head.args[i].symbol);
    }
  }

  SipOrdering out;
  std::vector<char> selected(rule.body.size(), 0);
  for (size_t step = 0; step < rule.body.size(); ++step) {
    size_t pick = rule.body.size();
    Adornment pick_adornment;
    bool feasible = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (selected[i] != 0) continue;
      Adornment a = LiteralAdornment(rule.body[i], bound_vars);
      if (IsCallable(rule.body[i], rule.IsNegated(i), a)) {
        pick = i;
        pick_adornment = std::move(a);
        feasible = true;
        break;
      }
      if (pick == rule.body.size()) {
        // Fallback: the first remaining literal, with its actual
        // (insufficient) pattern, so the infeasible step still reports
        // what the processor would have to do.
        pick = i;
        pick_adornment = std::move(a);
      }
    }
    selected[pick] = 1;
    SipStep sip;
    sip.literal = pick;
    sip.adornment = std::move(pick_adornment);
    sip.feasible = feasible;
    if (!rule.IsNegated(pick)) {
      for (const Term& t : rule.body[pick].args) {
        if (t.is_variable() && bound_vars.insert(t.symbol).second) {
          sip.contributes = true;
        }
      }
    }
    out.feasible = out.feasible && feasible;
    out.steps.push_back(std::move(sip));
  }
  return out;
}

const AdornmentTable* AdornmentAnalysis::Find(SymbolId predicate) const {
  for (const AdornmentTable& t : tables) {
    if (t.predicate == predicate) return &t;
  }
  return nullptr;
}

}  // namespace stratlearn
