#include "andor/and_or_serialization.h"

#include <cstdlib>
#include <vector>

#include "util/string_util.h"

namespace stratlearn {

namespace {

constexpr std::string_view kGraphHeader = "stratlearn-andor v1";
constexpr std::string_view kStrategyHeader = "stratlearn-andor-strategy v1";

char KindChar(AndOrKind kind) {
  switch (kind) {
    case AndOrKind::kAnd:
      return 'A';
    case AndOrKind::kOr:
      return 'O';
    case AndOrKind::kLeaf:
      return 'L';
  }
  return '?';
}

bool ParseUint(std::string_view token, uint32_t* out) {
  std::string buffer(token);
  char* end = nullptr;
  unsigned long value = std::strtoul(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

std::string SerializeAndOrGraph(const AndOrGraph& graph) {
  std::string out(kGraphHeader);
  out += "\n";
  for (AndOrNodeId n = 0; n < graph.num_nodes(); ++n) {
    const AndOrNode& node = graph.node(n);
    std::string parent = node.parent == kInvalidAndOrNode
                             ? "-"
                             : StrFormat("%u", node.parent);
    out += StrFormat("node %c %s %.17g %s\n", KindChar(node.kind),
                     parent.c_str(), node.cost, node.label.c_str());
  }
  return out;
}

Result<AndOrGraph> DeserializeAndOrGraph(std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != kGraphHeader) {
    return Status::InvalidArgument("missing 'stratlearn-andor v1' header");
  }
  AndOrGraph graph;
  size_t node_count = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    if (!StartsWith(line, "node ")) {
      return Status::InvalidArgument(
          StrFormat("unrecognised record on line %zu", i + 1));
    }
    // node <kind> <parent|-> <cost> <label...>
    std::vector<std::string> fields = Split(line.substr(5), ' ');
    if (fields.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("malformed node record on line %zu", i + 1));
    }
    AndOrKind kind;
    if (fields[0] == "A") {
      kind = AndOrKind::kAnd;
    } else if (fields[0] == "O") {
      kind = AndOrKind::kOr;
    } else if (fields[0] == "L") {
      kind = AndOrKind::kLeaf;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown node kind on line %zu", i + 1));
    }
    double cost = std::atof(fields[2].c_str());
    // Label: everything after the third field.
    std::string label;
    for (size_t f = 3; f < fields.size(); ++f) {
      if (f > 3) label += " ";
      label += fields[f];
    }
    if (node_count == 0) {
      if (fields[1] != "-") {
        return Status::InvalidArgument("root must have parent '-'");
      }
      if (kind == AndOrKind::kLeaf && cost <= 0.0) {
        return Status::InvalidArgument("root leaf needs positive cost");
      }
      graph.AddRoot(kind, label, kind == AndOrKind::kLeaf ? cost : 1.0);
    } else {
      uint32_t parent = 0;
      if (!ParseUint(fields[1], &parent) || parent >= node_count) {
        return Status::InvalidArgument(
            StrFormat("bad parent on line %zu", i + 1));
      }
      if (graph.node(parent).kind == AndOrKind::kLeaf) {
        return Status::InvalidArgument(
            StrFormat("line %zu hangs a child off a leaf", i + 1));
      }
      if (kind == AndOrKind::kLeaf) {
        if (cost <= 0.0) {
          return Status::InvalidArgument(
              StrFormat("leaf on line %zu needs positive cost", i + 1));
        }
        graph.AddLeaf(parent, label, cost);
      } else {
        graph.AddInternal(parent, kind, label);
      }
    }
    ++node_count;
  }
  if (node_count == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  STRATLEARN_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

std::string SerializeAndOrStrategy(const AndOrGraph& graph,
                                   const AndOrStrategy& strategy) {
  std::string out(kStrategyHeader);
  for (AndOrNodeId n = 0; n < graph.num_nodes(); ++n) {
    const std::vector<AndOrNodeId>& order = strategy.OrderAt(n);
    if (order.size() < 2) continue;
    out += StrFormat(" %u:", n);
    for (size_t i = 0; i < order.size(); ++i) {
      out += StrFormat(i == 0 ? "%u" : ",%u", order[i]);
    }
  }
  return out;
}

Result<AndOrStrategy> DeserializeAndOrStrategy(const AndOrGraph& graph,
                                               std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (!StartsWith(trimmed, kStrategyHeader)) {
    return Status::InvalidArgument(
        "missing 'stratlearn-andor-strategy v1' header");
  }
  AndOrStrategy strategy = AndOrStrategy::Default(graph);
  std::vector<std::string> tokens =
      Split(trimmed.substr(kStrategyHeader.size()), ' ');
  for (const std::string& token : tokens) {
    if (Trim(token).empty()) continue;
    std::vector<std::string> parts = Split(token, ':');
    uint32_t node = 0;
    if (parts.size() != 2 || !ParseUint(parts[0], &node) ||
        node >= graph.num_nodes()) {
      return Status::InvalidArgument("bad strategy token '" + token + "'");
    }
    std::vector<std::string> ids = Split(parts[1], ',');
    if (ids.size() != graph.node(node).children.size()) {
      return Status::InvalidArgument(
          StrFormat("node %u order has wrong length", node));
    }
    // Apply the order via selection swaps so validity is preserved.
    for (size_t i = 0; i < ids.size(); ++i) {
      uint32_t child = 0;
      if (!ParseUint(ids[i], &child)) {
        return Status::InvalidArgument("bad child id '" + ids[i] + "'");
      }
      const std::vector<AndOrNodeId>& now = strategy.OrderAt(node);
      size_t j = i;
      while (j < now.size() && now[j] != child) ++j;
      if (j >= now.size()) {
        return Status::InvalidArgument(StrFormat(
            "node %u order is not a permutation of its children", node));
      }
      if (j != i) strategy = strategy.WithSwappedChildren(node, i, j);
    }
  }
  STRATLEARN_RETURN_IF_ERROR(strategy.Validate(graph));
  return strategy;
}

}  // namespace stratlearn
