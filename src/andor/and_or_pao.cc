#include "andor/and_or_pao.h"

#include <algorithm>

#include "stats/chernoff.h"
#include "stats/counters.h"
#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn {

namespace {

/// A strategy that pulls `target`'s path to the front at every internal
/// node between the root and the leaf.
AndOrStrategy AimingStrategy(const AndOrGraph& graph, AndOrNodeId target) {
  AndOrStrategy strategy = AndOrStrategy::Default(graph);
  AndOrNodeId walk = target;
  while (graph.node(walk).parent != kInvalidAndOrNode) {
    AndOrNodeId parent = graph.node(walk).parent;
    const std::vector<AndOrNodeId>& order = strategy.OrderAt(parent);
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == walk && i != 0) {
        strategy = strategy.WithSwappedChildren(parent, 0, i);
        break;
      }
    }
    walk = parent;
  }
  return strategy;
}

}  // namespace

std::vector<int64_t> AndOrPao::ComputeQuotas(const AndOrGraph& graph,
                                             const AndOrPaoOptions& options) {
  const int64_t n = static_cast<int64_t>(graph.num_experiments());
  double total = graph.TotalLeafCost();
  std::vector<int64_t> quotas;
  quotas.reserve(graph.num_experiments());
  for (AndOrNodeId leaf : graph.experiments()) {
    double f_neg = total - graph.node(leaf).cost;
    quotas.push_back(
        PaoRetrievalQuota(n, f_neg, options.epsilon, options.delta));
  }
  return quotas;
}

Result<AndOrPaoResult> AndOrPao::Run(const AndOrGraph& graph,
                                     ContextOracle& oracle, Rng& rng,
                                     const AndOrPaoOptions& options) {
  if (oracle.num_experiments() != graph.num_experiments()) {
    return Status::InvalidArgument(
        "oracle and graph disagree on the number of leaves");
  }
  if (options.epsilon <= 0.0 || options.delta <= 0.0 ||
      options.delta >= 1.0) {
    return Status::InvalidArgument("epsilon/delta out of range");
  }

  AndOrPaoResult result;
  result.quotas = ComputeQuotas(graph, options);
  std::vector<int64_t> remaining = result.quotas;
  std::vector<ExperimentCounter> counters(graph.num_experiments());
  AndOrProcessor processor(&graph);

  auto pick_target = [&]() {
    int best = -1;
    int64_t most = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (remaining[i] > most) {
        most = remaining[i];
        best = static_cast<int>(i);
      }
    }
    return best;
  };

  for (;;) {
    int target = pick_target();
    if (target < 0) break;
    if (result.contexts_used >= options.max_contexts) {
      return Status::ResourceExhausted(StrFormat(
          "AND/OR PAO sampling did not meet its quotas within %lld "
          "contexts",
          static_cast<long long>(options.max_contexts)));
    }
    ++result.contexts_used;
    AndOrStrategy strategy =
        AimingStrategy(graph, graph.experiments()[static_cast<size_t>(target)]);
    AndOrTrace trace = processor.Execute(strategy, oracle.Next(rng));
    bool target_attempted = false;
    for (const AndOrAttempt& attempt : trace.attempts) {
      int e = graph.node(attempt.leaf).experiment;
      counters[static_cast<size_t>(e)].RecordAttempt(attempt.succeeded);
      --remaining[static_cast<size_t>(e)];
      if (e == target) target_attempted = true;
    }
    if (!target_attempted) {
      // Blocked aim: an earlier outcome resolved the query (or pruned
      // the target's conjunction) first. Credit the aim so low-reach
      // leaves cannot stall the loop (Theorem 3's idea); their estimate
      // matters less for exactly the same reason they are hard to reach.
      counters[static_cast<size_t>(target)].RecordBlockedAim();
      --remaining[static_cast<size_t>(target)];
    }
  }

  result.estimates.reserve(counters.size());
  for (const ExperimentCounter& c : counters) {
    result.estimates.push_back(c.SuccessFrequency(/*fallback=*/0.5));
  }
  Result<AndOrUpsilonResult> upsilon = AndOrUpsilon(graph, result.estimates);
  if (!upsilon.ok()) return upsilon.status();
  result.strategy = upsilon->strategy;
  return result;
}

}  // namespace stratlearn
