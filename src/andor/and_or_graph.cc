#include "andor/and_or_graph.h"

#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn {

AndOrNodeId AndOrGraph::AddRoot(AndOrKind kind, std::string label,
                                double cost) {
  STRATLEARN_CHECK_MSG(nodes_.empty(), "AddRoot must be the first call");
  AndOrNode node;
  node.kind = kind;
  node.label = std::move(label);
  if (kind == AndOrKind::kLeaf) {
    STRATLEARN_CHECK(cost > 0.0);
    node.cost = cost;
    node.experiment = 0;
    leaves_.push_back(0);
  }
  nodes_.push_back(std::move(node));
  return 0;
}

AndOrNodeId AndOrGraph::AddInternal(AndOrNodeId parent, AndOrKind kind,
                                    std::string label) {
  STRATLEARN_CHECK(parent < nodes_.size());
  STRATLEARN_CHECK(kind != AndOrKind::kLeaf);
  STRATLEARN_CHECK_MSG(nodes_[parent].kind != AndOrKind::kLeaf,
                       "leaves cannot have children");
  AndOrNodeId id = static_cast<AndOrNodeId>(nodes_.size());
  AndOrNode node;
  node.kind = kind;
  node.label = std::move(label);
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

AndOrNodeId AndOrGraph::AddLeaf(AndOrNodeId parent, std::string label,
                                double cost) {
  STRATLEARN_CHECK(parent < nodes_.size());
  STRATLEARN_CHECK_MSG(nodes_[parent].kind != AndOrKind::kLeaf,
                       "leaves cannot have children");
  STRATLEARN_CHECK(cost > 0.0);
  AndOrNodeId id = static_cast<AndOrNodeId>(nodes_.size());
  AndOrNode node;
  node.kind = AndOrKind::kLeaf;
  node.label = std::move(label);
  node.parent = parent;
  node.cost = cost;
  node.experiment = static_cast<int>(leaves_.size());
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  leaves_.push_back(id);
  return id;
}

const AndOrNode& AndOrGraph::node(AndOrNodeId id) const {
  STRATLEARN_CHECK(id < nodes_.size());
  return nodes_[id];
}

double AndOrGraph::TotalLeafCost() const {
  double total = 0.0;
  for (AndOrNodeId leaf : leaves_) total += nodes_[leaf].cost;
  return total;
}

Status AndOrGraph::Validate() const {
  if (nodes_.empty()) return Status::FailedPrecondition("graph has no root");
  for (AndOrNodeId n = 0; n < nodes_.size(); ++n) {
    const AndOrNode& node = nodes_[n];
    if (node.kind == AndOrKind::kLeaf) {
      if (node.cost <= 0.0) {
        return Status::Internal(StrFormat("leaf %u has non-positive cost", n));
      }
      if (!node.children.empty()) {
        return Status::Internal(StrFormat("leaf %u has children", n));
      }
    } else if (node.children.empty()) {
      return Status::Internal(
          StrFormat("internal node %u has no children", n));
    }
  }
  return Status::OK();
}

std::string AndOrGraph::ToDot(const std::string& name) const {
  std::string out = "digraph " + name + " {\n";
  for (AndOrNodeId n = 0; n < nodes_.size(); ++n) {
    const AndOrNode& node = nodes_[n];
    const char* shape = node.kind == AndOrKind::kAnd      ? "triangle"
                        : node.kind == AndOrKind::kOr     ? "ellipse"
                                                          : "box";
    out += StrFormat("  n%u [label=\"%s\", shape=%s];\n", n,
                     node.label.c_str(), shape);
    for (AndOrNodeId c : node.children) {
      out += StrFormat("  n%u -> n%u;\n", n, c);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace stratlearn
