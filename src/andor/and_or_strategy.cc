#include "andor/and_or_strategy.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace stratlearn {

AndOrStrategy AndOrStrategy::Default(const AndOrGraph& graph) {
  AndOrStrategy strategy;
  strategy.orders_.resize(graph.num_nodes());
  for (AndOrNodeId n = 0; n < graph.num_nodes(); ++n) {
    strategy.orders_[n] = graph.node(n).children;
  }
  return strategy;
}

const std::vector<AndOrNodeId>& AndOrStrategy::OrderAt(
    AndOrNodeId node) const {
  STRATLEARN_CHECK(node < orders_.size());
  return orders_[node];
}

AndOrStrategy AndOrStrategy::WithSwappedChildren(AndOrNodeId node, size_t i,
                                                 size_t j) const {
  STRATLEARN_CHECK(node < orders_.size());
  STRATLEARN_CHECK(i < orders_[node].size());
  STRATLEARN_CHECK(j < orders_[node].size());
  AndOrStrategy out = *this;
  std::swap(out.orders_[node][i], out.orders_[node][j]);
  return out;
}

Status AndOrStrategy::Validate(const AndOrGraph& graph) const {
  if (orders_.size() != graph.num_nodes()) {
    return Status::InvalidArgument("strategy does not match graph size");
  }
  for (AndOrNodeId n = 0; n < graph.num_nodes(); ++n) {
    std::vector<AndOrNodeId> expected = graph.node(n).children;
    std::vector<AndOrNodeId> actual = orders_[n];
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    if (expected != actual) {
      return Status::InvalidArgument(StrFormat(
          "node %u's order is not a permutation of its children", n));
    }
  }
  return Status::OK();
}

std::string AndOrStrategy::ToString(const AndOrGraph& graph) const {
  std::string out = "{";
  bool first = true;
  for (AndOrNodeId n = 0; n < graph.num_nodes(); ++n) {
    if (orders_[n].size() < 2) continue;  // trivial orders are noise
    if (!first) out += ", ";
    first = false;
    out += graph.node(n).label + ": [";
    for (size_t i = 0; i < orders_[n].size(); ++i) {
      if (i > 0) out += " ";
      out += graph.node(orders_[n][i]).label;
    }
    out += "]";
  }
  out += "}";
  return out;
}

bool AndOrProcessor::Solve(const AndOrStrategy& strategy,
                           const Context& context, AndOrNodeId id,
                           AndOrTrace* trace) const {
  const AndOrNode& node = graph_->node(id);
  switch (node.kind) {
    case AndOrKind::kLeaf: {
      trace->cost += node.cost;
      bool ok = context.Unblocked(static_cast<size_t>(node.experiment));
      trace->attempts.push_back({id, ok});
      return ok;
    }
    case AndOrKind::kOr: {
      for (AndOrNodeId c : strategy.OrderAt(id)) {
        if (Solve(strategy, context, c, trace)) return true;
      }
      return false;
    }
    case AndOrKind::kAnd: {
      for (AndOrNodeId c : strategy.OrderAt(id)) {
        if (!Solve(strategy, context, c, trace)) return false;
      }
      return true;
    }
  }
  return false;
}

AndOrTrace AndOrProcessor::Execute(const AndOrStrategy& strategy,
                                   const Context& context) const {
  STRATLEARN_CHECK(context.num_experiments() == graph_->num_experiments());
  AndOrTrace trace;
  trace.success = Solve(strategy, context, graph_->root(), &trace);
  return trace;
}

double AndOrEnumeratedExpectedCost(const AndOrGraph& graph,
                                   const AndOrStrategy& strategy,
                                   const std::vector<double>& probs) {
  size_t n = graph.num_experiments();
  STRATLEARN_CHECK_MSG(n <= 20, "enumeration is a test oracle");
  STRATLEARN_CHECK(probs.size() == n);
  AndOrProcessor processor(&graph);
  double expected = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < n && weight > 0.0; ++i) {
      weight *= ((mask >> i) & 1) ? probs[i] : 1.0 - probs[i];
    }
    if (weight == 0.0) continue;
    expected += weight * processor.Cost(strategy, Context::FromMask(n, mask));
  }
  return expected;
}

namespace {

/// Bottom-up (expected cost when started, success probability) for a
/// subtree; exact because distinct subtrees own distinct independent
/// leaves.
struct CostProb {
  double cost = 0.0;
  double prob = 0.0;
};

CostProb Evaluate(const AndOrGraph& graph, const AndOrStrategy& strategy,
                  const std::vector<double>& probs, AndOrNodeId id) {
  const AndOrNode& node = graph.node(id);
  if (node.kind == AndOrKind::kLeaf) {
    return {node.cost, probs[static_cast<size_t>(node.experiment)]};
  }
  CostProb out;
  double reach = 1.0;  // probability this child is started
  for (AndOrNodeId c : strategy.OrderAt(id)) {
    CostProb child = Evaluate(graph, strategy, probs, c);
    out.cost += reach * child.cost;
    if (node.kind == AndOrKind::kOr) {
      reach *= 1.0 - child.prob;   // continue only on failure
    } else {
      reach *= child.prob;         // continue only on success
    }
  }
  out.prob = node.kind == AndOrKind::kOr ? 1.0 - reach : reach;
  return out;
}

/// Recursively enumerates child permutations of internal nodes.
bool EnumerateOrders(const AndOrGraph& graph,
                     std::vector<AndOrNodeId>& internals, size_t index,
                     AndOrStrategy& current,
                     const std::vector<double>& probs, int64_t* budget,
                     AndOrOptimalResult* best) {
  if (index == internals.size()) {
    if (--(*budget) < 0) return false;
    double cost = AndOrExactExpectedCost(graph, current, probs);
    if (best->cost < 0.0 || cost < best->cost) {
      best->cost = cost;
      best->strategy = current;
    }
    return true;
  }
  AndOrNodeId node = internals[index];
  std::vector<AndOrNodeId> order = graph.node(node).children;
  std::sort(order.begin(), order.end());
  do {
    // Rewrite `node`'s order into this permutation via selection swaps.
    AndOrStrategy candidate = current;
    for (size_t i = 0; i < order.size(); ++i) {
      const std::vector<AndOrNodeId>& now = candidate.OrderAt(node);
      size_t j = i;
      while (now[j] != order[i]) ++j;
      if (j != i) candidate = candidate.WithSwappedChildren(node, i, j);
    }
    if (!EnumerateOrders(graph, internals, index + 1, candidate, probs,
                         budget, best)) {
      return false;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return true;
}

}  // namespace

double AndOrExactExpectedCost(const AndOrGraph& graph,
                              const AndOrStrategy& strategy,
                              const std::vector<double>& probs) {
  STRATLEARN_CHECK(probs.size() == graph.num_experiments());
  return Evaluate(graph, strategy, probs, graph.root()).cost;
}

Result<AndOrOptimalResult> AndOrBruteForceOptimal(
    const AndOrGraph& graph, const std::vector<double>& probs,
    int64_t max_strategies) {
  std::vector<AndOrNodeId> internals;
  for (AndOrNodeId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.node(n).kind != AndOrKind::kLeaf &&
        graph.node(n).children.size() > 1) {
      internals.push_back(n);
    }
  }
  AndOrOptimalResult best;
  best.cost = -1.0;
  AndOrStrategy current = AndOrStrategy::Default(graph);
  int64_t budget = max_strategies;
  if (!EnumerateOrders(graph, internals, 0, current, probs, &budget,
                       &best)) {
    return Status::InvalidArgument(
        "strategy space exceeds max_strategies; graph too large for brute "
        "force");
  }
  STRATLEARN_CHECK(best.cost >= 0.0);
  return best;
}

}  // namespace stratlearn
