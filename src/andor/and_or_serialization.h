#ifndef STRATLEARN_ANDOR_AND_OR_SERIALIZATION_H_
#define STRATLEARN_ANDOR_AND_OR_SERIALIZATION_H_

#include <string>
#include <string_view>

#include "andor/and_or_graph.h"
#include "andor/and_or_strategy.h"
#include "util/status.h"

namespace stratlearn {

/// Text round-trip for AND/OR structures and their strategies, matching
/// src/graph/serialization.h's deployment story.
///
/// Graph format:
///   stratlearn-andor v1
///   node <kind:A|O|L> <parent|-> <cost> <label>
/// Nodes appear in id order (node 0 is the root, parent '-').
std::string SerializeAndOrGraph(const AndOrGraph& graph);
Result<AndOrGraph> DeserializeAndOrGraph(std::string_view text);

/// Strategy format (one line):
///   stratlearn-andor-strategy v1 <node:order,order,...> ...
/// Only nodes with >= 2 children are listed.
std::string SerializeAndOrStrategy(const AndOrGraph& graph,
                                   const AndOrStrategy& strategy);
Result<AndOrStrategy> DeserializeAndOrStrategy(const AndOrGraph& graph,
                                               std::string_view text);

}  // namespace stratlearn

#endif  // STRATLEARN_ANDOR_AND_OR_SERIALIZATION_H_
