#include "andor/and_or_pib.h"

#include <algorithm>

#include "stats/sequential.h"
#include "util/check.h"

namespace stratlearn {

AndOrPib::AndOrPib(const AndOrGraph* graph, AndOrStrategy initial,
                   AndOrPibOptions options)
    : graph_(graph),
      processor_(graph),
      current_(std::move(initial)),
      options_(options),
      range_(graph->TotalLeafCost()) {
  STRATLEARN_CHECK(options_.delta > 0.0 && options_.delta < 1.0);
  STRATLEARN_CHECK(options_.test_every >= 1);
  STRATLEARN_CHECK(current_.Validate(*graph_).ok());
  RebuildNeighborhood();
}

void AndOrPib::RebuildNeighborhood() {
  neighbors_.clear();
  for (AndOrNodeId n = 0; n < graph_->num_nodes(); ++n) {
    const std::vector<AndOrNodeId>& order = current_.OrderAt(n);
    for (size_t i = 0; i < order.size(); ++i) {
      for (size_t j = i + 1; j < order.size(); ++j) {
        Neighbor neighbor;
        neighbor.node = n;
        neighbor.child_i = i;
        neighbor.child_j = j;
        neighbor.strategy = current_.WithSwappedChildren(n, i, j);
        neighbors_.push_back(std::move(neighbor));
      }
    }
  }
  samples_ = 0;
}

bool AndOrPib::Observe(const Context& context) {
  ++contexts_;
  ++samples_;
  trials_ += static_cast<int64_t>(neighbors_.size());
  double current_cost = processor_.Cost(current_, context);
  for (Neighbor& n : neighbors_) {
    n.delta_sum += current_cost - processor_.Cost(n.strategy, context);
  }
  if (contexts_ % options_.test_every != 0) return false;

  for (const Neighbor& n : neighbors_) {
    double threshold = SequentialSumThreshold(
        samples_, std::max<int64_t>(1, trials_), options_.delta, range_);
    if (n.delta_sum > 0.0 && n.delta_sum >= threshold) {
      Move move;
      move.at_context = contexts_;
      move.node = n.node;
      move.child_i = n.child_i;
      move.child_j = n.child_j;
      move.delta_sum = n.delta_sum;
      move.threshold = threshold;
      moves_.push_back(move);
      current_ = n.strategy;
      RebuildNeighborhood();
      return true;
    }
  }
  return false;
}

}  // namespace stratlearn
