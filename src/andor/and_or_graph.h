#ifndef STRATLEARN_ANDOR_AND_OR_GRAPH_H_
#define STRATLEARN_ANDOR_AND_OR_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace stratlearn {

/// Note 4's directed-hypergraph generalisation: rules whose antecedents
/// are conjunctions ("A :- B, C.") need AND nodes whose children must
/// ALL succeed, alongside the OR nodes (alternative rules) of the simple
/// inference graphs. This module models the resulting search structures
/// (in the sense of [OG90]) as AND/OR trees whose leaves are the
/// probabilistic experiments (database retrievals).
///
/// Costs live at the leaves (the retrieval attempts); internal AND/OR
/// structure is free, matching the hypergraph reading where a hyper-arc's
/// cost is charged at its retrievals.

using AndOrNodeId = uint32_t;
inline constexpr AndOrNodeId kInvalidAndOrNode = 0xffffffffu;

enum class AndOrKind : uint8_t { kOr, kAnd, kLeaf };

struct AndOrNode {
  AndOrKind kind = AndOrKind::kLeaf;
  std::string label;
  AndOrNodeId parent = kInvalidAndOrNode;
  std::vector<AndOrNodeId> children;
  /// Leaf-only: attempt cost and experiment index.
  double cost = 1.0;
  int experiment = -1;
};

/// An AND/OR tree over probabilistic leaf experiments.
class AndOrGraph {
 public:
  AndOrGraph() = default;

  /// Creates the root (first call). `kind` may also be kLeaf for the
  /// degenerate one-retrieval query.
  AndOrNodeId AddRoot(AndOrKind kind, std::string label, double cost = 1.0);

  /// Adds an internal AND/OR child.
  AndOrNodeId AddInternal(AndOrNodeId parent, AndOrKind kind,
                          std::string label);

  /// Adds a leaf experiment with the given attempt cost.
  AndOrNodeId AddLeaf(AndOrNodeId parent, std::string label, double cost);

  AndOrNodeId root() const { return 0; }
  size_t num_nodes() const { return nodes_.size(); }
  const AndOrNode& node(AndOrNodeId id) const;

  /// Leaves in experiment-index order.
  const std::vector<AndOrNodeId>& experiments() const { return leaves_; }
  size_t num_experiments() const { return leaves_.size(); }

  /// Sum of all leaf costs: an upper bound on any execution's cost (and
  /// hence a valid Lambda range for the learners).
  double TotalLeafCost() const;

  /// Structural checks: root exists, internal nodes have children,
  /// leaves have positive costs.
  Status Validate() const;

  /// Graphviz rendering (AND nodes drawn as triangles).
  std::string ToDot(const std::string& name = "G") const;

 private:
  std::vector<AndOrNode> nodes_;
  std::vector<AndOrNodeId> leaves_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_ANDOR_AND_OR_GRAPH_H_
