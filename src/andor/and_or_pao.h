#ifndef STRATLEARN_ANDOR_AND_OR_PAO_H_
#define STRATLEARN_ANDOR_AND_OR_PAO_H_

#include <cstdint>
#include <vector>

#include "andor/and_or_strategy.h"
#include "andor/and_or_upsilon.h"
#include "util/rng.h"
#include "workload/oracle.h"

namespace stratlearn {

struct AndOrPaoOptions {
  double epsilon = 1.0;
  double delta = 0.1;
  int64_t max_contexts = 10'000'000;
};

struct AndOrPaoResult {
  AndOrStrategy strategy;
  std::vector<double> estimates;
  std::vector<int64_t> quotas;
  int64_t contexts_used = 0;
};

/// PAO for AND/OR search structures: the Section 4 pipeline transplanted
/// to the hypergraph setting.
///
/// 1. Per-leaf sample quotas from Equation 7 with the natural F_not
///    analogue (the total cost of the *other* leaves — the most any
///    mis-ordering triggered by this leaf's estimate can waste).
/// 2. An adaptive sampler: each context aims at the most under-sampled
///    leaf by rotating, at every internal node on its path, the child
///    leading toward it to the front; every attempted leaf yields a
///    sample (cross-crediting, as in Section 4.1), and blocked aims are
///    counted so rarely-reachable leaves cannot stall the loop (the
///    Theorem 3 idea).
/// 3. AndOrUpsilon on the measured frequencies (0.5 fallback for
///    never-reached leaves).
///
/// The paper proves Theorem 2/3 only for the disjunctive tree class; for
/// AND/OR structures this carries the same Chernoff machinery and is
/// validated empirically (andor_test: epsilon-optimality rate over
/// independent runs).
class AndOrPao {
 public:
  static std::vector<int64_t> ComputeQuotas(const AndOrGraph& graph,
                                            const AndOrPaoOptions& options);

  static Result<AndOrPaoResult> Run(const AndOrGraph& graph,
                                    ContextOracle& oracle, Rng& rng,
                                    const AndOrPaoOptions& options =
                                        AndOrPaoOptions());
};

}  // namespace stratlearn

#endif  // STRATLEARN_ANDOR_AND_OR_PAO_H_
