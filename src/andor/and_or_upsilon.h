#ifndef STRATLEARN_ANDOR_AND_OR_UPSILON_H_
#define STRATLEARN_ANDOR_AND_OR_UPSILON_H_

#include <vector>

#include "andor/and_or_strategy.h"
#include "util/status.h"

namespace stratlearn {

struct AndOrUpsilonResult {
  AndOrStrategy strategy;
  double expected_cost = 0.0;
};

/// The Upsilon analogue for AND/OR search structures: the optimal
/// *depth-first* strategy (per-node child orders — exactly the class
/// AndOrStrategy models and AndOrBruteForceOptimal enumerates) for
/// independent leaf probabilities.
///
/// Computed bottom-up in O(|N| log |N|): each subtree reduces to a pair
/// (C = expected cost when started, P = success probability); an OR
/// node orders its children by P/C descending (find a success as
/// cheaply as possible), an AND node by (1 - P)/C descending (find a
/// refutation as cheaply as possible); the node's own (C, P) then follow
/// from the early-exit products. The pairwise-exchange optimality of
/// each local order is the classical satisficing-ordering argument
/// (Simon–Kadane; Natarajan's AND/OR version), and the andor_test
/// property suite cross-validates against brute force on random trees.
///
/// N.b. non-depth-first strategies (suspending one subtree to probe
/// another) can beat the best depth-first strategy on AND/OR trees; the
/// paper's framework (and this library's AndOrStrategy class) is
/// depth-first, so "optimal" here means optimal within that class.
Result<AndOrUpsilonResult> AndOrUpsilon(const AndOrGraph& graph,
                                        const std::vector<double>& probs);

}  // namespace stratlearn

#endif  // STRATLEARN_ANDOR_AND_OR_UPSILON_H_
