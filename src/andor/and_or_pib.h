#ifndef STRATLEARN_ANDOR_AND_OR_PIB_H_
#define STRATLEARN_ANDOR_AND_OR_PIB_H_

#include <cstdint>
#include <vector>

#include "andor/and_or_strategy.h"

namespace stratlearn {

struct AndOrPibOptions {
  double delta = 0.05;
  int test_every = 1;
};

/// PIB for AND/OR search structures (the Note 4 hypergraph setting).
///
/// The transformation set is all child-pair swaps at every AND and OR
/// node (conjunct reordering and rule reordering respectively). Because
/// hypergraph traces do not support the paper's one-sided Delta~
/// completion (an unobserved conjunct's outcome can move the difference
/// in either direction), this learner consumes full contexts and uses
/// the exact per-context Delta — available whenever the monitor can
/// replay the query against the database, and always available from the
/// synthetic oracles. The Equation 6 sequential/Bonferroni machinery is
/// unchanged, so Theorem 1's lifetime guarantee carries over with the
/// exact Delta being trivially a valid under-estimate.
class AndOrPib {
 public:
  struct Move {
    int64_t at_context = 0;
    AndOrNodeId node = kInvalidAndOrNode;
    size_t child_i = 0, child_j = 0;
    double delta_sum = 0.0;
    double threshold = 0.0;
  };

  AndOrPib(const AndOrGraph* graph, AndOrStrategy initial,
           AndOrPibOptions options = AndOrPibOptions());

  /// Consumes one full context (the current strategy is assumed to have
  /// served the query; the exact Delta to every neighbour is computed by
  /// counterfactual replay). Returns true on a hill-climbing move.
  bool Observe(const Context& context);

  const AndOrStrategy& strategy() const { return current_; }
  int64_t contexts_processed() const { return contexts_; }
  const std::vector<Move>& moves() const { return moves_; }
  size_t num_neighbors() const { return neighbors_.size(); }

 private:
  struct Neighbor {
    AndOrNodeId node;
    size_t child_i, child_j;
    AndOrStrategy strategy;
    double delta_sum = 0.0;
  };

  void RebuildNeighborhood();

  const AndOrGraph* graph_;
  AndOrProcessor processor_;
  AndOrStrategy current_;
  AndOrPibOptions options_;
  double range_;

  std::vector<Neighbor> neighbors_;
  int64_t contexts_ = 0;
  int64_t trials_ = 0;
  int64_t samples_ = 0;
  std::vector<Move> moves_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_ANDOR_AND_OR_PIB_H_
