#include "andor/and_or_upsilon.h"

#include <algorithm>

#include "util/check.h"

namespace stratlearn {

namespace {

struct CostProb {
  double cost = 0.0;
  double prob = 0.0;
};

/// Bottom-up: computes the optimal child order at every node (written
/// into `strategy` via swaps) and returns the subtree's (C, P).
CostProb Solve(const AndOrGraph& graph, const std::vector<double>& probs,
               AndOrNodeId id, AndOrStrategy* strategy) {
  const AndOrNode& node = graph.node(id);
  if (node.kind == AndOrKind::kLeaf) {
    return {node.cost, probs[static_cast<size_t>(node.experiment)]};
  }

  struct ChildEntry {
    AndOrNodeId child;
    CostProb value;
  };
  std::vector<ChildEntry> children;
  children.reserve(node.children.size());
  for (AndOrNodeId c : node.children) {
    children.push_back({c, Solve(graph, probs, c, strategy)});
  }

  const bool is_or = node.kind == AndOrKind::kOr;
  std::stable_sort(children.begin(), children.end(),
                   [is_or](const ChildEntry& a, const ChildEntry& b) {
                     double ra = is_or ? a.value.prob : 1.0 - a.value.prob;
                     double rb = is_or ? b.value.prob : 1.0 - b.value.prob;
                     return ra * b.value.cost > rb * a.value.cost;
                   });

  // Write the chosen order into the strategy via selection swaps.
  for (size_t i = 0; i < children.size(); ++i) {
    const std::vector<AndOrNodeId>& now = strategy->OrderAt(id);
    size_t j = i;
    while (now[j] != children[i].child) ++j;
    if (j != i) *strategy = strategy->WithSwappedChildren(id, i, j);
  }

  CostProb out;
  double reach = 1.0;
  for (const ChildEntry& entry : children) {
    out.cost += reach * entry.value.cost;
    reach *= is_or ? 1.0 - entry.value.prob : entry.value.prob;
  }
  out.prob = is_or ? 1.0 - reach : reach;
  return out;
}

}  // namespace

Result<AndOrUpsilonResult> AndOrUpsilon(const AndOrGraph& graph,
                                        const std::vector<double>& probs) {
  if (probs.size() != graph.num_experiments()) {
    return Status::InvalidArgument(
        "probability vector size does not match leaf count");
  }
  for (double p : probs) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }
  STRATLEARN_RETURN_IF_ERROR(graph.Validate());

  AndOrUpsilonResult out;
  out.strategy = AndOrStrategy::Default(graph);
  CostProb root = Solve(graph, probs, graph.root(), &out.strategy);
  out.expected_cost = root.cost;
  return out;
}

}  // namespace stratlearn
