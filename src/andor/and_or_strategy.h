#ifndef STRATLEARN_ANDOR_AND_OR_STRATEGY_H_
#define STRATLEARN_ANDOR_AND_OR_STRATEGY_H_

#include <string>
#include <vector>

#include "andor/and_or_graph.h"
#include "engine/context.h"
#include "util/status.h"

namespace stratlearn {

/// A strategy for an AND/OR tree: the order in which each internal
/// node's children are pursued (OR nodes stop at the first success, AND
/// nodes at the first failure). This is the natural strategy space of
/// [GO91, Appendix A]'s hypergraph satisficing search, specialised to
/// trees: a depth-first policy determined by per-node child permutations.
class AndOrStrategy {
 public:
  AndOrStrategy() = default;

  /// Children in construction order at every node.
  static AndOrStrategy Default(const AndOrGraph& graph);

  /// The child visit order at `node`.
  const std::vector<AndOrNodeId>& OrderAt(AndOrNodeId node) const;

  /// Swaps two child positions at `node` (returns a new strategy).
  AndOrStrategy WithSwappedChildren(AndOrNodeId node, size_t i,
                                    size_t j) const;

  /// Checks the strategy is a permutation of every node's children.
  Status Validate(const AndOrGraph& graph) const;

  /// Human-readable form "{n0: [c2 c1], n3: [...]}" using labels.
  std::string ToString(const AndOrGraph& graph) const;

  friend bool operator==(const AndOrStrategy& a, const AndOrStrategy& b) {
    return a.orders_ == b.orders_;
  }
  friend bool operator!=(const AndOrStrategy& a, const AndOrStrategy& b) {
    return !(a == b);
  }

 private:
  /// orders_[node] = visit order of that node's children (empty for
  /// leaves).
  std::vector<std::vector<AndOrNodeId>> orders_;
};

/// One leaf attempt in an AND/OR execution.
struct AndOrAttempt {
  AndOrNodeId leaf = kInvalidAndOrNode;
  bool succeeded = false;
};

/// The record of one AND/OR execution.
struct AndOrTrace {
  std::vector<AndOrAttempt> attempts;
  double cost = 0.0;
  bool success = false;
};

/// Depth-first satisficing executor for AND/OR trees: an OR node returns
/// success at its first successful child, an AND node returns failure at
/// its first failed child; every attempted leaf charges its cost.
class AndOrProcessor {
 public:
  explicit AndOrProcessor(const AndOrGraph* graph) : graph_(graph) {}

  AndOrTrace Execute(const AndOrStrategy& strategy,
                     const Context& context) const;

  double Cost(const AndOrStrategy& strategy, const Context& context) const {
    return Execute(strategy, context).cost;
  }

 private:
  bool Solve(const AndOrStrategy& strategy, const Context& context,
             AndOrNodeId node, AndOrTrace* trace) const;

  const AndOrGraph* graph_;
};

/// Exact expected cost by exhaustive context enumeration (independent
/// leaf probabilities; <= 20 leaves).
double AndOrEnumeratedExpectedCost(const AndOrGraph& graph,
                                   const AndOrStrategy& strategy,
                                   const std::vector<double>& probs);

/// O(|N|) exact expected cost for independent leaves, by bottom-up
/// recursion: each subtree yields (expected cost when started, success
/// probability); AND and OR nodes combine their ordered children with
/// the appropriate early-exit weighting.
double AndOrExactExpectedCost(const AndOrGraph& graph,
                              const AndOrStrategy& strategy,
                              const std::vector<double>& probs);

/// Exhaustive minimisation over all per-node child permutations; the
/// product of factorials explodes quickly, so `max_strategies` caps the
/// search (error when exceeded). Test oracle.
struct AndOrOptimalResult {
  AndOrStrategy strategy;
  double cost = 0.0;
};
Result<AndOrOptimalResult> AndOrBruteForceOptimal(
    const AndOrGraph& graph, const std::vector<double>& probs,
    int64_t max_strategies = 100000);

}  // namespace stratlearn

#endif  // STRATLEARN_ANDOR_AND_OR_STRATEGY_H_
