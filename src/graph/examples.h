#ifndef STRATLEARN_GRAPH_EXAMPLES_H_
#define STRATLEARN_GRAPH_EXAMPLES_H_

#include "graph/inference_graph.h"

namespace stratlearn {

/// Arc handles for the paper's Figure 1 graph G_A (the instructor /
/// prof / grad knowledge base). All arcs cost 1.
struct FigureOneGraph {
  InferenceGraph graph;
  ArcId r_p;  // instructor(k) -> prof(k) reduction
  ArcId d_p;  // prof(k) retrieval (experiment 0)
  ArcId r_g;  // instructor(k) -> grad(k) reduction
  ArcId d_g;  // grad(k) retrieval (experiment 1)
};

/// Builds Figure 1's G_A.
FigureOneGraph MakeFigureOne();

/// Arc handles for the paper's Figure 2 graph G_B. The tree is
///   G -> A (retrieval D_a)
///   G -> S -> B (retrieval D_b)
///        S -> T -> C (retrieval D_c)
///             T -> D (retrieval D_d)
/// All arcs cost 1. Experiments are D_a..D_d, in that index order.
struct FigureTwoGraph {
  InferenceGraph graph;
  ArcId r_ga, d_a;
  ArcId r_gs, r_sb, d_b;
  ArcId r_st, r_tc, d_c;
  ArcId r_td, d_d;
};

/// Builds Figure 2's G_B.
FigureTwoGraph MakeFigureTwo();

}  // namespace stratlearn

#endif  // STRATLEARN_GRAPH_EXAMPLES_H_
