#include "graph/serialization.h"

#include <cstdlib>
#include <vector>

#include "util/string_util.h"

namespace stratlearn {

namespace {

constexpr std::string_view kHeader = "stratlearn-graph v1";

/// Splits off the first `n` space-separated tokens of `line`; the
/// remainder (after one space) is the trailing free-form field.
bool TakeTokens(std::string_view line, size_t n,
                std::vector<std::string_view>* tokens,
                std::string_view* rest) {
  tokens->clear();
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (start == pos) return false;
    tokens->push_back(line.substr(start, pos - start));
  }
  if (pos < line.size() && line[pos] == ' ') ++pos;
  *rest = line.substr(pos);
  return true;
}

bool ParseDouble(std::string_view token, double* out) {
  std::string buffer(token);
  char* end = nullptr;
  *out = std::strtod(buffer.c_str(), &end);
  return end == buffer.c_str() + buffer.size();
}

bool ParseUint(std::string_view token, uint32_t* out) {
  std::string buffer(token);
  char* end = nullptr;
  unsigned long value = std::strtoul(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

std::string SerializeGraph(const InferenceGraph& graph) {
  std::string out(kHeader);
  out += "\n";
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    const Node& node = graph.node(n);
    out += StrFormat("node %d %s\n", node.is_success ? 1 : 0,
                     node.label.c_str());
  }
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    const Arc& arc = graph.arc(a);
    out += StrFormat("arc %u %u %c %.17g %.17g %.17g %d %s\n", arc.from,
                     arc.to, arc.kind == ArcKind::kRetrieval ? 'D' : 'R',
                     arc.cost, arc.success_cost, arc.failure_cost,
                     arc.experiment >= 0 ? 1 : 0, arc.label.c_str());
  }
  return out;
}

Result<InferenceGraph> DeserializeGraph(std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != kHeader) {
    return Status::InvalidArgument(
        "missing 'stratlearn-graph v1' header line");
  }

  // First pass: collect node and arc records.
  struct NodeRecord {
    bool is_success;
    std::string label;
  };
  struct ArcRecord {
    NodeId from, to;
    ArcKind kind;
    double cost, success_cost, failure_cost;
    bool is_experiment;
    std::string label;
  };
  std::vector<NodeRecord> nodes;
  std::vector<ArcRecord> arcs;

  std::vector<std::string_view> tokens;
  std::string_view rest;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (Trim(line).empty()) continue;
    if (StartsWith(line, "node ")) {
      if (!TakeTokens(line.substr(5), 1, &tokens, &rest)) {
        return Status::InvalidArgument(
            StrFormat("malformed node record on line %zu", i + 1));
      }
      NodeRecord record;
      record.is_success = tokens[0] == "1";
      record.label = std::string(rest);
      nodes.push_back(std::move(record));
    } else if (StartsWith(line, "arc ")) {
      if (!TakeTokens(line.substr(4), 7, &tokens, &rest)) {
        return Status::InvalidArgument(
            StrFormat("malformed arc record on line %zu", i + 1));
      }
      ArcRecord record;
      if (!ParseUint(tokens[0], &record.from) ||
          !ParseUint(tokens[1], &record.to) ||
          !ParseDouble(tokens[3], &record.cost) ||
          !ParseDouble(tokens[4], &record.success_cost) ||
          !ParseDouble(tokens[5], &record.failure_cost)) {
        return Status::InvalidArgument(
            StrFormat("bad numeric field in arc record on line %zu", i + 1));
      }
      if (tokens[2] == "D") {
        record.kind = ArcKind::kRetrieval;
      } else if (tokens[2] == "R") {
        record.kind = ArcKind::kReduction;
      } else {
        return Status::InvalidArgument(
            StrFormat("unknown arc kind on line %zu", i + 1));
      }
      record.is_experiment = tokens[6] == "1";
      record.label = std::string(rest);
      arcs.push_back(std::move(record));
    } else {
      return Status::InvalidArgument(
          StrFormat("unrecognised record on line %zu", i + 1));
    }
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("graph has no nodes");
  }

  // Rebuild. AddChild assigns node id = arc id + 1 in insertion order,
  // so the arc records must reference nodes consistently with that; the
  // serialiser guarantees it for any graph built through the public API.
  InferenceGraph graph;
  graph.AddRoot(nodes[0].label);
  for (size_t a = 0; a < arcs.size(); ++a) {
    const ArcRecord& record = arcs[a];
    NodeId expected_node = static_cast<NodeId>(a + 1);
    if (record.to != expected_node || record.to >= nodes.size() ||
        record.from >= record.to) {
      return Status::InvalidArgument(StrFormat(
          "arc %zu does not describe a tree built in insertion order", a));
    }
    if (record.cost <= 0.0 || record.success_cost < 0.0 ||
        record.failure_cost < 0.0) {
      return Status::InvalidArgument(
          StrFormat("arc %zu has invalid costs", a));
    }
    if (nodes[record.from].is_success) {
      return Status::InvalidArgument(
          StrFormat("arc %zu descends from a success node", a));
    }
    const NodeRecord& head = nodes[record.to];
    auto added = graph.AddChild(record.from, head.label, record.kind,
                                record.cost, record.label,
                                record.is_experiment, head.is_success);
    if (record.success_cost != 0.0 || record.failure_cost != 0.0) {
      graph.SetOutcomeCosts(added.arc, record.success_cost,
                            record.failure_cost);
    }
  }
  if (graph.num_nodes() != nodes.size()) {
    return Status::InvalidArgument("node count does not match arc count");
  }
  STRATLEARN_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace stratlearn
