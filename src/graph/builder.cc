#include "graph/builder.h"

#include <unordered_set>

#include "datalog/parser.h"
#include "datalog/unify.h"
#include "util/string_util.h"

namespace stratlearn {

namespace {

/// Builder state threaded through the recursive unfolding.
struct BuildState {
  const RuleBase* rules;
  SymbolTable* symbols;
  const BuildOptions* options;
  BuiltGraph* out;
  /// Query-position variables: symbol of "$i" -> i.
  std::unordered_map<SymbolId, int> query_var_pos;
  int rename_counter = 0;
  /// Predicates on the current unfolding stack (recursion detection).
  std::vector<SymbolId> predicate_stack;
};

std::string AtomLabel(const Atom& atom, const SymbolTable& symbols) {
  return atom.ToString(symbols);
}

/// Classifies a resolved term for retrieval-spec purposes.
RetrievalSpec::ArgSpec ClassifyTerm(const Term& term, const BuildState& st) {
  RetrievalSpec::ArgSpec spec;
  if (term.is_constant()) {
    spec.source = RetrievalSpec::ArgSpec::kConstant;
    spec.constant = term.symbol;
    return spec;
  }
  auto it = st.query_var_pos.find(term.symbol);
  if (it != st.query_var_pos.end()) {
    spec.source = it->second;
    return spec;
  }
  spec.source = RetrievalSpec::ArgSpec::kExistential;
  return spec;
}

RetrievalSpec MakeRetrievalSpec(const Atom& atom, const Substitution& subst,
                                const BuildState& st) {
  RetrievalSpec spec;
  spec.predicate = atom.predicate;
  spec.args.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    spec.args.push_back(ClassifyTerm(subst.Walk(t), st));
  }
  return spec;
}

/// Collects the existential variables (not constants, not query vars) of
/// `atom` after substitution.
void CollectExistentialVars(const Atom& atom, const Substitution& subst,
                            const BuildState& st,
                            std::unordered_set<SymbolId>* vars) {
  for (const Term& t : atom.args) {
    Term r = subst.Walk(t);
    if (r.is_variable() && st.query_var_pos.count(r.symbol) == 0) {
      vars->insert(r.symbol);
    }
  }
}

Status UnfoldGoal(BuildState& st, NodeId goal_node, const Atom& goal,
                  int depth);

/// Expands one rule application under `goal_node`.
Status ExpandRule(BuildState& st, NodeId goal_node, const Atom& goal,
                  const Clause& rule, int rule_index, int depth) {
  Clause fresh = RenameClause(rule, st.rename_counter++, st.symbols);
  Substitution subst;
  if (!UnifyAtoms(goal, fresh.head, &subst)) return Status::OK();  // skip

  // Guards: a query-position variable forced to a constant by the head.
  // Unification may also have aliased a query variable to one of the
  // rule's (renamed, globally fresh) variables; record those aliases so
  // the body atoms resolve back to query positions.
  GuardSpec guard;
  {
    std::vector<std::pair<SymbolId, int>> aliases;
    for (const auto& [var, pos] : st.query_var_pos) {
      Term walked = subst.Walk(Term::Variable(var));
      if (walked.is_constant()) {
        guard.equalities.emplace_back(pos, walked.symbol);
      } else if (walked.symbol != var &&
                 st.query_var_pos.count(walked.symbol) == 0) {
        aliases.emplace_back(walked.symbol, pos);
      }
    }
    for (const auto& [sym, pos] : aliases) st.query_var_pos.emplace(sym, pos);
  }

  // Classify body atoms after substitution.
  struct BodyAtom {
    Atom resolved;
    bool intensional;
  };
  std::vector<BodyAtom> body;
  body.reserve(fresh.body.size());
  for (const Atom& b : fresh.body) {
    BodyAtom ba;
    ba.resolved = subst.Apply(b);
    ba.intensional = st.rules->IsIntensional(b.predicate);
    body.push_back(std::move(ba));
  }

  // Reject hypergraph-only shapes.
  for (size_t i = 0; i + 1 < body.size(); ++i) {
    if (body[i].intensional) {
      return Status::Unimplemented(StrFormat(
          "rule %d for '%s': an intensional body atom before the last "
          "position requires hypergraph strategies (paper Note 4)",
          rule_index, st.symbols->Name(goal.predicate).c_str()));
    }
  }
  {
    std::unordered_set<SymbolId> seen;
    for (const BodyAtom& ba : body) {
      std::unordered_set<SymbolId> here;
      CollectExistentialVars(ba.resolved, subst, st, &here);
      for (SymbolId v : here) {
        if (!seen.insert(v).second) {
          return Status::Unimplemented(StrFormat(
              "rule %d for '%s': existential join variables across body "
              "atoms require hypergraph strategies (paper Note 4)",
              rule_index, st.symbols->Name(goal.predicate).c_str()));
        }
      }
    }
  }

  if (st.out->graph.num_arcs() + body.size() + 1 > st.options->max_arcs) {
    return Status::ResourceExhausted("inference graph exceeds max_arcs");
  }

  const bool guarded = !guard.equalities.empty();
  const bool tail_intensional = !body.empty() && body.back().intensional;

  std::string rule_label = StrFormat(
      "R%d:%s", rule_index, st.symbols->Name(goal.predicate).c_str());

  if (body.empty()) {
    // Degenerate rule "h." would be a fact; RuleBase rejects those, but a
    // fully-guarded rule body can also be empty after unification only in
    // that case. Treat defensively.
    return Status::Internal("rule with empty body in RuleBase");
  }

  // The reduction arc: goal -> first body node.
  auto first = st.out->graph.AddChild(
      goal_node, AtomLabel(body[0].resolved, *st.symbols),
      ArcKind::kReduction, st.options->reduction_cost, rule_label,
      /*is_experiment=*/guarded, /*is_success=*/false);
  if (guarded) st.out->guards.emplace(first.arc, guard);
  NodeId current = first.node;

  const size_t num_retrievals = body.size() - (tail_intensional ? 1 : 0);
  for (size_t i = 0; i < num_retrievals; ++i) {
    const Atom& atom = body[i].resolved;
    const bool last_arc = (i + 1 == body.size());
    std::string label = "D:" + AtomLabel(atom, *st.symbols);
    std::string next_label =
        last_arc ? "[" + label + "]"
                 : AtomLabel(body[i + 1].resolved, *st.symbols);
    auto added = st.out->graph.AddChild(
        current, std::move(next_label), ArcKind::kRetrieval,
        st.options->retrieval_cost, std::move(label),
        /*is_experiment=*/true, /*is_success=*/last_arc);
    st.out->retrievals.emplace(added.arc,
                               MakeRetrievalSpec(atom, subst, st));
    current = added.node;
  }

  if (tail_intensional) {
    // `current` is now the subgoal node for the intensional tail atom.
    return UnfoldGoal(st, current, body.back().resolved, depth + 1);
  }
  return Status::OK();
}

Status UnfoldGoal(BuildState& st, NodeId goal_node, const Atom& goal,
                  int depth) {
  if (depth > st.options->max_depth) {
    return Status::ResourceExhausted(
        StrFormat("rule unfolding exceeded max_depth=%d",
                  st.options->max_depth));
  }
  for (SymbolId p : st.predicate_stack) {
    if (p == goal.predicate) {
      return Status::InvalidArgument(StrFormat(
          "predicate '%s' is recursive; inference graphs require "
          "non-recursive rule bases (Section 4, Computational Efficiency)",
          st.symbols->Name(goal.predicate).c_str()));
    }
  }

  if (!st.rules->IsIntensional(goal.predicate)) {
    // Extensional goal: a single retrieval arc to a success box.
    Substitution identity;
    std::string label = "D:" + AtomLabel(goal, *st.symbols);
    auto added = st.out->graph.AddChild(
        goal_node, "[" + label + "]", ArcKind::kRetrieval,
        st.options->retrieval_cost, std::move(label),
        /*is_experiment=*/true, /*is_success=*/true);
    st.out->retrievals.emplace(added.arc,
                               MakeRetrievalSpec(goal, identity, st));
    return Status::OK();
  }

  st.predicate_stack.push_back(goal.predicate);
  const std::vector<Clause>& rules = st.rules->RulesFor(goal.predicate);
  for (size_t i = 0; i < rules.size(); ++i) {
    STRATLEARN_RETURN_IF_ERROR(
        ExpandRule(st, goal_node, goal, rules[i], static_cast<int>(i),
                   depth));
  }
  st.predicate_stack.pop_back();
  return Status::OK();
}

}  // namespace

bool RetrievalSpec::IsExistential() const {
  for (const ArgSpec& a : args) {
    if (a.source == ArgSpec::kExistential) return true;
  }
  return false;
}

bool RetrievalSpec::Succeeds(const Database& db,
                             const std::vector<SymbolId>& query_args) const {
  if (!IsExistential()) {
    FactTuple tuple;
    tuple.reserve(args.size());
    for (const ArgSpec& a : args) {
      if (a.source >= 0) {
        STRATLEARN_CHECK(static_cast<size_t>(a.source) < query_args.size());
        tuple.push_back(query_args[a.source]);
      } else {
        tuple.push_back(a.constant);
      }
    }
    return db.Contains(predicate, tuple);
  }
  // Existential retrieval: build a pattern atom and probe for any match.
  Atom pattern;
  pattern.predicate = predicate;
  pattern.args.reserve(args.size());
  // Existential positions need distinct variable symbols; any ids distinct
  // from each other work for Database::Match, so reuse the position index.
  for (size_t i = 0; i < args.size(); ++i) {
    const ArgSpec& a = args[i];
    if (a.source >= 0) {
      pattern.args.push_back(Term::Constant(query_args[a.source]));
    } else if (a.source == ArgSpec::kConstant) {
      pattern.args.push_back(Term::Constant(a.constant));
    } else {
      pattern.args.push_back(Term::Variable(static_cast<SymbolId>(i)));
    }
  }
  std::vector<FactTuple> matches;
  db.Match(pattern, &matches);
  return !matches.empty();
}

bool GuardSpec::Satisfied(const std::vector<SymbolId>& query_args) const {
  for (const auto& [pos, constant] : equalities) {
    STRATLEARN_CHECK(static_cast<size_t>(pos) < query_args.size());
    if (query_args[pos] != constant) return false;
  }
  return true;
}

Result<QueryForm> QueryForm::Parse(std::string_view text,
                                   SymbolTable* symbols) {
  Parser parser(symbols);
  Result<Atom> atom = parser.ParseAtom(text);
  if (!atom.ok()) return atom.status();
  QueryForm form;
  form.predicate = atom->predicate;
  form.bound.reserve(atom->args.size());
  for (const Term& t : atom->args) {
    const std::string& name = symbols->Name(t.symbol);
    if (name == "b") {
      form.bound.push_back(true);
    } else if (name == "f") {
      form.bound.push_back(false);
    } else {
      return Status::InvalidArgument(
          "query form arguments must be 'b' or 'f', got '" + name + "'");
    }
  }
  return form;
}

Result<BuiltGraph> BuildInferenceGraph(const RuleBase& rules,
                                       const QueryForm& form,
                                       SymbolTable* symbols,
                                       const BuildOptions& options) {
  if (form.predicate == kInvalidSymbol) {
    return Status::InvalidArgument("query form has no predicate");
  }
  BuiltGraph out;
  out.form = form;

  BuildState st;
  st.rules = &rules;
  st.symbols = symbols;
  st.options = &options;
  st.out = &out;

  // Root goal atom: bound positions become query-position variables "$i";
  // free positions become existential variables.
  Atom goal;
  goal.predicate = form.predicate;
  for (size_t i = 0; i < form.bound.size(); ++i) {
    SymbolId var = symbols->Intern(StrFormat("$%zu", i));
    goal.args.push_back(Term::Variable(var));
    if (form.bound[i]) {
      st.query_var_pos.emplace(var, static_cast<int>(i));
    }
    // Free positions: leave as plain (existential) variables.
  }

  out.graph.AddRoot(goal.ToString(*symbols));
  STRATLEARN_RETURN_IF_ERROR(UnfoldGoal(st, out.graph.root(), goal, 0));
  STRATLEARN_RETURN_IF_ERROR(out.graph.Validate());
  if (out.graph.num_arcs() == 0) {
    return Status::InvalidArgument(
        "query form produced an empty inference graph (no rules or facts "
        "reachable)");
  }
  return out;
}

}  // namespace stratlearn
