#include "graph/inference_graph.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn {

NodeId InferenceGraph::AddRoot(std::string label) {
  STRATLEARN_CHECK_MSG(nodes_.empty(), "AddRoot must be the first call");
  Node node;
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  return 0;
}

InferenceGraph::AddResult InferenceGraph::AddChild(
    NodeId parent, std::string node_label, ArcKind kind, double cost,
    std::string arc_label, bool is_experiment, bool is_success) {
  STRATLEARN_CHECK(parent < nodes_.size());
  STRATLEARN_CHECK_MSG(!nodes_[parent].is_success,
                       "success nodes cannot have children");
  STRATLEARN_CHECK_MSG(cost > 0.0, "arc costs must be positive");

  NodeId node_id = static_cast<NodeId>(nodes_.size());
  ArcId arc_id = static_cast<ArcId>(arcs_.size());

  Node node;
  node.label = std::move(node_label);
  node.is_success = is_success;
  node.incoming = arc_id;
  nodes_.push_back(std::move(node));

  Arc arc;
  arc.from = parent;
  arc.to = node_id;
  arc.kind = kind;
  arc.cost = cost;
  arc.label = std::move(arc_label);
  if (is_experiment) {
    arc.experiment = static_cast<int>(experiments_.size());
    experiments_.push_back(arc_id);
  }
  arcs_.push_back(std::move(arc));
  nodes_[parent].out_arcs.push_back(arc_id);
  return {node_id, arc_id};
}

InferenceGraph::AddResult InferenceGraph::AddRetrieval(
    NodeId parent, double cost, std::string arc_label) {
  return AddChild(parent, "[" + arc_label + "]", ArcKind::kRetrieval, cost,
                  arc_label, /*is_experiment=*/true, /*is_success=*/true);
}

void InferenceGraph::SetOutcomeCosts(ArcId id, double on_success,
                                     double on_failure) {
  STRATLEARN_CHECK(id < arcs_.size());
  STRATLEARN_CHECK_MSG(on_success >= 0.0 && on_failure >= 0.0,
                       "outcome costs must be non-negative");
  arcs_[id].success_cost = on_success;
  arcs_[id].failure_cost = on_failure;
}

const Node& InferenceGraph::node(NodeId id) const {
  STRATLEARN_CHECK(id < nodes_.size());
  return nodes_[id];
}

const Arc& InferenceGraph::arc(ArcId id) const {
  STRATLEARN_CHECK(id < arcs_.size());
  return arcs_[id];
}

std::vector<ArcId> InferenceGraph::RetrievalArcs() const {
  std::vector<ArcId> out;
  for (ArcId a = 0; a < arcs_.size(); ++a) {
    if (arcs_[a].kind == ArcKind::kRetrieval) out.push_back(a);
  }
  return out;
}

std::vector<ArcId> InferenceGraph::SuccessArcs() const {
  std::vector<ArcId> out;
  for (ArcId a = 0; a < arcs_.size(); ++a) {
    if (nodes_[arcs_[a].to].is_success) out.push_back(a);
  }
  return out;
}

std::vector<double> InferenceGraph::AllFStar() const {
  // Arcs were appended child-after-parent, so a reverse sweep sees every
  // subtree arc before its ancestors.
  std::vector<double> fstar(arcs_.size(), 0.0);
  std::vector<double> node_sum(nodes_.size(), 0.0);  // sum of f* of out arcs
  for (ArcId a = arcs_.size(); a-- > 0;) {
    fstar[a] = arcs_[a].MaxCost() + node_sum[arcs_[a].to];
    node_sum[arcs_[a].from] += fstar[a];
  }
  return fstar;
}

double InferenceGraph::FStar(ArcId id) const {
  STRATLEARN_CHECK(id < arcs_.size());
  double total = 0.0;
  for (ArcId a : SubtreeArcs(id)) total += arcs_[a].MaxCost();
  return total;
}

double InferenceGraph::TotalCost() const {
  double total = 0.0;
  for (const Arc& a : arcs_) total += a.MaxCost();
  return total;
}

double InferenceGraph::FNeg(ArcId id) const {
  double pi_cost = 0.0;
  for (ArcId a : Pi(id)) pi_cost += arcs_[a].MaxCost();
  return TotalCost() - pi_cost - FStar(id);
}

std::vector<ArcId> InferenceGraph::Pi(ArcId id) const {
  STRATLEARN_CHECK(id < arcs_.size());
  std::vector<ArcId> path;
  NodeId n = arcs_[id].from;
  while (nodes_[n].incoming != kInvalidArc) {
    path.push_back(nodes_[n].incoming);
    n = arcs_[nodes_[n].incoming].from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<ArcId> InferenceGraph::SubtreeArcs(ArcId id) const {
  STRATLEARN_CHECK(id < arcs_.size());
  std::vector<ArcId> out;
  std::vector<ArcId> stack = {id};
  while (!stack.empty()) {
    ArcId a = stack.back();
    stack.pop_back();
    out.push_back(a);
    const Node& head = nodes_[arcs_[a].to];
    for (auto it = head.out_arcs.rbegin(); it != head.out_arcs.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

int InferenceGraph::ArcDepth(ArcId id) const {
  return static_cast<int>(Pi(id).size());
}

Status InferenceGraph::Validate() const {
  if (nodes_.empty()) return Status::FailedPrecondition("graph has no root");
  if (nodes_[0].incoming != kInvalidArc) {
    return Status::Internal("root has an incoming arc");
  }
  for (NodeId n = 1; n < nodes_.size(); ++n) {
    if (nodes_[n].incoming == kInvalidArc) {
      return Status::Internal(
          StrFormat("non-root node %u has no incoming arc", n));
    }
    if (nodes_[n].is_success && !nodes_[n].out_arcs.empty()) {
      return Status::Internal(
          StrFormat("success node %u has outgoing arcs", n));
    }
  }
  for (ArcId a = 0; a < arcs_.size(); ++a) {
    if (arcs_[a].cost <= 0.0) {
      return Status::Internal(StrFormat("arc %u has non-positive cost", a));
    }
    if (arcs_[a].kind == ArcKind::kRetrieval && arcs_[a].experiment < 0) {
      return Status::Internal(
          StrFormat("retrieval arc %u is not an experiment", a));
    }
  }
  return Status::OK();
}

std::string InferenceGraph::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    out += StrFormat("  n%u [label=\"%s\"%s];\n", n, nodes_[n].label.c_str(),
                     nodes_[n].is_success ? ", shape=box" : "");
  }
  for (const Arc& a : arcs_) {
    const char* style =
        a.kind == ArcKind::kRetrieval ? ", style=dashed" : "";
    out += StrFormat("  n%u -> n%u [label=\"%s (%s)\"%s];\n", a.from, a.to,
                     a.label.c_str(), FormatDouble(a.cost).c_str(), style);
  }
  out += "}\n";
  return out;
}

}  // namespace stratlearn
