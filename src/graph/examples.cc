#include "graph/examples.h"

namespace stratlearn {

FigureOneGraph MakeFigureOne() {
  FigureOneGraph g;
  NodeId root = g.graph.AddRoot("instructor(k)");
  auto prof = g.graph.AddChild(root, "prof(k)", ArcKind::kReduction, 1.0,
                               "R_p");
  g.r_p = prof.arc;
  g.d_p = g.graph.AddRetrieval(prof.node, 1.0, "D_p").arc;
  auto grad = g.graph.AddChild(root, "grad(k)", ArcKind::kReduction, 1.0,
                               "R_g");
  g.r_g = grad.arc;
  g.d_g = g.graph.AddRetrieval(grad.node, 1.0, "D_g").arc;
  return g;
}

FigureTwoGraph MakeFigureTwo() {
  FigureTwoGraph g;
  NodeId root = g.graph.AddRoot("G");
  auto a = g.graph.AddChild(root, "A", ArcKind::kReduction, 1.0, "R_ga");
  g.r_ga = a.arc;
  g.d_a = g.graph.AddRetrieval(a.node, 1.0, "D_a").arc;

  auto s = g.graph.AddChild(root, "S", ArcKind::kReduction, 1.0, "R_gs");
  g.r_gs = s.arc;
  auto b = g.graph.AddChild(s.node, "B", ArcKind::kReduction, 1.0, "R_sb");
  g.r_sb = b.arc;
  g.d_b = g.graph.AddRetrieval(b.node, 1.0, "D_b").arc;

  auto t = g.graph.AddChild(s.node, "T", ArcKind::kReduction, 1.0, "R_st");
  g.r_st = t.arc;
  auto c = g.graph.AddChild(t.node, "C", ArcKind::kReduction, 1.0, "R_tc");
  g.r_tc = c.arc;
  g.d_c = g.graph.AddRetrieval(c.node, 1.0, "D_c").arc;

  auto d = g.graph.AddChild(t.node, "D", ArcKind::kReduction, 1.0, "R_td");
  g.r_td = d.arc;
  g.d_d = g.graph.AddRetrieval(d.node, 1.0, "D_d").arc;
  return g;
}

}  // namespace stratlearn
