#ifndef STRATLEARN_GRAPH_INFERENCE_GRAPH_H_
#define STRATLEARN_GRAPH_INFERENCE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace stratlearn {

using NodeId = uint32_t;
using ArcId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr ArcId kInvalidArc = 0xffffffffu;

/// The kind of an arc in an inference graph (Section 2.1): a rule
/// reduction (goal to subgoal) or a database retrieval.
enum class ArcKind : uint8_t { kReduction, kRetrieval };

/// One arc of the graph. An arc is an *experiment* when it can be blocked
/// in some contexts: every retrieval is an experiment; a reduction is one
/// only when it is guarded (e.g. "grad(fred) :- admitted(fred, X)" can be
/// followed only for the query constant fred — Section 4.1).
struct Arc {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  ArcKind kind = ArcKind::kReduction;
  double cost = 1.0;
  /// Outcome-dependent cost extension (Note 4 / [OG90]): extra cost paid
  /// when the traversal succeeds resp. is blocked, on top of `cost`.
  /// Deterministic arcs always "succeed". Both default to 0 (the paper's
  /// basic model).
  double success_cost = 0.0;
  double failure_cost = 0.0;
  std::string label;
  /// Index into the graph's experiment list, or -1 for deterministic
  /// (never blocked) arcs. Maintained by InferenceGraph.
  int experiment = -1;

  /// Largest possible cost of one attempt of this arc.
  double MaxCost() const {
    double extra = success_cost > failure_cost ? success_cost : failure_cost;
    return cost + extra;
  }

  /// Expected cost of one attempt when the arc succeeds w.p. `p`.
  double ExpectedAttemptCost(double p) const {
    return cost + p * success_cost + (1.0 - p) * failure_cost;
  }
};

/// One node: an atomic literal (goal/subgoal) or a success box.
struct Node {
  std::string label;
  bool is_success = false;
  /// Incoming arc (tree shape: at most one), kInvalidArc for the root.
  ArcId incoming = kInvalidArc;
  /// Outgoing arcs in strategy-default (rule/insertion) order.
  std::vector<ArcId> out_arcs;
};

/// An inference graph G = <N, A, S, f> (Section 2.1). This class
/// maintains the AOT (tree-shaped) invariant: every added arc must
/// descend from an existing node to a brand-new node, so the structure is
/// a tree rooted at node 0 by construction. (The paper's general
/// directed-graph case is NP-hard to optimise [Gre91]; see DESIGN.md.)
///
/// Success nodes S are the boxed nodes of Figure 1: reaching one means
/// the derivation has succeeded.
class InferenceGraph {
 public:
  InferenceGraph() = default;

  /// Creates the root node (must be called exactly once, first).
  NodeId AddRoot(std::string label);

  /// Adds a node under `parent` connected by a new arc, and returns both
  /// ids. Deterministic arc unless `is_experiment`.
  struct AddResult {
    NodeId node;
    ArcId arc;
  };
  AddResult AddChild(NodeId parent, std::string node_label, ArcKind kind,
                     double cost, std::string arc_label,
                     bool is_experiment = false, bool is_success = false);

  /// Convenience: adds a retrieval arc (always an experiment) leading to
  /// a success box.
  AddResult AddRetrieval(NodeId parent, double cost, std::string arc_label);

  /// Sets the Note 4 / [OG90] outcome-dependent extra costs of an arc
  /// (both must be >= 0).
  void SetOutcomeCosts(ArcId id, double on_success, double on_failure);

  // ---- Inspection ------------------------------------------------------

  NodeId root() const { return 0; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_arcs() const { return arcs_.size(); }
  const Node& node(NodeId id) const;
  const Arc& arc(ArcId id) const;

  /// All arcs that are experiments, in experiment-index order.
  const std::vector<ArcId>& experiments() const { return experiments_; }
  size_t num_experiments() const { return experiments_.size(); }

  /// Experiment index for `arc`, or -1 when the arc is deterministic.
  int ExperimentIndex(ArcId id) const { return arc(id).experiment; }

  /// All retrieval arcs, in arc order.
  std::vector<ArcId> RetrievalArcs() const;

  /// Arcs whose head is a success node ("leaf" arcs of the search).
  std::vector<ArcId> SuccessArcs() const;

  // ---- Cost functions (Note 5) ----------------------------------------
  // With outcome-dependent costs these use each arc's MaxCost, keeping
  // f*, F_not and the Lambda ranges derived from them valid upper
  // bounds; with the paper's basic model they reduce to plain f sums.

  /// f*(a): cost of `a` plus every arc below it.
  double FStar(ArcId id) const;

  /// f* for every arc, indexed by ArcId; O(|A|).
  std::vector<double> AllFStar() const;

  /// F_not[a]: total cost of the arcs outside a's own root path and
  /// subtree — for a leaf arc, exactly "the arcs on the other paths".
  double FNeg(ArcId id) const;

  /// Total cost of all arcs.
  double TotalCost() const;

  /// Pi(a) of Definition 1: the arcs from the root down to, but not
  /// including, `a`.
  std::vector<ArcId> Pi(ArcId id) const;

  /// Every arc in the subtree rooted at `a` (including `a`), preorder.
  std::vector<ArcId> SubtreeArcs(ArcId id) const;

  /// Depth of the arc (root arcs have depth 0).
  int ArcDepth(ArcId id) const;

  // ---- Validation & export ---------------------------------------------

  /// Structural checks: a single root exists, success nodes are leaves,
  /// every non-root node has exactly one incoming arc, costs positive.
  Status Validate() const;

  /// Graphviz DOT rendering for debugging and documentation.
  std::string ToDot(const std::string& graph_name = "G") const;

 private:
  std::vector<Node> nodes_;
  std::vector<Arc> arcs_;
  std::vector<ArcId> experiments_;
};

}  // namespace stratlearn

#endif  // STRATLEARN_GRAPH_INFERENCE_GRAPH_H_
