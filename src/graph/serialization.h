#ifndef STRATLEARN_GRAPH_SERIALIZATION_H_
#define STRATLEARN_GRAPH_SERIALIZATION_H_

#include <string>
#include <string_view>

#include "graph/inference_graph.h"
#include "util/status.h"

namespace stratlearn {

/// Line-oriented text serialisation of inference graphs, so a deployment
/// can persist the graph (and, via engine/strategy serialisation, the
/// learned strategy) across query-processor restarts.
///
/// Format (one record per line; the label is the rest of the line, so it
/// may contain spaces):
///
///   stratlearn-graph v1
///   node <is_success:0|1> <label>
///   arc <from> <to> <kind:R|D> <cost> <success_cost> <failure_cost>
///       <is_experiment:0|1> <label>        (one line, wrapped here)
///
/// Nodes and arcs appear in id order; deserialisation rebuilds them with
/// identical ids (node 0 is the root). Costs round-trip via shortest
/// exact decimal (%.17g).
std::string SerializeGraph(const InferenceGraph& graph);

/// Parses a graph produced by SerializeGraph. Validates the result.
Result<InferenceGraph> DeserializeGraph(std::string_view text);

}  // namespace stratlearn

#endif  // STRATLEARN_GRAPH_SERIALIZATION_H_
