#ifndef STRATLEARN_GRAPH_BUILDER_H_
#define STRATLEARN_GRAPH_BUILDER_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "datalog/database.h"
#include "datalog/rule_base.h"
#include "graph/inference_graph.h"
#include "util/status.h"

namespace stratlearn {

/// A query form q^alpha (Section 2): a predicate plus an adornment that
/// marks each argument position bound ('b') or free ('f').
struct QueryForm {
  SymbolId predicate = kInvalidSymbol;
  std::vector<bool> bound;  // bound[i] == true  <=>  adornment 'b'

  /// Parses "instructor(b)" / "path(b, f)" style forms.
  static Result<QueryForm> Parse(std::string_view text, SymbolTable* symbols);
};

/// How a retrieval arc's database lookup is produced from a concrete
/// query's constant arguments.
struct RetrievalSpec {
  /// One per argument of the retrieved atom.
  struct ArgSpec {
    /// >= 0: take the query's argument at this index.
    /// kConstant (-1): use `constant` below.
    /// kExistential (-2): match anything (existential retrieval).
    int source = kConstant;
    SymbolId constant = kInvalidSymbol;

    static constexpr int kConstant = -1;
    static constexpr int kExistential = -2;
  };

  SymbolId predicate = kInvalidSymbol;
  std::vector<ArgSpec> args;

  /// True iff some argument is existential, i.e. the retrieval succeeds
  /// when *any* matching fact exists.
  bool IsExistential() const;

  /// Evaluates the retrieval against `db` for a query with the given
  /// constant arguments: true iff the lookup succeeds (arc unblocked).
  bool Succeeds(const Database& db, const std::vector<SymbolId>& query_args)
      const;
};

/// A guard on a reduction arc: the arc is traversable only when the
/// query's constants satisfy every equality (Section 4.1's
/// "grad(fred) :- admitted(fred, X)" example: the reduction is blocked
/// unless query argument 0 equals 'fred').
struct GuardSpec {
  std::vector<std::pair<int, SymbolId>> equalities;

  bool Satisfied(const std::vector<SymbolId>& query_args) const;
};

/// The result of unfolding a rule base for a query form.
struct BuiltGraph {
  InferenceGraph graph;
  QueryForm form;
  /// Retrieval spec for every retrieval arc.
  std::unordered_map<ArcId, RetrievalSpec> retrievals;
  /// Guard for every guarded (experiment) reduction arc.
  std::unordered_map<ArcId, GuardSpec> guards;
};

/// Costs and limits for graph construction.
struct BuildOptions {
  double reduction_cost = 1.0;
  double retrieval_cost = 1.0;
  /// Maximum rule-unfolding depth.
  int max_depth = 32;
  /// Abort if the graph would exceed this many arcs.
  size_t max_arcs = 100000;
};

/// Unfolds `rules` for queries of shape `form` into a tree-shaped
/// inference graph (the AOT class the paper's algorithms operate on).
///
/// Supported rule shapes, mirroring the paper's Note 4 restriction to
/// simple (non-hyper) graphs:
///  * chains of extensional body atoms (compiled to a run of retrieval
///    experiments in series, ending in a success box);
///  * an optional single *intensional* body atom in the last position,
///    which is unfolded recursively;
///  * head constants acting as guards on the reduction arc.
///
/// Returns InvalidArgument for recursive predicates, and Unimplemented
/// for rule shapes that need hypergraph strategies (an intensional atom
/// before the end of the body, or an existential variable shared between
/// body atoms — a join).
Result<BuiltGraph> BuildInferenceGraph(const RuleBase& rules,
                                       const QueryForm& form,
                                       SymbolTable* symbols,
                                       const BuildOptions& options = {});

}  // namespace stratlearn

#endif  // STRATLEARN_GRAPH_BUILDER_H_
