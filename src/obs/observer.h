#ifndef STRATLEARN_OBS_OBSERVER_H_
#define STRATLEARN_OBS_OBSERVER_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace_sink.h"

namespace stratlearn::obs {

/// The handle the engine and learners carry: a metrics registry plus a
/// trace sink, either of which may be absent. Instrumented code holds an
/// `Observer*` that defaults to nullptr and guards all observability
/// work behind that single branch, so uninstrumented runs pay (almost)
/// nothing.
///
/// Timestamps for events come from NowUs(): steady-clock microseconds
/// since this Observer was constructed, so every sink attached to the
/// same observer shares one clock domain.
class Observer {
 public:
  Observer(MetricsRegistry* metrics, TraceSink* sink)
      : metrics_(metrics), sink_(sink) {}

  MetricsRegistry* metrics() const { return metrics_; }
  TraceSink* sink() const { return sink_; }

  int64_t NowUs() const { return static_cast<int64_t>(epoch_.ElapsedUs()); }

 private:
  MetricsRegistry* metrics_;
  TraceSink* sink_;
  Stopwatch epoch_;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_OBSERVER_H_
