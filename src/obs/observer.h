#ifndef STRATLEARN_OBS_OBSERVER_H_
#define STRATLEARN_OBS_OBSERVER_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace_sink.h"

namespace stratlearn::obs {

/// The handle the engine and learners carry: a metrics registry plus a
/// trace sink, either of which may be absent. Instrumented code holds an
/// `Observer*` that defaults to nullptr and guards all observability
/// work behind that single branch, so uninstrumented runs pay (almost)
/// nothing.
///
/// Timestamps for events come from NowUs(): steady-clock microseconds
/// since this Observer was constructed, so every sink attached to the
/// same observer shares one clock domain. UseManualClock switches to a
/// caller-driven clock instead (the CLI's --obs-clock=fake): timestamps
/// and wall durations then depend only on the advance sequence, which
/// is what makes fake-clock traces, time series and exports
/// byte-deterministic — a real clock would leak scheduler noise into
/// qp.query_wall_us even when every other number is reproducible.
class Observer {
 public:
  Observer(MetricsRegistry* metrics, TraceSink* sink)
      : metrics_(metrics), sink_(sink) {}

  MetricsRegistry* metrics() const { return metrics_; }
  TraceSink* sink() const { return sink_; }

  int64_t NowUs() const {
    if (manual_clock_) return manual_now_us_.load(std::memory_order_relaxed);
    return static_cast<int64_t>(epoch_.ElapsedUs());
  }

  /// Decision-certificate emission is opt-in (the CLI's --audit-out):
  /// learners emit DecisionCertificateEvents only when this is set, so
  /// runs without auditing produce byte-identical traces to builds
  /// that predate the audit layer. Set before handing the observer to
  /// instrumented code; not synchronised.
  void set_audit_enabled(bool enabled) { audit_enabled_ = enabled; }
  bool audit_enabled() const { return audit_enabled_; }

  /// Subsampling cadence for *reject* certificates (every k-th audited
  /// test round); commit/stop/quota certificates are never subsampled.
  /// The CLI's --audit-every. Values < 1 are treated as 1.
  void set_audit_every(int64_t every) {
    audit_every_ = every < 1 ? 1 : every;
  }
  int64_t audit_every() const { return audit_every_; }

  /// Call before handing the observer to instrumented code; not
  /// synchronised against concurrent NowUs.
  void UseManualClock() { manual_clock_ = true; }
  /// Relaxed store: worker threads reading NowUs mid-advance just get
  /// the old or the new tick, either of which is a valid timestamp.
  void AdvanceManualClock(int64_t now_us) {
    manual_now_us_.store(now_us, std::memory_order_relaxed);
  }
  bool manual_clock() const { return manual_clock_; }

 private:
  MetricsRegistry* metrics_;
  TraceSink* sink_;
  Stopwatch epoch_;
  bool manual_clock_ = false;
  bool audit_enabled_ = false;
  int64_t audit_every_ = 1;
  std::atomic<int64_t> manual_now_us_{0};
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_OBSERVER_H_
