#include "obs/openmetrics.h"

#include <cmath>
#include <cstdio>

#include "util/file_util.h"
#include "util/string_util.h"

namespace stratlearn::obs {
namespace {

/// Exposition-format number rendering. OpenMetrics (unlike JSON) has
/// literal spellings for the non-finite values, so a NaN gauge stays a
/// NaN instead of corrupting the dump.
std::string OmValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return FormatDouble(value, 12);
}

}  // namespace

std::string OpenMetricsName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string OpenMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string n = OpenMetricsName(name);
    out += "# TYPE " + n + " counter\n";
    out += StrFormat("%s_total %lld\n", n.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string n = OpenMetricsName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + OmValue(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string n = OpenMetricsName(name);
    out += "# TYPE " + n + " histogram\n";
    // Exposition buckets are cumulative: le="x" counts every sample
    // <= x, ending with the le="+Inf" total.
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      std::string le =
          i < h.bounds.size() ? OmValue(h.bounds[i]) : std::string("+Inf");
      out += StrFormat("%s_bucket{le=\"%s\"} %lld\n", n.c_str(), le.c_str(),
                       static_cast<long long>(cumulative));
    }
    out += n + "_sum " + OmValue(h.sum) + "\n";
    out += StrFormat("%s_count %lld\n", n.c_str(),
                     static_cast<long long>(h.count));
  }
  out += "# EOF\n";
  return out;
}

bool WriteOpenMetricsFile(const std::string& path,
                          const MetricsSnapshot& snapshot) {
  return WriteFileAtomic(path, OpenMetricsText(snapshot));
}

PeriodicOpenMetricsExporter::PeriodicOpenMetricsExporter(std::string path,
                                                         int64_t interval_us)
    : path_(std::move(path)), interval_us_(interval_us) {}

bool PeriodicOpenMetricsExporter::MaybeExport(int64_t now_us,
                                              const MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_ || now_us < next_due_us_) return false;
  // Anchor the next deadline to the cadence grid, not to `now`, so a
  // late tick does not drift every subsequent export.
  next_due_us_ =
      (now_us / interval_us_ + 1) * interval_us_;
  return ExportLocked(registry);
}

bool PeriodicOpenMetricsExporter::ExportNow(const MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) return false;
  return ExportLocked(registry);
}

bool PeriodicOpenMetricsExporter::ExportLocked(
    const MetricsRegistry& registry) {
  if (!WriteOpenMetricsFile(path_, registry.Snapshot())) {
    failed_ = true;
    std::fprintf(stderr,
                 "warning: failed writing OpenMetrics dump to '%s' (disk "
                 "full?); metrics export disabled for this run\n",
                 path_.c_str());
    return false;
  }
  ++exports_;
  return true;
}

int64_t PeriodicOpenMetricsExporter::exports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return exports_;
}

bool PeriodicOpenMetricsExporter::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

}  // namespace stratlearn::obs
