#ifndef STRATLEARN_OBS_METRICS_H_
#define STRATLEARN_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stratlearn::obs {

/// A monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// A last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A fixed-bucket histogram. Bucket i counts values <= bounds[i] (and
/// greater than bounds[i-1]); one implicit overflow bucket catches
/// everything above the last bound. Tracks count/sum/min/max exactly;
/// percentiles are estimated by linear interpolation inside the bucket
/// that contains the requested rank.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void Record(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Number of buckets including the overflow bucket.
  size_t num_buckets() const { return counts_.size(); }
  int64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Upper bound of bucket i; +infinity for the overflow bucket.
  double bucket_upper(size_t i) const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// Estimated value at percentile `p` in [0, 100]. Returns 0 with no
  /// samples; clamps to the observed min/max so the estimate never
  /// leaves the data's range.
  double Percentile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;  // bounds_.size() + 1 (overflow last)
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bucket helpers. Exponential: {start, start*factor, ...} (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
std::vector<double> LinearBuckets(double start, double step, int count);
/// Default 1-2-5 decade series from 1 to 5e6 — suits both microsecond
/// wall times and abstract arc costs.
std::vector<double> DefaultBuckets();

/// Named metrics, created on first use. Pointers returned by the Get*
/// methods remain valid for the registry's lifetime (node-based map
/// storage). Not thread-safe; one registry per run/experiment.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `upper_bounds` is used only when the histogram does not exist yet;
  /// empty means DefaultBuckets().
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Serializes every metric to one deterministic JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:
  ///     {"count":..,"sum":..,"min":..,"max":..,"mean":..,
  ///      "p50":..,"p90":..,"p99":..,
  ///      "buckets":[{"le":1,"count":0},..,{"le":"+Inf","count":0}]}}}
  std::string SnapshotJson() const;

  /// Human-readable multi-line summary (counters, gauges, histogram
  /// count/mean/p50/p95/max), for CLI and bench banners. Empty string
  /// when the registry holds no metrics.
  std::string Summary() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_METRICS_H_
