#ifndef STRATLEARN_OBS_METRICS_H_
#define STRATLEARN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stratlearn::obs {

/// A monotonically increasing integer metric. Increment/value are
/// lock-free relaxed atomics: concurrent workers may hammer the same
/// counter and the total is exact once they quiesce (the Chernoff /
/// Bonferroni bookkeeping upstream is indifferent to *which* thread
/// observed a context, only to how many were observed). Relaxed
/// ordering is deliberate — a metric carries no synchronisation duty,
/// so the hot path pays one uncontended atomic add and nothing else.
class Counter {
 public:
  Counter() = default;
  /// Snapshot copy: the copy starts at the source's current value and
  /// is independent afterwards (registry aggregation, BENCH results).
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-write-wins floating-point metric. Set/value are relaxed
/// atomic store/load, so concurrent writers race benignly: the final
/// value is one of the written values, never a torn double.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram, safe to read at leisure. Taken
/// by MetricsRegistry::Snapshot() (and Histogram::Snapshot()) with
/// relaxed loads: under concurrent recording the fields are *weakly*
/// consistent (count may momentarily disagree with the bucket totals by
/// in-flight records); once writers quiesce every field is exact.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;  // bounds.size() + 1, overflow last
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;  // 0 when count == 0

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Estimated value at percentile `p` in [0, 100]; linear interpolation
  /// inside the bucket holding the rank, clamped to [min, max]. Returns
  /// 0 with no samples.
  double Percentile(double p) const;
};

/// A fixed-bucket histogram. Bucket i counts values <= bounds[i] (and
/// greater than bounds[i-1]); one implicit overflow bucket catches
/// everything above the last bound. Tracks count/sum/min/max exactly;
/// percentiles are estimated by linear interpolation inside the bucket
/// that contains the requested rank.
///
/// Record is thread-safe and lock-free: per-bucket atomic adds plus
/// CAS loops for sum/min/max, all relaxed (see Counter for why). Reads
/// during concurrent recording see weakly consistent values — take a
/// Snapshot() and read that, or quiesce writers for exact totals.
/// Copying/moving is NOT thread-safe against concurrent Record on the
/// source; it snapshots the source's current state.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(double value);

  /// Folds `other`'s samples into this histogram — the combiner for
  /// sharded per-thread histograms and per-worker aggregation. The two
  /// histograms must have identical bounds (checked); min/max/sum/count
  /// combine exactly, including when either side is empty. Not atomic
  /// as a whole: concurrent Record on *this* is safe, concurrent Record
  /// on `other` may leave a partially merged sample behind.
  void Merge(const Histogram& other);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest/largest recorded value; 0 with no samples.
  double min() const;
  double max() const;
  double Mean() const {
    int64_t n = count();
    return n == 0 ? 0.0 : sum() / n;
  }

  /// Number of buckets including the overflow bucket.
  size_t num_buckets() const { return bounds_.size() + 1; }
  int64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i; +infinity for the overflow bucket.
  double bucket_upper(size_t i) const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// Point-in-time copy (relaxed loads; weakly consistent under
  /// concurrent recording).
  HistogramSnapshot Snapshot() const;

  /// Estimated value at percentile `p` in [0, 100] — Snapshot()'s
  /// estimate; see HistogramSnapshot::Percentile.
  double Percentile(double p) const { return Snapshot().Percentile(p); }

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 atomic bucket counts (overflow last), heap-held
  /// so the histogram stays copyable via snapshot semantics.
  std::unique_ptr<std::atomic<int64_t>[]> counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +inf / -inf until the first sample; the accessors clamp the empty
  /// case to 0 so callers never see the sentinels.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Bucket helpers. Exponential: {start, start*factor, ...} (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);
std::vector<double> LinearBuckets(double start, double step, int count);
/// Default 1-2-5 decade series from 1 to 5e6 — suits both microsecond
/// wall times and abstract arc costs.
std::vector<double> DefaultBuckets();

/// Point-in-time copy of every metric in a registry: the substrate the
/// JSON snapshot, the OpenMetrics exposition writer and the
/// TimeSeriesCollector all render from. Plain data; safe to keep, diff
/// and serialize long after the registry has moved on.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named metrics, created on first use. Thread-safe: the name maps are
/// guarded by a mutex (taken only on Get* lookups and snapshots, never
/// on the metric hot paths), and the returned references stay valid and
/// stable for the registry's lifetime (node-based map storage), so the
/// intended pattern is to resolve handles once and then increment /
/// record through them lock-free from any number of threads.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `upper_bounds` is used only when the histogram does not exist yet;
  /// empty means DefaultBuckets().
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});

  /// Copies every metric's current value (relaxed loads under the name
  /// lock). Under concurrent writers the values are weakly consistent;
  /// once writers quiesce the snapshot is exact.
  MetricsSnapshot Snapshot() const;

  /// Serializes every metric to one deterministic JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:
  ///     {"count":..,"sum":..,"min":..,"max":..,"mean":..,
  ///      "p50":..,"p90":..,"p99":..,
  ///      "buckets":[{"le":1,"count":0},..,{"le":"+Inf","count":0}]}}}
  /// Non-finite gauge values are emitted as null (JSON has no NaN/Inf),
  /// so the snapshot always parses.
  std::string SnapshotJson() const;

  /// Human-readable multi-line summary (counters, gauges, histogram
  /// count/mean/p50/p95/max), for CLI and bench banners. Empty string
  /// when the registry holds no metrics.
  std::string Summary() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Renders a MetricsSnapshot in SnapshotJson's schema (shared by the
/// registry and the TimeSeriesCollector's window serialization).
std::string RenderSnapshotJson(const MetricsSnapshot& snapshot);

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_METRICS_H_
