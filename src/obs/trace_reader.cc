#include "obs/trace_reader.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace stratlearn::obs {

namespace {

/// One scalar field of a flat JSONL event object.
struct Field {
  enum class Kind { kString, kNumber, kBool, kNull };
  std::string key;
  Kind kind = Kind::kNull;
  std::string str;
  double num = 0.0;
  bool boolean = false;
};

/// Recursive-descent parser for exactly the sinks' output language:
/// one flat object of scalar fields. Nested containers are rejected —
/// nothing in the JSONL schema produces them, and keeping the reader
/// flat keeps its failure modes obvious.
class FlatObjectParser {
 public:
  explicit FlatObjectParser(std::string_view text) : text_(text) {}

  Status Parse(std::vector<Field>* fields) {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return Remainder();
    while (true) {
      Field field;
      Status key = ParseString(&field.key);
      if (!key.ok()) return key;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      Status value = ParseValue(&field);
      if (!value.ok()) return value;
      fields->push_back(std::move(field));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) return Remainder();
      return Error("expected ',' or '}'");
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  Status Remainder() {
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned long code =
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                           nullptr, 16);
          pos_ += 4;
          // The sinks only \u-escape ASCII control characters.
          out->push_back(static_cast<char>(code & 0x7f));
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(Field* field) {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("expected value");
    char c = text_[pos_];
    if (c == '"') {
      field->kind = Field::Kind::kString;
      return ParseString(&field->str);
    }
    if (c == '{' || c == '[') {
      return Error("nested containers are not part of the JSONL schema");
    }
    if (ConsumeWord("true")) {
      field->kind = Field::Kind::kBool;
      field->boolean = true;
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      field->kind = Field::Kind::kBool;
      field->boolean = false;
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      field->kind = Field::Kind::kNull;
      return Status::OK();
    }
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    field->kind = Field::Kind::kNumber;
    field->num = std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

const Field* Find(const std::vector<Field>& fields, std::string_view key) {
  for (const Field& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

double Num(const std::vector<Field>& fields, std::string_view key,
           double fallback = 0.0) {
  const Field* f = Find(fields, key);
  return f != nullptr && f->kind == Field::Kind::kNumber ? f->num : fallback;
}

int64_t Int(const std::vector<Field>& fields, std::string_view key,
            int64_t fallback = 0) {
  return static_cast<int64_t>(Num(fields, key, static_cast<double>(fallback)));
}

bool Bool(const std::vector<Field>& fields, std::string_view key) {
  const Field* f = Find(fields, key);
  return f != nullptr && f->kind == Field::Kind::kBool && f->boolean;
}

std::string Str(const std::vector<Field>& fields, std::string_view key) {
  const Field* f = Find(fields, key);
  return f != nullptr && f->kind == Field::Kind::kString ? f->str
                                                         : std::string();
}

}  // namespace

Status TraceReader::ReplayLine(std::string_view line) {
  ++line_number_;
  std::string_view trimmed = Trim(line);
  if (trimmed.empty()) return Status::OK();

  std::vector<Field> fields;
  Status parsed = FlatObjectParser(trimmed).Parse(&fields);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StrFormat("line %lld: %s", static_cast<long long>(line_number_),
                  parsed.message().c_str()));
  }
  std::string type = Str(fields, "type");
  if (type.empty()) {
    return Status::InvalidArgument(StrFormat(
        "line %lld: event has no \"type\"",
        static_cast<long long>(line_number_)));
  }

  if (type == "query_start") {
    QueryStartEvent e;
    e.query_index = Int(fields, "query_index");
    e.t_us = Int(fields, "t_us");
    sink_->OnQueryStart(e);
  } else if (type == "query_end") {
    QueryEndEvent e;
    e.query_index = Int(fields, "query_index");
    e.t_us = Int(fields, "t_us");
    e.duration_us = Int(fields, "duration_us");
    e.cost = Num(fields, "cost");
    e.attempts = Int(fields, "attempts");
    e.successes = Int(fields, "successes");
    e.success = Bool(fields, "success");
    sink_->OnQueryEnd(e);
  } else if (type == "arc_attempt") {
    ArcAttemptEvent e;
    e.query_index = Int(fields, "query_index");
    e.t_us = Int(fields, "t_us");
    e.arc = static_cast<uint32_t>(Int(fields, "arc"));
    e.experiment = static_cast<int>(Int(fields, "experiment", -1));
    e.unblocked = Bool(fields, "unblocked");
    e.cost = Num(fields, "cost");
    sink_->OnArcAttempt(e);
  } else if (type == "climb_move") {
    ClimbMoveEvent e;
    e.t_us = Int(fields, "t_us");
    e.learner = Str(fields, "learner");
    e.move_index = Int(fields, "move_index");
    e.at_context = Int(fields, "at_context");
    e.samples_used = Int(fields, "samples_used");
    e.swap = Str(fields, "swap");
    e.delta_sum = Num(fields, "delta_sum");
    e.threshold = Num(fields, "threshold");
    e.margin = Num(fields, "margin");
    e.delta_spent = Num(fields, "delta_spent");
    sink_->OnClimbMove(e);
  } else if (type == "sequential_test") {
    SequentialTestEvent e;
    e.t_us = Int(fields, "t_us");
    e.learner = Str(fields, "learner");
    e.at_context = Int(fields, "at_context");
    e.samples = Int(fields, "samples");
    e.trial_count = Int(fields, "trial_count");
    e.best_neighbor = Int(fields, "best_neighbor", -1);
    e.best_delta_sum = Num(fields, "best_delta_sum");
    e.best_threshold = Num(fields, "best_threshold");
    e.fired = Bool(fields, "fired");
    sink_->OnSequentialTest(e);
  } else if (type == "quota_progress") {
    QuotaProgressEvent e;
    e.t_us = Int(fields, "t_us");
    e.context = Int(fields, "context");
    e.aimed_experiment = static_cast<int>(Int(fields, "aimed_experiment", -1));
    e.reached = Bool(fields, "reached");
    e.remaining_max = Int(fields, "remaining_max");
    e.remaining_total = Int(fields, "remaining_total");
    sink_->OnQuotaProgress(e);
  } else if (type == "retry") {
    RetryEvent e;
    e.t_us = Int(fields, "t_us");
    e.query_index = Int(fields, "query_index");
    e.arc = static_cast<uint32_t>(Int(fields, "arc"));
    e.experiment = static_cast<int>(Int(fields, "experiment", -1));
    e.fault = Str(fields, "fault");
    e.attempt = Int(fields, "attempt");
    e.backoff_cost = Num(fields, "backoff_cost");
    e.gave_up = Bool(fields, "gave_up");
    sink_->OnRetry(e);
  } else if (type == "breaker") {
    BreakerEvent e;
    e.t_us = Int(fields, "t_us");
    e.query_index = Int(fields, "query_index");
    e.arc = static_cast<uint32_t>(Int(fields, "arc"));
    e.experiment = static_cast<int>(Int(fields, "experiment", -1));
    e.state = Str(fields, "state");
    e.consecutive_failures = Int(fields, "consecutive_failures");
    e.cooldown_until = Int(fields, "cooldown_until");
    sink_->OnBreaker(e);
  } else if (type == "degraded") {
    DegradedEvent e;
    e.t_us = Int(fields, "t_us");
    e.query_index = Int(fields, "query_index");
    e.cost = Num(fields, "cost");
    e.budget = Num(fields, "budget");
    e.attempts = Int(fields, "attempts");
    sink_->OnDegraded(e);
  } else if (type == "drift") {
    DriftEvent e;
    e.t_us = Int(fields, "t_us");
    e.detector = Str(fields, "detector");
    e.state = Str(fields, "state");
    e.arc = Int(fields, "arc", -1);
    e.counter = Str(fields, "counter");
    e.statistic = Num(fields, "statistic");
    e.reference = Num(fields, "reference");
    e.threshold = Num(fields, "threshold");
    e.window = Int(fields, "window");
    e.window_start_us = Int(fields, "window_start_us");
    e.window_end_us = Int(fields, "window_end_us");
    sink_->OnDrift(e);
  } else if (type == "alert") {
    AlertEvent e;
    e.t_us = Int(fields, "t_us");
    e.rule = Str(fields, "rule");
    e.state = Str(fields, "state");
    e.severity = Str(fields, "severity");
    e.metric = Str(fields, "metric");
    e.value = Num(fields, "value");
    e.threshold = Num(fields, "threshold");
    e.window = Int(fields, "window");
    e.for_windows = Int(fields, "for_windows");
    sink_->OnAlert(e);
  } else if (type == "palo_stop") {
    PaloStopEvent e;
    e.t_us = Int(fields, "t_us");
    e.at_context = Int(fields, "at_context");
    e.moves = Int(fields, "moves");
    e.epsilon = Num(fields, "epsilon");
    e.worst_certificate = Num(fields, "worst_certificate");
    sink_->OnPaloStop(e);
  } else {
    ++skipped_;
    return Status::OK();
  }
  ++events_;
  return Status::OK();
}

Status TraceReader::ReplayStream(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    Status status = ReplayLine(line);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace stratlearn::obs
