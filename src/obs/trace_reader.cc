#include "obs/trace_reader.h"

#include <cstdint>
#include <string>

#include "obs/json_reader.h"
#include "util/string_util.h"

namespace stratlearn::obs {

namespace {

/// Field accessors over one parsed event object. The JSONL schema is
/// flat scalars, so a key holding the wrong kind (or a nested
/// container) simply yields the fallback — same tolerance the reader
/// has always had for absent keys.
double Num(const JsonValue& object, const std::string& key,
           double fallback = 0.0) {
  const JsonValue* v = object.Get(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

int64_t Int(const JsonValue& object, const std::string& key,
            int64_t fallback = 0) {
  return static_cast<int64_t>(Num(object, key, static_cast<double>(fallback)));
}

bool Bool(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Get(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
}

std::string Str(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Get(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : std::string();
}

}  // namespace

Status TraceReader::ReplayLine(std::string_view line) {
  ++line_number_;
  std::string_view trimmed = Trim(line);
  if (trimmed.empty()) return Status::OK();

  JsonValue value;
  if (!ParseJson(std::string(trimmed), &value)) {
    return Status::InvalidArgument(
        StrFormat("line %lld: malformed JSON",
                  static_cast<long long>(line_number_)));
  }
  if (value.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        StrFormat("line %lld: event is not a JSON object",
                  static_cast<long long>(line_number_)));
  }
  const JsonValue& fields = value;
  std::string type = Str(fields, "type");
  if (type.empty()) {
    return Status::InvalidArgument(StrFormat(
        "line %lld: event has no \"type\"",
        static_cast<long long>(line_number_)));
  }

  if (type == "query_start") {
    QueryStartEvent e;
    e.query_index = Int(fields, "query_index");
    e.t_us = Int(fields, "t_us");
    sink_->OnQueryStart(e);
  } else if (type == "query_end") {
    QueryEndEvent e;
    e.query_index = Int(fields, "query_index");
    e.t_us = Int(fields, "t_us");
    e.duration_us = Int(fields, "duration_us");
    e.cost = Num(fields, "cost");
    e.attempts = Int(fields, "attempts");
    e.successes = Int(fields, "successes");
    e.success = Bool(fields, "success");
    sink_->OnQueryEnd(e);
  } else if (type == "arc_attempt") {
    ArcAttemptEvent e;
    e.query_index = Int(fields, "query_index");
    e.t_us = Int(fields, "t_us");
    e.arc = static_cast<uint32_t>(Int(fields, "arc"));
    e.experiment = static_cast<int>(Int(fields, "experiment", -1));
    e.unblocked = Bool(fields, "unblocked");
    e.cost = Num(fields, "cost");
    sink_->OnArcAttempt(e);
  } else if (type == "climb_move") {
    ClimbMoveEvent e;
    e.t_us = Int(fields, "t_us");
    e.learner = Str(fields, "learner");
    e.move_index = Int(fields, "move_index");
    e.at_context = Int(fields, "at_context");
    e.samples_used = Int(fields, "samples_used");
    e.swap = Str(fields, "swap");
    e.delta_sum = Num(fields, "delta_sum");
    e.threshold = Num(fields, "threshold");
    e.margin = Num(fields, "margin");
    e.delta_spent = Num(fields, "delta_spent");
    sink_->OnClimbMove(e);
  } else if (type == "sequential_test") {
    SequentialTestEvent e;
    e.t_us = Int(fields, "t_us");
    e.learner = Str(fields, "learner");
    e.at_context = Int(fields, "at_context");
    e.samples = Int(fields, "samples");
    e.trial_count = Int(fields, "trial_count");
    e.best_neighbor = Int(fields, "best_neighbor", -1);
    e.best_delta_sum = Num(fields, "best_delta_sum");
    e.best_threshold = Num(fields, "best_threshold");
    e.fired = Bool(fields, "fired");
    sink_->OnSequentialTest(e);
  } else if (type == "quota_progress") {
    QuotaProgressEvent e;
    e.t_us = Int(fields, "t_us");
    e.context = Int(fields, "context");
    e.aimed_experiment = static_cast<int>(Int(fields, "aimed_experiment", -1));
    e.reached = Bool(fields, "reached");
    e.remaining_max = Int(fields, "remaining_max");
    e.remaining_total = Int(fields, "remaining_total");
    sink_->OnQuotaProgress(e);
  } else if (type == "retry") {
    RetryEvent e;
    e.t_us = Int(fields, "t_us");
    e.query_index = Int(fields, "query_index");
    e.arc = static_cast<uint32_t>(Int(fields, "arc"));
    e.experiment = static_cast<int>(Int(fields, "experiment", -1));
    e.fault = Str(fields, "fault");
    e.attempt = Int(fields, "attempt");
    e.backoff_cost = Num(fields, "backoff_cost");
    e.gave_up = Bool(fields, "gave_up");
    sink_->OnRetry(e);
  } else if (type == "breaker") {
    BreakerEvent e;
    e.t_us = Int(fields, "t_us");
    e.query_index = Int(fields, "query_index");
    e.arc = static_cast<uint32_t>(Int(fields, "arc"));
    e.experiment = static_cast<int>(Int(fields, "experiment", -1));
    e.state = Str(fields, "state");
    e.consecutive_failures = Int(fields, "consecutive_failures");
    e.cooldown_until = Int(fields, "cooldown_until");
    sink_->OnBreaker(e);
  } else if (type == "degraded") {
    DegradedEvent e;
    e.t_us = Int(fields, "t_us");
    e.query_index = Int(fields, "query_index");
    e.cost = Num(fields, "cost");
    e.budget = Num(fields, "budget");
    e.attempts = Int(fields, "attempts");
    sink_->OnDegraded(e);
  } else if (type == "drift") {
    DriftEvent e;
    e.t_us = Int(fields, "t_us");
    e.detector = Str(fields, "detector");
    e.state = Str(fields, "state");
    e.arc = Int(fields, "arc", -1);
    e.counter = Str(fields, "counter");
    e.statistic = Num(fields, "statistic");
    e.reference = Num(fields, "reference");
    e.threshold = Num(fields, "threshold");
    e.window = Int(fields, "window");
    e.window_start_us = Int(fields, "window_start_us");
    e.window_end_us = Int(fields, "window_end_us");
    sink_->OnDrift(e);
  } else if (type == "alert") {
    AlertEvent e;
    e.t_us = Int(fields, "t_us");
    e.rule = Str(fields, "rule");
    e.state = Str(fields, "state");
    e.severity = Str(fields, "severity");
    e.metric = Str(fields, "metric");
    e.value = Num(fields, "value");
    e.threshold = Num(fields, "threshold");
    e.window = Int(fields, "window");
    e.for_windows = Int(fields, "for_windows");
    sink_->OnAlert(e);
  } else if (type == "recovery") {
    RecoveryEvent e;
    e.t_us = Int(fields, "t_us");
    e.rule = Str(fields, "rule");
    e.trigger = Str(fields, "trigger");
    e.action = Str(fields, "action");
    e.outcome = Str(fields, "outcome");
    e.arc = Int(fields, "arc", -1);
    e.window = Int(fields, "window");
    e.matched = Int(fields, "matched");
    e.statistic = Num(fields, "statistic");
    e.reference = Num(fields, "reference");
    e.threshold = Num(fields, "threshold");
    sink_->OnRecovery(e);
  } else if (type == "palo_stop") {
    PaloStopEvent e;
    e.t_us = Int(fields, "t_us");
    e.at_context = Int(fields, "at_context");
    e.moves = Int(fields, "moves");
    e.epsilon = Num(fields, "epsilon");
    e.worst_certificate = Num(fields, "worst_certificate");
    sink_->OnPaloStop(e);
  } else if (type == "decision_certificate") {
    DecisionCertificateEvent e;
    e.t_us = Int(fields, "t_us");
    e.learner = Str(fields, "learner");
    e.decision = Str(fields, "decision");
    e.verdict = Str(fields, "verdict");
    e.at_context = Int(fields, "at_context");
    e.samples = Int(fields, "samples");
    e.trials = Int(fields, "trials");
    e.subject = Int(fields, "subject", -1);
    e.mean = Num(fields, "mean");
    e.delta_sum = Num(fields, "delta_sum");
    e.threshold = Num(fields, "threshold");
    e.margin = Num(fields, "margin");
    e.range = Num(fields, "range");
    e.epsilon_n = Num(fields, "epsilon_n");
    e.delta_step = Num(fields, "delta_step");
    e.delta_budget = Num(fields, "delta_budget");
    e.delta_spent_total = Num(fields, "delta_spent_total");
    e.bound_samples = Int(fields, "bound_samples");
    e.epsilon = Num(fields, "epsilon");
    sink_->OnDecisionCertificate(e);
  } else {
    ++skipped_;
    return Status::OK();
  }
  ++events_;
  return Status::OK();
}

Status TraceReader::ReplayStream(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    Status status = ReplayLine(line);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace stratlearn::obs
