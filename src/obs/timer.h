#ifndef STRATLEARN_OBS_TIMER_H_
#define STRATLEARN_OBS_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace stratlearn::obs {

// Every latency measurement in the repo flows through this clock; it
// must be monotonic or a wall-clock step (NTP slew, suspend) would
// corrupt histograms and fabricate bench regressions. The standard
// guarantees is_steady for steady_clock, so this documents intent and
// guards against anyone swapping the alias for a non-steady clock.
static_assert(std::chrono::steady_clock::is_steady,
              "timing requires a monotonic clock");

/// Wall-clock stopwatch on std::chrono::steady_clock. The paper's cost
/// model is abstract arc costs; this is the bridge to real time.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Records elapsed microseconds into a histogram (and/or an out
/// variable) when it leaves scope. Both targets are nullable, so call
/// sites need no branching: `ScopedTimer t(obs ? &hist : nullptr);`.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, double* elapsed_us_out = nullptr)
      : histogram_(histogram), out_(elapsed_us_out) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    double us = watch_.ElapsedUs();
    if (histogram_ != nullptr) histogram_->Record(us);
    if (out_ != nullptr) *out_ = us;
  }

  double ElapsedUs() const { return watch_.ElapsedUs(); }

 private:
  Stopwatch watch_;
  Histogram* histogram_;
  double* out_;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_TIMER_H_
