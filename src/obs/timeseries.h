#ifndef STRATLEARN_OBS_TIMESERIES_H_
#define STRATLEARN_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/status.h"

namespace stratlearn::obs {

/// Collector cadence and retention. Times are microseconds in whatever
/// clock domain the caller advances the collector with — steady-clock
/// microseconds in real runs, or a synthetic "one unit per query" fake
/// clock for byte-deterministic output (the CLI's --obs-clock=fake).
struct TimeSeriesOptions {
  /// Window length. Every AdvanceTo crossing a multiple of this closes
  /// one window.
  int64_t interval_us = 1'000'000;
  /// Most-recent windows retained in the ring; older windows are
  /// evicted (and counted, so reports can say so — never silently).
  size_t capacity = 512;
};

/// Per-histogram activity inside one window.
struct HistogramDelta {
  int64_t count = 0;
  double sum = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Per-arc activity inside one window — the windowed estimator series
/// the drift detector (ROADMAP item 5) reads: p̂ over *this window's*
/// attempts, not the run-cumulative estimate, so a shifted context
/// distribution shows up as a moving series instead of being averaged
/// away.
struct ArcWindowStats {
  uint32_t arc = 0;
  int64_t attempts = 0;   // attempts inside the window
  int64_t unblocked = 0;  // successful traversals inside the window
  double cost = 0.0;      // cost paid inside the window

  double PHat() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(unblocked) /
                               static_cast<double>(attempts);
  }
  double MeanCost() const {
    return attempts == 0 ? 0.0 : cost / static_cast<double>(attempts);
  }
};

/// One closed window: the registry's cumulative state at close plus the
/// per-interval deltas against the previous boundary.
struct TimeSeriesWindow {
  int64_t index = 0;  // 0-based since collector start; survives eviction
  int64_t start_us = 0;
  int64_t end_us = 0;
  MetricsSnapshot cumulative;
  std::map<std::string, int64_t> counter_deltas;
  std::map<std::string, HistogramDelta> histogram_deltas;
  /// Arcs with at least one attempt in the window, ascending by arc id.
  std::vector<ArcWindowStats> arcs;
  /// Drift-detector and alert-rule transitions attributed to this
  /// window (fed back via OnDrift/OnAlert after the window closed), so
  /// the serialized series itself records every health decision.
  std::vector<DriftEvent> drift;
  std::vector<AlertEvent> alerts;
  /// Decision certificates emitted during the window (audit runs only;
  /// serialized only when nonzero so audit-free series are unchanged).
  int64_t certificates = 0;

  int64_t span_us() const { return end_us - start_us; }
  /// Per-second rate for one counter's delta (0 for a zero-length span).
  double Rate(int64_t delta) const {
    return span_us() <= 0 ? 0.0
                          : static_cast<double>(delta) /
                                (static_cast<double>(span_us()) / 1e6);
  }
};

/// Snapshots a MetricsRegistry on a fixed cadence into ring-buffered
/// windows, deriving per-interval counter deltas/rates, histogram
/// activity, and windowed per-arc p̂ / mean-cost series. The collector
/// is also a TraceSink: tee it next to a file sink and it accumulates
/// ArcAttempt events into the per-arc series (all other events pass it
/// by untouched).
///
/// Thread-safe throughout (one internal mutex): worker threads may emit
/// ArcAttempt events while another thread drives AdvanceTo. The clock
/// is the *caller's*: nothing here reads a real clock, which is what
/// makes fake-clock runs byte-deterministic. AdvanceTo with a
/// monotonically non-decreasing now closes every elapsed window
/// boundary, so a long quiet stretch yields empty windows (zero deltas)
/// rather than a gap in the series.
class TimeSeriesCollector final : public TraceSink {
 public:
  /// `registry` may be null (per-arc series only).
  TimeSeriesCollector(const MetricsRegistry* registry,
                      TimeSeriesOptions options);

  void OnArcAttempt(const ArcAttemptEvent& e) override;

  /// Certificates are counted into the currently open window, so the
  /// series shows the learner's decision cadence next to the per-arc
  /// data that justified those decisions.
  void OnDecisionCertificate(const DecisionCertificateEvent& e) override;

  /// Drift/alert transitions are routed back into the collector (it
  /// sits on the same tee as the other sinks) and attached to the
  /// retained window matching the event's window index, so the series
  /// file carries the health decisions alongside the data that caused
  /// them. Events for already-evicted windows are dropped.
  void OnDrift(const DriftEvent& e) override;
  void OnAlert(const AlertEvent& e) override;

  /// Invoked once per closed window (a copy, oldest first), *outside*
  /// the collector's lock — the callback may re-enter the collector
  /// (e.g. a health monitor emitting OnDrift back through a tee that
  /// includes this collector). Called from whichever thread drives
  /// AdvanceTo/Finalize.
  void SetWindowCallback(std::function<void(const TimeSeriesWindow&)> cb);

  /// Advances the collector clock, closing each window whose boundary
  /// has passed. Non-monotonic calls (now earlier than the current
  /// window start) are ignored.
  void AdvanceTo(int64_t now_us);

  /// AdvanceTo(now_us), then closes the trailing partial window when it
  /// contains any elapsed time. Call once at end of run so the tail of
  /// the series is not lost.
  void Finalize(int64_t now_us);

  /// Copy of the retained windows, oldest first.
  std::vector<TimeSeriesWindow> Windows() const;

  int64_t windows_closed() const;
  int64_t windows_evicted() const;
  /// Start of the currently open window (the last closed boundary).
  int64_t window_start_us() const;

  /// Reinstates a checkpointed cursor and retained-window set into a
  /// *fresh* collector (fails once any window has closed). The delta
  /// baselines (last_*) deliberately stay at zero: a resumed process
  /// starts from a fresh registry, so the first post-resume window's
  /// cumulative-minus-baseline deltas are exactly the activity since
  /// resume — byte-identical to the uninterrupted run's deltas when the
  /// checkpoint fell on a window boundary.
  Status Restore(int64_t window_start_us, int64_t next_index,
                 int64_t evicted, std::vector<TimeSeriesWindow> windows);

  /// "stratlearn-timeseries v1": one JSON header line (schema, cadence,
  /// closed/evicted window counts), then one JSON object per retained
  /// window with counter totals/deltas/rates, gauges, histogram
  /// activity and the per-arc windowed series. Deterministic given a
  /// deterministic clock domain and event stream.
  std::string SerializeJsonl() const;

  /// One retained window as the JSON object line SerializeJsonl writes
  /// (no trailing newline). Static so checkpoint writers can serialize
  /// window copies without holding the collector's lock.
  static std::string SerializeWindowJson(const TimeSeriesWindow& window);

 private:
  struct ArcCumulative {
    int64_t attempts = 0;
    int64_t unblocked = 0;
    double cost = 0.0;
  };

  /// Closes the window [window_start_, end_us). Caller holds mutex_.
  /// When a window callback is set, appends a copy of the closed window
  /// to `closed` for delivery after the lock is released.
  void CloseWindowLocked(int64_t end_us,
                         std::vector<TimeSeriesWindow>* closed);

  mutable std::mutex mutex_;
  const MetricsRegistry* registry_;
  TimeSeriesOptions options_;
  int64_t window_start_ = 0;
  int64_t next_index_ = 0;
  int64_t evicted_ = 0;
  std::deque<TimeSeriesWindow> windows_;
  std::function<void(const TimeSeriesWindow&)> window_callback_;
  std::map<uint32_t, ArcCumulative> arcs_;
  int64_t certificates_ = 0;
  /// State at the last closed boundary, for delta derivation.
  MetricsSnapshot last_cumulative_;
  std::map<uint32_t, ArcCumulative> last_arcs_;
  int64_t last_certificates_ = 0;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_TIMESERIES_H_
