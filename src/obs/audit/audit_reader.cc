#include "obs/audit/audit_reader.h"

#include <fstream>

#include "obs/json_reader.h"
#include "util/string_util.h"

namespace stratlearn::obs {

namespace {

Status LineError(int64_t line, const char* what) {
  return Status::InvalidArgument(
      StrFormat("audit line %lld: %s", static_cast<long long>(line), what));
}

double Num(const JsonValue& object, const std::string& key, double fallback) {
  const JsonValue* v = object.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return fallback;
  return v->number;
}

int64_t Int(const JsonValue& object, const std::string& key,
            int64_t fallback) {
  const JsonValue* v = object.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return fallback;
  return static_cast<int64_t>(v->number);
}

bool Bool(const JsonValue& object, const std::string& key, bool fallback) {
  const JsonValue* v = object.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) return fallback;
  return v->boolean;
}

std::string Str(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) return "";
  return v->string;
}

void ParseHeader(const JsonValue& o, AuditHeader* header) {
  header->window = Int(o, "window", 0);
  header->delta_budget = Num(o, "delta_budget", 0.0);
  header->have_baselines = Bool(o, "have_baselines", false);
  header->incumbent_expected_cost = Num(o, "incumbent_expected_cost", 0.0);
  header->oracle_expected_cost = Num(o, "oracle_expected_cost", 0.0);
}

Status ParseCertificate(const JsonValue& o, int64_t line,
                        AuditCertificate* cert) {
  cert->line = line;
  cert->seq = Int(o, "seq", -1);
  DecisionCertificateEvent& e = cert->event;
  e.t_us = Int(o, "t_us", 0);
  e.learner = Str(o, "learner");
  e.decision = Str(o, "decision");
  e.verdict = Str(o, "verdict");
  e.at_context = Int(o, "at_context", 0);
  e.samples = Int(o, "samples", 0);
  e.trials = Int(o, "trials", 0);
  e.subject = Int(o, "subject", -1);
  e.mean = Num(o, "mean", 0.0);
  e.delta_sum = Num(o, "delta_sum", 0.0);
  e.threshold = Num(o, "threshold", 0.0);
  e.margin = Num(o, "margin", 0.0);
  e.range = Num(o, "range", 0.0);
  e.epsilon_n = Num(o, "epsilon_n", 0.0);
  e.delta_step = Num(o, "delta_step", 0.0);
  e.delta_budget = Num(o, "delta_budget", 0.0);
  e.delta_spent_total = Num(o, "delta_spent_total", 0.0);
  e.bound_samples = Int(o, "bound_samples", 0);
  e.epsilon = Num(o, "epsilon", 0.0);
  if (e.learner.empty() || e.decision.empty() || e.verdict.empty()) {
    return LineError(line, "certificate is missing learner/decision/verdict");
  }
  const JsonValue* arcs = o.Get("arcs");
  if (arcs == nullptr || arcs->kind != JsonValue::Kind::kArray) {
    return LineError(line, "certificate has no \"arcs\" array");
  }
  cert->arcs.reserve(arcs->array.size());
  for (const JsonValue& a : arcs->array) {
    if (a.kind != JsonValue::Kind::kObject) {
      return LineError(line, "certificate arc tally is not an object");
    }
    AuditArcTally tally;
    tally.arc = Int(a, "arc", -1);
    tally.experiment = Int(a, "experiment", -1);
    tally.attempts = Int(a, "attempts", 0);
    tally.successes = Int(a, "successes", 0);
    tally.cost = Num(a, "cost", 0.0);
    cert->arcs.push_back(tally);
  }
  return Status::OK();
}

void ParseRegret(const JsonValue& o, int64_t line, AuditRegret* regret) {
  regret->line = line;
  regret->window_index = Int(o, "window_index", 0);
  regret->queries = Int(o, "queries", 0);
  regret->queries_total = Int(o, "queries_total", 0);
  regret->window_cost = Num(o, "window_cost", 0.0);
  regret->total_cost = Num(o, "total_cost", 0.0);
  regret->have_baselines = o.Get("regret_vs_incumbent") != nullptr;
  regret->incumbent_total = Num(o, "incumbent_total", 0.0);
  regret->oracle_total = Num(o, "oracle_total", 0.0);
  regret->regret_vs_incumbent = Num(o, "regret_vs_incumbent", 0.0);
  regret->regret_vs_oracle = Num(o, "regret_vs_oracle", 0.0);
}

void ParseSummary(const JsonValue& o, int64_t line, AuditSummary* summary) {
  summary->present = true;
  summary->line = line;
  summary->queries = Int(o, "queries", 0);
  summary->certificates = Int(o, "certificates", 0);
  summary->commits = Int(o, "commits", 0);
  summary->rejects = Int(o, "rejects", 0);
  summary->stops = Int(o, "stops", 0);
  summary->quotas_met = Int(o, "quotas_met", 0);
  summary->total_cost = Num(o, "total_cost", 0.0);
  summary->delta_spent_total = Num(o, "delta_spent_total", 0.0);
  summary->delta_budget = Num(o, "delta_budget", 0.0);
  summary->budget_ok = Bool(o, "budget_ok", false);
}

}  // namespace

Result<AuditFile> ReadAuditLog(std::istream& in) {
  AuditFile file;
  std::string line;
  int64_t line_number = 0;
  bool saw_magic = false;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (!saw_magic) {
      if (trimmed != "stratlearn-audit v1") {
        return LineError(line_number,
                         "expected magic line \"stratlearn-audit v1\"");
      }
      saw_magic = true;
      continue;
    }
    JsonValue value;
    if (!ParseJson(trimmed, &value)) {
      return LineError(line_number, "malformed JSON record");
    }
    if (value.kind != JsonValue::Kind::kObject) {
      return LineError(line_number, "record is not a JSON object");
    }
    std::string record = Str(value, "record");
    if (record == "header") {
      if (saw_header) return LineError(line_number, "duplicate header");
      saw_header = true;
      ParseHeader(value, &file.header);
    } else if (record == "certificate") {
      AuditCertificate cert;
      Status parsed = ParseCertificate(value, line_number, &cert);
      if (!parsed.ok()) return parsed;
      if (cert.seq != static_cast<int64_t>(file.certificates.size())) {
        return LineError(line_number, "certificate seq is not contiguous");
      }
      file.certificates.push_back(std::move(cert));
    } else if (record == "regret") {
      AuditRegret regret;
      ParseRegret(value, line_number, &regret);
      file.regrets.push_back(regret);
    } else if (record == "summary") {
      if (file.summary.present) {
        return LineError(line_number, "duplicate summary");
      }
      ParseSummary(value, line_number, &file.summary);
    } else {
      return LineError(line_number, "unknown record kind");
    }
  }
  if (!saw_magic) {
    return Status::InvalidArgument(
        "audit file is empty (no \"stratlearn-audit v1\" magic line)");
  }
  if (!saw_header) {
    return Status::InvalidArgument("audit file has no header record");
  }
  return file;
}

Result<AuditFile> ReadAuditLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  return ReadAuditLog(in);
}

}  // namespace stratlearn::obs
