#include "obs/audit/audit_log.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "obs/json_writer.h"

namespace stratlearn::obs {

namespace {

void WarnWriteFailed() {
  std::fprintf(stderr,
               "warning: audit log write failed (disk full or closed "
               "pipe?); disabling further audit output for this run\n");
}

}  // namespace

AuditLog::AuditLog(std::ostream* out, const AuditLogOptions& options)
    : out_(out), options_(options) {
  WriteHeader();
}

AuditLog::AuditLog(const std::string& path, const AuditLogOptions& options)
    : owned_(std::make_unique<std::ofstream>(path)),
      out_(owned_.get()),
      options_(options) {
  WriteHeader();
}

AuditLog::AuditLog(const std::string& path, const AuditLogOptions& options,
                   const Cursor& cursor)
    : options_(options) {
  std::error_code ec;
  if (cursor.bytes >= 0) {
    std::filesystem::resize_file(path, static_cast<uintmax_t>(cursor.bytes),
                                 ec);
  }
  if (cursor.bytes < 0 || ec) {
    std::fprintf(stderr,
                 "warning: cannot resume audit log '%s' at byte %lld; "
                 "restarting the stream\n",
                 path.c_str(), static_cast<long long>(cursor.bytes));
    owned_ = std::make_unique<std::ofstream>(path);
    out_ = owned_.get();
    WriteHeader();
    return;
  }
  owned_ = std::make_unique<std::ofstream>(path, std::ios::app);
  out_ = owned_.get();
  certificates_ = cursor.certificates;
  commits_ = cursor.commits;
  rejects_ = cursor.rejects;
  stops_ = cursor.stops;
  quotas_met_ = cursor.quotas_met;
  queries_ = cursor.queries;
  window_queries_ = cursor.window_queries;
  windows_written_ = cursor.windows_written;
  window_cost_ = cursor.window_cost;
  total_cost_ = cursor.total_cost;
  for (const Cursor::EpochArc& a : cursor.epoch) {
    ArcTally& tally = epoch_arcs_[static_cast<uint32_t>(a.arc)];
    tally.experiment = a.experiment;
    tally.attempts = a.attempts;
    tally.successes = a.successes;
    tally.cost = a.cost;
  }
  for (const Cursor::LedgerEntry& l : cursor.ledgers) {
    ledgers_[l.learner] = Ledger{l.spent, l.budget};
  }
}

AuditLog::Cursor AuditLog::SaveCursor() {
  Flush();
  Cursor cursor;
  if (owned_ != nullptr && !failed_ && !closed_) {
    std::ofstream::pos_type pos = owned_->tellp();
    if (pos != std::ofstream::pos_type(-1)) {
      cursor.bytes = static_cast<int64_t>(pos);
    }
  }
  cursor.certificates = certificates_;
  cursor.commits = commits_;
  cursor.rejects = rejects_;
  cursor.stops = stops_;
  cursor.quotas_met = quotas_met_;
  cursor.queries = queries_;
  cursor.window_queries = window_queries_;
  cursor.windows_written = windows_written_;
  cursor.window_cost = window_cost_;
  cursor.total_cost = total_cost_;
  for (const auto& [arc, tally] : epoch_arcs_) {
    cursor.epoch.push_back({static_cast<int64_t>(arc), tally.experiment,
                            tally.attempts, tally.successes, tally.cost});
  }
  for (const auto& [learner, ledger] : ledgers_) {
    cursor.ledgers.push_back({learner, ledger.spent, ledger.budget});
  }
  return cursor;
}

AuditLog::~AuditLog() { Close(); }

void AuditLog::WriteLine(const std::string& json) {
  if (out_ == nullptr || failed_ || closed_) return;
  *out_ << json << '\n';
  if (!out_->good()) {
    failed_ = true;
    WarnWriteFailed();
  }
}

void AuditLog::WriteHeader() {
  if (out_ == nullptr || !out_->good()) return;
  *out_ << "stratlearn-audit v1\n";
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("record").Value("header");
  w.Key("window").Value(options_.window);
  w.Key("delta_budget").Value(options_.delta_budget);
  w.Key("have_baselines").Value(options_.have_baselines);
  w.Key("incumbent_expected_cost").Value(options_.incumbent_expected_cost);
  w.Key("oracle_expected_cost").Value(options_.oracle_expected_cost);
  w.EndObject();
  WriteLine(w.str());
}

void AuditLog::OnArcAttempt(const ArcAttemptEvent& e) {
  ArcTally& tally = epoch_arcs_[e.arc];
  tally.experiment = e.experiment;
  ++tally.attempts;
  if (e.unblocked) ++tally.successes;
  tally.cost += e.cost;
}

void AuditLog::OnQueryEnd(const QueryEndEvent& e) {
  ++queries_;
  ++window_queries_;
  total_cost_ += e.cost;
  window_cost_ += e.cost;
  if (options_.window > 0 && window_queries_ >= options_.window) {
    WriteRegret();
  }
}

void AuditLog::WriteRegret() {
  if (window_queries_ == 0) return;
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("record").Value("regret");
  w.Key("window_index").Value(windows_written_);
  w.Key("queries").Value(window_queries_);
  w.Key("queries_total").Value(queries_);
  w.Key("window_cost").Value(window_cost_);
  w.Key("total_cost").Value(total_cost_);
  if (options_.have_baselines) {
    double incumbent_total =
        options_.incumbent_expected_cost * static_cast<double>(queries_);
    double oracle_total =
        options_.oracle_expected_cost * static_cast<double>(queries_);
    w.Key("incumbent_total").Value(incumbent_total);
    w.Key("oracle_total").Value(oracle_total);
    // Positive: the run paid more than the baseline would have in
    // expectation; a learner that improves on the incumbent drives
    // regret_vs_incumbent negative over time.
    w.Key("regret_vs_incumbent").Value(total_cost_ - incumbent_total);
    w.Key("regret_vs_oracle").Value(total_cost_ - oracle_total);
  }
  w.EndObject();
  WriteLine(w.str());
  ++windows_written_;
  window_queries_ = 0;
  window_cost_ = 0.0;
}

void AuditLog::OnDecisionCertificate(const DecisionCertificateEvent& e) {
  Ledger& ledger = ledgers_[e.learner];
  ledger.spent = e.delta_spent_total;
  ledger.budget = e.delta_budget;
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("record").Value("certificate");
  w.Key("seq").Value(certificates_);
  w.Key("t_us").Value(e.t_us);
  w.Key("learner").Value(e.learner);
  w.Key("decision").Value(e.decision);
  w.Key("verdict").Value(e.verdict);
  w.Key("at_context").Value(e.at_context);
  w.Key("samples").Value(e.samples);
  w.Key("trials").Value(e.trials);
  w.Key("subject").Value(e.subject);
  w.Key("mean").Value(e.mean);
  w.Key("delta_sum").Value(e.delta_sum);
  w.Key("threshold").Value(e.threshold);
  w.Key("margin").Value(e.margin);
  w.Key("range").Value(e.range);
  w.Key("epsilon_n").Value(e.epsilon_n);
  w.Key("delta_step").Value(e.delta_step);
  w.Key("delta_budget").Value(e.delta_budget);
  w.Key("delta_spent_total").Value(e.delta_spent_total);
  w.Key("bound_samples").Value(e.bound_samples);
  w.Key("epsilon").Value(e.epsilon);
  w.Key("arcs").BeginArray();
  for (const auto& [arc, tally] : epoch_arcs_) {
    w.BeginObject();
    w.Key("arc").Value(static_cast<int64_t>(arc));
    w.Key("experiment").Value(tally.experiment);
    w.Key("attempts").Value(tally.attempts);
    w.Key("successes").Value(tally.successes);
    w.Key("cost").Value(tally.cost);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  WriteLine(w.str());
  epoch_arcs_.clear();
  ++certificates_;
  if (e.verdict == "commit") ++commits_;
  else if (e.verdict == "reject") ++rejects_;
  else if (e.verdict == "stop") ++stops_;
  else if (e.verdict == "met") ++quotas_met_;
}

void AuditLog::Flush() {
  if (out_ == nullptr || failed_) return;
  out_->flush();
  if (!out_->good()) {
    failed_ = true;
    WarnWriteFailed();
  }
}

void AuditLog::Close() {
  if (out_ == nullptr || closed_) return;
  WriteRegret();  // trailing partial window, if any
  double spent_max = 0.0;
  double budget = options_.delta_budget;
  bool budget_ok = true;
  for (const auto& [learner, ledger] : ledgers_) {
    if (ledger.spent > spent_max) spent_max = ledger.spent;
    if (ledger.budget > budget) budget = ledger.budget;
    if (ledger.spent > ledger.budget) budget_ok = false;
  }
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("record").Value("summary");
  w.Key("queries").Value(queries_);
  w.Key("certificates").Value(certificates_);
  w.Key("commits").Value(commits_);
  w.Key("rejects").Value(rejects_);
  w.Key("stops").Value(stops_);
  w.Key("quotas_met").Value(quotas_met_);
  w.Key("total_cost").Value(total_cost_);
  w.Key("delta_spent_total").Value(spent_max);
  w.Key("delta_budget").Value(budget);
  w.Key("budget_ok").Value(budget_ok);
  w.EndObject();
  WriteLine(w.str());
  closed_ = true;
  if (!failed_) out_->flush();
}

}  // namespace stratlearn::obs
