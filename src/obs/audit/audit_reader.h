#ifndef STRATLEARN_OBS_AUDIT_AUDIT_READER_H_
#define STRATLEARN_OBS_AUDIT_AUDIT_READER_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "obs/events.h"
#include "util/status.h"

namespace stratlearn::obs {

/// Parsed form of one `stratlearn-audit v1` file (see AuditLog for the
/// writer). Shared by tools/audit_verify, the CLI `audit` subcommand
/// and the V-AUD verification pass, so they all agree on what a
/// well-formed audit stream is.

/// Per-arc attempt tallies of one certificate's epoch.
struct AuditArcTally {
  int64_t arc = 0;
  int64_t experiment = -1;
  int64_t attempts = 0;
  int64_t successes = 0;
  double cost = 0.0;
};

struct AuditCertificate {
  int64_t seq = 0;
  int64_t line = 0;  // 1-based line in the audit file
  DecisionCertificateEvent event;
  std::vector<AuditArcTally> arcs;
};

struct AuditRegret {
  int64_t line = 0;
  int64_t window_index = 0;
  int64_t queries = 0;
  int64_t queries_total = 0;
  double window_cost = 0.0;
  double total_cost = 0.0;
  bool have_baselines = false;
  double incumbent_total = 0.0;
  double oracle_total = 0.0;
  double regret_vs_incumbent = 0.0;
  double regret_vs_oracle = 0.0;
};

struct AuditHeader {
  int64_t window = 0;
  double delta_budget = 0.0;
  bool have_baselines = false;
  double incumbent_expected_cost = 0.0;
  double oracle_expected_cost = 0.0;
};

struct AuditSummary {
  bool present = false;
  int64_t line = 0;
  int64_t queries = 0;
  int64_t certificates = 0;
  int64_t commits = 0;
  int64_t rejects = 0;
  int64_t stops = 0;
  int64_t quotas_met = 0;
  double total_cost = 0.0;
  double delta_spent_total = 0.0;
  double delta_budget = 0.0;
  bool budget_ok = false;
};

struct AuditFile {
  AuditHeader header;
  std::vector<AuditCertificate> certificates;
  std::vector<AuditRegret> regrets;
  AuditSummary summary;
};

/// Parses one audit stream. InvalidArgument (with the 1-based line
/// number) on a bad magic line, malformed JSON, an unknown record kind,
/// a non-contiguous certificate `seq`, or a duplicate header/summary.
/// A missing summary is *not* an error here (a crashed run's log is
/// still mostly readable); consumers that require one check
/// `summary.present`.
Result<AuditFile> ReadAuditLog(std::istream& in);

/// Convenience: opens `path` and parses it (NotFound if unreadable).
Result<AuditFile> ReadAuditLogFile(const std::string& path);

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_AUDIT_AUDIT_READER_H_
