#ifndef STRATLEARN_OBS_AUDIT_AUDIT_LOG_H_
#define STRATLEARN_OBS_AUDIT_AUDIT_LOG_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_sink.h"

namespace stratlearn::obs {

/// Configuration of one audit log. The regret baselines are *expected*
/// per-query costs under the workload's true success probabilities —
/// the CLI computes them with ExactExpectedCost when the workload
/// generator knows the truth; otherwise `have_baselines` stays false
/// and regret records carry realized cost only.
struct AuditLogOptions {
  /// Lifetime confidence budget the run was configured with; 0 defers
  /// to the per-certificate `delta_budget` field.
  double delta_budget = 0.0;
  /// Queries per regret-accounting window.
  int64_t window = 100;
  bool have_baselines = false;
  /// Expected per-query cost of the incumbent (initial) strategy.
  double incumbent_expected_cost = 0.0;
  /// Expected per-query cost of the oracle-optimal strategy.
  double oracle_expected_cost = 0.0;
};

/// Writes the `stratlearn-audit v1` decision-audit stream: a magic
/// first line, then one JSON record per line —
///
///   {"record":"header",...}        run configuration, written eagerly
///   {"record":"certificate",...}   one per DecisionCertificateEvent,
///                                  with the per-arc attempt tallies of
///                                  the epoch since the previous
///                                  certificate (so tools/audit_verify
///                                  can re-derive every count from the
///                                  raw arc_attempt stream)
///   {"record":"regret",...}        per-window realized cost vs. the
///                                  incumbent / oracle baselines
///   {"record":"summary",...}       totals + final delta-ledger verdict
///
/// The sink is deterministic: fields are written in a fixed order at
/// kRoundTripDigits, and no wall-clock value is ever consulted, so an
/// offline TraceReader replay of the run's JSONL trace into a fresh
/// AuditLog with the same options reproduces the online file
/// byte-for-byte. Mid-run I/O failure disables the sink after one
/// stderr warning, like JsonlSink.
class AuditLog final : public TraceSink {
 public:
  /// Borrow an open stream (e.g. a std::ostringstream in tests).
  explicit AuditLog(std::ostream* out, const AuditLogOptions& options = {});
  /// Own a file stream; `ok()` reports whether it opened.
  explicit AuditLog(const std::string& path,
                    const AuditLogOptions& options = {});

  /// Everything a mid-run audit stream needs to continue after a kill:
  /// the byte offset at a checkpoint boundary plus the writer's counter
  /// state. The byte offset matters because even a halted process runs
  /// the destructor, whose Close() appends a trailing regret/summary —
  /// resuming must truncate those bytes away before appending.
  struct Cursor {
    int64_t bytes = -1;  // stream size at the checkpoint; -1: not a file
    int64_t certificates = 0;
    int64_t commits = 0;
    int64_t rejects = 0;
    int64_t stops = 0;
    int64_t quotas_met = 0;
    int64_t queries = 0;
    int64_t window_queries = 0;
    int64_t windows_written = 0;
    double window_cost = 0.0;
    double total_cost = 0.0;
    struct EpochArc {
      int64_t arc = 0;
      int64_t experiment = -1;
      int64_t attempts = 0;
      int64_t successes = 0;
      double cost = 0.0;
    };
    std::vector<EpochArc> epoch;  // tallies since the last certificate
    struct LedgerEntry {
      std::string learner;
      double spent = 0.0;
      double budget = 0.0;
    };
    std::vector<LedgerEntry> ledgers;
  };

  /// Resume a killed run's audit file: truncates `path` to
  /// `cursor.bytes`, reopens it for append and reinstates the counter
  /// state, so the continued stream is byte-identical to one that was
  /// never interrupted. Falls back to a fresh stream (with a stderr
  /// warning) when the file cannot be truncated to the cursor.
  AuditLog(const std::string& path, const AuditLogOptions& options,
           const Cursor& cursor);

  /// Flushes and snapshots the stream for a checkpoint. `bytes` is -1
  /// for borrowed streams (resume then restarts the stream).
  Cursor SaveCursor();

  ~AuditLog() override;

  bool ok() const { return out_ != nullptr && out_->good(); }
  bool failed() const { return failed_; }
  int64_t certificates_written() const { return certificates_; }

  void OnArcAttempt(const ArcAttemptEvent& e) override;
  void OnQueryEnd(const QueryEndEvent& e) override;
  void OnDecisionCertificate(const DecisionCertificateEvent& e) override;
  void Flush() override;
  /// Writes the trailing partial regret window (if any queries landed
  /// after the last full window) and the summary record, then seals the
  /// stream. Idempotent; called by the destructor.
  void Close() override;

 private:
  /// Per-arc attempt tallies of the current epoch (since the last
  /// certificate). Keyed by arc id, so the serialized "arcs" array is
  /// deterministically ordered.
  struct ArcTally {
    int64_t experiment = -1;
    int64_t attempts = 0;
    int64_t successes = 0;
    double cost = 0.0;
  };
  /// Last-seen delta ledger of one learner (certificates carry the
  /// running total, so the latest value is the learner's spend).
  struct Ledger {
    double spent = 0.0;
    double budget = 0.0;
  };

  void WriteLine(const std::string& json);
  void WriteHeader();
  void WriteRegret();

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
  AuditLogOptions options_;
  bool closed_ = false;
  bool failed_ = false;

  std::map<uint32_t, ArcTally> epoch_arcs_;
  std::map<std::string, Ledger> ledgers_;
  int64_t certificates_ = 0;
  int64_t commits_ = 0;
  int64_t rejects_ = 0;
  int64_t stops_ = 0;
  int64_t quotas_met_ = 0;
  int64_t queries_ = 0;
  int64_t window_queries_ = 0;
  int64_t windows_written_ = 0;
  double total_cost_ = 0.0;
  double window_cost_ = 0.0;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_AUDIT_AUDIT_LOG_H_
