#ifndef STRATLEARN_OBS_OPENMETRICS_H_
#define STRATLEARN_OBS_OPENMETRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace stratlearn::obs {

/// Maps a dotted registry name ("qp.arc_attempts") to a Prometheus /
/// OpenMetrics metric name ("qp_arc_attempts"): every character outside
/// [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_' prefix.
std::string OpenMetricsName(std::string_view name);

/// Renders a MetricsSnapshot in the OpenMetrics / Prometheus text
/// exposition format, terminated by "# EOF":
///   counters   -> "# TYPE n counter"  + "n_total <v>"
///   gauges     -> "# TYPE n gauge"    + "n <v>"   (NaN / +Inf / -Inf
///                 use the format's literal spellings, never bad JSONish)
///   histograms -> "# TYPE n histogram" + cumulative n_bucket{le="..."}
///                 series + n_sum + n_count
/// Families are emitted in registry (lexicographic) order, so output is
/// deterministic for a given snapshot.
std::string OpenMetricsText(const MetricsSnapshot& snapshot);

/// Writes OpenMetricsText(snapshot) to `path` atomically (temp file +
/// rename via util/file_util), so a scraper reading the file never sees
/// a torn exposition. Returns false on I/O failure.
bool WriteOpenMetricsFile(const std::string& path,
                          const MetricsSnapshot& snapshot);

/// Periodically dumps a registry to one OpenMetrics file, overwriting
/// it in place (atomic rename) — the long-running-serving analogue of a
/// /metrics endpoint, consumable by node-exporter-style textfile
/// scrapers. Drive it from any cadence source: MaybeExport(now) exports
/// when `interval_us` has elapsed since the last export in the caller's
/// clock domain (steady or fake, like TimeSeriesCollector). Thread-safe;
/// a mid-run I/O failure warns on stderr once and disables the exporter
/// (losing telemetry must not fail the run — same contract as the
/// sinks).
class PeriodicOpenMetricsExporter {
 public:
  PeriodicOpenMetricsExporter(std::string path, int64_t interval_us);

  /// Exports when the cadence is due. Returns true iff a dump was
  /// written.
  bool MaybeExport(int64_t now_us, const MetricsRegistry& registry);

  /// Unconditional dump (end-of-run final state).
  bool ExportNow(const MetricsRegistry& registry);

  const std::string& path() const { return path_; }
  int64_t exports() const;
  bool failed() const;

 private:
  bool ExportLocked(const MetricsRegistry& registry);

  mutable std::mutex mutex_;
  std::string path_;
  int64_t interval_us_;
  int64_t next_due_us_ = 0;
  int64_t exports_ = 0;
  bool failed_ = false;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_OPENMETRICS_H_
