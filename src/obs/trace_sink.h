#ifndef STRATLEARN_OBS_TRACE_SINK_H_
#define STRATLEARN_OBS_TRACE_SINK_H_

#include <mutex>
#include <vector>

#include "obs/events.h"

namespace stratlearn::obs {

/// Receiver interface for structured runtime events. Every handler
/// defaults to a no-op so sinks implement only what they care about.
/// Emitters must guard emission behind a single nullable-pointer branch
/// (see Observer), so an absent sink costs one predictable branch.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void OnQueryStart(const QueryStartEvent&) {}
  virtual void OnQueryEnd(const QueryEndEvent&) {}
  virtual void OnArcAttempt(const ArcAttemptEvent&) {}
  virtual void OnClimbMove(const ClimbMoveEvent&) {}
  virtual void OnSequentialTest(const SequentialTestEvent&) {}
  virtual void OnQuotaProgress(const QuotaProgressEvent&) {}
  virtual void OnPaloStop(const PaloStopEvent&) {}
  virtual void OnRetry(const RetryEvent&) {}
  virtual void OnBreaker(const BreakerEvent&) {}
  virtual void OnDegraded(const DegradedEvent&) {}
  virtual void OnDrift(const DriftEvent&) {}
  virtual void OnAlert(const AlertEvent&) {}
  virtual void OnDecisionCertificate(const DecisionCertificateEvent&) {}
  virtual void OnRecovery(const RecoveryEvent&) {}

  /// Push buffered output to the underlying medium. May be called any
  /// number of times mid-run; must not finalise the output.
  virtual void Flush() {}

  /// Finalise the output (e.g. write a format's closing delimiter) and
  /// flush. Idempotent; every sink's destructor calls its own Close so
  /// traces stay well-formed even when the owner exits early on an
  /// error path. Events delivered after Close are dropped.
  virtual void Close() { Flush(); }
};

/// Explicit do-nothing sink, for call sites that want a non-null sink.
class NullSink final : public TraceSink {};

/// Fans every event out to a list of borrowed sinks, in order. Lets one
/// Observer feed a file sink and an in-process aggregator (e.g. the
/// StrategyProfiler) at the same time. Null entries are skipped.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void OnQueryStart(const QueryStartEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnQueryStart(e);
    }
  }
  void OnQueryEnd(const QueryEndEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnQueryEnd(e);
    }
  }
  void OnArcAttempt(const ArcAttemptEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnArcAttempt(e);
    }
  }
  void OnClimbMove(const ClimbMoveEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnClimbMove(e);
    }
  }
  void OnSequentialTest(const SequentialTestEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnSequentialTest(e);
    }
  }
  void OnQuotaProgress(const QuotaProgressEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnQuotaProgress(e);
    }
  }
  void OnPaloStop(const PaloStopEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnPaloStop(e);
    }
  }
  void OnRetry(const RetryEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnRetry(e);
    }
  }
  void OnBreaker(const BreakerEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnBreaker(e);
    }
  }
  void OnDegraded(const DegradedEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnDegraded(e);
    }
  }
  void OnDrift(const DriftEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnDrift(e);
    }
  }
  void OnAlert(const AlertEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnAlert(e);
    }
  }
  void OnDecisionCertificate(const DecisionCertificateEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnDecisionCertificate(e);
    }
  }
  void OnRecovery(const RecoveryEvent& e) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->OnRecovery(e);
    }
  }
  void Flush() override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->Flush();
    }
  }
  void Close() override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->Close();
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Serialises a borrowed single-threaded sink behind one mutex so any
/// number of threads can emit events into it — the concurrency adapter
/// for JsonlSink / ChromeTraceSink / StrategyProfiler, whose own event
/// handlers assume exclusive access (buffered stream writes, aggregation
/// maps). Event *ordering* across threads is whatever the mutex hands
/// out; each event is delivered whole, so a JSONL file never interleaves
/// two lines. Wrap the innermost sink (or a TeeSink fan-out) once; the
/// per-event cost is one uncontended lock, which trace emission — already
/// a formatting + I/O path — amortises trivially.
class LockingSink final : public TraceSink {
 public:
  explicit LockingSink(TraceSink* inner) : inner_(inner) {}

  void OnQueryStart(const QueryStartEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnQueryStart(e);
  }
  void OnQueryEnd(const QueryEndEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnQueryEnd(e);
  }
  void OnArcAttempt(const ArcAttemptEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnArcAttempt(e);
  }
  void OnClimbMove(const ClimbMoveEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnClimbMove(e);
  }
  void OnSequentialTest(const SequentialTestEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnSequentialTest(e);
  }
  void OnQuotaProgress(const QuotaProgressEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnQuotaProgress(e);
  }
  void OnPaloStop(const PaloStopEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnPaloStop(e);
  }
  void OnRetry(const RetryEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnRetry(e);
  }
  void OnBreaker(const BreakerEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnBreaker(e);
  }
  void OnDegraded(const DegradedEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnDegraded(e);
  }
  void OnDrift(const DriftEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnDrift(e);
  }
  void OnAlert(const AlertEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnAlert(e);
  }
  void OnDecisionCertificate(const DecisionCertificateEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnDecisionCertificate(e);
  }
  void OnRecovery(const RecoveryEvent& e) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->OnRecovery(e);
  }
  void Flush() override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->Flush();
  }
  void Close() override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->Close();
  }

 private:
  std::mutex mutex_;
  TraceSink* inner_;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_TRACE_SINK_H_
