#ifndef STRATLEARN_OBS_TRACE_SINK_H_
#define STRATLEARN_OBS_TRACE_SINK_H_

#include "obs/events.h"

namespace stratlearn::obs {

/// Receiver interface for structured runtime events. Every handler
/// defaults to a no-op so sinks implement only what they care about.
/// Emitters must guard emission behind a single nullable-pointer branch
/// (see Observer), so an absent sink costs one predictable branch.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void OnQueryStart(const QueryStartEvent&) {}
  virtual void OnQueryEnd(const QueryEndEvent&) {}
  virtual void OnArcAttempt(const ArcAttemptEvent&) {}
  virtual void OnClimbMove(const ClimbMoveEvent&) {}
  virtual void OnSequentialTest(const SequentialTestEvent&) {}
  virtual void OnQuotaProgress(const QuotaProgressEvent&) {}
  virtual void OnPaloStop(const PaloStopEvent&) {}

  /// Push buffered output to the underlying medium.
  virtual void Flush() {}
};

/// Explicit do-nothing sink, for call sites that want a non-null sink.
class NullSink final : public TraceSink {};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_TRACE_SINK_H_
