#ifndef STRATLEARN_OBS_JSON_READER_H_
#define STRATLEARN_OBS_JSON_READER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stratlearn::obs {

/// Minimal JSON DOM shared by the offline report readers (bench_compare
/// over BENCH_*.json, stats_report over time-series files).
/// obs::JsonWriter only writes and obs::IsValidJson only validates;
/// these tools need actual values. Scope-limited on purpose: objects,
/// arrays, strings, numbers, bools, null — no \u decoding beyond
/// pass-through, no duplicate-key policy.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses exactly one JSON value (plus surrounding whitespace) from
/// `text`. Returns false on any syntax error or trailing garbage.
bool ParseJson(const std::string& text, JsonValue* out);

/// Typed field accessors over an object value; false / "" when the key
/// is absent or has the wrong kind.
bool ReadJsonDouble(const JsonValue& object, const std::string& key,
                    double* out);
bool ReadJsonInt(const JsonValue& object, const std::string& key,
                 int64_t* out);
std::string ReadJsonString(const JsonValue& object, const std::string& key);

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_JSON_READER_H_
