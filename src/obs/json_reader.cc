#include "obs/json_reader.h"

#include <cctype>
#include <cstdlib>
#include <string_view>

namespace stratlearn::obs {
namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = std::string_view(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Our writers never emit \u escapes; accept and keep the
            // raw sequence so foreign files still parse.
            if (pos_ + 4 > text_.size()) return false;
            out->append("\\u").append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

bool ReadJsonDouble(const JsonValue& object, const std::string& key,
                    double* out) {
  const JsonValue* v = object.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  *out = v->number;
  return true;
}

bool ReadJsonInt(const JsonValue& object, const std::string& key,
                 int64_t* out) {
  double d = 0.0;
  if (!ReadJsonDouble(object, key, &d)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

std::string ReadJsonString(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Get(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->string
                                                               : "";
}

}  // namespace stratlearn::obs
