#include "obs/json_writer.h"

#include <cctype>
#include <cmath>

#include "util/string_util.h"

namespace stratlearn::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already wrote its comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string_view(value));
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    out_ += StrFormat("%.*g", double_digits_, value);
  }
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

namespace {

/// Cursor for the validating parser.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }
};

bool ParseValue(Cursor& c, int depth);

bool ParseString(Cursor& c) {
  if (!c.Consume('"')) return false;
  while (!c.AtEnd()) {
    char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '\\') {
      if (c.AtEnd()) return false;
      char esc = c.text[c.pos++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          break;
        case 'u': {
          for (int i = 0; i < 4; ++i) {
            if (c.AtEnd() || !std::isxdigit(
                                 static_cast<unsigned char>(c.Peek()))) {
              return false;
            }
            ++c.pos;
          }
          break;
        }
        default:
          return false;
      }
    }
  }
  return false;  // unterminated
}

bool ParseNumber(Cursor& c) {
  size_t start = c.pos;
  c.Consume('-');
  if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
    return false;
  }
  if (c.Peek() == '0') {
    ++c.pos;
  } else {
    while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      ++c.pos;
    }
  }
  if (c.Consume('.')) {
    if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      return false;
    }
    while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      ++c.pos;
    }
  }
  if (!c.AtEnd() && (c.Peek() == 'e' || c.Peek() == 'E')) {
    ++c.pos;
    if (!c.AtEnd() && (c.Peek() == '+' || c.Peek() == '-')) ++c.pos;
    if (c.AtEnd() || !std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      return false;
    }
    while (!c.AtEnd() && std::isdigit(static_cast<unsigned char>(c.Peek()))) {
      ++c.pos;
    }
  }
  return c.pos > start;
}

bool ParseObject(Cursor& c, int depth) {
  if (!c.Consume('{')) return false;
  c.SkipSpace();
  if (c.Consume('}')) return true;
  while (true) {
    c.SkipSpace();
    if (!ParseString(c)) return false;
    c.SkipSpace();
    if (!c.Consume(':')) return false;
    if (!ParseValue(c, depth + 1)) return false;
    c.SkipSpace();
    if (c.Consume('}')) return true;
    if (!c.Consume(',')) return false;
  }
}

bool ParseArray(Cursor& c, int depth) {
  if (!c.Consume('[')) return false;
  c.SkipSpace();
  if (c.Consume(']')) return true;
  while (true) {
    if (!ParseValue(c, depth + 1)) return false;
    c.SkipSpace();
    if (c.Consume(']')) return true;
    if (!c.Consume(',')) return false;
  }
}

bool ParseValue(Cursor& c, int depth) {
  if (depth > 256) return false;
  c.SkipSpace();
  if (c.AtEnd()) return false;
  switch (c.Peek()) {
    case '{':
      return ParseObject(c, depth);
    case '[':
      return ParseArray(c, depth);
    case '"':
      return ParseString(c);
    case 't':
      return c.ConsumeLiteral("true");
    case 'f':
      return c.ConsumeLiteral("false");
    case 'n':
      return c.ConsumeLiteral("null");
    default:
      return ParseNumber(c);
  }
}

}  // namespace

bool IsValidJson(std::string_view text) {
  Cursor c{text};
  if (!ParseValue(c, 0)) return false;
  c.SkipSpace();
  return c.AtEnd();
}

}  // namespace stratlearn::obs
