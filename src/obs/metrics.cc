#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "obs/json_writer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  STRATLEARN_CHECK_MSG(!bounds_.empty(), "histogram needs >= 1 bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    STRATLEARN_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                         "histogram bounds must be strictly increasing");
  }
}

void Histogram::Record(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::bucket_upper(size_t i) const {
  if (i < bounds_.size()) return bounds_[i];
  return std::numeric_limits<double>::infinity();
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    double lower = i == 0 ? std::min(min_, bounds_[0]) : bounds_[i - 1];
    if (cumulative + counts_[i] >= rank) {
      double upper = i < bounds_.size() ? bounds_[i] : max_;
      double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[i]);
      double estimate = lower + (upper - lower) * within;
      return std::clamp(estimate, min_, max_);
    }
    cumulative += counts_[i];
  }
  return max_;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  STRATLEARN_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double step, int count) {
  STRATLEARN_CHECK(step > 0.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + step * i);
  }
  return bounds;
}

std::vector<double> DefaultBuckets() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (upper_bounds.empty()) upper_bounds = DefaultBuckets();
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name).Value(counter.value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name).Value(gauge.value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").Value(h.count());
    w.Key("sum").Value(h.sum());
    w.Key("min").Value(h.min());
    w.Key("max").Value(h.max());
    w.Key("mean").Value(h.Mean());
    w.Key("p50").Value(h.Percentile(50));
    w.Key("p90").Value(h.Percentile(90));
    w.Key("p99").Value(h.Percentile(99));
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.num_buckets(); ++i) {
      w.BeginObject();
      if (i < h.bounds().size()) {
        w.Key("le").Value(h.bounds()[i]);
      } else {
        w.Key("le").Value("+Inf");
      }
      w.Key("count").Value(h.bucket_count(i));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string MetricsRegistry::Summary() const {
  if (counters_.empty() && gauges_.empty() && histograms_.empty()) return "";
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("  %-28s %lld\n", name.c_str(),
                     static_cast<long long>(counter.value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("  %-28s %s\n", name.c_str(),
                     FormatDouble(gauge.value(), 6).c_str());
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat(
        "  %-28s count=%lld mean=%s p50=%s p95=%s max=%s\n", name.c_str(),
        static_cast<long long>(h.count()), FormatDouble(h.Mean(), 4).c_str(),
        FormatDouble(h.Percentile(50), 4).c_str(),
        FormatDouble(h.Percentile(95), 4).c_str(),
        FormatDouble(h.max(), 4).c_str());
  }
  return out;
}

}  // namespace stratlearn::obs
