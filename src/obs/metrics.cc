#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/json_writer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace stratlearn::obs {
namespace {

/// Relaxed CAS add for pre-C++20-style atomic doubles (libstdc++'s
/// lock-free fetch_add for floating point is not guaranteed); the loop
/// retries only under write contention on the same histogram.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value < observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value > observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

std::unique_ptr<std::atomic<int64_t>[]> MakeCounts(size_t n) {
  auto counts = std::make_unique<std::atomic<int64_t>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    counts[i].store(0, std::memory_order_relaxed);
  }
  return counts;
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    if (bucket_counts[i] == 0) continue;
    double lower = i == 0 ? std::min(min, bounds[0]) : bounds[i - 1];
    if (cumulative + bucket_counts[i] >= rank) {
      double upper = i < bounds.size() ? bounds[i] : max;
      double within = (rank - static_cast<double>(cumulative)) /
                      static_cast<double>(bucket_counts[i]);
      double estimate = lower + (upper - lower) * within;
      return std::clamp(estimate, min, max);
    }
    cumulative += bucket_counts[i];
  }
  return max;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(MakeCounts(bounds_.size() + 1)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  STRATLEARN_CHECK_MSG(!bounds_.empty(), "histogram needs >= 1 bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    STRATLEARN_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                         "histogram bounds must be strictly increasing");
  }
}

Histogram::Histogram(const Histogram& other)
    : bounds_(other.bounds_),
      counts_(MakeCounts(bounds_.size() + 1)),
      count_(other.count()),
      sum_(other.sum()),
      min_(other.min_.load(std::memory_order_relaxed)),
      max_(other.max_.load(std::memory_order_relaxed)) {
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    counts_[i].store(other.bucket_count(i), std::memory_order_relaxed);
  }
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  bounds_ = other.bounds_;
  counts_ = MakeCounts(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    counts_[i].store(other.bucket_count(i), std::memory_order_relaxed);
  }
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
  min_.store(other.min_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  return *this;
}

void Histogram::Record(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

void Histogram::Merge(const Histogram& other) {
  STRATLEARN_CHECK_MSG(bounds_ == other.bounds_,
                       "histogram merge requires identical bounds");
  int64_t other_count = other.count();
  if (other_count == 0) return;
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    int64_t c = other.bucket_count(i);
    if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
  }
  AtomicMin(min_, other.min_.load(std::memory_order_relaxed));
  AtomicMax(max_, other.max_.load(std::memory_order_relaxed));
  count_.fetch_add(other_count, std::memory_order_relaxed);
  AtomicAdd(sum_, other.sum());
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::bucket_upper(size_t i) const {
  if (i < bounds_.size()) return bounds_[i];
  return std::numeric_limits<double>::infinity();
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.bucket_counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    snapshot.bucket_counts.push_back(bucket_count(i));
  }
  snapshot.count = count();
  snapshot.sum = sum();
  snapshot.min = min();
  snapshot.max = max();
  return snapshot;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  STRATLEARN_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double step, int count) {
  STRATLEARN_CHECK(step > 0.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + step * i);
  }
  return bounds;
}

std::vector<double> DefaultBuckets() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (upper_bounds.empty()) upper_bounds = DefaultBuckets();
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter.value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge.value());
  }
  for (const auto& [name, h] : histograms_) {
    snapshot.histograms.emplace(name, h.Snapshot());
  }
  return snapshot;
}

std::string RenderSnapshotJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name).Value(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    // JsonWriter renders non-finite doubles as null; a NaN gauge must
    // not poison the whole snapshot's parseability.
    w.Key(name).Value(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    w.Key("min").Value(h.min);
    w.Key("max").Value(h.max);
    w.Key("mean").Value(h.Mean());
    w.Key("p50").Value(h.Percentile(50));
    w.Key("p90").Value(h.Percentile(90));
    w.Key("p99").Value(h.Percentile(99));
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      w.BeginObject();
      if (i < h.bounds.size()) {
        w.Key("le").Value(h.bounds[i]);
      } else {
        w.Key("le").Value("+Inf");
      }
      w.Key("count").Value(h.bucket_counts[i]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string MetricsRegistry::SnapshotJson() const {
  return RenderSnapshotJson(Snapshot());
}

std::string MetricsRegistry::Summary() const {
  MetricsSnapshot snapshot = Snapshot();
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    return "";
  }
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("  %-28s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("  %-28s %s\n", name.c_str(),
                     FormatDouble(value, 6).c_str());
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += StrFormat(
        "  %-28s count=%lld mean=%s p50=%s p95=%s max=%s\n", name.c_str(),
        static_cast<long long>(h.count), FormatDouble(h.Mean(), 4).c_str(),
        FormatDouble(h.Percentile(50), 4).c_str(),
        FormatDouble(h.Percentile(95), 4).c_str(),
        FormatDouble(h.max, 4).c_str());
  }
  return out;
}

}  // namespace stratlearn::obs
