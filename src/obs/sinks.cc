#include "obs/sinks.h"

#include <cstdio>

#include "obs/json_writer.h"

namespace stratlearn::obs {

namespace {

/// One warning per sink instance when a mid-run write fails; the caller
/// keeps running with the sink disabled rather than crashing or, worse,
/// silently losing an unbounded suffix of the trace.
void WarnWriteFailed(const char* what) {
  std::fprintf(stderr,
               "warning: %s trace sink write failed (disk full or closed "
               "pipe?); disabling further trace output for this run\n",
               what);
}

/// Shared field spellings so JSONL and Chrome args agree.
void CommonClimbFields(JsonWriter& w, const ClimbMoveEvent& e) {
  w.Key("learner").Value(e.learner);
  w.Key("move_index").Value(e.move_index);
  w.Key("at_context").Value(e.at_context);
  w.Key("samples_used").Value(e.samples_used);
  w.Key("swap").Value(e.swap);
  w.Key("delta_sum").Value(e.delta_sum);
  w.Key("threshold").Value(e.threshold);
  w.Key("margin").Value(e.margin);
  w.Key("delta_spent").Value(e.delta_spent);
}

void CommonDriftFields(JsonWriter& w, const DriftEvent& e) {
  w.Key("detector").Value(e.detector);
  w.Key("state").Value(e.state);
  w.Key("arc").Value(e.arc);
  w.Key("counter").Value(e.counter);
  w.Key("statistic").Value(e.statistic);
  w.Key("reference").Value(e.reference);
  w.Key("threshold").Value(e.threshold);
  w.Key("window").Value(e.window);
  w.Key("window_start_us").Value(e.window_start_us);
  w.Key("window_end_us").Value(e.window_end_us);
}

void CommonAlertFields(JsonWriter& w, const AlertEvent& e) {
  w.Key("rule").Value(e.rule);
  w.Key("state").Value(e.state);
  w.Key("severity").Value(e.severity);
  w.Key("metric").Value(e.metric);
  w.Key("value").Value(e.value);
  w.Key("threshold").Value(e.threshold);
  w.Key("window").Value(e.window);
  w.Key("for_windows").Value(e.for_windows);
}

void CommonTestFields(JsonWriter& w, const SequentialTestEvent& e) {
  w.Key("learner").Value(e.learner);
  w.Key("at_context").Value(e.at_context);
  w.Key("samples").Value(e.samples);
  w.Key("trial_count").Value(e.trial_count);
  w.Key("best_neighbor").Value(e.best_neighbor);
  w.Key("best_delta_sum").Value(e.best_delta_sum);
  w.Key("best_threshold").Value(e.best_threshold);
  w.Key("fired").Value(e.fired);
}

void CommonCertificateFields(JsonWriter& w,
                             const DecisionCertificateEvent& e) {
  w.Key("learner").Value(e.learner);
  w.Key("decision").Value(e.decision);
  w.Key("verdict").Value(e.verdict);
  w.Key("at_context").Value(e.at_context);
  w.Key("samples").Value(e.samples);
  w.Key("trials").Value(e.trials);
  w.Key("subject").Value(e.subject);
  w.Key("mean").Value(e.mean);
  w.Key("delta_sum").Value(e.delta_sum);
  w.Key("threshold").Value(e.threshold);
  w.Key("margin").Value(e.margin);
  w.Key("range").Value(e.range);
  w.Key("epsilon_n").Value(e.epsilon_n);
  w.Key("delta_step").Value(e.delta_step);
  w.Key("delta_budget").Value(e.delta_budget);
  w.Key("delta_spent_total").Value(e.delta_spent_total);
  w.Key("bound_samples").Value(e.bound_samples);
  w.Key("epsilon").Value(e.epsilon);
}

void CommonRecoveryFields(JsonWriter& w, const RecoveryEvent& e) {
  w.Key("rule").Value(e.rule);
  w.Key("trigger").Value(e.trigger);
  w.Key("action").Value(e.action);
  w.Key("outcome").Value(e.outcome);
  w.Key("arc").Value(e.arc);
  w.Key("window").Value(e.window);
  w.Key("matched").Value(e.matched);
  w.Key("statistic").Value(e.statistic);
  w.Key("reference").Value(e.reference);
  w.Key("threshold").Value(e.threshold);
}

/// One warning per sink instance the first time an event arrives after
/// Close() (or after a failure disabled the sink) and has to be
/// dropped. Before this existed the loss was entirely silent.
void WarnEventDropped(const char* what) {
  std::fprintf(stderr,
               "warning: %s trace sink dropped an event delivered after "
               "Close(); further drops are counted in "
               "obs.trace_events_dropped but not reported individually\n",
               what);
}

}  // namespace

JsonlSink::JsonlSink(std::ostream* out) : out_(out) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {}

JsonlSink::~JsonlSink() { Close(); }

void JsonlSink::WriteLine(const std::string& json) {
  if (out_ == nullptr) return;
  if (closed_ || failed_) {
    ++events_dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Increment();
    if (!warned_dropped_) {
      warned_dropped_ = true;
      WarnEventDropped("JSONL");
    }
    return;
  }
  *out_ << json << '\n';
  if (!out_->good()) {
    failed_ = true;
    WarnWriteFailed("JSONL");
  }
}

void JsonlSink::Flush() {
  if (out_ == nullptr || failed_) return;
  out_->flush();
  if (!out_->good()) {
    failed_ = true;
    WarnWriteFailed("JSONL");
  }
}

void JsonlSink::Close() {
  // JSONL needs no terminator; Close just seals the stream against
  // late events and flushes.
  closed_ = true;
  Flush();
}

void JsonlSink::OnQueryStart(const QueryStartEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("query_start");
  w.Key("t_us").Value(e.t_us);
  w.Key("query_index").Value(e.query_index);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnQueryEnd(const QueryEndEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("query_end");
  w.Key("t_us").Value(e.t_us);
  w.Key("query_index").Value(e.query_index);
  w.Key("duration_us").Value(e.duration_us);
  w.Key("cost").Value(e.cost);
  w.Key("attempts").Value(e.attempts);
  w.Key("successes").Value(e.successes);
  w.Key("success").Value(e.success);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnArcAttempt(const ArcAttemptEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("arc_attempt");
  w.Key("t_us").Value(e.t_us);
  w.Key("query_index").Value(e.query_index);
  w.Key("arc").Value(static_cast<int64_t>(e.arc));
  w.Key("experiment").Value(static_cast<int64_t>(e.experiment));
  w.Key("unblocked").Value(e.unblocked);
  w.Key("cost").Value(e.cost);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnClimbMove(const ClimbMoveEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("climb_move");
  w.Key("t_us").Value(e.t_us);
  CommonClimbFields(w, e);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnSequentialTest(const SequentialTestEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("sequential_test");
  w.Key("t_us").Value(e.t_us);
  CommonTestFields(w, e);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnQuotaProgress(const QuotaProgressEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("quota_progress");
  w.Key("t_us").Value(e.t_us);
  w.Key("context").Value(e.context);
  w.Key("aimed_experiment").Value(static_cast<int64_t>(e.aimed_experiment));
  w.Key("reached").Value(e.reached);
  w.Key("remaining_max").Value(e.remaining_max);
  w.Key("remaining_total").Value(e.remaining_total);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnPaloStop(const PaloStopEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("palo_stop");
  w.Key("t_us").Value(e.t_us);
  w.Key("at_context").Value(e.at_context);
  w.Key("moves").Value(e.moves);
  w.Key("epsilon").Value(e.epsilon);
  w.Key("worst_certificate").Value(e.worst_certificate);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnRetry(const RetryEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("retry");
  w.Key("t_us").Value(e.t_us);
  w.Key("query_index").Value(e.query_index);
  w.Key("arc").Value(static_cast<int64_t>(e.arc));
  w.Key("experiment").Value(static_cast<int64_t>(e.experiment));
  w.Key("fault").Value(e.fault);
  w.Key("attempt").Value(e.attempt);
  w.Key("backoff_cost").Value(e.backoff_cost);
  w.Key("gave_up").Value(e.gave_up);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnBreaker(const BreakerEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("breaker");
  w.Key("t_us").Value(e.t_us);
  w.Key("query_index").Value(e.query_index);
  w.Key("arc").Value(static_cast<int64_t>(e.arc));
  w.Key("experiment").Value(static_cast<int64_t>(e.experiment));
  w.Key("state").Value(e.state);
  w.Key("consecutive_failures").Value(e.consecutive_failures);
  w.Key("cooldown_until").Value(e.cooldown_until);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnDegraded(const DegradedEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("degraded");
  w.Key("t_us").Value(e.t_us);
  w.Key("query_index").Value(e.query_index);
  w.Key("cost").Value(e.cost);
  w.Key("budget").Value(e.budget);
  w.Key("attempts").Value(e.attempts);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnDrift(const DriftEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("drift");
  w.Key("t_us").Value(e.t_us);
  CommonDriftFields(w, e);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnAlert(const AlertEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("alert");
  w.Key("t_us").Value(e.t_us);
  CommonAlertFields(w, e);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnDecisionCertificate(const DecisionCertificateEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("decision_certificate");
  w.Key("t_us").Value(e.t_us);
  CommonCertificateFields(w, e);
  w.EndObject();
  WriteLine(w.str());
}

void JsonlSink::OnRecovery(const RecoveryEvent& e) {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("type").Value("recovery");
  w.Key("t_us").Value(e.t_us);
  CommonRecoveryFields(w, e);
  w.EndObject();
  WriteLine(w.str());
}

ChromeTraceSink::ChromeTraceSink(std::ostream* out) : out_(out) {
  if (out_ != nullptr) *out_ << "[\n";
}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {
  if (ok()) *out_ << "[\n";
}

ChromeTraceSink::~ChromeTraceSink() { Close(); }

void ChromeTraceSink::WriteRecord(const std::string& json) {
  if (out_ == nullptr) return;
  if (closed_ || failed_) {
    ++events_dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Increment();
    if (!warned_dropped_) {
      warned_dropped_ = true;
      WarnEventDropped("Chrome");
    }
    return;
  }
  if (wrote_any_) *out_ << ",\n";
  *out_ << json;
  wrote_any_ = true;
  if (!out_->good()) {
    failed_ = true;
    WarnWriteFailed("Chrome");
  }
}

void ChromeTraceSink::Flush() {
  if (out_ == nullptr || failed_) return;
  out_->flush();
  if (!out_->good()) {
    failed_ = true;
    WarnWriteFailed("Chrome");
  }
}

void ChromeTraceSink::Close() {
  if (out_ == nullptr) return;
  if (!closed_) {
    // A failed sink's stream is already broken; appending "]" would just
    // error again, so only a healthy stream gets finalised.
    if (!failed_) *out_ << "\n]\n";
    closed_ = true;
  }
  if (!failed_) out_->flush();
}

void ChromeTraceSink::OnQueryEnd(const QueryEndEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("query");
  w.Key("cat").Value("qp");
  w.Key("ph").Value("X");
  w.Key("ts").Value(e.t_us);
  w.Key("dur").Value(e.duration_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  w.Key("query_index").Value(e.query_index);
  w.Key("cost").Value(e.cost);
  w.Key("attempts").Value(e.attempts);
  w.Key("success").Value(e.success);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnClimbMove(const ClimbMoveEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("climb_move");
  w.Key("cat").Value("learner");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  CommonClimbFields(w, e);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnSequentialTest(const SequentialTestEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("sequential_test");
  w.Key("cat").Value("learner");
  w.Key("ph").Value("i");
  w.Key("s").Value("t");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  CommonTestFields(w, e);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnQuotaProgress(const QuotaProgressEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("quota_remaining");
  w.Key("cat").Value("qpa");
  w.Key("ph").Value("C");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("args").BeginObject();
  w.Key("total").Value(e.remaining_total);
  w.Key("max").Value(e.remaining_max);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnPaloStop(const PaloStopEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("palo_stop");
  w.Key("cat").Value("learner");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  w.Key("at_context").Value(e.at_context);
  w.Key("moves").Value(e.moves);
  w.Key("epsilon").Value(e.epsilon);
  w.Key("worst_certificate").Value(e.worst_certificate);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnRetry(const RetryEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("retry");
  w.Key("cat").Value("robust");
  w.Key("ph").Value("i");
  w.Key("s").Value("t");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  w.Key("query_index").Value(e.query_index);
  w.Key("arc").Value(static_cast<int64_t>(e.arc));
  w.Key("experiment").Value(static_cast<int64_t>(e.experiment));
  w.Key("fault").Value(e.fault);
  w.Key("attempt").Value(e.attempt);
  w.Key("backoff_cost").Value(e.backoff_cost);
  w.Key("gave_up").Value(e.gave_up);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnBreaker(const BreakerEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("breaker");
  w.Key("cat").Value("robust");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  w.Key("query_index").Value(e.query_index);
  w.Key("arc").Value(static_cast<int64_t>(e.arc));
  w.Key("experiment").Value(static_cast<int64_t>(e.experiment));
  w.Key("state").Value(e.state);
  w.Key("consecutive_failures").Value(e.consecutive_failures);
  w.Key("cooldown_until").Value(e.cooldown_until);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnDegraded(const DegradedEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("degraded");
  w.Key("cat").Value("robust");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  w.Key("query_index").Value(e.query_index);
  w.Key("cost").Value(e.cost);
  w.Key("budget").Value(e.budget);
  w.Key("attempts").Value(e.attempts);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnDrift(const DriftEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("drift");
  w.Key("cat").Value("health");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  CommonDriftFields(w, e);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnAlert(const AlertEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("alert");
  w.Key("cat").Value("health");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  CommonAlertFields(w, e);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnDecisionCertificate(
    const DecisionCertificateEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("decision_certificate");
  w.Key("cat").Value("audit");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  CommonCertificateFields(w, e);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

void ChromeTraceSink::OnRecovery(const RecoveryEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("recovery");
  w.Key("cat").Value("health");
  w.Key("ph").Value("i");
  w.Key("s").Value("g");
  w.Key("ts").Value(e.t_us);
  w.Key("pid").Value(int64_t{1});
  w.Key("tid").Value(int64_t{1});
  w.Key("args").BeginObject();
  CommonRecoveryFields(w, e);
  w.EndObject();
  w.EndObject();
  WriteRecord(w.str());
}

}  // namespace stratlearn::obs
