#ifndef STRATLEARN_OBS_PROFILER_H_
#define STRATLEARN_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_sink.h"

namespace stratlearn::obs {

/// Online per-arc cost attribution. One entry per arc id that appeared
/// in at least one ArcAttemptEvent.
struct ArcProfile {
  int64_t attempts = 0;
  int64_t unblocked = 0;
  double cum_cost = 0.0;

  int64_t blocked() const { return attempts - unblocked; }
  /// Empirical unblock frequency p^ (0 with no attempts).
  double PHat() const {
    return attempts == 0
               ? 0.0
               : static_cast<double>(unblocked) / static_cast<double>(attempts);
  }
  double MeanCost() const {
    return attempts == 0 ? 0.0 : cum_cost / static_cast<double>(attempts);
  }
};

/// One hill-climbing move, as seen on the event stream (timestamps
/// dropped so reports stay deterministic across runs).
struct ClimbRecord {
  std::string learner;
  int64_t move_index = 0;
  int64_t at_context = 0;
  int64_t samples_used = 0;
  std::string swap;
  double delta_sum = 0.0;
  double threshold = 0.0;
  double margin = 0.0;
  double delta_spent = 0.0;
};

/// Where each test round's best neighbour stood relative to its
/// Equation-6 threshold — the Delta~ margin trajectory of the run.
struct TestRound {
  std::string learner;
  int64_t at_context = 0;
  int64_t best_neighbor = -1;
  double margin = 0.0;
  bool fired = false;
};

/// Per-neighbour aggregate over the test rounds in which that neighbour
/// was the best candidate.
struct NeighborMargins {
  int64_t rounds_best = 0;
  double last_margin = 0.0;
  double max_margin = 0.0;
};

struct ProfilerOptions {
  /// Confidence for the p^ half-widths in reports: eps is the Hoeffding
  /// deviation at this delta, so [p^-eps, p^+eps] holds w.p. >= 1-delta
  /// per arc.
  double delta = 0.05;
  /// An arc is marked "hot" when its share of the total attributed cost
  /// reaches this fraction.
  double hot_share = 0.10;
};

/// Aggregates the PR-1 Observer event stream into per-arc cost
/// attribution: attempt counts, unblock frequencies with Chernoff-style
/// confidence half-widths, cumulative/mean traversal cost and share of
/// the total expected-cost spend, plus the learner-side story (climb
/// history, Delta~ margin trajectory, delta_i budget, quota countdown,
/// PALO certificates).
///
/// It is itself a TraceSink, so it can ride the same Observer as a file
/// sink via TeeSink (online profiling), or be fed from a recorded JSONL
/// trace via TraceReader (offline, tools/trace_report) — both paths
/// produce identical reports because nothing time-based is aggregated.
class StrategyProfiler final : public TraceSink {
 public:
  explicit StrategyProfiler(ProfilerOptions options = {});

  void OnQueryStart(const QueryStartEvent& e) override;
  void OnQueryEnd(const QueryEndEvent& e) override;
  void OnArcAttempt(const ArcAttemptEvent& e) override;
  void OnClimbMove(const ClimbMoveEvent& e) override;
  void OnSequentialTest(const SequentialTestEvent& e) override;
  void OnQuotaProgress(const QuotaProgressEvent& e) override;
  void OnPaloStop(const PaloStopEvent& e) override;

  // ---- Aggregated state ------------------------------------------------

  const std::map<uint32_t, ArcProfile>& arcs() const { return arcs_; }
  int64_t queries() const { return queries_; }
  double total_query_cost() const { return total_query_cost_; }
  double MeanQueryCost() const {
    return queries_ == 0 ? 0.0 : total_query_cost_ / queries_;
  }
  int64_t queries_succeeded() const { return queries_succeeded_; }
  /// Sum of per-arc cumulative costs (the attribution denominator).
  double TotalArcCost() const;
  /// Share of the total attributed cost carried by `arc` (0 when
  /// nothing has been attributed yet).
  double CostShare(uint32_t arc) const;
  /// Hoeffding half-width for a p^ built from `attempts` Bernoulli
  /// observations at the profiler's delta.
  double HalfWidth(int64_t attempts) const;

  const std::vector<ClimbRecord>& climbs() const { return climbs_; }
  /// Total delta_i confidence budget consumed by fired moves.
  double DeltaSpent() const;
  const std::vector<TestRound>& test_rounds() const { return test_rounds_; }
  const std::map<int64_t, NeighborMargins>& neighbor_margins() const {
    return neighbor_margins_;
  }

  int64_t quota_events() const { return quota_events_; }
  int64_t quota_reached() const { return quota_reached_; }
  int64_t last_quota_remaining_total() const {
    return last_quota_remaining_total_;
  }
  const std::vector<PaloStopEvent>& palo_stops() const { return palo_stops_; }

  const ProfilerOptions& options() const { return options_; }

  // ---- Reports ---------------------------------------------------------

  /// Deterministic human-readable report: per-arc attribution table
  /// (sorted by arc id), climb history, margin trajectory summary,
  /// quota/PALO sections when present. Contains no timestamps.
  std::string ReportText() const;

  /// The same report as one deterministic JSON object.
  std::string ReportJson() const;

 private:
  ProfilerOptions options_;
  std::map<uint32_t, ArcProfile> arcs_;
  int64_t queries_ = 0;
  int64_t queries_succeeded_ = 0;
  double total_query_cost_ = 0.0;
  std::vector<ClimbRecord> climbs_;
  std::vector<TestRound> test_rounds_;
  std::map<int64_t, NeighborMargins> neighbor_margins_;
  int64_t tests_fired_ = 0;
  int64_t quota_events_ = 0;
  int64_t quota_reached_ = 0;
  int64_t last_quota_remaining_total_ = 0;
  std::vector<PaloStopEvent> palo_stops_;
};

// ---- Two-run comparison (the bench regression gate) --------------------

struct ProfileDiffOptions {
  /// A per-arc regression fires when the candidate's mean traversal
  /// cost exceeds the baseline's by more than this relative fraction...
  double rel_threshold = 0.10;
  /// ...and by more than this absolute amount (guards near-zero means).
  double abs_threshold = 1e-9;
  /// Arcs with fewer attempts than this in either run are reported but
  /// never flagged (their means are noise).
  int64_t min_attempts = 10;
};

/// Per-arc comparison row. `rel_change` is (cand - base) / base mean
/// cost (0 when the baseline mean is 0).
struct ArcDiff {
  uint32_t arc = 0;
  int64_t base_attempts = 0;
  int64_t cand_attempts = 0;
  double base_mean = 0.0;
  double cand_mean = 0.0;
  double rel_change = 0.0;
  bool regression = false;
};

struct ProfileDiff {
  std::vector<ArcDiff> arcs;  // union of both runs' arcs, by arc id
  double base_mean_query_cost = 0.0;
  double cand_mean_query_cost = 0.0;
  bool has_regression = false;

  /// Deterministic table of the comparison, flagged rows marked.
  std::string ReportText() const;
};

/// Compares two aggregated runs arc by arc, flagging mean-traversal-cost
/// regressions beyond the thresholds.
ProfileDiff DiffProfiles(const StrategyProfiler& baseline,
                         const StrategyProfiler& candidate,
                         const ProfileDiffOptions& options = {});

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_PROFILER_H_
