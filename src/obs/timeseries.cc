#include "obs/timeseries.h"

#include <utility>

#include "obs/json_writer.h"
#include "util/check.h"

namespace stratlearn::obs {

TimeSeriesCollector::TimeSeriesCollector(const MetricsRegistry* registry,
                                         TimeSeriesOptions options)
    : registry_(registry), options_(options) {
  STRATLEARN_CHECK_MSG(options_.interval_us > 0,
                       "time-series interval must be positive");
  STRATLEARN_CHECK_MSG(options_.capacity > 0,
                       "time-series capacity must be positive");
}

void TimeSeriesCollector::OnArcAttempt(const ArcAttemptEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  ArcCumulative& cum = arcs_[e.arc];
  ++cum.attempts;
  if (e.unblocked) ++cum.unblocked;
  cum.cost += e.cost;
}

void TimeSeriesCollector::OnDecisionCertificate(
    const DecisionCertificateEvent&) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++certificates_;
}

void TimeSeriesCollector::OnDrift(const DriftEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (it->index == e.window) {
      it->drift.push_back(e);
      return;
    }
    if (it->index < e.window) break;
  }
}

void TimeSeriesCollector::OnAlert(const AlertEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (it->index == e.window) {
      it->alerts.push_back(e);
      return;
    }
    if (it->index < e.window) break;
  }
}

void TimeSeriesCollector::SetWindowCallback(
    std::function<void(const TimeSeriesWindow&)> cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_callback_ = std::move(cb);
}

void TimeSeriesCollector::AdvanceTo(int64_t now_us) {
  std::vector<TimeSeriesWindow> closed;
  std::function<void(const TimeSeriesWindow&)> cb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (now_us >= window_start_ + options_.interval_us) {
      CloseWindowLocked(window_start_ + options_.interval_us, &closed);
    }
    cb = window_callback_;
  }
  // Deliver outside the lock: the callback may emit events that come
  // straight back into this collector through a tee.
  if (cb) {
    for (const TimeSeriesWindow& window : closed) cb(window);
  }
}

void TimeSeriesCollector::Finalize(int64_t now_us) {
  std::vector<TimeSeriesWindow> closed;
  std::function<void(const TimeSeriesWindow&)> cb;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (now_us >= window_start_ + options_.interval_us) {
      CloseWindowLocked(window_start_ + options_.interval_us, &closed);
    }
    if (now_us > window_start_) CloseWindowLocked(now_us, &closed);
    cb = window_callback_;
  }
  if (cb) {
    for (const TimeSeriesWindow& window : closed) cb(window);
  }
}

void TimeSeriesCollector::CloseWindowLocked(
    int64_t end_us, std::vector<TimeSeriesWindow>* closed) {
  TimeSeriesWindow window;
  window.index = next_index_++;
  window.start_us = window_start_;
  window.end_us = end_us;
  if (registry_ != nullptr) {
    // Lock order: collector mutex, then the registry's internal lock.
    // Safe because the registry never calls back into a collector.
    window.cumulative = registry_->Snapshot();
  }
  for (const auto& [name, total] : window.cumulative.counters) {
    auto prev = last_cumulative_.counters.find(name);
    int64_t before = prev == last_cumulative_.counters.end() ? 0
                                                             : prev->second;
    window.counter_deltas.emplace(name, total - before);
  }
  for (const auto& [name, h] : window.cumulative.histograms) {
    HistogramDelta delta;
    delta.count = h.count;
    delta.sum = h.sum;
    auto prev = last_cumulative_.histograms.find(name);
    if (prev != last_cumulative_.histograms.end()) {
      delta.count -= prev->second.count;
      delta.sum -= prev->second.sum;
    }
    window.histogram_deltas.emplace(name, delta);
  }
  for (const auto& [arc, cum] : arcs_) {
    ArcWindowStats stats;
    stats.arc = arc;
    stats.attempts = cum.attempts;
    stats.unblocked = cum.unblocked;
    stats.cost = cum.cost;
    auto prev = last_arcs_.find(arc);
    if (prev != last_arcs_.end()) {
      stats.attempts -= prev->second.attempts;
      stats.unblocked -= prev->second.unblocked;
      stats.cost -= prev->second.cost;
    }
    if (stats.attempts != 0) window.arcs.push_back(stats);
  }
  window.certificates = certificates_ - last_certificates_;

  last_cumulative_ = window.cumulative;
  last_arcs_ = arcs_;
  last_certificates_ = certificates_;
  window_start_ = end_us;
  if (window_callback_) closed->push_back(window);
  windows_.push_back(std::move(window));
  if (windows_.size() > options_.capacity) {
    windows_.pop_front();
    ++evicted_;
  }
}

std::vector<TimeSeriesWindow> TimeSeriesCollector::Windows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {windows_.begin(), windows_.end()};
}

int64_t TimeSeriesCollector::windows_closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_index_;
}

int64_t TimeSeriesCollector::windows_evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

int64_t TimeSeriesCollector::window_start_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_start_;
}

Status TimeSeriesCollector::Restore(int64_t window_start_us,
                                    int64_t next_index, int64_t evicted,
                                    std::vector<TimeSeriesWindow> windows) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (next_index_ != 0 || !windows_.empty() || evicted_ != 0) {
    return Status::FailedPrecondition(
        "time-series state can only be restored into a fresh collector");
  }
  if (next_index < 0 || evicted < 0 || evicted > next_index ||
      windows.size() > options_.capacity ||
      static_cast<int64_t>(windows.size()) + evicted != next_index) {
    return Status::FailedPrecondition(
        "restored time-series cursor is inconsistent");
  }
  int64_t expect = evicted;
  int64_t last_end = 0;
  for (const TimeSeriesWindow& window : windows) {
    if (window.index != expect++ || window.end_us < window.start_us ||
        window.start_us < last_end) {
      return Status::FailedPrecondition(
          "restored time-series windows are out of order");
    }
    last_end = window.end_us;
  }
  if (window_start_us < last_end) {
    return Status::FailedPrecondition(
        "restored window start precedes the last closed boundary");
  }
  window_start_ = window_start_us;
  next_index_ = next_index;
  evicted_ = evicted;
  windows_.assign(std::make_move_iterator(windows.begin()),
                  std::make_move_iterator(windows.end()));
  return Status::OK();
}

std::string TimeSeriesCollector::SerializeJsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema").Value("stratlearn-timeseries-v1");
    w.Key("interval_us").Value(options_.interval_us);
    w.Key("capacity").Value(static_cast<int64_t>(options_.capacity));
    w.Key("windows_closed").Value(next_index_);
    w.Key("windows_evicted").Value(evicted_);
    w.EndObject();
    out += w.Take();
    out += '\n';
  }
  for (const TimeSeriesWindow& window : windows_) {
    out += SerializeWindowJson(window);
    out += '\n';
  }
  return out;
}

std::string TimeSeriesCollector::SerializeWindowJson(
    const TimeSeriesWindow& window) {
  // Round-trip precision: the offline `health` pipeline re-derives
  // detector statistics from this file and must reproduce the online
  // run's decisions bit-for-bit.
  JsonWriter w(JsonWriter::kRoundTripDigits);
  {
    w.BeginObject();
    w.Key("window").Value(window.index);
    w.Key("start_us").Value(window.start_us);
    w.Key("end_us").Value(window.end_us);
    w.Key("counters").BeginObject();
    for (const auto& [name, total] : window.cumulative.counters) {
      auto delta = window.counter_deltas.find(name);
      int64_t d = delta == window.counter_deltas.end() ? 0 : delta->second;
      w.Key(name).BeginObject();
      w.Key("total").Value(total);
      w.Key("delta").Value(d);
      w.Key("rate_per_s").Value(window.Rate(d));
      w.EndObject();
    }
    w.EndObject();
    w.Key("gauges").BeginObject();
    for (const auto& [name, value] : window.cumulative.gauges) {
      w.Key(name).Value(value);
    }
    w.EndObject();
    w.Key("histograms").BeginObject();
    for (const auto& [name, delta] : window.histogram_deltas) {
      const HistogramSnapshot& total = window.cumulative.histograms.at(name);
      w.Key(name).BeginObject();
      w.Key("count_total").Value(total.count);
      w.Key("count_delta").Value(delta.count);
      w.Key("sum_total").Value(total.sum);
      w.Key("sum_delta").Value(delta.sum);
      w.Key("mean_delta").Value(delta.Mean());
      w.EndObject();
    }
    w.EndObject();
    w.Key("arcs").BeginArray();
    for (const ArcWindowStats& arc : window.arcs) {
      w.BeginObject();
      w.Key("arc").Value(static_cast<int64_t>(arc.arc));
      w.Key("attempts").Value(arc.attempts);
      w.Key("unblocked").Value(arc.unblocked);
      w.Key("cost").Value(arc.cost);
      w.Key("p_hat").Value(arc.PHat());
      w.Key("mean_cost").Value(arc.MeanCost());
      w.EndObject();
    }
    w.EndArray();
    // Health decisions only appear when a monitor attributed some to
    // this window, so series without monitoring serialize as before;
    // likewise certificate counts only appear on audit-enabled runs.
    if (window.certificates != 0) {
      w.Key("certificates").Value(window.certificates);
    }
    if (!window.drift.empty()) {
      w.Key("drift").BeginArray();
      for (const DriftEvent& e : window.drift) {
        w.BeginObject();
        w.Key("detector").Value(e.detector);
        w.Key("state").Value(e.state);
        w.Key("arc").Value(e.arc);
        w.Key("counter").Value(e.counter);
        w.Key("statistic").Value(e.statistic);
        w.Key("reference").Value(e.reference);
        w.Key("threshold").Value(e.threshold);
        w.EndObject();
      }
      w.EndArray();
    }
    if (!window.alerts.empty()) {
      w.Key("alerts").BeginArray();
      for (const AlertEvent& e : window.alerts) {
        w.BeginObject();
        w.Key("rule").Value(e.rule);
        w.Key("state").Value(e.state);
        w.Key("severity").Value(e.severity);
        w.Key("metric").Value(e.metric);
        w.Key("value").Value(e.value);
        w.Key("threshold").Value(e.threshold);
        w.Key("for_windows").Value(e.for_windows);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
  }
  return w.Take();
}

}  // namespace stratlearn::obs
