#ifndef STRATLEARN_OBS_PERF_BENCH_REPORT_H_
#define STRATLEARN_OBS_PERF_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace stratlearn::obs::perf {

/// Parsed view of one "stratlearn-bench-v1" BENCH_*.json report — the
/// fields bench_compare gates on plus the manifest fields it prints.
/// Unknown keys are ignored so newer reports stay readable.
struct BenchReport {
  std::string workload;
  std::string git_sha;
  std::string timestamp;
  std::string build_type;
  uint64_t seed = 0;
  int64_t repetitions = 0;
  bool fake_clock = false;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double work_units = 0.0;
  int64_t peak_rss_kb = 0;
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> throughput;
};

/// Parses one report. InvalidArgument when the text is not well-formed
/// JSON, the schema tag is missing/unknown, or a gated field (workload,
/// wall_us.count/p50/p90/p99) is absent.
Result<BenchReport> ParseBenchReport(const std::string& json_text);

/// ParseBenchReport over a file; NotFound when it cannot be opened.
Result<BenchReport> LoadBenchReport(const std::string& path);

/// Noise-aware comparison thresholds: a latency metric regresses only
/// when the candidate exceeds the baseline by BOTH the relative and the
/// absolute margin (tiny workloads jitter by large ratios; big ones by
/// large absolutes — requiring both keeps either kind of noise from
/// tripping the gate). Runs with fewer than min_count samples on either
/// side are compared but annotated as low-confidence, never gated.
struct BenchCompareOptions {
  double rel_threshold = 0.25;
  double abs_threshold_us = 50.0;
  int64_t min_count = 3;
};

/// One gated metric's side-by-side values.
struct BenchMetricDelta {
  std::string metric;      // "p50" / "p99"
  double baseline = 0.0;   // microseconds
  double candidate = 0.0;  // microseconds
  double rel_delta = 0.0;  // (candidate - baseline) / baseline
  bool regression = false;
};

/// The comparison verdict for one workload.
struct BenchComparison {
  std::string workload;
  std::vector<BenchMetricDelta> metrics;
  bool has_regression = false;
  /// Human-readable caveats (low sample count, clock-mode mismatch).
  std::vector<std::string> notes;
};

/// Compares candidate against baseline on p50 and p99. InvalidArgument
/// when the reports name different workloads (a baseline for workload X
/// says nothing about workload Y).
Result<BenchComparison> CompareBenchReports(
    const BenchReport& baseline, const BenchReport& candidate,
    const BenchCompareOptions& options = {});

/// Renders the per-workload delta table (workload, metric,
/// baseline/candidate µs, delta %, verdict) plus any notes — the
/// readable output the CI gate prints on failure.
std::string RenderComparisonTable(
    const std::vector<BenchComparison>& comparisons);

}  // namespace stratlearn::obs::perf

#endif  // STRATLEARN_OBS_PERF_BENCH_REPORT_H_
