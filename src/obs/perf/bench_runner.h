#ifndef STRATLEARN_OBS_PERF_BENCH_RUNNER_H_
#define STRATLEARN_OBS_PERF_BENCH_RUNNER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/perf/manifest.h"
#include "util/status.h"

namespace stratlearn::obs::perf {

/// Deterministic per-repetition outcome of a workload. `work_units` is
/// the repetition's abstract cost (paper arc costs, contexts, clauses —
/// whatever the workload's natural unit is); it must depend only on the
/// workload's seed, never on the clock, because fake-clock mode reports
/// it *as* the latency to make BENCH reports byte-reproducible and
/// regression gates noise-free. `counters` are named totals merged
/// across repetitions (contexts, arc attempts, ...).
struct RepResult {
  double work_units = 0.0;
  std::vector<std::pair<std::string, int64_t>> counters;
};

/// One registered workload's per-run state. Construction does the
/// untimed setup (build graphs, program text, oracles); RunOnce is the
/// timed region. Instances are used serially by one runner.
class BenchWorkloadInstance {
 public:
  virtual ~BenchWorkloadInstance() = default;
  virtual RepResult RunOnce() = 0;
};

/// A named benchmark workload: a factory the runner calls once per run
/// with the run's seed.
struct BenchWorkload {
  std::string name;
  std::string description;
  std::function<std::unique_ptr<BenchWorkloadInstance>(uint64_t seed)> make;
};

/// Name -> workload registry; registration order is preserved for
/// `--workload=all` runs and listings.
class BenchRegistry {
 public:
  /// Names must be unique, non-empty, and filesystem-safe (they become
  /// BENCH_<name>.json).
  void Register(BenchWorkload workload);
  const BenchWorkload* Find(const std::string& name) const;
  const std::vector<BenchWorkload>& workloads() const { return workloads_; }

 private:
  std::vector<BenchWorkload> workloads_;
};

struct BenchOptions {
  /// Untimed repetitions run first to warm caches/allocators.
  int warmup = 2;
  /// Timed repetitions; each contributes one latency sample.
  int repetitions = 10;
  uint64_t seed = 19920602;
  /// Report each repetition's work_units as its latency instead of the
  /// measured wall time. Deterministic for a fixed seed, so reports are
  /// byte-identical across runs and machines — this mode feeds the CI
  /// regression gate (an algorithmic slowdown changes work done, which
  /// fake-clock latency tracks exactly).
  bool fake_clock = false;
  /// ISO-8601 timestamp pinned into the manifest; empty = now.
  std::string timestamp;
};

/// The full result of benchmarking one workload.
struct BenchRunResult {
  std::string workload;
  std::string description;
  RunManifest manifest;
  BenchOptions options;
  /// Per-repetition latency in microseconds (fake: work_units).
  Histogram wall_us = Histogram(DefaultBuckets());
  double total_wall_us = 0.0;
  double total_work_units = 0.0;
  std::map<std::string, int64_t> counters;
  /// getrusage peak RSS; pinned to 0 in fake-clock mode so the report
  /// stays byte-reproducible.
  int64_t peak_rss_kb = 0;

  /// The deterministic-schema "stratlearn-bench-v1" report. Fixed key
  /// order; doubles at the JsonWriter default precision. Throughput
  /// (work_units_per_sec plus one <counter>_per_sec entry per counter)
  /// is derived from total wall time.
  std::string ToJson() const;
};

class BenchRunner {
 public:
  explicit BenchRunner(BenchOptions options);

  /// Runs warmup + repetitions of `workload` and aggregates the result.
  BenchRunResult Run(const BenchWorkload& workload) const;

 private:
  BenchOptions options_;
};

/// "BENCH_<workload>.json".
std::string BenchFileName(const std::string& workload);

/// Writes `result.ToJson()` to <dir>/BENCH_<workload>.json atomically
/// (temp file + rename), so a killed run can't leave a torn report for
/// bench_compare to choke on.
Status WriteBenchFile(const std::string& dir, const BenchRunResult& result);

}  // namespace stratlearn::obs::perf

#endif  // STRATLEARN_OBS_PERF_BENCH_RUNNER_H_
