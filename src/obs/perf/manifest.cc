#include "obs/perf/manifest.h"

#include <cstdlib>
#include <ctime>

#include "obs/json_writer.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

// Fallbacks keep the library buildable outside the repo's CMake (e.g.
// in a bare compile_commands-driven tool run).
#ifndef STRATLEARN_GIT_SHA
#define STRATLEARN_GIT_SHA "unknown"
#endif
#ifndef STRATLEARN_BUILD_TYPE
#define STRATLEARN_BUILD_TYPE "unknown"
#endif
#ifndef STRATLEARN_CXX_FLAGS
#define STRATLEARN_CXX_FLAGS ""
#endif

namespace stratlearn::obs::perf {
namespace {

std::string CompilerString() {
#if defined(__clang__)
  return StrFormat("clang %d.%d.%d", __clang_major__, __clang_minor__,
                   __clang_patchlevel__);
#elif defined(__GNUC__)
  return StrFormat("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                   __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string HostString() {
#if defined(__unix__) || defined(__APPLE__)
  char name[256] = {0};
  if (gethostname(name, sizeof(name) - 1) == 0 && name[0] != '\0') {
    return name;
  }
#endif
  return "unknown";
}

std::string OsString() {
#if defined(__unix__) || defined(__APPLE__)
  struct utsname uts;
  if (uname(&uts) == 0) {
    return StrFormat("%s %s", uts.sysname, uts.release);
  }
#endif
  return "unknown";
}

/// Current UTC wall time as ISO-8601. This is run *metadata* (when did
/// the benchmark happen), not a timing measurement — all latencies come
/// from std::chrono::steady_clock in the runner.
std::string NowIso8601Utc() {
  std::time_t now = std::time(nullptr);
  std::tm tm = {};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && value[0] != '\0') ? value : fallback;
}

}  // namespace

RunManifest CollectRunManifest(uint64_t seed,
                               const std::string& timestamp_override) {
  RunManifest manifest;
  manifest.git_sha = EnvOr("STRATLEARN_BENCH_GIT_SHA", STRATLEARN_GIT_SHA);
  manifest.build_type = STRATLEARN_BUILD_TYPE;
  manifest.compiler = CompilerString();
  manifest.compiler_flags = STRATLEARN_CXX_FLAGS;
  manifest.host = HostString();
  manifest.os = OsString();
  manifest.seed = seed;
  manifest.timestamp =
      !timestamp_override.empty()
          ? timestamp_override
          : EnvOr("STRATLEARN_BENCH_TIMESTAMP", NowIso8601Utc());
  return manifest;
}

void WriteManifestJson(const RunManifest& manifest, JsonWriter* writer) {
  JsonWriter& w = *writer;
  w.BeginObject();
  w.Key("git_sha").Value(manifest.git_sha);
  w.Key("build_type").Value(manifest.build_type);
  w.Key("compiler").Value(manifest.compiler);
  w.Key("compiler_flags").Value(manifest.compiler_flags);
  w.Key("host").Value(manifest.host);
  w.Key("os").Value(manifest.os);
  w.Key("seed").Value(static_cast<int64_t>(manifest.seed));
  w.Key("timestamp").Value(manifest.timestamp);
  w.EndObject();
}

}  // namespace stratlearn::obs::perf
