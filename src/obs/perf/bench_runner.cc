#include "obs/perf/bench_runner.h"

#include <chrono>

#include "obs/json_writer.h"
#include "obs/timer.h"
#include "util/check.h"
#include "util/file_util.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace stratlearn::obs::perf {
namespace {

// All latency measurement in the bench runner must be monotonic; a
// wall-clock step (NTP, DST) would otherwise fabricate a regression.
static_assert(std::chrono::steady_clock::is_steady,
              "BenchRunner requires a monotonic clock");

int64_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // Linux reports ru_maxrss in KiB; macOS in bytes.
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;
#else
    return usage.ru_maxrss;
#endif
  }
#endif
  return 0;
}

}  // namespace

void BenchRegistry::Register(BenchWorkload workload) {
  STRATLEARN_CHECK_MSG(!workload.name.empty(), "workload needs a name");
  STRATLEARN_CHECK_MSG(Find(workload.name) == nullptr,
                       "duplicate workload name");
  workloads_.push_back(std::move(workload));
}

const BenchWorkload* BenchRegistry::Find(const std::string& name) const {
  for (const BenchWorkload& w : workloads_) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

BenchRunner::BenchRunner(BenchOptions options) : options_(options) {
  STRATLEARN_CHECK_MSG(options_.repetitions >= 1,
                       "bench needs >= 1 repetition");
  STRATLEARN_CHECK(options_.warmup >= 0);
}

BenchRunResult BenchRunner::Run(const BenchWorkload& workload) const {
  BenchRunResult result;
  result.workload = workload.name;
  result.description = workload.description;
  result.options = options_;
  result.manifest = CollectRunManifest(options_.seed, options_.timestamp);

  std::unique_ptr<BenchWorkloadInstance> instance =
      workload.make(options_.seed);
  STRATLEARN_CHECK_MSG(instance != nullptr, "workload factory returned null");

  for (int i = 0; i < options_.warmup; ++i) (void)instance->RunOnce();

  for (int i = 0; i < options_.repetitions; ++i) {
    Stopwatch watch;
    RepResult rep = instance->RunOnce();
    double us = options_.fake_clock ? rep.work_units : watch.ElapsedUs();
    result.wall_us.Record(us);
    result.total_wall_us += us;
    result.total_work_units += rep.work_units;
    for (const auto& [name, value] : rep.counters) {
      result.counters[name] += value;
    }
  }
  result.peak_rss_kb = options_.fake_clock ? 0 : PeakRssKb();
  return result;
}

std::string BenchRunResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("stratlearn-bench-v1");
  w.Key("workload").Value(workload);
  w.Key("description").Value(description);
  w.Key("manifest");
  WriteManifestJson(manifest, &w);
  w.Key("config").BeginObject();
  w.Key("warmup").Value(static_cast<int64_t>(options.warmup));
  w.Key("repetitions").Value(static_cast<int64_t>(options.repetitions));
  w.Key("fake_clock").Value(options.fake_clock);
  w.EndObject();
  w.Key("wall_us").BeginObject();
  w.Key("count").Value(wall_us.count());
  w.Key("sum").Value(wall_us.sum());
  w.Key("min").Value(wall_us.min());
  w.Key("max").Value(wall_us.max());
  w.Key("mean").Value(wall_us.Mean());
  w.Key("p50").Value(wall_us.Percentile(50));
  w.Key("p90").Value(wall_us.Percentile(90));
  w.Key("p99").Value(wall_us.Percentile(99));
  w.EndObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name).Value(value);
  }
  w.EndObject();
  // Throughput derives from wall time: real mode gives items/sec on the
  // hardware; fake mode gives items per work-unit-microsecond, equally
  // comparable across runs.
  double seconds = total_wall_us / 1e6;
  w.Key("throughput").BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name + "_per_sec")
        .Value(seconds > 0.0 ? static_cast<double>(value) / seconds : 0.0);
  }
  w.Key("work_units_per_sec")
      .Value(seconds > 0.0 ? total_work_units / seconds : 0.0);
  w.EndObject();
  w.Key("work_units").Value(total_work_units);
  w.Key("peak_rss_kb").Value(peak_rss_kb);
  w.EndObject();
  return w.Take();
}

std::string BenchFileName(const std::string& workload) {
  return "BENCH_" + workload + ".json";
}

Status WriteBenchFile(const std::string& dir, const BenchRunResult& result) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += BenchFileName(result.workload);
  if (!WriteFileAtomic(path, result.ToJson() + "\n")) {
    return Status::Internal("cannot write '" + path + "'");
  }
  return Status::OK();
}

}  // namespace stratlearn::obs::perf
