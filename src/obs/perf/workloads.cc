#include "obs/perf/workloads.h"

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include <sstream>

#include "core/pao.h"
#include "core/pib.h"
#include "core/upsilon.h"
#include "datalog/parser.h"
#include "engine/query_processor.h"
#include "graph/examples.h"
#include "obs/audit/audit_log.h"
#include "obs/health/monitor.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"
#include "robust/checkpoint.h"
#include "robust/recovery/controller.h"
#include "robust/recovery/policy.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn::obs::perf {
namespace {

/// Datalog parse + load: a transitive-closure rule set over a chain of
/// edge facts plus a family of unary facts — the substrate every
/// graph-based command pays before any learning starts.
class DatalogLoadInstance : public BenchWorkloadInstance {
 public:
  explicit DatalogLoadInstance(uint64_t seed) {
    Rng rng(seed);
    program_ =
        "path(X, Y) :- edge(X, Y)."
        "path(X, Y) :- edge(X, Z), path(Z, Y)."
        "reach(X) :- path(X, X)."
        "instructor(X) :- prof(X)."
        "instructor(X) :- grad(X).";
    clauses_ = 5;
    for (int i = 0; i < 400; ++i) {
      program_ += StrFormat("edge(n%d, n%d).", i, i + 1);
      ++clauses_;
    }
    for (int i = 0; i < 100; ++i) {
      // Membership varies with the seed so reloads are not all-hit or
      // all-miss in the symbol table, but the clause count is fixed.
      program_ += StrFormat(rng.NextBernoulli(0.5) ? "prof(p%d)."
                                                   : "grad(p%d).",
                            i);
      ++clauses_;
    }
  }

  RepResult RunOnce() override {
    SymbolTable symbols;
    Parser parser(&symbols);
    Database db;
    RuleBase rules;
    Status loaded = parser.LoadProgram(program_, &db, &rules);
    STRATLEARN_CHECK_MSG(loaded.ok(), "datalog_load program must load");
    RepResult result;
    result.work_units = static_cast<double>(clauses_);
    result.counters = {{"clauses", clauses_}};
    return result;
  }

 private:
  std::string program_;
  int64_t clauses_ = 0;
};

/// QueryProcessor::Execute over the paper's Figure 1 and Figure 2
/// graphs — the innermost hot path every learner drives.
class FigureExecuteInstance : public BenchWorkloadInstance {
 public:
  explicit FigureExecuteInstance(uint64_t seed)
      : fig1_(MakeFigureOne()),
        fig2_(MakeFigureTwo()),
        theta1_(Strategy::DepthFirst(fig1_.graph)),
        theta2_(Strategy::DepthFirst(fig2_.graph)),
        qp1_(&fig1_.graph),
        qp2_(&fig2_.graph),
        // Figure 1's workload is mostly grad students (the paper's
        // motivating skew); Figure 2's probabilities climb with depth.
        oracle1_({0.2, 0.75}),
        oracle2_({0.3, 0.5, 0.6, 0.8}),
        rng_(seed) {}

  RepResult RunOnce() override {
    constexpr int kFig1Contexts = 2000;
    constexpr int kFig2Contexts = 1000;
    double cost = 0.0;
    int64_t attempts = 0;
    int64_t successes = 0;
    for (int i = 0; i < kFig1Contexts; ++i) {
      Trace trace = qp1_.Execute(theta1_, oracle1_.Next(rng_));
      cost += trace.cost;
      attempts += static_cast<int64_t>(trace.attempts.size());
      successes += trace.successes;
    }
    for (int i = 0; i < kFig2Contexts; ++i) {
      Trace trace = qp2_.Execute(theta2_, oracle2_.Next(rng_));
      cost += trace.cost;
      attempts += static_cast<int64_t>(trace.attempts.size());
      successes += trace.successes;
    }
    RepResult result;
    result.work_units = cost;
    result.counters = {{"contexts", kFig1Contexts + kFig2Contexts},
                       {"arc_attempts", attempts},
                       {"successes", successes}};
    return result;
  }

 private:
  FigureOneGraph fig1_;
  FigureTwoGraph fig2_;
  Strategy theta1_;
  Strategy theta2_;
  QueryProcessor qp1_;
  QueryProcessor qp2_;
  IndependentOracle oracle1_;
  IndependentOracle oracle2_;
  Rng rng_;
};

/// A full PIB hill-climb: each repetition restarts the learner on the
/// same random tree and feeds it a fresh slice of the context stream,
/// measuring Observe + Execute together (the unobtrusive-PIB loop).
class PibClimbInstance : public BenchWorkloadInstance {
 public:
  explicit PibClimbInstance(uint64_t seed) : rng_(seed) {
    Rng tree_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    RandomTreeOptions options;
    options.depth = 5;
    options.min_branch = 2;
    options.max_branch = 3;
    options.early_leaf_prob = 0.1;
    tree_ = MakeRandomTree(tree_rng, options);
    oracle_ = std::make_unique<IndependentOracle>(tree_.probs);
  }

  RepResult RunOnce() override {
    constexpr int kContexts = 400;
    Pib pib(&tree_.graph, Strategy::DepthFirst(tree_.graph),
            PibOptions{.delta = 0.2});
    QueryProcessor qp(&tree_.graph);
    double cost = 0.0;
    for (int i = 0; i < kContexts; ++i) {
      Trace trace = qp.Execute(pib.strategy(), oracle_->Next(rng_));
      cost += trace.cost;
      pib.Observe(trace);
    }
    RepResult result;
    result.work_units = cost;
    result.counters = {{"contexts", kContexts},
                       {"moves", static_cast<int64_t>(pib.moves().size())},
                       {"trials", pib.trial_count()}};
    return result;
  }

 private:
  RandomTree tree_;
  std::unique_ptr<IndependentOracle> oracle_;
  Rng rng_;
};

/// A PAO Theorem-3 quota run over Figure 2: QP^A adaptive sampling
/// until every aim quota is met, then the Upsilon step.
class PaoQuotaInstance : public BenchWorkloadInstance {
 public:
  explicit PaoQuotaInstance(uint64_t seed)
      : fig2_(MakeFigureTwo()), oracle_({0.3, 0.5, 0.6, 0.8}), rng_(seed) {}

  RepResult RunOnce() override {
    PaoOptions options;
    options.epsilon = 0.75;
    options.delta = 0.2;
    options.mode = PaoOptions::Mode::kTheorem3;
    Result<PaoResult> run = Pao::Run(fig2_.graph, oracle_, rng_, options);
    STRATLEARN_CHECK_MSG(run.ok(), "pao_quota run must meet its quotas");
    RepResult result;
    result.work_units = static_cast<double>(run->contexts_used);
    result.counters = {{"contexts", run->contexts_used},
                       {"upsilon_exact", run->upsilon_exact ? 1 : 0}};
    return result;
  }

 private:
  FigureTwoGraph fig2_;
  IndependentOracle oracle_;
  Rng rng_;
};

/// Upsilon_AOT ordering of a 2048-leaf flat tree — the O(n log n)
/// block-merge that closes every PAO run and the eval command.
class UpsilonOrderInstance : public BenchWorkloadInstance {
 public:
  explicit UpsilonOrderInstance(uint64_t seed) {
    Rng rng(seed);
    tree_ = MakeFlatTree(rng, 2048);
  }

  RepResult RunOnce() override {
    Result<UpsilonResult> ordered = UpsilonAot(tree_.graph, tree_.probs);
    STRATLEARN_CHECK_MSG(ordered.ok(), "upsilon_order must solve the tree");
    RepResult result;
    result.work_units =
        static_cast<double>(tree_.graph.num_arcs());
    result.counters = {
        {"arcs", static_cast<int64_t>(tree_.graph.num_arcs())},
        {"exact", ordered->exact ? 1 : 0}};
    return result;
  }

 private:
  RandomTree tree_;
};

/// Instrumentation overhead on the fig1_execute hot path: the same
/// Figure-1 context stream run with (a) no observer, (b) metrics only,
/// (c) metrics + a locked null trace sink. Work units are the arc
/// attempts actually made — identical across the three variants for a
/// given seed (instrumentation must not change execution semantics), so
/// a fake-clock baseline diff catches a variant whose observation path
/// alters behaviour, while wall-clock p50/p99 across the three
/// workloads price the telemetry itself.
class ObsOverheadInstance : public BenchWorkloadInstance {
 public:
  enum class Mode { kOff, kMetrics, kMetricsAndTrace };

  ObsOverheadInstance(uint64_t seed, Mode mode)
      : fig1_(MakeFigureOne()),
        theta_(Strategy::DepthFirst(fig1_.graph)),
        qp_(&fig1_.graph),
        oracle_({0.2, 0.75}),
        rng_(seed) {
    if (mode != Mode::kOff) {
      obs::TraceSink* sink = nullptr;
      if (mode == Mode::kMetricsAndTrace) {
        locked_null_ = std::make_unique<obs::LockingSink>(&null_sink_);
        sink = locked_null_.get();
      }
      observer_ = std::make_unique<obs::Observer>(&registry_, sink);
      qp_.set_observer(observer_.get());
    }
  }

  RepResult RunOnce() override {
    constexpr int kContexts = 3000;
    int64_t attempts = 0;
    int64_t successes = 0;
    for (int i = 0; i < kContexts; ++i) {
      Trace trace = qp_.Execute(theta_, oracle_.Next(rng_));
      attempts += static_cast<int64_t>(trace.attempts.size());
      successes += trace.successes;
    }
    RepResult result;
    result.work_units = static_cast<double>(attempts);
    result.counters = {{"contexts", kContexts},
                       {"arc_attempts", attempts},
                       {"successes", successes}};
    return result;
  }

 private:
  FigureOneGraph fig1_;
  Strategy theta_;
  QueryProcessor qp_;
  IndependentOracle oracle_;
  Rng rng_;
  obs::MetricsRegistry registry_;
  obs::NullSink null_sink_;
  std::unique_ptr<obs::LockingSink> locked_null_;
  std::unique_ptr<obs::Observer> observer_;
};

/// End-to-end statistical drift detection: a flat-tree satisficing
/// search driven by a DriftingOracle whose first experiment steps from
/// p = 0.8 to p = 0.2 mid-run, with the full health pipeline attached
/// (observer -> time-series windows -> drift detectors). Each
/// repetition runs the pipeline twice — drifting, then a stationary
/// control with the same seed — and checks the detection contract in
/// process: the shifted arc must raise a p-hat DriftDetected, the
/// control must stay silent. The counters land in the fake-clock
/// baseline, so a regression in detector sensitivity (missed drift) or
/// specificity (control false positive) fails both the run and the
/// bench diff.
class DriftDetectInstance : public BenchWorkloadInstance {
 public:
  explicit DriftDetectInstance(uint64_t seed) : rng_(seed) {
    Rng tree_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    tree_ = MakeFlatTree(tree_rng, 4);
  }

  struct PipelineOutcome {
    double cost = 0.0;
    int64_t shifted_detections = 0;  // p-hat detections on the shifted arc
    int64_t other_detections = 0;    // anything else (should stay 0)
    int64_t windows = 0;
  };

  PipelineOutcome RunPipeline(uint64_t seed, bool drifting) {
    constexpr int64_t kContexts = 2000;
    constexpr int64_t kDriftAt = 1000;
    constexpr int64_t kWindowUnits = 100;
    std::vector<double> before = {0.8, 0.5, 0.5, 0.5};
    std::vector<double> after = before;
    if (drifting) after[0] = 0.2;
    DriftingOracle oracle(before, after, kDriftAt);

    MetricsRegistry registry;
    TimeSeriesOptions ts_options;
    ts_options.interval_us = kWindowUnits;
    TimeSeriesCollector collector(&registry, ts_options);
    health::HealthMonitor monitor(health::AlertRuleSet{},
                                  health::HealthOptions{}, &registry);
    monitor.set_event_sink(&collector);
    collector.SetWindowCallback([&monitor](const TimeSeriesWindow& w) {
      monitor.OnWindow(w);
    });
    Observer observer(&registry, &collector);
    observer.UseManualClock();
    QueryProcessor qp(&tree_.graph, &observer);
    Strategy theta = Strategy::DepthFirst(tree_.graph);

    Rng rng(seed);
    PipelineOutcome out;
    for (int64_t i = 0; i < kContexts; ++i) {
      out.cost += qp.Execute(theta, oracle.Next(rng)).cost;
      observer.AdvanceManualClock(i + 1);
      collector.AdvanceTo(i + 1);
    }
    collector.Finalize(kContexts);
    out.windows = collector.windows_closed();
    ArcId shifted_arc = tree_.graph.experiments()[0];
    for (const DriftEvent& e : monitor.drift_log()) {
      if (e.state != "detected") continue;
      if (e.detector == "p_hat" && e.arc == shifted_arc) {
        ++out.shifted_detections;
      } else {
        ++out.other_detections;
      }
    }
    return out;
  }

  RepResult RunOnce() override {
    uint64_t rep_seed = rng_.NextUint64();
    PipelineOutcome drift = RunPipeline(rep_seed, /*drifting=*/true);
    PipelineOutcome control = RunPipeline(rep_seed, /*drifting=*/false);
    STRATLEARN_CHECK_MSG(drift.shifted_detections >= 1,
                         "drift_detect must flag the shifted arc");
    STRATLEARN_CHECK_MSG(
        control.shifted_detections + control.other_detections == 0,
        "drift_detect control run must stay silent");
    RepResult result;
    result.work_units = drift.cost + control.cost;
    result.counters = {
        {"contexts", 4000},
        {"windows", drift.windows + control.windows},
        {"drift_detected", drift.shifted_detections},
        {"drift_other", drift.other_detections},
        {"control_detected",
         control.shifted_detections + control.other_detections}};
    return result;
  }

 private:
  RandomTree tree_;
  Rng rng_;
};

/// The decision-audit layer's price on the pib_climb loop: the same
/// depth-5 random-tree hill-climb, but with a full observer attached
/// and certificate emission enabled, every certificate landing in an
/// in-memory AuditLog. The untouched pib_climb workload doubles as the
/// certificates-off control — its fake-clock baseline must stay
/// byte-identical with the audit layer merely compiled in — while this
/// workload's wall clock prices emission + serialisation and its
/// counters pin the certificate volume and encoded size.
class AuditOverheadInstance : public BenchWorkloadInstance {
 public:
  explicit AuditOverheadInstance(uint64_t seed) : rng_(seed) {
    Rng tree_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    RandomTreeOptions options;
    options.depth = 5;
    options.min_branch = 2;
    options.max_branch = 3;
    options.early_leaf_prob = 0.1;
    tree_ = MakeRandomTree(tree_rng, options);
    oracle_ = std::make_unique<IndependentOracle>(tree_.probs);
  }

  RepResult RunOnce() override {
    constexpr int kContexts = 400;
    constexpr double kDelta = 0.2;
    std::ostringstream audit_out;
    AuditLogOptions audit_options;
    audit_options.delta_budget = kDelta;
    audit_options.window = 100;
    AuditLog audit(&audit_out, audit_options);
    MetricsRegistry registry;
    Observer observer(&registry, &audit);
    observer.UseManualClock();
    observer.set_audit_enabled(true);
    Pib pib(&tree_.graph, Strategy::DepthFirst(tree_.graph),
            PibOptions{.delta = kDelta}, &observer);
    QueryProcessor qp(&tree_.graph, &observer);
    double cost = 0.0;
    for (int i = 0; i < kContexts; ++i) {
      Trace trace = qp.Execute(pib.strategy(), oracle_->Next(rng_));
      cost += trace.cost;
      pib.Observe(trace);
      observer.AdvanceManualClock(i + 1);
    }
    audit.Close();
    STRATLEARN_CHECK_MSG(audit.ok(), "in-memory audit log cannot fail");
    RepResult result;
    result.work_units = cost;
    result.counters = {
        {"contexts", kContexts},
        {"moves", static_cast<int64_t>(pib.moves().size())},
        {"certificates", audit.certificates_written()},
        {"audit_bytes", static_cast<int64_t>(audit_out.str().size())}};
    return result;
  }

 private:
  RandomTree tree_;
  std::unique_ptr<IndependentOracle> oracle_;
  Rng rng_;
};

/// Drift reaction end-to-end: a 4-leaf satisficing search whose best
/// experiment transiently degrades (p 0.9 -> 0.25, then reverts), with
/// the full detect -> decide -> recover pipeline attached. Each
/// repetition runs the same context stream four times: once per
/// graduated recovery policy (rebaseline, restart_scoped, rollback
/// against an on-disk checkpoint ring) and once with the naive
/// cold-restart reaction (drift detected => throw the learner away).
/// The rep hard-asserts the tentpole claim of the recovery layer: every
/// policy re-converges on the optimal ordering in strictly fewer
/// post-revert contexts than the cold restart, because the graduated
/// actions preserve (or restore) the pre-drift strategy instead of
/// discarding it. The per-policy re-convergence counters land in the
/// fake-clock baseline, so a recovery regression fails both the run
/// and the bench diff. Quarantine is deliberately absent: it isolates
/// a faulty arc rather than re-converging the learner, so it has no
/// convergence race to win.
class DriftRecoverInstance : public BenchWorkloadInstance {
 public:
  static constexpr int64_t kContexts = 3200;
  static constexpr int64_t kDriftAt = 1600;
  static constexpr int64_t kRevertAt = 2100;
  static constexpr int64_t kWindowUnits = 100;
  static constexpr double kDelta = 0.2;
  static constexpr int kBestExperiment = 2;

  explicit DriftRecoverInstance(uint64_t seed) : seed_(seed), rng_(seed) {
    Rng tree_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    RandomTreeOptions options;
    options.min_cost = 1.0;  // equal costs: the optimal order is by p
    options.max_cost = 1.0;
    tree_ = MakeFlatTree(tree_rng, 4, options);
  }

  struct RunOutcome {
    double cost = 0.0;
    int64_t converged_at = 0;   // first context from which the best
                                // experiment stays in front to the end
    int64_t detections = 0;     // drift "detected" transitions
    int64_t actions = 0;        // recovery actions applied / cold restarts
  };

  /// Post-revert contexts until the learner is (back) on the optimal
  /// ordering; 0 when it never lost it.
  static int64_t RecoveryContexts(const RunOutcome& run) {
    return run.converged_at <= kRevertAt ? 0
                                         : run.converged_at - kRevertAt;
  }

  /// One full pipeline run. `policy` empty = cold-restart control.
  RunOutcome RunPipeline(uint64_t seed, const std::string& policy) {
    // The drift collapses the best experiment onto the others' success
    // rate: a 0.6 p-hat step the Hoeffding test flags within a window,
    // but zero ordering signal during the transient — so no learner
    // commits a *wrong* swap while drifted, and what separates the runs
    // is purely how their drift reaction treats the pre-drift strategy.
    std::vector<double> before = {0.3, 0.3, 0.9, 0.3};
    std::vector<double> after = before;
    after[kBestExperiment] = 0.3;
    DriftingOracle oracle(before, after, kDriftAt);
    oracle.set_revert_at(kRevertAt);

    MetricsRegistry registry;
    TimeSeriesOptions ts_options;
    ts_options.interval_us = kWindowUnits;
    TimeSeriesCollector collector(&registry, ts_options);
    health::HealthMonitor monitor(health::AlertRuleSet{},
                                  health::HealthOptions{}, &registry);
    monitor.set_event_sink(&collector);
    collector.SetWindowCallback([&monitor](const TimeSeriesWindow& w) {
      monitor.OnWindow(w);
    });
    Observer observer(&registry, &collector);
    observer.UseManualClock();
    QueryProcessor qp(&tree_.graph, &observer);
    auto pib = std::make_unique<Pib>(&tree_.graph,
                                     Strategy::DepthFirst(tree_.graph),
                                     PibOptions{.delta = kDelta}, &observer);

    std::string ring_base =
        StrFormat("/tmp/stratlearn_drift_recover_%llu",
                  static_cast<unsigned long long>(seed_));
    robust::CheckpointRing ring(ring_base, 3);
    std::unique_ptr<robust::RecoveryController> controller;
    int64_t cold_restarts = 0;
    if (!policy.empty()) {
      robust::RecoveryPolicy p;
      robust::RecoveryRule rule;
      rule.id = "drift->" + policy;
      rule.trigger = "drift:p_hat";
      rule.action = policy;
      rule.cooldown = 2;
      rule.trials_factor = 0.5;
      p.rules.push_back(rule);
      controller = std::make_unique<robust::RecoveryController>(std::move(p));
      controller->BindPib(pib.get());
      controller->BindRing(&ring);
      controller->BindObserver(&observer);
      controller->BindGraph(&tree_.graph);
      controller->set_live(true);
      monitor.set_recovery_hook(controller->Hook());
    } else {
      // The naive reaction the policies must beat: any detected drift
      // transition throws the learner away wholesale (same 2-window
      // cooldown as the policy rules, so the comparison is fair).
      int64_t last_restart_window = -100;
      monitor.set_recovery_hook(
          [&, last_restart_window](
              const TimeSeriesWindow& w, const std::vector<DriftEvent>& drift,
              const std::vector<AlertEvent>&) mutable {
            bool detected = false;
            for (const DriftEvent& e : drift) {
              if (e.state == "detected") detected = true;
            }
            if (detected && w.index - last_restart_window > 2) {
              last_restart_window = w.index;
              pib = std::make_unique<Pib>(&tree_.graph,
                                          Strategy::DepthFirst(tree_.graph),
                                          PibOptions{.delta = kDelta},
                                          &observer);
              ++cold_restarts;
            }
            return std::vector<health::RecoveryLogEntry>{};
          });
    }

    ArcId best_arc = tree_.graph.experiments()[kBestExperiment];
    Rng rng(seed);
    RunOutcome out;
    int64_t converged_since = -1;
    for (int64_t i = 0; i < kContexts; ++i) {
      Trace trace = qp.Execute(pib->strategy(), oracle.Next(rng));
      out.cost += trace.cost;
      pib->Observe(trace);
      observer.AdvanceManualClock(i + 1);
      collector.AdvanceTo(i + 1);
      if ((i + 1) % (4 * kWindowUnits) == 0 && monitor.drift_active() == 0 &&
          policy == "rollback") {
        // Known-good rollback targets, stamped with the monitor's
        // verdict the way the CLI's checkpoint writer stamps them.
        robust::CheckpointData data;
        data.learner = "pib";
        data.seed = seed_;
        data.queries_done = i + 1;
        data.rng_state = rng.SaveState();
        data.pib = pib->GetCheckpoint();
        data.health.present = true;
        data.health.healthy = true;
        data.health.windows_seen = monitor.windows_seen();
        (void)ring.Write(data);
      }
      bool in_front =
          pib->strategy().LeafOrder(tree_.graph)[0] == best_arc;
      if (in_front && converged_since < 0) converged_since = i;
      if (!in_front) converged_since = -1;
    }
    collector.Finalize(kContexts);
    out.converged_at = converged_since >= 0 ? converged_since : kContexts;
    for (const DriftEvent& e : monitor.drift_log()) {
      if (e.state == "detected") ++out.detections;
    }
    out.actions =
        controller != nullptr ? controller->actions_applied() : cold_restarts;
    for (int64_t slot = 0; slot < ring.slots(); ++slot) {
      std::remove(ring.SlotPath(slot).c_str());
    }
    return out;
  }

  RepResult RunOnce() override {
    uint64_t rep_seed = rng_.NextUint64();
    RunOutcome control = RunPipeline(rep_seed, "");
    RunOutcome rebaseline = RunPipeline(rep_seed, "rebaseline");
    RunOutcome scoped = RunPipeline(rep_seed, "restart_scoped");
    RunOutcome rollback = RunPipeline(rep_seed, "rollback");

    STRATLEARN_CHECK_MSG(control.detections >= 1 && control.actions >= 1,
                         "drift_recover control must detect and restart");
    STRATLEARN_CHECK_MSG(RecoveryContexts(control) > 0,
                         "drift_recover control must pay a re-convergence "
                         "price for its cold restart");
    const struct {
      const char* name;
      const RunOutcome* run;
    } policies[] = {{"rebaseline", &rebaseline},
                    {"restart_scoped", &scoped},
                    {"rollback", &rollback}};
    for (const auto& p : policies) {
      STRATLEARN_CHECK_MSG(p.run->detections >= 1,
                           "drift_recover policy run must detect the drift");
      STRATLEARN_CHECK_MSG(p.run->actions >= 1,
                           "drift_recover policy must apply an action");
      // The tentpole claim, hard-asserted per repetition: a graduated
      // recovery re-converges in strictly fewer contexts than the
      // cold restart.
      STRATLEARN_CHECK_MSG(
          RecoveryContexts(*p.run) < RecoveryContexts(control),
          "drift_recover: policy must re-converge faster than cold restart");
    }

    RepResult result;
    result.work_units =
        control.cost + rebaseline.cost + scoped.cost + rollback.cost;
    result.counters = {
        {"contexts", 4 * kContexts},
        {"control_recovery_ctx", RecoveryContexts(control)},
        {"rebaseline_recovery_ctx", RecoveryContexts(rebaseline)},
        {"restart_scoped_recovery_ctx", RecoveryContexts(scoped)},
        {"rollback_recovery_ctx", RecoveryContexts(rollback)},
        {"recovery_actions",
         rebaseline.actions + scoped.actions + rollback.actions},
        {"cold_restarts", control.actions}};
    return result;
  }

 private:
  RandomTree tree_;
  uint64_t seed_;
  Rng rng_;
};

template <typename Instance>
BenchWorkload Workload(const char* name, const char* description) {
  return BenchWorkload{
      name, description,
      [](uint64_t seed) -> std::unique_ptr<BenchWorkloadInstance> {
        return std::make_unique<Instance>(seed);
      }};
}

}  // namespace

void RegisterCanonicalWorkloads(BenchRegistry* registry) {
  registry->Register(Workload<DatalogLoadInstance>(
      "datalog_load", "Datalog parse + load, 505-clause program"));
  registry->Register(Workload<FigureExecuteInstance>(
      "fig1_execute",
      "QueryProcessor::Execute, Figure 1 + Figure 2, 3000 contexts/rep"));
  registry->Register(Workload<PibClimbInstance>(
      "pib_climb", "PIB hill-climb, depth-5 random tree, 400 contexts/rep"));
  registry->Register(Workload<PaoQuotaInstance>(
      "pao_quota", "PAO Theorem-3 quota run on Figure 2"));
  registry->Register(Workload<UpsilonOrderInstance>(
      "upsilon_order", "Upsilon_AOT ordering, 2048-leaf flat tree"));
  registry->Register(Workload<AuditOverheadInstance>(
      "audit_overhead",
      "PIB hill-climb with decision-certificate emission into an "
      "in-memory audit log"));
  registry->Register(Workload<DriftDetectInstance>(
      "drift_detect",
      "health pipeline end-to-end: p-hat drift on a shifted arc + "
      "stationary control"));
  registry->Register(Workload<DriftRecoverInstance>(
      "drift_recover",
      "recovery controller end-to-end: transient drift, each policy "
      "must re-converge faster than a cold restart"));
  auto obs_overhead = [](const char* name, const char* description,
                         ObsOverheadInstance::Mode mode) {
    return BenchWorkload{
        name, description,
        [mode](uint64_t seed) -> std::unique_ptr<BenchWorkloadInstance> {
          return std::make_unique<ObsOverheadInstance>(seed, mode);
        }};
  };
  registry->Register(obs_overhead(
      "obs_overhead_off", "Figure-1 execute, no observer (baseline)",
      ObsOverheadInstance::Mode::kOff));
  registry->Register(obs_overhead(
      "obs_overhead_metrics", "Figure-1 execute, atomic metrics attached",
      ObsOverheadInstance::Mode::kMetrics));
  registry->Register(obs_overhead(
      "obs_overhead_trace",
      "Figure-1 execute, metrics + locked null trace sink",
      ObsOverheadInstance::Mode::kMetricsAndTrace));
}

}  // namespace stratlearn::obs::perf
