#ifndef STRATLEARN_OBS_PERF_WORKLOADS_H_
#define STRATLEARN_OBS_PERF_WORKLOADS_H_

#include "obs/perf/bench_runner.h"

namespace stratlearn::obs::perf {

/// Registers the canonical perf workloads spanning the stack, in the
/// order they appear in BENCH trajectories:
///   datalog_load   — Datalog parse + load of a synthetic program
///   fig1_execute   — QueryProcessor::Execute on the Figure 1/2 graphs
///   pib_climb      — a full PIB hill-climb over a context stream
///   pao_quota      — a PAO/QP^A Theorem-3 quota run
///   upsilon_order  — Upsilon_AOT ordering of a 2048-leaf flat tree
///   obs_overhead_off / obs_overhead_metrics / obs_overhead_trace
///                  — the Figure-1 execute loop with no observer, with
///                    atomic metrics, and with metrics plus a locked
///                    null trace sink, pricing the telemetry layer
/// Every workload is deterministic for a fixed seed: its work_units and
/// counters depend only on the RNG stream, so fake-clock BENCH reports
/// are byte-reproducible and CI-gateable.
void RegisterCanonicalWorkloads(BenchRegistry* registry);

}  // namespace stratlearn::obs::perf

#endif  // STRATLEARN_OBS_PERF_WORKLOADS_H_
