#include "obs/perf/bench_report.h"

#include <cmath>

#include <fstream>
#include <sstream>

#include "obs/json_reader.h"
#include "util/string_util.h"

namespace stratlearn::obs::perf {
namespace {

// The JSON DOM lives in obs/json_reader.h, shared with stats_report.
using obs::JsonValue;
using obs::ReadJsonDouble;
using obs::ReadJsonInt;
using obs::ReadJsonString;

bool ReadDouble(const JsonValue& object, const std::string& key,
                double* out) {
  return ReadJsonDouble(object, key, out);
}

bool ReadInt(const JsonValue& object, const std::string& key, int64_t* out) {
  return ReadJsonInt(object, key, out);
}

std::string ReadString(const JsonValue& object, const std::string& key) {
  return ReadJsonString(object, key);
}

}  // namespace

Result<BenchReport> ParseBenchReport(const std::string& json_text) {
  JsonValue root;
  if (!ParseJson(json_text, &root) ||
      root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("not well-formed JSON");
  }
  std::string schema = ReadString(root, "schema");
  if (schema != "stratlearn-bench-v1") {
    return Status::InvalidArgument(
        schema.empty() ? "missing \"schema\" tag"
                       : "unknown schema '" + schema + "'");
  }
  BenchReport report;
  report.workload = ReadString(root, "workload");
  if (report.workload.empty()) {
    return Status::InvalidArgument("missing \"workload\" name");
  }
  if (const JsonValue* manifest = root.Get("manifest");
      manifest != nullptr && manifest->kind == JsonValue::Kind::kObject) {
    report.git_sha = ReadString(*manifest, "git_sha");
    report.timestamp = ReadString(*manifest, "timestamp");
    report.build_type = ReadString(*manifest, "build_type");
    int64_t seed = 0;
    if (ReadInt(*manifest, "seed", &seed)) {
      report.seed = static_cast<uint64_t>(seed);
    }
  }
  if (const JsonValue* config = root.Get("config");
      config != nullptr && config->kind == JsonValue::Kind::kObject) {
    (void)ReadInt(*config, "repetitions", &report.repetitions);
    if (const JsonValue* fake = config->Get("fake_clock");
        fake != nullptr && fake->kind == JsonValue::Kind::kBool) {
      report.fake_clock = fake->boolean;
    }
  }
  const JsonValue* wall = root.Get("wall_us");
  if (wall == nullptr || wall->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("missing \"wall_us\" section");
  }
  if (!ReadInt(*wall, "count", &report.count) ||
      !ReadDouble(*wall, "p50", &report.p50) ||
      !ReadDouble(*wall, "p90", &report.p90) ||
      !ReadDouble(*wall, "p99", &report.p99)) {
    return Status::InvalidArgument(
        "wall_us needs numeric count/p50/p90/p99");
  }
  (void)ReadDouble(*wall, "sum", &report.sum);
  (void)ReadDouble(*wall, "min", &report.min);
  (void)ReadDouble(*wall, "max", &report.max);
  (void)ReadDouble(*wall, "mean", &report.mean);
  if (const JsonValue* counters = root.Get("counters");
      counters != nullptr && counters->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : counters->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        report.counters[name] = static_cast<int64_t>(value.number);
      }
    }
  }
  if (const JsonValue* throughput = root.Get("throughput");
      throughput != nullptr &&
      throughput->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : throughput->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        report.throughput[name] = value.number;
      }
    }
  }
  (void)ReadDouble(root, "work_units", &report.work_units);
  (void)ReadInt(root, "peak_rss_kb", &report.peak_rss_kb);
  return report;
}

Result<BenchReport> LoadBenchReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<BenchReport> parsed = ParseBenchReport(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<BenchComparison> CompareBenchReports(
    const BenchReport& baseline, const BenchReport& candidate,
    const BenchCompareOptions& options) {
  if (baseline.workload != candidate.workload) {
    return Status::InvalidArgument(
        StrFormat("workload mismatch: baseline '%s' vs candidate '%s'",
                  baseline.workload.c_str(), candidate.workload.c_str()));
  }
  BenchComparison comparison;
  comparison.workload = baseline.workload;
  bool confident = baseline.count >= options.min_count &&
                   candidate.count >= options.min_count;
  if (!confident) {
    comparison.notes.push_back(StrFormat(
        "low sample count (baseline %lld, candidate %lld, need %lld): "
        "deltas reported but not gated",
        static_cast<long long>(baseline.count),
        static_cast<long long>(candidate.count),
        static_cast<long long>(options.min_count)));
  }
  if (baseline.fake_clock != candidate.fake_clock) {
    comparison.notes.push_back(
        "clock-mode mismatch: one report is fake-clock, the other is wall "
        "time; deltas are not meaningful");
  }
  auto add_metric = [&](const char* name, double base, double cand) {
    BenchMetricDelta delta;
    delta.metric = name;
    delta.baseline = base;
    delta.candidate = cand;
    delta.rel_delta = base > 0.0 ? (cand - base) / base
                                 : (cand > 0.0 ? 1.0 : 0.0);
    delta.regression = confident &&
                       baseline.fake_clock == candidate.fake_clock &&
                       delta.rel_delta > options.rel_threshold &&
                       (cand - base) > options.abs_threshold_us;
    comparison.has_regression |= delta.regression;
    comparison.metrics.push_back(delta);
  };
  add_metric("p50", baseline.p50, candidate.p50);
  add_metric("p99", baseline.p99, candidate.p99);
  return comparison;
}

std::string RenderComparisonTable(
    const std::vector<BenchComparison>& comparisons) {
  std::string out;
  out += StrFormat("  %-18s %-6s %14s %14s %9s  %s\n", "workload", "metric",
                   "baseline us", "candidate us", "delta", "verdict");
  out += StrFormat("  %-18s %-6s %14s %14s %9s  %s\n", "------------------",
                   "------", "--------------", "--------------",
                   "---------", "----------");
  for (const BenchComparison& c : comparisons) {
    for (const BenchMetricDelta& m : c.metrics) {
      out += StrFormat("  %-18s %-6s %14s %14s %8.1f%%  %s\n",
                       c.workload.c_str(), m.metric.c_str(),
                       FormatDouble(m.baseline, 6).c_str(),
                       FormatDouble(m.candidate, 6).c_str(),
                       m.rel_delta * 100.0,
                       m.regression ? "REGRESSION" : "ok");
    }
    for (const std::string& note : c.notes) {
      out += StrFormat("  note (%s): %s\n", c.workload.c_str(),
                       note.c_str());
    }
  }
  return out;
}

}  // namespace stratlearn::obs::perf
