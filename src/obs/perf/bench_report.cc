#include "obs/perf/bench_report.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include <fstream>
#include <memory>
#include <sstream>

#include "util/string_util.h"

namespace stratlearn::obs::perf {
namespace {

/// Minimal JSON DOM for BENCH reports. obs::JsonWriter only writes and
/// obs::IsValidJson only validates; bench_compare needs actual values.
/// Scope-limited on purpose: objects, arrays, strings, numbers, bools,
/// null — no \u escapes beyond pass-through, no duplicate-key policy.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = std::string_view(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // BENCH reports never emit \u escapes; accept and keep the
            // raw sequence so foreign files still parse.
            if (pos_ + 4 > text_.size()) return false;
            out->append("\\u").append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool ReadDouble(const JsonValue& object, const std::string& key,
                double* out) {
  const JsonValue* v = object.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  *out = v->number;
  return true;
}

bool ReadInt(const JsonValue& object, const std::string& key, int64_t* out) {
  double d = 0.0;
  if (!ReadDouble(object, key, &d)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

std::string ReadString(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Get(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->string
                                                               : "";
}

}  // namespace

Result<BenchReport> ParseBenchReport(const std::string& json_text) {
  JsonValue root;
  if (!JsonParser(json_text).Parse(&root) ||
      root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("not well-formed JSON");
  }
  std::string schema = ReadString(root, "schema");
  if (schema != "stratlearn-bench-v1") {
    return Status::InvalidArgument(
        schema.empty() ? "missing \"schema\" tag"
                       : "unknown schema '" + schema + "'");
  }
  BenchReport report;
  report.workload = ReadString(root, "workload");
  if (report.workload.empty()) {
    return Status::InvalidArgument("missing \"workload\" name");
  }
  if (const JsonValue* manifest = root.Get("manifest");
      manifest != nullptr && manifest->kind == JsonValue::Kind::kObject) {
    report.git_sha = ReadString(*manifest, "git_sha");
    report.timestamp = ReadString(*manifest, "timestamp");
    report.build_type = ReadString(*manifest, "build_type");
    int64_t seed = 0;
    if (ReadInt(*manifest, "seed", &seed)) {
      report.seed = static_cast<uint64_t>(seed);
    }
  }
  if (const JsonValue* config = root.Get("config");
      config != nullptr && config->kind == JsonValue::Kind::kObject) {
    (void)ReadInt(*config, "repetitions", &report.repetitions);
    if (const JsonValue* fake = config->Get("fake_clock");
        fake != nullptr && fake->kind == JsonValue::Kind::kBool) {
      report.fake_clock = fake->boolean;
    }
  }
  const JsonValue* wall = root.Get("wall_us");
  if (wall == nullptr || wall->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("missing \"wall_us\" section");
  }
  if (!ReadInt(*wall, "count", &report.count) ||
      !ReadDouble(*wall, "p50", &report.p50) ||
      !ReadDouble(*wall, "p90", &report.p90) ||
      !ReadDouble(*wall, "p99", &report.p99)) {
    return Status::InvalidArgument(
        "wall_us needs numeric count/p50/p90/p99");
  }
  (void)ReadDouble(*wall, "sum", &report.sum);
  (void)ReadDouble(*wall, "min", &report.min);
  (void)ReadDouble(*wall, "max", &report.max);
  (void)ReadDouble(*wall, "mean", &report.mean);
  if (const JsonValue* counters = root.Get("counters");
      counters != nullptr && counters->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : counters->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        report.counters[name] = static_cast<int64_t>(value.number);
      }
    }
  }
  if (const JsonValue* throughput = root.Get("throughput");
      throughput != nullptr &&
      throughput->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : throughput->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        report.throughput[name] = value.number;
      }
    }
  }
  (void)ReadDouble(root, "work_units", &report.work_units);
  (void)ReadInt(root, "peak_rss_kb", &report.peak_rss_kb);
  return report;
}

Result<BenchReport> LoadBenchReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<BenchReport> parsed = ParseBenchReport(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<BenchComparison> CompareBenchReports(
    const BenchReport& baseline, const BenchReport& candidate,
    const BenchCompareOptions& options) {
  if (baseline.workload != candidate.workload) {
    return Status::InvalidArgument(
        StrFormat("workload mismatch: baseline '%s' vs candidate '%s'",
                  baseline.workload.c_str(), candidate.workload.c_str()));
  }
  BenchComparison comparison;
  comparison.workload = baseline.workload;
  bool confident = baseline.count >= options.min_count &&
                   candidate.count >= options.min_count;
  if (!confident) {
    comparison.notes.push_back(StrFormat(
        "low sample count (baseline %lld, candidate %lld, need %lld): "
        "deltas reported but not gated",
        static_cast<long long>(baseline.count),
        static_cast<long long>(candidate.count),
        static_cast<long long>(options.min_count)));
  }
  if (baseline.fake_clock != candidate.fake_clock) {
    comparison.notes.push_back(
        "clock-mode mismatch: one report is fake-clock, the other is wall "
        "time; deltas are not meaningful");
  }
  auto add_metric = [&](const char* name, double base, double cand) {
    BenchMetricDelta delta;
    delta.metric = name;
    delta.baseline = base;
    delta.candidate = cand;
    delta.rel_delta = base > 0.0 ? (cand - base) / base
                                 : (cand > 0.0 ? 1.0 : 0.0);
    delta.regression = confident &&
                       baseline.fake_clock == candidate.fake_clock &&
                       delta.rel_delta > options.rel_threshold &&
                       (cand - base) > options.abs_threshold_us;
    comparison.has_regression |= delta.regression;
    comparison.metrics.push_back(delta);
  };
  add_metric("p50", baseline.p50, candidate.p50);
  add_metric("p99", baseline.p99, candidate.p99);
  return comparison;
}

std::string RenderComparisonTable(
    const std::vector<BenchComparison>& comparisons) {
  std::string out;
  out += StrFormat("  %-18s %-6s %14s %14s %9s  %s\n", "workload", "metric",
                   "baseline us", "candidate us", "delta", "verdict");
  out += StrFormat("  %-18s %-6s %14s %14s %9s  %s\n", "------------------",
                   "------", "--------------", "--------------",
                   "---------", "----------");
  for (const BenchComparison& c : comparisons) {
    for (const BenchMetricDelta& m : c.metrics) {
      out += StrFormat("  %-18s %-6s %14s %14s %8.1f%%  %s\n",
                       c.workload.c_str(), m.metric.c_str(),
                       FormatDouble(m.baseline, 6).c_str(),
                       FormatDouble(m.candidate, 6).c_str(),
                       m.rel_delta * 100.0,
                       m.regression ? "REGRESSION" : "ok");
    }
    for (const std::string& note : c.notes) {
      out += StrFormat("  note (%s): %s\n", c.workload.c_str(),
                       note.c_str());
    }
  }
  return out;
}

}  // namespace stratlearn::obs::perf
