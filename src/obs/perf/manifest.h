#ifndef STRATLEARN_OBS_PERF_MANIFEST_H_
#define STRATLEARN_OBS_PERF_MANIFEST_H_

#include <cstdint>
#include <string>

namespace stratlearn::obs {
class JsonWriter;
}  // namespace stratlearn::obs

namespace stratlearn::obs::perf {

/// Provenance stamp embedded in every BENCH_*.json report so perf
/// numbers are comparable across commits, build types, and hosts. Two
/// reports whose manifests differ in git_sha/build_type/compiler are
/// from different binaries; bench_compare prints both manifests but
/// gates only on the measured metrics.
struct RunManifest {
  std::string git_sha;         // configure-time HEAD (env override)
  std::string build_type;      // CMAKE_BUILD_TYPE
  std::string compiler;        // "gcc 12.2.0" / "clang 16.0.0"
  std::string compiler_flags;  // CMAKE_CXX_FLAGS at configure time
  std::string host;            // hostname
  std::string os;              // "Linux 6.1.0" (uname)
  uint64_t seed = 0;           // the run's RNG seed
  std::string timestamp;       // ISO-8601 UTC, e.g. 2026-08-06T12:00:00Z
};

/// Fills every field from the build's compile definitions and the
/// running host. `timestamp_override` (or, when empty, the
/// STRATLEARN_BENCH_TIMESTAMP environment variable) pins the timestamp
/// for reproducible reports; otherwise the current UTC wall time is
/// stamped. The STRATLEARN_BENCH_GIT_SHA environment variable overrides
/// the configure-time SHA (useful when the build directory is stale).
RunManifest CollectRunManifest(uint64_t seed,
                               const std::string& timestamp_override = "");

/// Serializes the manifest as one JSON object value (the caller writes
/// the surrounding key). Field order is fixed for byte-stable reports.
void WriteManifestJson(const RunManifest& manifest, JsonWriter* writer);

}  // namespace stratlearn::obs::perf

#endif  // STRATLEARN_OBS_PERF_MANIFEST_H_
