#ifndef STRATLEARN_OBS_TRACE_READER_H_
#define STRATLEARN_OBS_TRACE_READER_H_

#include <cstdint>
#include <istream>
#include <string_view>

#include "obs/trace_sink.h"
#include "util/status.h"

namespace stratlearn::obs {

/// Replays a JSONL trace (as written by JsonlSink) into any TraceSink,
/// so offline tools aggregate recorded runs through exactly the same
/// code path as live ones — feed a StrategyProfiler to rebuild the
/// attribution report from a file (tools/trace_report does this).
///
/// Each line must be one JSON object (parsed with the shared
/// obs::ParseJson, the same reader bench_compare and stats_report
/// use); fields the schema knows are flat scalars, and anything else
/// is ignored. Events whose "type" is unknown are counted and skipped,
/// so traces written by newer builds still replay. Malformed lines are
/// hard errors (InvalidArgument naming the line number).
class TraceReader {
 public:
  explicit TraceReader(TraceSink* sink) : sink_(sink) {}

  /// Parses one JSONL line and dispatches it. Blank lines are ignored.
  Status ReplayLine(std::string_view line);

  /// Replays a whole stream, line by line.
  Status ReplayStream(std::istream& in);

  /// Events successfully dispatched to the sink.
  int64_t events() const { return events_; }
  /// Well-formed events whose type this build does not know.
  int64_t skipped() const { return skipped_; }

 private:
  TraceSink* sink_;
  int64_t events_ = 0;
  int64_t skipped_ = 0;
  int64_t line_number_ = 0;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_TRACE_READER_H_
