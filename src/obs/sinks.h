#ifndef STRATLEARN_OBS_SINKS_H_
#define STRATLEARN_OBS_SINKS_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace stratlearn::obs {

/// Writes one JSON object per line (JSONL). Every event type is
/// serialized with a "type" discriminator plus the event's fields, so a
/// stream can be filtered with grep/jq. The stream is borrowed unless
/// the path constructor is used.
///
/// I/O failure mid-run (disk full, closed pipe) surfaces exactly one
/// stderr warning and disables the sink; the run itself continues. See
/// `failed()`.
class JsonlSink final : public TraceSink {
 public:
  /// Borrow an open stream (e.g. a std::ostringstream in tests).
  explicit JsonlSink(std::ostream* out);
  /// Own a file stream; `ok()` reports whether it opened.
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  bool ok() const { return out_ != nullptr && out_->good(); }
  /// True once a mid-run write failed and the sink disabled itself.
  bool failed() const { return failed_; }
  /// Events delivered after Close() (or after a write failure disabled
  /// the sink) are dropped, not written. The first drop prints a
  /// one-shot stderr warning; every drop is counted here.
  int64_t events_dropped() const { return events_dropped_; }
  /// Optional borrowed counter (the CLI wires
  /// "obs.trace_events_dropped") bumped once per dropped event.
  void set_drop_counter(Counter* counter) { drop_counter_ = counter; }

  void OnQueryStart(const QueryStartEvent& e) override;
  void OnQueryEnd(const QueryEndEvent& e) override;
  void OnArcAttempt(const ArcAttemptEvent& e) override;
  void OnClimbMove(const ClimbMoveEvent& e) override;
  void OnSequentialTest(const SequentialTestEvent& e) override;
  void OnQuotaProgress(const QuotaProgressEvent& e) override;
  void OnPaloStop(const PaloStopEvent& e) override;
  void OnRetry(const RetryEvent& e) override;
  void OnBreaker(const BreakerEvent& e) override;
  void OnDegraded(const DegradedEvent& e) override;
  void OnDrift(const DriftEvent& e) override;
  void OnAlert(const AlertEvent& e) override;
  void OnDecisionCertificate(const DecisionCertificateEvent& e) override;
  void OnRecovery(const RecoveryEvent& e) override;
  void Flush() override;
  void Close() override;

 private:
  void WriteLine(const std::string& json);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
  bool closed_ = false;
  bool failed_ = false;
  bool warned_dropped_ = false;
  int64_t events_dropped_ = 0;
  Counter* drop_counter_ = nullptr;
};

/// Emits a chrome://tracing / Perfetto-loadable JSON array. Queries
/// become complete spans ("ph":"X"), climb moves / sequential tests /
/// PALO stops / retries / breaker transitions / degradations become
/// instant events ("ph":"i"), and quota progress becomes a counter
/// track ("ph":"C"). ArcAttempt events are intentionally dropped: at
/// one span per query they already dominate file size, and the per-arc
/// detail belongs in JSONL. The closing "]" is written exactly once, by
/// Close() or the destructor (RAII), so a trace is loadable even when
/// the owner exits early; Flush() alone never finalises the array.
///
/// Mid-run I/O failure disables the sink after one stderr warning, like
/// JsonlSink; a failed sink never writes the closing "]" (the stream is
/// already broken).
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream* out);
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;

  bool ok() const { return out_ != nullptr && out_->good(); }
  bool failed() const { return failed_; }
  /// See JsonlSink::events_dropped(): events delivered after Close()
  /// (or a write failure) with a one-shot warning and a running count.
  /// ArcAttempt events are excluded — dropping those is this format's
  /// documented design, not event loss.
  int64_t events_dropped() const { return events_dropped_; }
  void set_drop_counter(Counter* counter) { drop_counter_ = counter; }

  void OnQueryEnd(const QueryEndEvent& e) override;
  void OnClimbMove(const ClimbMoveEvent& e) override;
  void OnSequentialTest(const SequentialTestEvent& e) override;
  void OnQuotaProgress(const QuotaProgressEvent& e) override;
  void OnPaloStop(const PaloStopEvent& e) override;
  void OnRetry(const RetryEvent& e) override;
  void OnBreaker(const BreakerEvent& e) override;
  void OnDegraded(const DegradedEvent& e) override;
  void OnDrift(const DriftEvent& e) override;
  void OnAlert(const AlertEvent& e) override;
  void OnDecisionCertificate(const DecisionCertificateEvent& e) override;
  void OnRecovery(const RecoveryEvent& e) override;
  void Flush() override;
  void Close() override;

 private:
  void WriteRecord(const std::string& json);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_ = nullptr;
  bool wrote_any_ = false;
  bool closed_ = false;
  bool failed_ = false;
  bool warned_dropped_ = false;
  int64_t events_dropped_ = 0;
  Counter* drop_counter_ = nullptr;
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_SINKS_H_
