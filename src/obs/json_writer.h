#ifndef STRATLEARN_OBS_JSON_WRITER_H_
#define STRATLEARN_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stratlearn::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added): control characters, quote and backslash become \-sequences.
std::string JsonEscape(std::string_view s);

/// Minimal streaming JSON writer used by the metrics snapshot and the
/// trace sinks. Handles commas and nesting; the caller is responsible
/// for pairing Begin/End calls and for putting a Key before each value
/// inside an object. Non-finite doubles are emitted as null (JSON has
/// no Inf/NaN).
///
/// `double_digits` is the %g precision for doubles: the default 12 is
/// compact for human-facing reports; machine formats that must replay
/// losslessly (JSONL traces) use kRoundTripDigits.
class JsonWriter {
 public:
  /// 17 significant digits round-trip any IEEE-754 double exactly.
  static constexpr int kRoundTripDigits = 17;

  explicit JsonWriter(int double_digits = 12)
      : double_digits_(double_digits) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// Splices `json` — one pre-rendered JSON value — into the stream as
  /// the next value, handling commas like any other Value call. The
  /// caller is responsible for `json` being well formed (IsValidJson).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  int double_digits_;
  /// One entry per open container: true once the first element has been
  /// written (so the next one needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Validating recursive-descent parse of one JSON value. Returns true iff
/// `text` is exactly one well-formed JSON value (surrounded by optional
/// whitespace). Used by the JSONL round-trip tests; not a DOM parser.
bool IsValidJson(std::string_view text);

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_JSON_WRITER_H_
