#include "obs/health/drift.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "stats/chernoff.h"

namespace stratlearn::obs::health {

namespace {

DriftEvent MakeEvent(const TimeSeriesWindow& window,
                     const std::string& detector, bool detected,
                     double statistic, double reference, double threshold) {
  DriftEvent e;
  e.t_us = window.end_us;
  e.detector = detector;
  e.state = detected ? "detected" : "cleared";
  e.statistic = statistic;
  e.reference = reference;
  e.threshold = threshold;
  e.window = window.index;
  e.window_start_us = window.start_us;
  e.window_end_us = window.end_us;
  return e;
}

}  // namespace

DriftDetector::DriftDetector(DriftOptions options)
    : options_(std::move(options)) {}

std::vector<DriftEvent> DriftDetector::Observe(
    const TimeSeriesWindow& window) {
  std::vector<DriftEvent> events;

  // ---- Hoeffding two-window test on per-arc p̂ ------------------------
  for (const ArcWindowStats& arc : window.arcs) {
    PHatState& state = p_hat_[arc.arc];
    int64_t ref_attempts = 0;
    int64_t ref_unblocked = 0;
    for (const ArcWindowStats& r : state.reference) {
      ref_attempts += r.attempts;
      ref_unblocked += r.unblocked;
    }
    if (ref_attempts >= options_.min_attempts &&
        arc.attempts >= options_.min_attempts) {
      double p_ref = static_cast<double>(ref_unblocked) /
                     static_cast<double>(ref_attempts);
      double threshold =
          HoeffdingDeviation(ref_attempts, options_.delta / 2.0, 1.0) +
          HoeffdingDeviation(arc.attempts, options_.delta / 2.0, 1.0);
      bool breach = std::fabs(arc.PHat() - p_ref) > threshold;
      if (breach && !state.active) {
        state.active = true;
        ++state.detections;
        DriftEvent e = MakeEvent(window, "p_hat", /*detected=*/true,
                                 arc.PHat(), p_ref, threshold);
        e.arc = static_cast<int64_t>(arc.arc);
        events.push_back(std::move(e));
        // Re-baseline: the post-change regime becomes the reference, so
        // the detector clears once the series is stable again instead
        // of alarming forever against the stale mean.
        state.reference.clear();
      } else if (!breach && state.active) {
        state.active = false;
        DriftEvent e = MakeEvent(window, "p_hat", /*detected=*/false,
                                 arc.PHat(), p_ref, threshold);
        e.arc = static_cast<int64_t>(arc.arc);
        events.push_back(std::move(e));
      }
    }
    state.reference.push_back(arc);
    while (state.reference.size() > options_.reference_windows) {
      state.reference.pop_front();
    }
  }

  // ---- Page–Hinkley on per-arc windowed mean cost ---------------------
  for (const ArcWindowStats& arc : window.arcs) {
    CostState& state = cost_[arc.arc];
    double x = arc.MeanCost();
    ++state.observed;
    state.mean_sum += x;
    double running_mean = state.mean_sum / static_cast<double>(state.observed);
    state.m += x - running_mean - options_.ph_delta;
    state.m_min = std::min(state.m_min, state.m);
    bool alarm = state.m - state.m_min > options_.ph_lambda;
    if (alarm) {
      if (!state.active) {
        state.active = true;
        ++state.detections;
        DriftEvent e = MakeEvent(window, "mean_cost", /*detected=*/true, x,
                                 running_mean, options_.ph_lambda);
        e.arc = static_cast<int64_t>(arc.arc);
        events.push_back(std::move(e));
      }
      // Reset the accumulator either way: one alarm per excursion.
      state.observed = 0;
      state.mean_sum = 0.0;
      state.m = 0.0;
      state.m_min = 0.0;
    } else if (state.active) {
      state.active = false;
      DriftEvent e = MakeEvent(window, "mean_cost", /*detected=*/false, x,
                               running_mean, options_.ph_lambda);
      e.arc = static_cast<int64_t>(arc.arc);
      events.push_back(std::move(e));
    }
  }

  // ---- Spike test on watched counter deltas ---------------------------
  for (const std::string& counter : options_.watched_counters) {
    auto it = window.counter_deltas.find(counter);
    if (it == window.counter_deltas.end()) continue;
    int64_t delta = it->second;
    RateState& state = rate_[counter];
    if (state.history.size() >= options_.rate_min_history) {
      int64_t history_sum = 0;
      for (int64_t h : state.history) history_sum += h;
      double baseline = static_cast<double>(history_sum) /
                        static_cast<double>(state.history.size());
      double threshold = std::max(options_.rate_factor * baseline,
                                  static_cast<double>(options_.rate_min_delta));
      bool breach = static_cast<double>(delta) > threshold &&
                    delta >= options_.rate_min_delta;
      if (breach && !state.active) {
        state.active = true;
        ++state.detections;
        DriftEvent e = MakeEvent(window, "rate", /*detected=*/true,
                                 static_cast<double>(delta), baseline,
                                 threshold);
        e.counter = counter;
        events.push_back(std::move(e));
      } else if (!breach && state.active) {
        state.active = false;
        DriftEvent e = MakeEvent(window, "rate", /*detected=*/false,
                                 static_cast<double>(delta), baseline,
                                 threshold);
        e.counter = counter;
        events.push_back(std::move(e));
      }
      if (breach) continue;  // keep spikes out of their own baseline
    }
    state.history.push_back(delta);
    while (state.history.size() > options_.rate_windows) {
      state.history.pop_front();
    }
  }

  return events;
}

int64_t DriftDetector::ActiveCount() const {
  int64_t active = 0;
  for (const auto& [arc, state] : p_hat_) {
    if (state.active) ++active;
  }
  for (const auto& [arc, state] : cost_) {
    if (state.active) ++active;
  }
  for (const auto& [counter, state] : rate_) {
    if (state.active) ++active;
  }
  return active;
}

std::vector<DriftDetector::SeriesSummary> DriftDetector::Summaries() const {
  std::vector<SeriesSummary> out;
  for (const auto& [arc, state] : p_hat_) {
    SeriesSummary s;
    s.detector = "p_hat";
    s.arc = static_cast<int64_t>(arc);
    s.active = state.active;
    s.detections = state.detections;
    out.push_back(std::move(s));
  }
  for (const auto& [arc, state] : cost_) {
    SeriesSummary s;
    s.detector = "mean_cost";
    s.arc = static_cast<int64_t>(arc);
    s.active = state.active;
    s.detections = state.detections;
    out.push_back(std::move(s));
  }
  for (const auto& [counter, state] : rate_) {
    SeriesSummary s;
    s.detector = "rate";
    s.counter = counter;
    s.active = state.active;
    s.detections = state.detections;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace stratlearn::obs::health
