#include "obs/health/alerts.h"

#include <cstdlib>
#include <utility>

#include "util/string_util.h"

namespace stratlearn::obs::health {

namespace {

bool Compare(double value, const std::string& comparator, double threshold) {
  if (comparator == ">") return value > threshold;
  if (comparator == ">=") return value >= threshold;
  if (comparator == "<") return value < threshold;
  return value <= threshold;  // "<="
}

}  // namespace

MetricSelector ParseMetricSelector(std::string_view text) {
  MetricSelector selector;
  if (text == "drift_active") {
    selector.kind = MetricSelector::Kind::kDriftActive;
    return selector;
  }
  size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon + 1 >= text.size()) {
    return selector;
  }
  std::string_view kind = text.substr(0, colon);
  std::string_view name = text.substr(colon + 1);
  if (kind == "counter_delta") {
    selector.kind = MetricSelector::Kind::kCounterDelta;
  } else if (kind == "counter_rate") {
    selector.kind = MetricSelector::Kind::kCounterRate;
  } else if (kind == "gauge") {
    selector.kind = MetricSelector::Kind::kGauge;
  } else if (kind == "histogram_mean") {
    selector.kind = MetricSelector::Kind::kHistogramMean;
  } else if (kind == "arc_p_hat") {
    selector.kind = MetricSelector::Kind::kArcPHat;
  } else if (kind == "arc_mean_cost") {
    selector.kind = MetricSelector::Kind::kArcMeanCost;
  } else {
    return selector;
  }
  if (selector.kind == MetricSelector::Kind::kArcPHat ||
      selector.kind == MetricSelector::Kind::kArcMeanCost) {
    std::string buffer(name);
    char* end = nullptr;
    long long arc = std::strtoll(buffer.c_str(), &end, 10);
    if (end != buffer.c_str() + buffer.size() || arc < 0) {
      selector.kind = MetricSelector::Kind::kInvalid;
      return selector;
    }
    selector.arc = arc;
  } else {
    selector.name = std::string(name);
  }
  return selector;
}

bool SelectorIsNonNegative(const MetricSelector& selector) {
  return selector.kind != MetricSelector::Kind::kGauge &&
         selector.kind != MetricSelector::Kind::kInvalid;
}

bool EvaluateSelector(const MetricSelector& selector,
                      const TimeSeriesWindow& window, int64_t drift_active,
                      double* out) {
  switch (selector.kind) {
    case MetricSelector::Kind::kCounterDelta: {
      auto it = window.counter_deltas.find(selector.name);
      if (it == window.counter_deltas.end()) return false;
      *out = static_cast<double>(it->second);
      return true;
    }
    case MetricSelector::Kind::kCounterRate: {
      auto it = window.counter_deltas.find(selector.name);
      if (it == window.counter_deltas.end()) return false;
      *out = window.Rate(it->second);
      return true;
    }
    case MetricSelector::Kind::kGauge: {
      auto it = window.cumulative.gauges.find(selector.name);
      if (it == window.cumulative.gauges.end()) return false;
      *out = it->second;
      return true;
    }
    case MetricSelector::Kind::kHistogramMean: {
      auto it = window.histogram_deltas.find(selector.name);
      if (it == window.histogram_deltas.end() || it->second.count == 0) {
        return false;
      }
      *out = it->second.Mean();
      return true;
    }
    case MetricSelector::Kind::kArcPHat:
    case MetricSelector::Kind::kArcMeanCost: {
      for (const ArcWindowStats& arc : window.arcs) {
        if (static_cast<int64_t>(arc.arc) != selector.arc) continue;
        *out = selector.kind == MetricSelector::Kind::kArcPHat
                   ? arc.PHat()
                   : arc.MeanCost();
        return true;
      }
      return false;  // arc saw no attempts this window
    }
    case MetricSelector::Kind::kDriftActive:
      *out = static_cast<double>(drift_active);
      return true;
    case MetricSelector::Kind::kInvalid:
      return false;
  }
  return false;
}

AlertEngine::AlertEngine(AlertRuleSet rules, MetricsRegistry* registry)
    : rules_(std::move(rules)),
      registry_(registry),
      states_(rules_.rules.size()) {
  // Publish every rule's gauge up front so a scrape before the first
  // window still lists the full rule set (all quiescent).
  if (registry_ != nullptr) {
    for (const AlertRule& rule : rules_.rules) {
      registry_->GetGauge("alert_firing." + rule.id).Set(0.0);
    }
  }
}

std::vector<AlertEvent> AlertEngine::Evaluate(const TimeSeriesWindow& window,
                                              int64_t drift_active) {
  std::vector<AlertEvent> transitions;
  for (size_t i = 0; i < rules_.rules.size(); ++i) {
    const AlertRule& rule = rules_.rules[i];
    RuleState& state = states_[i];
    double value = 0.0;
    bool present = EvaluateSelector(rule.selector, window, drift_active,
                                    &value);
    state.last_present = present;
    state.last_value = present ? value : 0.0;
    bool breached =
        present && Compare(value, rule.comparator, rule.threshold);
    bool was_firing = state.firing;
    if (breached) {
      ++state.streak;
      if (!state.firing && state.streak >= rule.for_windows) {
        state.firing = true;
      }
    } else {
      // An absent series resolves like a healthy one: the condition is
      // no longer observably true.
      state.streak = 0;
      state.firing = false;
    }
    if (state.firing != was_firing) {
      ++state.transitions;
      state.last_transition_window = window.index;
      AlertEvent e;
      e.t_us = window.end_us;
      e.rule = rule.id;
      e.state = state.firing ? "firing" : "resolved";
      e.severity = rule.severity;
      e.metric = rule.metric;
      e.value = state.last_value;
      e.threshold = rule.threshold;
      e.window = window.index;
      e.for_windows = rule.for_windows;
      transitions.push_back(std::move(e));
    }
    if (registry_ != nullptr) {
      registry_->GetGauge("alert_firing." + rule.id)
          .Set(state.firing ? 1.0 : 0.0);
    }
  }
  return transitions;
}

bool AlertEngine::AnyFiring() const { return FiringCount() > 0; }

int64_t AlertEngine::FiringCount() const {
  int64_t firing = 0;
  for (const RuleState& state : states_) {
    if (state.firing) ++firing;
  }
  return firing;
}

}  // namespace stratlearn::obs::health
