#ifndef STRATLEARN_OBS_HEALTH_ALERTS_H_
#define STRATLEARN_OBS_HEALTH_ALERTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace stratlearn::obs::health {

/// Declarative alerting over the time-series stream: rules loaded from
/// a "stratlearn-alerts v1" file select one windowed series, compare it
/// against a threshold every window, and transition firing/resolved
/// after a configurable number of consecutive breaches. The engine is a
/// pure state machine over TimeSeriesWindow values, so online runs and
/// offline replays of a serialized series reach identical decisions.

/// What a rule watches. Spelled `kind:name` in the config file
/// ("counter_rate:robust.degraded", "arc_p_hat:3", ...); the bare word
/// "drift_active" selects the number of currently active drift
/// detections, letting a rule page on the detector family itself.
struct MetricSelector {
  enum class Kind {
    kInvalid,
    kCounterDelta,    // counter_delta:<name>   per-window increment
    kCounterRate,     // counter_rate:<name>    increments per second
    kGauge,           // gauge:<name>           cumulative gauge value
    kHistogramMean,   // histogram_mean:<name>  mean of window's samples
    kArcPHat,         // arc_p_hat:<arc>        windowed success estimate
    kArcMeanCost,     // arc_mean_cost:<arc>    windowed mean arc cost
    kDriftActive,     // drift_active           active drift detections
  };
  Kind kind = Kind::kInvalid;
  std::string name;  // counter/gauge/histogram name; empty for arcs
  int64_t arc = -1;  // arc id for the arc selectors
};

/// Parses a selector spelling; kind == kInvalid when `text` names no
/// known selector (the V-AL002 verify pass reports that).
MetricSelector ParseMetricSelector(std::string_view text);

/// True when the selector's series is nonnegative by construction
/// (everything except gauges), which the V-AL003 degenerate-threshold
/// pass relies on.
bool SelectorIsNonNegative(const MetricSelector& selector);

/// Evaluates `selector` over one window. Returns false when the series
/// is absent from the window (an arc with no attempts, an unknown
/// counter): the rule neither breaches nor counts toward its streak.
bool EvaluateSelector(const MetricSelector& selector,
                      const TimeSeriesWindow& window, int64_t drift_active,
                      double* out);

/// One parsed rule line:
///   rule <id> <selector> <op> <threshold> [for=<N>] [severity=<level>]
struct AlertRule {
  std::string id;
  std::string metric;  // selector as spelled in the config
  MetricSelector selector;
  std::string comparator = ">";  // ">" | ">=" | "<" | "<="
  double threshold = 0.0;
  int64_t for_windows = 1;  // consecutive breaches required to fire
  std::string severity = "warning";  // "warning" | "critical"
};

struct AlertRuleSet {
  std::vector<AlertRule> rules;
};

/// Evaluates every rule once per closed window and reports the
/// firing/resolved *transitions* as AlertEvents. When a registry is
/// given, each rule also publishes an "alert_firing.<id>" gauge (1
/// firing / 0 not), so the OpenMetrics exporter exposes alert state on
/// its normal cadence.
class AlertEngine {
 public:
  /// Per-rule evaluation state, exposed for the health report.
  struct RuleState {
    int64_t streak = 0;  // consecutive breached windows
    bool firing = false;
    int64_t transitions = 0;
    int64_t last_transition_window = -1;
    double last_value = 0.0;   // selector value in the last window
    bool last_present = false; // was the series present last window?
  };

  AlertEngine(AlertRuleSet rules, MetricsRegistry* registry);

  /// Runs every rule against `window`; returns the transitions (empty
  /// most windows). `drift_active` feeds the drift_active selector.
  std::vector<AlertEvent> Evaluate(const TimeSeriesWindow& window,
                                   int64_t drift_active);

  bool AnyFiring() const;
  int64_t FiringCount() const;
  const AlertRuleSet& rules() const { return rules_; }
  const std::vector<RuleState>& states() const { return states_; }

 private:
  AlertRuleSet rules_;
  MetricsRegistry* registry_;
  std::vector<RuleState> states_;
};

}  // namespace stratlearn::obs::health

#endif  // STRATLEARN_OBS_HEALTH_ALERTS_H_
