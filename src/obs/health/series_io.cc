#include "obs/health/series_io.h"

#include <string>
#include <utility>

#include "obs/json_reader.h"
#include "util/string_util.h"

namespace stratlearn::obs::health {

namespace {

Status Malformed(int line, const std::string& why) {
  return Status::InvalidArgument(
      StrFormat("line %d: %s", line, why.c_str()));
}

double NumberOr(const JsonValue* v, double fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number
                                                               : fallback;
}

int64_t IntOr(const JsonValue* v, int64_t fallback) {
  return static_cast<int64_t>(
      NumberOr(v, static_cast<double>(fallback)));
}

}  // namespace

Status LoadTimeSeries(std::istream& in, LoadedSeries* out) {
  std::string line;
  int line_number = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    JsonValue value;
    if (!ParseJson(line, &value) ||
        value.kind != JsonValue::Kind::kObject) {
      return Malformed(line_number, "line is not a JSON object");
    }
    if (!have_header) {
      std::string schema = ReadJsonString(value, "schema");
      if (schema != "stratlearn-timeseries-v1") {
        return Malformed(line_number,
                         schema.empty()
                             ? "missing \"schema\" header"
                             : "unknown schema '" + schema + "'");
      }
      (void)ReadJsonInt(value, "interval_us", &out->interval_us);
      (void)ReadJsonInt(value, "capacity", &out->capacity);
      (void)ReadJsonInt(value, "windows_closed", &out->windows_closed);
      (void)ReadJsonInt(value, "windows_evicted", &out->windows_evicted);
      have_header = true;
      continue;
    }
    TimeSeriesWindow window;
    if (!ReadJsonInt(value, "window", &window.index)) {
      return Malformed(line_number,
                       "window line lacks a numeric \"window\" index");
    }
    (void)ReadJsonInt(value, "start_us", &window.start_us);
    (void)ReadJsonInt(value, "end_us", &window.end_us);
    if (const JsonValue* counters = value.Get("counters");
        counters != nullptr && counters->kind == JsonValue::Kind::kObject) {
      for (const auto& [name, c] : counters->object) {
        window.cumulative.counters[name] = IntOr(c.Get("total"), 0);
        window.counter_deltas[name] = IntOr(c.Get("delta"), 0);
      }
    }
    if (const JsonValue* gauges = value.Get("gauges");
        gauges != nullptr && gauges->kind == JsonValue::Kind::kObject) {
      for (const auto& [name, g] : gauges->object) {
        window.cumulative.gauges[name] = NumberOr(&g, 0.0);
      }
    }
    if (const JsonValue* histograms = value.Get("histograms");
        histograms != nullptr &&
        histograms->kind == JsonValue::Kind::kObject) {
      for (const auto& [name, h] : histograms->object) {
        HistogramDelta delta;
        delta.count = IntOr(h.Get("count_delta"), 0);
        delta.sum = NumberOr(h.Get("sum_delta"), 0.0);
        window.histogram_deltas[name] = delta;
        HistogramSnapshot total;
        total.count = IntOr(h.Get("count_total"), 0);
        total.sum = NumberOr(h.Get("sum_total"), 0.0);
        window.cumulative.histograms[name] = std::move(total);
      }
    }
    if (const JsonValue* arcs = value.Get("arcs");
        arcs != nullptr && arcs->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& a : arcs->array) {
        if (a.kind != JsonValue::Kind::kObject) {
          return Malformed(line_number, "arc entry is not an object");
        }
        ArcWindowStats stats;
        int64_t arc = IntOr(a.Get("arc"), -1);
        if (arc < 0) {
          return Malformed(line_number, "arc entry lacks an \"arc\" id");
        }
        stats.arc = static_cast<uint32_t>(arc);
        stats.attempts = IntOr(a.Get("attempts"), 0);
        stats.unblocked = IntOr(a.Get("unblocked"), 0);
        stats.cost = NumberOr(a.Get("cost"), 0.0);
        window.arcs.push_back(std::move(stats));
      }
    }
    out->windows.push_back(std::move(window));
  }
  if (!have_header) {
    return Malformed(line_number, "empty file (no header line)");
  }
  return Status::OK();
}

}  // namespace stratlearn::obs::health
