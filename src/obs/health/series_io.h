#ifndef STRATLEARN_OBS_HEALTH_SERIES_IO_H_
#define STRATLEARN_OBS_HEALTH_SERIES_IO_H_

#include <cstdint>
#include <istream>
#include <vector>

#include "obs/timeseries.h"
#include "util/status.h"

namespace stratlearn::obs::health {

/// A "stratlearn-timeseries-v1" file parsed back into the in-memory
/// window representation, so the offline `health` pipeline feeds the
/// same HealthMonitor code path as a live run. The serializer writes
/// doubles at round-trip precision, which is what makes the offline
/// detector decisions bit-identical to the online ones.
struct LoadedSeries {
  int64_t interval_us = 0;
  int64_t capacity = 0;
  int64_t windows_closed = 0;
  int64_t windows_evicted = 0;
  std::vector<TimeSeriesWindow> windows;
};

/// Parses a series stream. InvalidArgument (with a line number) on a
/// missing/unknown schema header or a malformed window line. Drift and
/// alert annotations embedded in the file are ignored: the monitor
/// re-derives every decision from the data.
Status LoadTimeSeries(std::istream& in, LoadedSeries* out);

}  // namespace stratlearn::obs::health

#endif  // STRATLEARN_OBS_HEALTH_SERIES_IO_H_
