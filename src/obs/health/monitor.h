#ifndef STRATLEARN_OBS_HEALTH_MONITOR_H_
#define STRATLEARN_OBS_HEALTH_MONITOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/health/alerts.h"
#include "obs/health/drift.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"

namespace stratlearn::obs::health {

struct HealthOptions {
  DriftOptions drift;
};

/// One recovery decision, as recorded in the monitor's transcript. The
/// entry carries only what the *decision* depends on (the window and the
/// matched trigger transitions), never the execution outcome: a
/// decide-only offline replay of the same window sequence must
/// reproduce the transcript byte for byte, and outcomes ("applied" vs
/// "skipped_*") depend on what was bound at execution time.
struct RecoveryLogEntry {
  int64_t window = 0;
  std::string rule;     // policy rule id
  std::string trigger;  // e.g. "drift:p_hat" | "alert:latency"
  std::string action;   // "rebaseline" | "rollback" | ...
  int64_t arc = -1;     // target arc for scoped actions; -1 otherwise
  int64_t matched = 0;  // trigger transitions matched in the window
};

/// Hook run after the detectors/rules of one window: receives the
/// closed window plus that window's drift/alert transitions and returns
/// the recovery decisions taken (empty when no policy rule matched).
/// The RecoveryController installs itself here; the monitor stays
/// ignorant of policies so obs keeps no dependency on src/robust.
using RecoveryHook = std::function<std::vector<RecoveryLogEntry>(
    const TimeSeriesWindow&, const std::vector<DriftEvent>&,
    const std::vector<AlertEvent>&)>;

/// Ties the drift detectors and the alert engine to the window stream:
/// feed every closed TimeSeriesWindow (live via
/// TimeSeriesCollector::SetWindowCallback, or offline from a loaded
/// series file) through OnWindow and the monitor runs the detectors,
/// evaluates the rules, forwards every transition to an optional event
/// sink, and keeps the transcript the "stratlearn-health-v1" report
/// renders. Everything here is a pure function of the window sequence,
/// so an offline replay of a serialized series reproduces the online
/// report byte for byte.
class HealthMonitor {
 public:
  /// `registry` (nullable) receives the per-rule "alert_firing.<id>"
  /// gauges for OpenMetrics export.
  HealthMonitor(AlertRuleSet rules, HealthOptions options,
                MetricsRegistry* registry = nullptr);

  /// Drift/alert transitions are forwarded here (nullable; typically
  /// the run's sink tee, so transitions land in the JSONL trace and are
  /// attached to the serialized series windows).
  void set_event_sink(TraceSink* sink) { events_ = sink; }

  /// Installs the recovery decision hook (nullable to uninstall). Runs
  /// at the end of every OnWindow; its returned entries join the
  /// transcript the reports render.
  void set_recovery_hook(RecoveryHook hook) { recovery_ = std::move(hook); }

  /// Processes one closed window. Windows must arrive in series order.
  void OnWindow(const TimeSeriesWindow& window);

  bool AnyFiring() const { return alerts_.AnyFiring(); }
  int64_t FiringCount() const { return alerts_.FiringCount(); }
  int64_t drift_active() const { return drift_.ActiveCount(); }
  int64_t windows_seen() const { return windows_seen_; }

  /// Deterministic renderings of the current health state: rule table,
  /// drift-series table, and the full transition transcript.
  std::string RenderText() const;
  /// One "stratlearn-health-v1" JSON document (round-trip precision).
  std::string RenderJson() const;

  const std::vector<DriftEvent>& drift_log() const { return drift_log_; }
  const std::vector<AlertEvent>& alert_log() const { return alert_log_; }
  const std::vector<RecoveryLogEntry>& recovery_log() const {
    return recovery_log_;
  }

 private:
  HealthOptions options_;
  DriftDetector drift_;
  AlertEngine alerts_;
  TraceSink* events_ = nullptr;
  RecoveryHook recovery_;
  int64_t windows_seen_ = 0;
  int64_t last_window_ = -1;
  std::vector<DriftEvent> drift_log_;
  std::vector<AlertEvent> alert_log_;
  std::vector<RecoveryLogEntry> recovery_log_;
};

}  // namespace stratlearn::obs::health

#endif  // STRATLEARN_OBS_HEALTH_MONITOR_H_
