#include "obs/health/monitor.h"

#include <utility>

#include "obs/json_writer.h"
#include "util/string_util.h"

namespace stratlearn::obs::health {

namespace {

/// Fixed significant digits for the text report, matching the other
/// report tools (stats_report, explain).
std::string Num(double v) { return FormatDouble(v, 6); }

}  // namespace

HealthMonitor::HealthMonitor(AlertRuleSet rules, HealthOptions options,
                             MetricsRegistry* registry)
    : options_(std::move(options)),
      drift_(options_.drift),
      alerts_(std::move(rules), registry) {}

void HealthMonitor::OnWindow(const TimeSeriesWindow& window) {
  ++windows_seen_;
  last_window_ = window.index;
  std::vector<DriftEvent> drift_events = drift_.Observe(window);
  for (const DriftEvent& e : drift_events) {
    if (events_ != nullptr) events_->OnDrift(e);
    drift_log_.push_back(e);
  }
  std::vector<AlertEvent> alert_events =
      alerts_.Evaluate(window, drift_.ActiveCount());
  for (const AlertEvent& e : alert_events) {
    if (events_ != nullptr) events_->OnAlert(e);
    alert_log_.push_back(e);
  }
  if (recovery_) {
    std::vector<RecoveryLogEntry> decisions =
        recovery_(window, drift_events, alert_events);
    for (RecoveryLogEntry& d : decisions) {
      recovery_log_.push_back(std::move(d));
    }
  }
}

std::string HealthMonitor::RenderText() const {
  std::string out;
  int64_t firing = alerts_.FiringCount();
  out += StrFormat("health: %s\n",
                   firing > 0 ? StrFormat("FIRING (%lld rule%s)",
                                          static_cast<long long>(firing),
                                          firing == 1 ? "" : "s")
                                    .c_str()
                              : "healthy");
  out += StrFormat(
      "windows_seen=%lld last_window=%lld drift_active=%lld\n",
      static_cast<long long>(windows_seen_),
      static_cast<long long>(last_window_),
      static_cast<long long>(drift_.ActiveCount()));
  const std::vector<AlertRule>& rules = alerts_.rules().rules;
  if (!rules.empty()) {
    out += "alerts:\n";
    for (size_t i = 0; i < rules.size(); ++i) {
      const AlertRule& rule = rules[i];
      const AlertEngine::RuleState& state = alerts_.states()[i];
      out += StrFormat(
          "  %-24s %-8s %s %s %s for=%lld state=%s transitions=%lld",
          rule.id.c_str(), rule.severity.c_str(), rule.metric.c_str(),
          rule.comparator.c_str(), Num(rule.threshold).c_str(),
          static_cast<long long>(rule.for_windows),
          state.firing ? "firing" : "ok",
          static_cast<long long>(state.transitions));
      if (state.last_transition_window >= 0) {
        out += StrFormat(" last_transition_window=%lld",
                         static_cast<long long>(
                             state.last_transition_window));
      }
      if (state.last_present) {
        out += StrFormat(" last_value=%s", Num(state.last_value).c_str());
      }
      out += "\n";
    }
  }
  std::vector<DriftDetector::SeriesSummary> summaries = drift_.Summaries();
  if (!summaries.empty()) {
    out += "drift:\n";
    for (const DriftDetector::SeriesSummary& s : summaries) {
      std::string series = s.arc >= 0
                               ? StrFormat("arc %lld",
                                           static_cast<long long>(s.arc))
                               : s.counter;
      out += StrFormat("  %-10s %-24s %s detections=%lld\n",
                       s.detector.c_str(), series.c_str(),
                       s.active ? "active" : "quiet",
                       static_cast<long long>(s.detections));
    }
  }
  if (!drift_log_.empty() || !alert_log_.empty()) {
    out += "transitions:\n";
    // Merge the two logs by window (each is already in window order);
    // drift decisions precede alert decisions within a window, matching
    // evaluation order.
    size_t di = 0;
    size_t ai = 0;
    while (di < drift_log_.size() || ai < alert_log_.size()) {
      bool take_drift =
          di < drift_log_.size() &&
          (ai >= alert_log_.size() ||
           drift_log_[di].window <= alert_log_[ai].window);
      if (take_drift) {
        const DriftEvent& e = drift_log_[di++];
        std::string series =
            e.arc >= 0
                ? StrFormat("arc=%lld", static_cast<long long>(e.arc))
                : StrFormat("counter=%s", e.counter.c_str());
        out += StrFormat(
            "  window %-5lld drift %-10s %s %s statistic=%s reference=%s "
            "threshold=%s\n",
            static_cast<long long>(e.window), e.detector.c_str(),
            series.c_str(), e.state.c_str(), Num(e.statistic).c_str(),
            Num(e.reference).c_str(), Num(e.threshold).c_str());
      } else {
        const AlertEvent& e = alert_log_[ai++];
        out += StrFormat(
            "  window %-5lld alert %-24s %s severity=%s value=%s "
            "threshold=%s\n",
            static_cast<long long>(e.window), e.rule.c_str(),
            e.state.c_str(), e.severity.c_str(), Num(e.value).c_str(),
            Num(e.threshold).c_str());
      }
    }
  }
  if (!recovery_log_.empty()) {
    out += "recovery:\n";
    for (const RecoveryLogEntry& e : recovery_log_) {
      std::string target =
          e.arc >= 0
              ? StrFormat(" arc=%lld", static_cast<long long>(e.arc))
              : std::string();
      out += StrFormat("  window %-5lld %-16s %s -> %s%s matched=%lld\n",
                       static_cast<long long>(e.window), e.rule.c_str(),
                       e.trigger.c_str(), e.action.c_str(), target.c_str(),
                       static_cast<long long>(e.matched));
    }
  }
  return out;
}

std::string HealthMonitor::RenderJson() const {
  JsonWriter w(JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("schema").Value("stratlearn-health-v1");
  w.Key("healthy").Value(!alerts_.AnyFiring());
  w.Key("windows_seen").Value(windows_seen_);
  w.Key("last_window").Value(last_window_);
  w.Key("drift").BeginObject();
  w.Key("active").Value(drift_.ActiveCount());
  w.Key("series").BeginArray();
  for (const DriftDetector::SeriesSummary& s : drift_.Summaries()) {
    w.BeginObject();
    w.Key("detector").Value(s.detector);
    w.Key("arc").Value(s.arc);
    w.Key("counter").Value(s.counter);
    w.Key("active").Value(s.active);
    w.Key("detections").Value(s.detections);
    w.EndObject();
  }
  w.EndArray();
  w.Key("events").BeginArray();
  for (const DriftEvent& e : drift_log_) {
    w.BeginObject();
    w.Key("window").Value(e.window);
    w.Key("detector").Value(e.detector);
    w.Key("state").Value(e.state);
    w.Key("arc").Value(e.arc);
    w.Key("counter").Value(e.counter);
    w.Key("statistic").Value(e.statistic);
    w.Key("reference").Value(e.reference);
    w.Key("threshold").Value(e.threshold);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("alerts").BeginObject();
  w.Key("firing").Value(alerts_.FiringCount());
  w.Key("rules").BeginArray();
  const std::vector<AlertRule>& rules = alerts_.rules().rules;
  for (size_t i = 0; i < rules.size(); ++i) {
    const AlertRule& rule = rules[i];
    const AlertEngine::RuleState& state = alerts_.states()[i];
    w.BeginObject();
    w.Key("id").Value(rule.id);
    w.Key("severity").Value(rule.severity);
    w.Key("metric").Value(rule.metric);
    w.Key("comparator").Value(rule.comparator);
    w.Key("threshold").Value(rule.threshold);
    w.Key("for_windows").Value(rule.for_windows);
    w.Key("state").Value(state.firing ? "firing" : "ok");
    w.Key("transitions").Value(state.transitions);
    w.Key("last_transition_window").Value(state.last_transition_window);
    w.Key("last_value").Value(state.last_value);
    w.Key("last_present").Value(state.last_present);
    w.EndObject();
  }
  w.EndArray();
  w.Key("events").BeginArray();
  for (const AlertEvent& e : alert_log_) {
    w.BeginObject();
    w.Key("window").Value(e.window);
    w.Key("rule").Value(e.rule);
    w.Key("state").Value(e.state);
    w.Key("severity").Value(e.severity);
    w.Key("metric").Value(e.metric);
    w.Key("value").Value(e.value);
    w.Key("threshold").Value(e.threshold);
    w.Key("for_windows").Value(e.for_windows);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  // The recovery transcript only appears when a policy produced
  // decisions, so reports from policy-less runs keep their historical
  // byte layout (golden fixtures, online-vs-offline diffs).
  if (!recovery_log_.empty()) {
    w.Key("recovery").BeginArray();
    for (const RecoveryLogEntry& e : recovery_log_) {
      w.BeginObject();
      w.Key("window").Value(e.window);
      w.Key("rule").Value(e.rule);
      w.Key("trigger").Value(e.trigger);
      w.Key("action").Value(e.action);
      w.Key("arc").Value(e.arc);
      w.Key("matched").Value(e.matched);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.Take() + "\n";
}

}  // namespace stratlearn::obs::health
