#ifndef STRATLEARN_OBS_HEALTH_DRIFT_H_
#define STRATLEARN_OBS_HEALTH_DRIFT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace stratlearn::obs::health {

/// Statistical change detection over the windowed series the
/// TimeSeriesCollector produces. Three detector families, one per
/// failure mode the learner's stationarity assumption can break in:
///
///  - "p_hat": a Hoeffding two-sample change test per arc. The trailing
///    reference windows are pooled into one estimate p̂_ref; the current
///    window's p̂ breaches when |p̂_cur − p̂_ref| exceeds the sum of the
///    two Equation-1 deviations at confidence delta/2 each — i.e. the
///    gap is larger than sampling noise can explain at the configured
///    confidence, the same bound (stats/chernoff) the learner's own
///    sequential tests are built on.
///  - "mean_cost": a Page–Hinkley cumulative test per arc on the
///    windowed mean attempt cost, catching slow upward ramps a
///    two-window test would never see against its moving reference.
///  - "rate": a spike test on watched counter deltas (breaker trips,
///    degraded queries, injected faults) against the trailing mean.
///
/// Every state change is reported as a DriftEvent ("detected" /
/// "cleared"); the detector is deterministic — a pure function of the
/// window sequence — so offline replays reproduce online decisions.
struct DriftOptions {
  /// Per-test confidence for the Hoeffding two-window test (split
  /// delta/2 per side).
  double delta = 1e-3;
  /// Minimum pooled-reference and current-window attempts before the
  /// p̂ test is run (below this the Hoeffding radii are vacuous).
  int64_t min_attempts = 32;
  /// Trailing windows pooled into the p̂ reference (reset on
  /// detection, so the post-change regime becomes the new baseline).
  size_t reference_windows = 8;
  /// Page–Hinkley drift allowance: mean-cost deviations below this
  /// magnitude never accumulate.
  double ph_delta = 0.05;
  /// Page–Hinkley alarm threshold on the accumulated statistic.
  double ph_lambda = 10.0;
  /// Trailing windows forming the rate baseline, and how many must be
  /// seen before the spike test arms.
  size_t rate_windows = 8;
  size_t rate_min_history = 3;
  /// A delta is a spike when it exceeds `rate_factor` times the
  /// baseline mean AND the absolute floor `rate_min_delta` (so a 0→1
  /// blip on a quiet counter cannot page).
  double rate_factor = 4.0;
  int64_t rate_min_delta = 8;
  /// Counters the rate detector watches.
  std::vector<std::string> watched_counters = {
      "robust.faults", "robust.breaker_opens", "robust.degraded"};
};

class DriftDetector {
 public:
  /// Per-series summary, exposed for the health report.
  struct SeriesSummary {
    std::string detector;  // "p_hat" | "mean_cost" | "rate"
    int64_t arc = -1;
    std::string counter;
    bool active = false;
    int64_t detections = 0;
  };

  explicit DriftDetector(DriftOptions options);

  /// Feeds one closed window through every detector family; returns
  /// the state transitions (usually empty). Windows must arrive in
  /// series order.
  std::vector<DriftEvent> Observe(const TimeSeriesWindow& window);

  /// Number of series currently in the "detected" state.
  int64_t ActiveCount() const;

  /// Deterministic summary of every series the detector has state for
  /// (p_hat series first, then mean_cost, then rate; ascending ids).
  std::vector<SeriesSummary> Summaries() const;

 private:
  struct PHatState {
    std::deque<ArcWindowStats> reference;
    bool active = false;
    int64_t detections = 0;
  };
  struct CostState {
    int64_t observed = 0;    // windows folded into the running mean
    double mean_sum = 0.0;   // sum of observed window means
    double m = 0.0;          // Page–Hinkley accumulator
    double m_min = 0.0;      // running minimum of the accumulator
    bool active = false;
    int64_t detections = 0;
  };
  struct RateState {
    std::deque<int64_t> history;
    bool active = false;
    int64_t detections = 0;
  };

  DriftOptions options_;
  std::map<uint32_t, PHatState> p_hat_;
  std::map<uint32_t, CostState> cost_;
  std::map<std::string, RateState> rate_;
};

}  // namespace stratlearn::obs::health

#endif  // STRATLEARN_OBS_HEALTH_DRIFT_H_
