#ifndef STRATLEARN_OBS_EVENTS_H_
#define STRATLEARN_OBS_EVENTS_H_

#include <cstdint>
#include <string>

namespace stratlearn::obs {

/// Structured runtime events. Timestamps (`t_us`) are microseconds of
/// steady-clock time since the owning Observer was constructed; arc and
/// experiment ids are plain integers so this header stays independent of
/// the graph layer.

/// A query execution is starting (opens a span; closed by QueryEnd).
struct QueryStartEvent {
  int64_t query_index = 0;
  int64_t t_us = 0;
};

/// A query execution finished. `t_us` is the span's *start*; pairing it
/// with `duration_us` makes the event self-contained for span renderers.
struct QueryEndEvent {
  int64_t query_index = 0;
  int64_t t_us = 0;
  int64_t duration_us = 0;
  double cost = 0.0;
  int64_t attempts = 0;
  int64_t successes = 0;
  bool success = false;
};

/// One arc traversal attempt inside a query. `cost` is the full price of
/// this attempt — the arc's base cost plus its outcome-dependent extra —
/// so per-arc cost attribution can be rebuilt from the event stream
/// alone (the StrategyProfiler and trace_report rely on this).
struct ArcAttemptEvent {
  int64_t query_index = 0;
  int64_t t_us = 0;
  uint32_t arc = 0;
  int experiment = -1;  // -1: deterministic arc
  bool unblocked = false;
  double cost = 0.0;
};

/// A hill-climber (PIB/PALO) adopted a neighbour strategy.
struct ClimbMoveEvent {
  int64_t t_us = 0;
  std::string learner;      // "pib" | "palo"
  int64_t move_index = 0;   // 0-based move ordinal
  int64_t at_context = 0;   // contexts processed when the move fired
  int64_t samples_used = 0; // |S| of the epoch that fired
  std::string swap;         // human-readable sibling swap
  double delta_sum = 0.0;   // winning sum of Delta~ under-estimates
  double threshold = 0.0;   // the Equation-6 threshold it crossed
  double margin = 0.0;      // delta_sum - threshold
  double delta_spent = 0.0; // delta_i consumed from the lifetime budget
};

/// Outcome of one sequential-test round (the best neighbour's numbers,
/// whether or not it crossed the threshold).
struct SequentialTestEvent {
  int64_t t_us = 0;
  std::string learner;  // "pib" | "pib1" | "palo"
  int64_t at_context = 0;
  int64_t samples = 0;
  int64_t trial_count = 0;
  int64_t best_neighbor = -1;
  double best_delta_sum = 0.0;
  double best_threshold = 0.0;
  bool fired = false;
};

/// Per-context progress of QP^A toward its Equation 7/8 sample quotas.
struct QuotaProgressEvent {
  int64_t t_us = 0;
  int64_t context = 0;
  int aimed_experiment = -1;
  bool reached = false;
  int64_t remaining_max = 0;    // largest single remaining quota
  int64_t remaining_total = 0;  // sum of positive remaining quotas
};

/// The resilient executor retried a faulted retrieval attempt (or gave
/// up after exhausting its retry budget). One event per *failed*
/// physical attempt; the backoff cost has already been charged to the
/// query's trace when the event is emitted.
struct RetryEvent {
  int64_t t_us = 0;
  int64_t query_index = 0;
  uint32_t arc = 0;
  int experiment = -1;
  std::string fault;         // "transient" | "timeout" | "corrupt"
  int64_t attempt = 0;       // 1-based physical attempt that faulted
  double backoff_cost = 0.0; // 0 when gave_up (no further attempt follows)
  /// Retries exhausted: the attempt is recorded as blocked with the
  /// arc's pessimistic failure cost charged, keeping Delta~ conservative.
  bool gave_up = false;
};

/// A per-arc circuit breaker changed state. "open": the arc's retrieval
/// failed persistently (or was quarantined) and will be skipped (with
/// its pessimistic cost charged) until `cooldown_until`; "half_open":
/// the cooldown elapsed and a single probe attempt is admitted;
/// "closed": a probe (or ordinary physical attempt) succeeded and
/// normal execution resumed. A failed probe re-opens with capped
/// exponential backoff.
struct BreakerEvent {
  int64_t t_us = 0;
  int64_t query_index = 0;
  uint32_t arc = 0;
  int experiment = -1;
  std::string state;  // "open" | "half_open" | "closed"
  int64_t consecutive_failures = 0;
  int64_t cooldown_until = 0;  // resilient-query index when it re-arms
};

/// A query exceeded its cost/deadline budget and was abandoned as
/// "unresolved" instead of crashing or running away (the trace's cost is
/// the truncated cost actually paid, an under-estimate of the full
/// c(Theta, I) — so Delta~ stays a valid under-estimate).
struct DegradedEvent {
  int64_t t_us = 0;
  int64_t query_index = 0;
  double cost = 0.0;    // cost accrued when the budget tripped
  double budget = 0.0;  // the configured per-query budget
  int64_t attempts = 0; // arc attempts completed before degrading
};

/// A statistical drift detector changed state for one monitored
/// series. "detected": the windowed statistic moved past the detector's
/// threshold relative to its reference; "cleared": a later window
/// passed the same test again. Exactly one of `arc` (>= 0) or
/// `counter` (non-empty) identifies the series, depending on the
/// detector family.
struct DriftEvent {
  int64_t t_us = 0;
  std::string detector;  // "p_hat" | "mean_cost" | "rate"
  std::string state;     // "detected" | "cleared"
  int64_t arc = -1;      // -1 for counter-rate detectors
  std::string counter;   // empty for per-arc detectors
  double statistic = 0.0;  // the windowed value that was tested
  double reference = 0.0;  // the reference it was tested against
  double threshold = 0.0;  // breach margin the test required
  int64_t window = 0;      // index of the window that fired the test
  int64_t window_start_us = 0;
  int64_t window_end_us = 0;
};

/// An alert rule crossed its firing/resolved transition. Emitted only
/// on transitions (not every breached window), so the event stream is a
/// transcript of state changes.
struct AlertEvent {
  int64_t t_us = 0;
  std::string rule;      // rule id from the alerts config
  std::string state;     // "firing" | "resolved"
  std::string severity;  // "warning" | "critical"
  std::string metric;    // the rule's metric selector
  double value = 0.0;    // selector value in the transition window
  double threshold = 0.0;
  int64_t window = 0;       // index of the transition window
  int64_t for_windows = 0;  // consecutive breaches required to fire
};

/// The recovery controller decided (and, in a live run, executed) one
/// graduated action from a "stratlearn-recovery v1" policy in response
/// to drift/alert transitions in a closed window. `matched` counts the
/// trigger transitions that justified the action (>= 1), and the
/// statistic/reference/threshold triple echoes the first matching
/// transition so humans can see what moved. `outcome` reports what the
/// executor actually did ("applied", "skipped_unsupported",
/// "skipped_no_checkpoint"); decide-only replays reconstruct decisions,
/// not outcomes.
struct RecoveryEvent {
  int64_t t_us = 0;
  std::string rule;     // policy rule id
  std::string trigger;  // e.g. "drift:p_hat" | "alert:<rule-id>"
  std::string action;   // "rebaseline"|"rollback"|"restart_scoped"|"quarantine"
  std::string outcome;  // "applied" | "skipped_*"
  int64_t arc = -1;     // target arc for scoped actions; -1 otherwise
  int64_t window = 0;   // index of the window whose transitions fired it
  int64_t matched = 0;  // trigger transitions matched in that window
  double statistic = 0.0;
  double reference = 0.0;
  double threshold = 0.0;
};

/// PALO certified an epsilon-local optimum and stopped.
struct PaloStopEvent {
  int64_t t_us = 0;
  int64_t at_context = 0;
  int64_t moves = 0;
  double epsilon = 0.0;
  /// max over neighbours of (mean over-estimate + Hoeffding deviation);
  /// the stop fired because this dropped below epsilon.
  double worst_certificate = 0.0;
};

/// A machine-checkable PAC certificate for one statistically
/// significant learner decision: the exact numbers that justified it,
/// the delta_i drawn from the learner's running delta-budget ledger,
/// and the Theorem 1-3 sample bound the decision is measured against.
/// tools/audit_verify re-derives every field from the raw ArcAttempt
/// stream and the src/stats formulas; emission is gated behind
/// Observer::audit_enabled() so runs without --audit-out stay
/// byte-identical to before this event existed.
struct DecisionCertificateEvent {
  int64_t t_us = 0;
  std::string learner;   // "pib" | "pib1" | "palo" | "pao"
  std::string decision;  // "climb" | "stop" | "quota"
  std::string verdict;   // "commit" | "reject" | "stop" | "met"
  int64_t at_context = 0;
  int64_t samples = 0;      // n: observations backing the test
  int64_t trials = 0;       // i: sequential-test index (1 for one-shot)
  int64_t subject = -1;     // neighbour index / experiment id; -1: n/a
  double mean = 0.0;        // Delta~ mean for climbers, p-hat for PAO
  double delta_sum = 0.0;   // the tested statistic (sum form)
  double threshold = 0.0;   // the threshold it was tested against
  double margin = 0.0;      // delta_sum - threshold
  double range = 0.0;       // d_i: the statistic's range
  double epsilon_n = 0.0;   // Hoeffding deviation eps(n, delta_step)
  double delta_step = 0.0;  // delta_i consumed by this decision
  double delta_budget = 0.0;       // the configured lifetime delta
  double delta_spent_total = 0.0;  // ledger after this decision
  /// Theorem 1-3 sample bound m(d_i) for this decision's parameters
  /// (0 when no closed-form bound applies).
  int64_t bound_samples = 0;
  double epsilon = 0.0;  // PALO/PAO epsilon; 0 for PIB/PIB1
};

}  // namespace stratlearn::obs

#endif  // STRATLEARN_OBS_EVENTS_H_
