#include "obs/profiler.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "stats/chernoff.h"
#include "util/string_util.h"

namespace stratlearn::obs {

StrategyProfiler::StrategyProfiler(ProfilerOptions options)
    : options_(options) {}

void StrategyProfiler::OnQueryStart(const QueryStartEvent&) {}

void StrategyProfiler::OnQueryEnd(const QueryEndEvent& e) {
  ++queries_;
  total_query_cost_ += e.cost;
  if (e.success) ++queries_succeeded_;
}

void StrategyProfiler::OnArcAttempt(const ArcAttemptEvent& e) {
  ArcProfile& p = arcs_[e.arc];
  ++p.attempts;
  if (e.unblocked) ++p.unblocked;
  p.cum_cost += e.cost;
}

void StrategyProfiler::OnClimbMove(const ClimbMoveEvent& e) {
  ClimbRecord r;
  r.learner = e.learner;
  r.move_index = e.move_index;
  r.at_context = e.at_context;
  r.samples_used = e.samples_used;
  r.swap = e.swap;
  r.delta_sum = e.delta_sum;
  r.threshold = e.threshold;
  r.margin = e.margin;
  r.delta_spent = e.delta_spent;
  climbs_.push_back(std::move(r));
}

void StrategyProfiler::OnSequentialTest(const SequentialTestEvent& e) {
  TestRound round;
  round.learner = e.learner;
  round.at_context = e.at_context;
  round.best_neighbor = e.best_neighbor;
  round.margin = e.best_delta_sum - e.best_threshold;
  round.fired = e.fired;
  if (e.fired) ++tests_fired_;
  if (e.best_neighbor >= 0) {
    NeighborMargins& m = neighbor_margins_[e.best_neighbor];
    ++m.rounds_best;
    m.last_margin = round.margin;
    m.max_margin = m.rounds_best == 1 ? round.margin
                                      : std::max(m.max_margin, round.margin);
  }
  test_rounds_.push_back(std::move(round));
}

void StrategyProfiler::OnQuotaProgress(const QuotaProgressEvent& e) {
  ++quota_events_;
  if (e.reached) ++quota_reached_;
  last_quota_remaining_total_ = e.remaining_total;
}

void StrategyProfiler::OnPaloStop(const PaloStopEvent& e) {
  palo_stops_.push_back(e);
}

double StrategyProfiler::TotalArcCost() const {
  double total = 0.0;
  for (const auto& [arc, p] : arcs_) total += p.cum_cost;
  return total;
}

double StrategyProfiler::CostShare(uint32_t arc) const {
  double total = TotalArcCost();
  if (total <= 0.0) return 0.0;
  auto it = arcs_.find(arc);
  return it == arcs_.end() ? 0.0 : it->second.cum_cost / total;
}

double StrategyProfiler::HalfWidth(int64_t attempts) const {
  if (attempts <= 0) return 1.0;  // vacuous: p is only known to be in [0,1]
  double eps = HoeffdingDeviation(attempts, options_.delta, 1.0);
  return std::min(eps, 1.0);
}

double StrategyProfiler::DeltaSpent() const {
  double spent = 0.0;
  for (const ClimbRecord& c : climbs_) spent += c.delta_spent;
  return spent;
}

std::string StrategyProfiler::ReportText() const {
  std::string out;
  out += "== strategy profile ==\n";
  out += StrFormat(
      "queries: %lld  succeeded: %lld  mean cost/query: %s  total cost: %s\n",
      static_cast<long long>(queries_),
      static_cast<long long>(queries_succeeded_),
      FormatDouble(MeanQueryCost()).c_str(),
      FormatDouble(total_query_cost_).c_str());

  double total = TotalArcCost();
  out += StrFormat(
      "per-arc attribution (delta=%s, hot >= %s%% share):\n",
      FormatDouble(options_.delta).c_str(),
      FormatDouble(100.0 * options_.hot_share).c_str());
  out += StrFormat("  %4s %9s %9s %7s %7s %10s %10s %7s\n", "arc", "attempts",
                   "unblkd", "p_hat", "+/-eps", "mean", "cum", "share");
  for (const auto& [arc, p] : arcs_) {
    double share = total <= 0.0 ? 0.0 : p.cum_cost / total;
    bool hot = share >= options_.hot_share;
    out += StrFormat("  %4u %9lld %9lld %7s %7s %10s %10s %6.1f%%%s\n", arc,
                     static_cast<long long>(p.attempts),
                     static_cast<long long>(p.unblocked),
                     FormatDouble(p.PHat(), 3).c_str(),
                     FormatDouble(HalfWidth(p.attempts), 3).c_str(),
                     FormatDouble(p.MeanCost(), 4).c_str(),
                     FormatDouble(p.cum_cost).c_str(), 100.0 * share,
                     hot ? "  HOT" : "");
  }

  out += StrFormat("climb history: %zu moves, delta budget spent %s\n",
                   climbs_.size(), FormatDouble(DeltaSpent()).c_str());
  for (const ClimbRecord& c : climbs_) {
    out += StrFormat(
        "  #%lld %s @ctx %lld |S|=%lld %s: sum %s >= thr %s "
        "(margin %s, delta_i %s)\n",
        static_cast<long long>(c.move_index), c.learner.c_str(),
        static_cast<long long>(c.at_context),
        static_cast<long long>(c.samples_used), c.swap.c_str(),
        FormatDouble(c.delta_sum).c_str(), FormatDouble(c.threshold).c_str(),
        FormatDouble(c.margin).c_str(), FormatDouble(c.delta_spent).c_str());
  }

  if (!test_rounds_.empty()) {
    out += StrFormat("sequential tests: %zu rounds, %lld fired\n",
                     test_rounds_.size(),
                     static_cast<long long>(tests_fired_));
    for (const auto& [neighbor, m] : neighbor_margins_) {
      out += StrFormat(
          "  neighbour %lld: best in %lld rounds, last margin %s, "
          "max margin %s\n",
          static_cast<long long>(neighbor),
          static_cast<long long>(m.rounds_best),
          FormatDouble(m.last_margin).c_str(),
          FormatDouble(m.max_margin).c_str());
    }
  }

  if (quota_events_ > 0) {
    out += StrFormat(
        "quota progress: %lld contexts, %lld reached their aim, "
        "remaining total %lld\n",
        static_cast<long long>(quota_events_),
        static_cast<long long>(quota_reached_),
        static_cast<long long>(last_quota_remaining_total_));
  }
  for (const PaloStopEvent& s : palo_stops_) {
    out += StrFormat(
        "palo stop: @ctx %lld after %lld moves, epsilon %s, "
        "certificate %s\n",
        static_cast<long long>(s.at_context),
        static_cast<long long>(s.moves), FormatDouble(s.epsilon).c_str(),
        FormatDouble(s.worst_certificate).c_str());
  }
  return out;
}

std::string StrategyProfiler::ReportJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("delta").Value(options_.delta);
  w.Key("hot_share").Value(options_.hot_share);

  w.Key("queries").BeginObject();
  w.Key("count").Value(queries_);
  w.Key("succeeded").Value(queries_succeeded_);
  w.Key("total_cost").Value(total_query_cost_);
  w.Key("mean_cost").Value(MeanQueryCost());
  w.EndObject();

  double total = TotalArcCost();
  w.Key("arcs").BeginArray();
  for (const auto& [arc, p] : arcs_) {
    double share = total <= 0.0 ? 0.0 : p.cum_cost / total;
    w.BeginObject();
    w.Key("arc").Value(static_cast<int64_t>(arc));
    w.Key("attempts").Value(p.attempts);
    w.Key("unblocked").Value(p.unblocked);
    w.Key("p_hat").Value(p.PHat());
    w.Key("half_width").Value(HalfWidth(p.attempts));
    w.Key("mean_cost").Value(p.MeanCost());
    w.Key("cum_cost").Value(p.cum_cost);
    w.Key("share").Value(share);
    w.Key("hot").Value(share >= options_.hot_share);
    w.EndObject();
  }
  w.EndArray();

  w.Key("climbs").BeginArray();
  for (const ClimbRecord& c : climbs_) {
    w.BeginObject();
    w.Key("learner").Value(c.learner);
    w.Key("move_index").Value(c.move_index);
    w.Key("at_context").Value(c.at_context);
    w.Key("samples_used").Value(c.samples_used);
    w.Key("swap").Value(c.swap);
    w.Key("delta_sum").Value(c.delta_sum);
    w.Key("threshold").Value(c.threshold);
    w.Key("margin").Value(c.margin);
    w.Key("delta_spent").Value(c.delta_spent);
    w.EndObject();
  }
  w.EndArray();
  w.Key("delta_spent").Value(DeltaSpent());

  w.Key("tests").BeginObject();
  w.Key("rounds").Value(static_cast<int64_t>(test_rounds_.size()));
  w.Key("fired").Value(tests_fired_);
  w.Key("neighbors").BeginArray();
  for (const auto& [neighbor, m] : neighbor_margins_) {
    w.BeginObject();
    w.Key("neighbor").Value(neighbor);
    w.Key("rounds_best").Value(m.rounds_best);
    w.Key("last_margin").Value(m.last_margin);
    w.Key("max_margin").Value(m.max_margin);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("quota").BeginObject();
  w.Key("contexts").Value(quota_events_);
  w.Key("reached").Value(quota_reached_);
  w.Key("remaining_total").Value(last_quota_remaining_total_);
  w.EndObject();

  w.Key("palo_stops").BeginArray();
  for (const PaloStopEvent& s : palo_stops_) {
    w.BeginObject();
    w.Key("at_context").Value(s.at_context);
    w.Key("moves").Value(s.moves);
    w.Key("epsilon").Value(s.epsilon);
    w.Key("worst_certificate").Value(s.worst_certificate);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.Take();
}

ProfileDiff DiffProfiles(const StrategyProfiler& baseline,
                         const StrategyProfiler& candidate,
                         const ProfileDiffOptions& options) {
  ProfileDiff diff;
  diff.base_mean_query_cost = baseline.MeanQueryCost();
  diff.cand_mean_query_cost = candidate.MeanQueryCost();

  const auto& base_arcs = baseline.arcs();
  const auto& cand_arcs = candidate.arcs();
  std::map<uint32_t, ArcDiff> rows;
  for (const auto& [arc, p] : base_arcs) {
    ArcDiff& row = rows[arc];
    row.arc = arc;
    row.base_attempts = p.attempts;
    row.base_mean = p.MeanCost();
  }
  for (const auto& [arc, p] : cand_arcs) {
    ArcDiff& row = rows[arc];
    row.arc = arc;
    row.cand_attempts = p.attempts;
    row.cand_mean = p.MeanCost();
  }
  for (auto& [arc, row] : rows) {
    double delta = row.cand_mean - row.base_mean;
    row.rel_change = row.base_mean == 0.0 ? 0.0 : delta / row.base_mean;
    row.regression = row.base_attempts >= options.min_attempts &&
                     row.cand_attempts >= options.min_attempts &&
                     delta > options.abs_threshold &&
                     (row.base_mean == 0.0 ||
                      row.rel_change > options.rel_threshold);
    if (row.regression) diff.has_regression = true;
    diff.arcs.push_back(row);
  }
  return diff;
}

std::string ProfileDiff::ReportText() const {
  std::string out;
  out += "== trace diff (per-arc mean traversal cost) ==\n";
  out += StrFormat("mean cost/query: baseline %s, candidate %s\n",
                   FormatDouble(base_mean_query_cost).c_str(),
                   FormatDouble(cand_mean_query_cost).c_str());
  out += StrFormat("  %4s %10s %10s %10s %10s %8s\n", "arc", "base_n",
                   "cand_n", "base_mean", "cand_mean", "change");
  for (const ArcDiff& row : arcs) {
    out += StrFormat("  %4u %10lld %10lld %10s %10s %+7.1f%%%s\n", row.arc,
                     static_cast<long long>(row.base_attempts),
                     static_cast<long long>(row.cand_attempts),
                     FormatDouble(row.base_mean, 4).c_str(),
                     FormatDouble(row.cand_mean, 4).c_str(),
                     100.0 * row.rel_change,
                     row.regression ? "  REGRESSION" : "");
  }
  out += has_regression ? "verdict: REGRESSION\n" : "verdict: ok\n";
  return out;
}

}  // namespace stratlearn::obs
