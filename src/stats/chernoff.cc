#include "stats/chernoff.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace stratlearn {

namespace {

/// Rounds a (possibly huge or infinite) real quota up to int64, saturating
/// at int64 max: casting a value beyond the representable range — e.g.
/// ceil(inf) from a tiny epsilon — is undefined behaviour otherwise.
int64_t SaturatingCeil(double value) {
  double up = std::ceil(value);
  if (!(up < 9.2e18)) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(up);
}

}  // namespace

double HoeffdingTailProbability(int64_t n, double beta, double range) {
  STRATLEARN_CHECK(n >= 0);
  STRATLEARN_CHECK(range > 0.0);
  if (n == 0) return 1.0;
  double z = beta / range;
  return std::exp(-2.0 * static_cast<double>(n) * z * z);
}

double HoeffdingDeviation(int64_t n, double delta, double range) {
  STRATLEARN_CHECK(n > 0);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  STRATLEARN_CHECK(range > 0.0);
  return range * std::sqrt(std::log(1.0 / delta) /
                           (2.0 * static_cast<double>(n)));
}

double SumThreshold(int64_t n, double delta, double range) {
  STRATLEARN_CHECK(n > 0);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  STRATLEARN_CHECK(range > 0.0);
  return range *
         std::sqrt(static_cast<double>(n) / 2.0 * std::log(1.0 / delta));
}

double SumThresholdBonferroni(int64_t n, double delta, double range,
                              int64_t k) {
  STRATLEARN_CHECK(n > 0);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  STRATLEARN_CHECK(range > 0.0);
  STRATLEARN_CHECK(k >= 1);
  return range * std::sqrt(static_cast<double>(n) / 2.0 *
                           std::log(static_cast<double>(k) / delta));
}

int64_t SampleSizeForDeviation(double beta, double delta, double range) {
  STRATLEARN_CHECK(beta > 0.0);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  STRATLEARN_CHECK(range > 0.0);
  double z = range / beta;
  return SaturatingCeil(z * z * std::log(1.0 / delta) / 2.0);
}

int64_t PaoRetrievalQuota(int64_t n, double f_neg, double epsilon,
                          double delta) {
  STRATLEARN_CHECK(n >= 1);
  STRATLEARN_CHECK(epsilon > 0.0);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  STRATLEARN_CHECK(f_neg >= 0.0);
  if (f_neg == 0.0) return 0;
  double z = static_cast<double>(n) * f_neg / epsilon;
  return SaturatingCeil(2.0 * z * z *
                        std::log(2.0 * static_cast<double>(n) / delta));
}

int64_t PaoReachQuota(int64_t n, double f_neg, double epsilon, double delta) {
  STRATLEARN_CHECK(n >= 1);
  STRATLEARN_CHECK(epsilon > 0.0);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  STRATLEARN_CHECK(f_neg >= 0.0);
  if (f_neg == 0.0) return 0;
  double inner =
      std::sqrt(2.0 * epsilon / (static_cast<double>(n) * f_neg) + 1.0) - 1.0;
  STRATLEARN_CHECK(inner > 0.0);
  return SaturatingCeil(2.0 / (inner * inner) *
                        std::log(4.0 * static_cast<double>(n) / delta));
}

}  // namespace stratlearn
