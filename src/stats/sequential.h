#ifndef STRATLEARN_STATS_SEQUENTIAL_H_
#define STRATLEARN_STATS_SEQUENTIAL_H_

#include <cstdint>

namespace stratlearn {

/// Support for PIB's sequential hypothesis testing (Section 3.2).
///
/// A single Equation-2 test spends its entire false-positive budget delta
/// at once. PIB instead performs an unbounded series of tests; the i-th
/// test runs at confidence delta_i = delta * 6 / (pi^2 i^2), so that
/// sum_i delta_i = delta and Theorem 1's lifetime guarantee holds.

/// delta_i = delta * 6 / (pi^2 * i^2) for the i-th test (i >= 1).
double SequentialDelta(int64_t test_index, double delta);

/// Equation 6's threshold on the Delta~ sum after |S| = n samples of the
/// current strategy, when the cumulative number of (strategy, neighbour)
/// trials so far is `trial_count` = i:
///   range * sqrt(n/2 * ln(i^2 * pi^2 / (6 * delta))).
double SequentialSumThreshold(int64_t n, int64_t trial_count, double delta,
                              double range);

}  // namespace stratlearn

#endif  // STRATLEARN_STATS_SEQUENTIAL_H_
