#ifndef STRATLEARN_STATS_CHERNOFF_H_
#define STRATLEARN_STATS_CHERNOFF_H_

#include <cstdint>

namespace stratlearn {

/// Chernoff/Hoeffding bound utilities (Equation 1 of the paper and its
/// inversions). All functions treat `range` as the width Λ of the support
/// of the underlying bounded random variable.

/// Pr[Y_n > mu + beta] bound from Equation 1: exp(-2 n (beta/range)^2).
double HoeffdingTailProbability(int64_t n, double beta, double range);

/// The deviation beta such that the Equation-1 tail bound equals `delta`
/// for a sample mean of `n` observations:
///   beta = range * sqrt(ln(1/delta) / (2 n)).
double HoeffdingDeviation(int64_t n, double delta, double range);

/// Equation 2's threshold on the *sum* of n observations: a strategy pair
/// passes the comparison when the observed sum of cost differences exceeds
///   range * sqrt(n/2 * ln(1/delta)).
double SumThreshold(int64_t n, double delta, double range);

/// Equation 5's threshold when `k` candidate transformations are tested
/// simultaneously (Bonferroni over the neighbourhood):
///   range * sqrt(n/2 * ln(k/delta)).
double SumThresholdBonferroni(int64_t n, double delta, double range,
                              int64_t k);

/// Smallest n such that HoeffdingDeviation(n, delta, range) <= beta:
///   n = ceil((range/beta)^2 * ln(1/delta) / 2).
int64_t SampleSizeForDeviation(double beta, double delta, double range);

/// Equation 7: per-retrieval sample quota for the PAO algorithm
/// (Theorem 2). `n` is the number of retrievals in the graph and
/// `f_neg` is F_not[d_i], the total cost of the arcs on paths other than
/// d_i's own root-to-leaf path.
///   m(d_i) = ceil(2 * (n * f_neg / epsilon)^2 * ln(2n / delta)).
int64_t PaoRetrievalQuota(int64_t n, double f_neg, double epsilon,
                          double delta);

/// Equation 8: per-experiment *attempted-reach* quota for the Theorem 3
/// variant of PAO:
///   m'(e_i) = ceil(2 * (sqrt(2 eps/(n f_neg) + 1) - 1)^-2 * ln(4n/delta)).
/// When f_neg == 0 the experiment cannot affect any other path's cost and
/// the quota is 0.
int64_t PaoReachQuota(int64_t n, double f_neg, double epsilon, double delta);

}  // namespace stratlearn

#endif  // STRATLEARN_STATS_CHERNOFF_H_
