#include "stats/sequential.h"

#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace stratlearn {

double SequentialDelta(int64_t test_index, double delta) {
  STRATLEARN_CHECK(test_index >= 1);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  double i = static_cast<double>(test_index);
  return delta * 6.0 / (kPi * kPi * i * i);
}

double SequentialSumThreshold(int64_t n, int64_t trial_count, double delta,
                              double range) {
  STRATLEARN_CHECK(n > 0);
  STRATLEARN_CHECK(trial_count >= 1);
  STRATLEARN_CHECK(delta > 0.0 && delta < 1.0);
  STRATLEARN_CHECK(range > 0.0);
  double i = static_cast<double>(trial_count);
  double log_term = std::log(i * i * kPi * kPi / (6.0 * delta));
  // For very small i the argument can dip below 1 (log negative); the
  // threshold is then conservative at 0 -- never negative.
  if (log_term < 0.0) log_term = 0.0;
  return range * std::sqrt(static_cast<double>(n) / 2.0 * log_term);
}

}  // namespace stratlearn
