#ifndef STRATLEARN_STATS_RUNNING_STATS_H_
#define STRATLEARN_STATS_RUNNING_STATS_H_

#include <cstdint>
#include <limits>

namespace stratlearn {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
/// Used by the benchmark harness and the Monte-Carlo cost estimators.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  /// Standard error of the mean.
  double stderr_mean() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  void Reset() { *this = RunningStats(); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stratlearn

#endif  // STRATLEARN_STATS_RUNNING_STATS_H_
