#include "stats/running_stats.h"

#include <cmath>

namespace stratlearn {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace stratlearn
