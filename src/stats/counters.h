#ifndef STRATLEARN_STATS_COUNTERS_H_
#define STRATLEARN_STATS_COUNTERS_H_

#include <cstdint>

#include "util/check.h"

namespace stratlearn {

/// Success/attempt bookkeeping for one probabilistic experiment (database
/// retrieval or blockable reduction). This is the paper's "one or two
/// counters per retrieval" (Section 5.1): the entire data-collection cost
/// of PIB and PAO.
class ExperimentCounter {
 public:
  /// Records one attempt of the experiment and whether it succeeded
  /// (the retrieval found its literal / the arc was not blocked).
  void RecordAttempt(bool success) {
    ++attempts_;
    if (success) ++successes_;
  }

  /// Records that the query processor *aimed* for this experiment
  /// (Definition 1) but was blocked before reaching it.
  void RecordBlockedAim() { ++blocked_aims_; }

  int64_t attempts() const { return attempts_; }
  int64_t successes() const { return successes_; }
  int64_t failures() const { return attempts_ - successes_; }

  /// Number of times the processor attempted to reach the experiment:
  /// attempts that arrived plus aims that were blocked en route.
  int64_t reach_attempts() const { return attempts_ + blocked_aims_; }

  /// Empirical success frequency p^ = successes/attempts, or `fallback`
  /// (Theorem 3 uses 0.5) when the experiment was never reached.
  double SuccessFrequency(double fallback = 0.5) const {
    if (attempts_ == 0) return fallback;
    return static_cast<double>(successes_) / static_cast<double>(attempts_);
  }

  /// Empirical estimate of the reach probability rho(e): the fraction of
  /// aim attempts that actually arrived at the experiment.
  double ReachFrequency() const {
    int64_t n = reach_attempts();
    if (n == 0) return 0.0;
    return static_cast<double>(attempts_) / static_cast<double>(n);
  }

  void Reset() {
    attempts_ = 0;
    successes_ = 0;
    blocked_aims_ = 0;
  }

  /// Reinstates counter values read from a checkpoint. Callers validate
  /// the invariants (0 <= successes <= attempts, blocked_aims >= 0)
  /// before restoring.
  void Restore(int64_t attempts, int64_t successes, int64_t blocked_aims) {
    STRATLEARN_CHECK(attempts >= 0 && successes >= 0 &&
                     successes <= attempts && blocked_aims >= 0);
    attempts_ = attempts;
    successes_ = successes;
    blocked_aims_ = blocked_aims;
  }

 private:
  int64_t attempts_ = 0;
  int64_t successes_ = 0;
  int64_t blocked_aims_ = 0;
};

}  // namespace stratlearn

#endif  // STRATLEARN_STATS_COUNTERS_H_
