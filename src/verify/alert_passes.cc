// Static verification of "stratlearn-alerts v1" rule files (V-AL...).
// The parser is tolerant: every malformed line becomes a diagnostic and
// is dropped, so one typo never hides the findings on the rest of the
// file. ParseAlertRules is also the production loader — the CLI health
// paths refuse to run on a file with blocking findings, so a rule set
// that loads is exactly a rule set that verifies.

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "obs/health/alerts.h"
#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

using obs::health::AlertRule;
using obs::health::AlertRuleSet;
using obs::health::MetricSelector;
using obs::health::ParseMetricSelector;
using obs::health::SelectorIsNonNegative;

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && !token.empty();
}

bool ParseInt(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end == token.c_str() + token.size() && !token.empty();
}

/// V-AL003's degeneracy test: on a series that is nonnegative by
/// construction, a non-positive threshold makes the rule a constant —
/// always firing (">= 0", "> -1") or never firing ("< 0", "<= -1") —
/// so it can only ever mislead.
bool ThresholdIsDegenerate(const AlertRule& rule) {
  if (!SelectorIsNonNegative(rule.selector)) return false;
  if (rule.comparator == ">") return rule.threshold < 0.0;
  if (rule.comparator == ">=") return rule.threshold <= 0.0;
  if (rule.comparator == "<") return rule.threshold <= 0.0;
  return rule.threshold < 0.0;  // "<="
}

}  // namespace

AlertRuleSet ParseAlertRules(std::string_view text, DiagnosticSink* sink) {
  AlertRuleSet set;
  std::set<std::string> seen_ids;
  size_t errors_before = sink->num_errors();
  bool have_header = false;
  int line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (!have_header) {
      if (line != "stratlearn-alerts v1") {
        sink->Error("V-AL001", StrFormat("line %d", line_number),
                    "expected the \"stratlearn-alerts v1\" header",
                    "the first non-comment line must be exactly "
                    "'stratlearn-alerts v1'");
        return set;
      }
      have_header = true;
      continue;
    }
    std::string location = StrFormat("line %d", line_number);
    std::vector<std::string> tokens;
    for (const std::string& token : Split(std::string(line), ' ')) {
      if (!Trim(token).empty()) tokens.push_back(std::string(Trim(token)));
    }
    if (tokens[0] != "rule") {
      sink->Error("V-AL001", location,
                  StrFormat("unknown directive '%s'", tokens[0].c_str()),
                  "rule lines read: rule <id> <selector> <op> "
                  "<threshold> [for=<N>] [severity=<level>]");
      continue;
    }
    if (tokens.size() < 5) {
      sink->Error("V-AL001", location,
                  "rule line needs at least: rule <id> <selector> <op> "
                  "<threshold>");
      continue;
    }
    AlertRule rule;
    rule.id = tokens[1];
    rule.metric = tokens[2];
    rule.selector = ParseMetricSelector(rule.metric);
    rule.comparator = tokens[3];
    bool line_ok = true;
    if (rule.comparator != ">" && rule.comparator != ">=" &&
        rule.comparator != "<" && rule.comparator != "<=") {
      sink->Error("V-AL001", location,
                  StrFormat("'%s' is not a comparator",
                            rule.comparator.c_str()),
                  "use one of: > >= < <=");
      line_ok = false;
    }
    if (!ParseDouble(tokens[4], &rule.threshold)) {
      sink->Error("V-AL001", location,
                  StrFormat("threshold '%s' is not a number",
                            tokens[4].c_str()));
      line_ok = false;
    }
    for (size_t i = 5; i < tokens.size(); ++i) {
      const std::string& option = tokens[i];
      if (StartsWith(option, "for=")) {
        if (!ParseInt(option.substr(4), &rule.for_windows)) {
          sink->Error("V-AL001", location,
                      StrFormat("for-duration '%s' is not an integer",
                                option.c_str()));
          line_ok = false;
        }
      } else if (StartsWith(option, "severity=")) {
        rule.severity = option.substr(9);
        if (rule.severity != "warning" && rule.severity != "critical") {
          sink->Error("V-AL001", location,
                      StrFormat("severity '%s' is not a level",
                                rule.severity.c_str()),
                      "use severity=warning or severity=critical");
          line_ok = false;
        }
      } else {
        sink->Error("V-AL001", location,
                    StrFormat("unknown option '%s'", option.c_str()),
                    "options are for=<N> and severity=<level>");
        line_ok = false;
      }
    }
    if (rule.selector.kind == MetricSelector::Kind::kInvalid) {
      sink->Error("V-AL002", location,
                  StrFormat("unknown metric selector '%s'",
                            rule.metric.c_str()),
                  "selectors: counter_delta:<name>, counter_rate:<name>, "
                  "gauge:<name>, histogram_mean:<name>, arc_p_hat:<arc>, "
                  "arc_mean_cost:<arc>, drift_active");
      line_ok = false;
    }
    if (line_ok && rule.for_windows <= 0) {
      sink->Error("V-AL003", location,
                  StrFormat("for-duration %lld is not positive",
                            static_cast<long long>(rule.for_windows)),
                  "a rule must breach for at least one window to fire");
      line_ok = false;
    }
    if (line_ok && ThresholdIsDegenerate(rule)) {
      sink->Error(
          "V-AL003", location,
          StrFormat("threshold %s makes '%s %s %s' constant: the series "
                    "is nonnegative by construction",
                    FormatDouble(rule.threshold, 6).c_str(),
                    rule.metric.c_str(), rule.comparator.c_str(),
                    FormatDouble(rule.threshold, 6).c_str()),
          "pick a positive threshold the series can actually cross");
      line_ok = false;
    }
    if (line_ok && !seen_ids.insert(rule.id).second) {
      sink->Error("V-AL004", location,
                  StrFormat("duplicate rule id '%s'", rule.id.c_str()),
                  "rule ids name OpenMetrics gauges and report rows; "
                  "they must be unique");
      line_ok = false;
    }
    if (line_ok) set.rules.push_back(std::move(rule));
  }
  if (!have_header) {
    sink->Error("V-AL001", StrFormat("line %d", line_number),
                "empty file: missing the \"stratlearn-alerts v1\" header");
    return set;
  }
  if (set.rules.empty() && sink->num_errors() == errors_before) {
    sink->Warning("V-AL005", "",
                  "rule set is empty: the alert engine will never fire",
                  "add at least one rule line, e.g. 'rule degraded "
                  "counter_delta:robust.degraded > 0'");
  }
  return set;
}

}  // namespace stratlearn::verify
