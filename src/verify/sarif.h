#ifndef STRATLEARN_VERIFY_SARIF_H_
#define STRATLEARN_VERIFY_SARIF_H_

#include <string>

#include "verify/diagnostics.h"

namespace stratlearn::verify {

/// Renders the sink as a SARIF 2.1.0 log with exactly one run, for CI
/// annotation uploads (--format=sarif). Deterministic: rule order is
/// first appearance, result order is insertion order, no timestamps or
/// absolute paths beyond what the diagnostics themselves carry.
///
/// Mapping: severity -> result.level (warnings render as "error" under
/// `werror`, matching the JSON report's promotion); `file` ->
/// physicalLocation.artifactLocation.uri; a "line N" location ->
/// region.startLine, any other non-empty location -> a logicalLocation;
/// hints and analysis sections land in property bags.
std::string RenderSarif(const DiagnosticSink& sink, bool werror = false);

}  // namespace stratlearn::verify

#endif  // STRATLEARN_VERIFY_SARIF_H_
