#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/file_util.h"
#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

constexpr std::string_view kCheckpointHeader = "stratlearn-checkpoint v1";

bool IsInteger(const std::string& token, bool allow_negative) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  if (allow_negative) {
    (void)std::strtoll(token.c_str(), &end, 10);
  } else {
    if (token[0] == '-') return false;
    (void)std::strtoull(token.c_str(), &end, 10);
  }
  return errno == 0 && end == token.c_str() + token.size();
}

bool IsDouble(const std::string& token) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  (void)std::strtod(token.c_str(), &end);
  return errno == 0 && end == token.c_str() + token.size();
}

std::vector<std::string> Fields(std::string_view line) {
  std::vector<std::string> fields;
  for (const std::string& f : Split(line, ' ')) {
    if (!Trim(f).empty()) fields.emplace_back(Trim(f));
  }
  return fields;
}

/// Structural (graph-free) checks of a checkpoint payload. The run-time
/// parser (robust::ParseCheckpoint) re-validates everything against the
/// actual graph; this pass exists so `stratlearn_cli verify ckpt-file`
/// can vet an archived checkpoint without its program.
void VerifyCheckpointPayload(std::string_view payload, DiagnosticSink* sink) {
  bool saw_header = false;
  bool saw_rng = false;
  bool saw_strategy = false;
  std::string learner;
  int line_number = 0;
  for (const std::string& raw : Split(payload, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty()) continue;
    std::string location = StrFormat("line %d", line_number);
    if (!saw_header) {
      // Dispatch guaranteed this prefix; anything else is unreachable.
      saw_header = line == kCheckpointHeader;
      continue;
    }
    if (line.size() > 3 && line.substr(0, 3) == "ts ") {
      // Raw retained time-series window (JSON object as written by
      // SerializeWindowJson); the resume path re-parses it through the
      // series loader, so only the envelope is checked here.
      if (line[3] != '{' || line.back() != '}') {
        sink->Error("V-K002", location,
                    "'ts' expects one JSON window object");
      }
      continue;
    }
    std::vector<std::string> fields = Fields(line);
    const std::string& key = fields[0];
    if (key == "learner") {
      if (fields.size() != 2 ||
          (fields[1] != "pib" && fields[1] != "palo" && fields[1] != "pao")) {
        sink->Error("V-K002", location,
                    "unknown learner (expected pib, palo or pao)");
      } else {
        learner = fields[1];
      }
    } else if (key == "rng" || key == "injector_rng") {
      if (fields.size() != 5 || !IsInteger(fields[1], false) ||
          !IsInteger(fields[2], false) || !IsInteger(fields[3], false) ||
          !IsInteger(fields[4], false)) {
        sink->Error("V-K002", location,
                    StrFormat("'%s' expects four unsigned words",
                              key.c_str()));
      } else if (key == "rng") {
        saw_rng = true;
      }
    } else if (key == "seed" || key == "queries_done" ||
               key == "injector_queries" || key == "pib.contexts" ||
               key == "pib.trials" || key == "pib.samples" ||
               key == "palo.contexts" || key == "palo.trials" ||
               key == "palo.samples" || key == "palo.moves" ||
               key == "palo.finished" || key == "pao.contexts") {
      if (fields.size() != 2 || !IsInteger(fields[1], false)) {
        sink->Error("V-K002", location,
                    StrFormat("'%s' expects one non-negative integer",
                              key.c_str()));
      }
    } else if (key == "pao.counter") {
      if (fields.size() != 4 || !IsInteger(fields[1], false) ||
          !IsInteger(fields[2], true) || !IsInteger(fields[3], true)) {
        sink->Error("V-K002", location,
                    StrFormat("'%s' expects three integer fields",
                              key.c_str()));
      }
    } else if (key == "breaker") {
      // Three fields is the pre-half-open format; six adds open_rounds
      // and the quarantine (forced) bit.
      bool ok = fields.size() == 4 || fields.size() == 6;
      for (size_t k = 1; ok && k < fields.size(); ++k) {
        ok = IsInteger(fields[k], k != 1);
      }
      if (!ok) {
        sink->Error("V-K002", location,
                    "'breaker' expects <arc> <failures> <open_until> "
                    "[<open_rounds> <forced>]");
      }
    } else if (key == "pib.audit") {
      if (fields.size() != 3 || !IsDouble(fields[1]) ||
          !IsInteger(fields[2], false)) {
        sink->Error("V-K002", location,
                    "'pib.audit' expects <delta_spent> <rounds>");
      }
    } else if (key == "health") {
      bool ok = fields.size() == 5 &&
                (fields[1] == "0" || fields[1] == "1");
      for (size_t k = 2; ok && k < 5; ++k) ok = IsInteger(fields[k], false);
      if (!ok) {
        sink->Error("V-K002", location,
                    "'health' expects <healthy 0|1> <windows_seen> "
                    "<drift_active> <firing>");
      }
    } else if (key == "recovery.ring") {
      if (fields.size() != 3 || !IsInteger(fields[1], false) ||
          !IsInteger(fields[2], false)) {
        sink->Error("V-K002", location,
                    "'recovery.ring' expects <cursor> <writes>");
      }
    } else if (key == "ts.cursor") {
      if (fields.size() != 4 || !IsInteger(fields[1], true) ||
          !IsInteger(fields[2], false) || !IsInteger(fields[3], false)) {
        sink->Error("V-K002", location,
                    "'ts.cursor' expects <window_start> <next_index> "
                    "<evicted>");
      }
    } else if (key == "audit.cursor") {
      bool ok = fields.size() == 12;
      for (size_t k = 1; ok && k < 10; ++k) ok = IsInteger(fields[k], false);
      for (size_t k = 10; ok && k < 12; ++k) ok = IsDouble(fields[k]);
      if (!ok) {
        sink->Error("V-K002", location,
                    "'audit.cursor' expects nine counters and two cost "
                    "sums");
      }
    } else if (key == "audit.epoch") {
      bool ok = fields.size() == 6;
      for (size_t k = 1; ok && k < 5; ++k) ok = IsInteger(fields[k], false);
      if (ok) ok = IsDouble(fields[5]);
      if (!ok) {
        sink->Error("V-K002", location,
                    "'audit.epoch' expects <arc> <experiment> <attempts> "
                    "<successes> <cost>");
      }
    } else if (key == "audit.ledger") {
      if (fields.size() != 4 || !IsDouble(fields[2]) ||
          !IsDouble(fields[3])) {
        sink->Error("V-K002", location,
                    "'audit.ledger' expects <learner> <spent> <budget>");
      }
    } else if (key == "pib.deltas" || key == "palo.unders" ||
               key == "palo.overs") {
      for (size_t k = 1; k < fields.size(); ++k) {
        if (!IsDouble(fields[k])) {
          sink->Error("V-K002", location, "malformed estimate ledger");
          break;
        }
      }
    } else if (key == "pib.move") {
      bool ok = fields.size() == 9;
      for (size_t k = 1; ok && k < 6; ++k) ok = IsInteger(fields[k], false);
      for (size_t k = 6; ok && k < 9; ++k) ok = IsDouble(fields[k]);
      if (!ok) {
        sink->Error("V-K002", location, "malformed climb-history entry");
      }
    } else if (key == "pao.remaining") {
      for (size_t k = 1; k < fields.size(); ++k) {
        if (!IsInteger(fields[k], true)) {
          sink->Error("V-K002", location,
                      "malformed remaining-quota vector");
          break;
        }
      }
    } else if (key == "stratlearn-strategy") {
      // Deep validation needs the graph; accept the shape here.
      bool ok = fields.size() >= 2 && fields[1] == "v1";
      for (size_t k = 2; ok && k < fields.size(); ++k) {
        ok = IsInteger(fields[k], false);
      }
      if (!ok) {
        sink->Error("V-K002", location, "malformed strategy line");
      } else {
        saw_strategy = true;
      }
    } else {
      sink->Error("V-K002", location,
                  StrFormat("unknown checkpoint directive '%s'",
                            key.c_str()));
    }
  }
  if (learner.empty()) {
    sink->Error("V-K002", "", "checkpoint names no learner",
                "expected a 'learner pib|palo|pao' line");
  }
  if (!saw_rng) {
    sink->Error("V-K002", "", "checkpoint carries no workload RNG state",
                "expected an 'rng <s0> <s1> <s2> <s3>' line");
  }
  if ((learner == "pib" || learner == "palo") && !saw_strategy) {
    sink->Error("V-K002", "",
                "checkpoint carries no strategy for its learner");
  }
}

}  // namespace

void VerifyChecksummedText(std::string_view text, DiagnosticSink* sink) {
  // Passed untrimmed: the header's byte count covers the payload
  // verbatim, trailing newline included.
  Result<std::string> payload = DecodeChecksummed(text, "container");
  if (!payload.ok()) {
    sink->Error("V-K001", "", std::string(payload.status().message()),
                "the file was truncated or bit-flipped since it was "
                "written; restore it from a backup or restart the run "
                "without --resume");
    return;
  }
  if (StartsWith(Trim(*payload), kCheckpointHeader)) {
    VerifyCheckpointPayload(*payload, sink);
    return;
  }
  sink->Note("V-K001", "",
             "checksummed container verified, but its payload is not a "
             "known stratlearn artifact; only integrity was checked");
}

}  // namespace stratlearn::verify
