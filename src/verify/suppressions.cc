#include "verify/suppressions.h"

#include <unordered_set>

#include "util/string_util.h"

namespace stratlearn::verify {

SuppressionSet ParseSuppressions(std::string_view text,
                                 const std::string& file,
                                 DiagnosticSink* sink) {
  SuppressionSet set;
  std::string saved_file = sink->file();
  sink->set_file(file);
  std::vector<std::string> lines = Split(text, '\n');
  bool header_ok = !lines.empty() &&
                   Trim(lines[0]) == "stratlearn-suppressions v1";
  if (!header_ok) {
    sink->Error("V-SUP001", "line 1",
                "suppressions file must start with "
                "'stratlearn-suppressions v1'",
                "regenerate the baseline with --suppress-out");
  } else {
    for (size_t i = 1; i < lines.size(); ++i) {
      std::string_view line = Trim(lines[i]);
      if (line.empty() || line[0] == '#') continue;
      std::vector<std::string> fields = Split(line, '|');
      if (fields.size() != 3 || Trim(fields[0]).empty()) {
        sink->Error("V-SUP001", StrFormat("line %zu", i + 1),
                    StrFormat("cannot parse suppression '%s'",
                              std::string(line.substr(0, 48)).c_str()),
                    "expected 'code|file|location' ('*' wildcards "
                    "allowed; empty location spelled as a bare field)");
        continue;
      }
      SuppressionRule rule;
      rule.code = std::string(Trim(fields[0]));
      rule.file = std::string(Trim(fields[1]));
      rule.location = std::string(Trim(fields[2]));
      rule.line = static_cast<int>(i + 1);
      set.rules.push_back(std::move(rule));
    }
  }
  sink->set_file(saved_file);
  return set;
}

size_t ApplySuppressions(const SuppressionSet& set, const std::string& file,
                         DiagnosticSink* sink) {
  std::vector<char> used(set.rules.size(), 0);
  size_t removed = sink->Suppress([&](const Diagnostic& d) {
    for (size_t r = 0; r < set.rules.size(); ++r) {
      if (set.rules[r].Matches(d)) {
        used[r] = 1;
        return true;
      }
    }
    return false;
  });
  std::string saved_file = sink->file();
  sink->set_file(file);
  for (size_t r = 0; r < set.rules.size(); ++r) {
    if (used[r] != 0) continue;
    const SuppressionRule& rule = set.rules[r];
    sink->Note("V-SUP002", StrFormat("line %d", rule.line),
               StrFormat("suppression '%s|%s|%s' matched no finding",
                         rule.code.c_str(), rule.file.c_str(),
                         rule.location.c_str()),
               "the finding it pinned is gone; delete the line so the "
               "baseline keeps ratcheting down");
  }
  sink->set_file(saved_file);
  return removed;
}

std::string RenderSuppressionBaseline(const DiagnosticSink& sink) {
  std::string out = "stratlearn-suppressions v1\n";
  out += "# code|file|location — '*' matches any value in that field.\n";
  std::unordered_set<std::string> seen;
  for (const Diagnostic& d : sink.diagnostics()) {
    std::string line = StrFormat("%s|%s|%s", d.code.c_str(), d.file.c_str(),
                                 d.location.c_str());
    if (seen.insert(line).second) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

}  // namespace stratlearn::verify
