#include "verify/diagnostics.h"

#include "obs/json_writer.h"
#include "util/string_util.h"

namespace stratlearn::verify {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void DiagnosticSink::Report(Diagnostic diagnostic) {
  switch (diagnostic.severity) {
    case Severity::kError: ++num_errors_; break;
    case Severity::kWarning: ++num_warnings_; break;
    case Severity::kNote: ++num_notes_; break;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::Error(std::string code, std::string location,
                           std::string message, std::string hint) {
  Report({std::move(code), Severity::kError, file_, std::move(location),
          std::move(message), std::move(hint)});
}

void DiagnosticSink::Warning(std::string code, std::string location,
                             std::string message, std::string hint) {
  Report({std::move(code), Severity::kWarning, file_, std::move(location),
          std::move(message), std::move(hint)});
}

void DiagnosticSink::Note(std::string code, std::string location,
                          std::string message, std::string hint) {
  Report({std::move(code), Severity::kNote, file_, std::move(location),
          std::move(message), std::move(hint)});
}

void DiagnosticSink::RecountSeverities() {
  num_errors_ = num_warnings_ = num_notes_ = 0;
  for (const Diagnostic& d : diagnostics_) {
    switch (d.severity) {
      case Severity::kError: ++num_errors_; break;
      case Severity::kWarning: ++num_warnings_; break;
      case Severity::kNote: ++num_notes_; break;
    }
  }
}

int DiagnosticSink::ExitCode(bool werror) const {
  if (num_errors_ > 0 || (werror && num_warnings_ > 0)) return 2;
  if (num_warnings_ > 0) return 1;
  return 0;
}

std::string DiagnosticSink::RenderText(bool werror) const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    std::string where = d.file;
    if (!d.location.empty()) {
      if (!where.empty()) where += ":";
      where += d.location;
    }
    if (!where.empty()) where += ": ";
    out += StrFormat("%s%s: %s [%s]\n", where.c_str(),
                     SeverityName(d.severity), d.message.c_str(),
                     d.code.c_str());
    if (!d.hint.empty()) {
      out += StrFormat("  hint: %s\n", d.hint.c_str());
    }
  }
  out += StrFormat("%zu error(s), %zu warning(s), %zu note(s)%s%s\n",
                   num_errors_, num_warnings_, num_notes_,
                   num_suppressed_ > 0
                       ? StrFormat(", %zu suppressed", num_suppressed_)
                             .c_str()
                       : "",
                   werror && num_warnings_ > 0
                       ? " [warnings promoted by -Werror]"
                       : "");
  return out;
}

std::string DiagnosticSink::RenderJson(bool werror) const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("diagnostics").BeginArray();
  for (const Diagnostic& d : diagnostics_) {
    // --Werror is a severity promotion, not just an exit-code flip:
    // tooling consuming the report must see the effective severity.
    bool promoted = werror && d.severity == Severity::kWarning;
    w.BeginObject();
    w.Key("code").Value(d.code);
    w.Key("severity").Value(promoted ? SeverityName(Severity::kError)
                                     : SeverityName(d.severity));
    if (promoted) w.Key("promoted").Value(true);
    w.Key("file").Value(d.file);
    w.Key("location").Value(d.location);
    w.Key("message").Value(d.message);
    w.Key("hint").Value(d.hint);
    w.EndObject();
  }
  w.EndArray();
  if (!analyses_.empty()) {
    w.Key("analyses").BeginArray();
    for (const std::string& section : analyses_) w.Raw(section);
    w.EndArray();
  }
  w.Key("summary").BeginObject();
  w.Key("errors").Value(static_cast<int64_t>(num_errors_));
  w.Key("warnings").Value(static_cast<int64_t>(num_warnings_));
  w.Key("notes").Value(static_cast<int64_t>(num_notes_));
  w.Key("suppressed").Value(static_cast<int64_t>(num_suppressed_));
  w.Key("werror").Value(werror);
  w.Key("exit_code").Value(static_cast<int64_t>(ExitCode(werror)));
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace stratlearn::verify
