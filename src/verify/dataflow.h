#ifndef STRATLEARN_VERIFY_DATAFLOW_H_
#define STRATLEARN_VERIFY_DATAFLOW_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace stratlearn::verify {

/// Deterministic FIFO worklist over node indices with membership
/// deduplication: pushing a node already enqueued is a no-op, so each
/// node is processed at most once per "round" of changes. Iteration
/// order is a pure function of the push sequence — two runs over the
/// same problem pop the same nodes in the same order, which the verify
/// subsystem's byte-determinism contract relies on.
class IndexWorklist {
 public:
  explicit IndexWorklist(size_t num_nodes);

  /// Enqueues `node` unless it is already waiting. Bounds-checked.
  void Push(size_t node);

  /// Pops the oldest waiting node. Undefined when empty().
  size_t Pop();

  bool empty() const { return head_ == queue_.size(); }
  size_t size() const { return queue_.size() - head_; }

  /// Total pops so far (the engine's iteration counter).
  int64_t pops() const { return pops_; }

 private:
  std::vector<size_t> queue_;
  size_t head_ = 0;  // queue_[head_..] are waiting
  std::vector<char> enqueued_;
  int64_t pops_ = 0;
};

/// Outcome of a fixpoint run.
struct FixpointResult {
  /// False when the iteration cap was hit before the worklist drained;
  /// the values are then a sound under-approximation of the least
  /// fixpoint (monotone transfer functions only ever add information),
  /// but analyses must degrade their verdicts (V-D005).
  bool converged = true;
  /// Transfer-function applications performed.
  int64_t iterations = 0;
};

/// A small generic worklist solver for forward dataflow problems over a
/// bounded join-semilattice. The client supplies the lattice operations
/// and the dependency structure; the engine owns the iteration order
/// and the convergence bookkeeping.
///
/// The node values start at the client's initial assignment (the
/// lattice bottom plus any seed facts). The engine repeatedly pops a
/// node n, computes transfer(n) — which may read every current value —
/// and joins the result into value(n); when the join changes the value,
/// every successor of n re-enters the worklist. With a monotone
/// transfer over a lattice of finite height this terminates at the
/// least fixpoint; `max_iterations` caps runaway clients (a
/// non-monotone transfer or an unbounded lattice) and reports
/// non-convergence instead of spinning.
template <typename Value>
class FixpointEngine {
 public:
  using Transfer =
      std::function<Value(size_t node, const std::vector<Value>& values)>;
  /// Joins `incoming` into `current`; returns true when `current`
  /// changed (i.e. incoming was not already <= current).
  using JoinInto = std::function<bool(Value* current, const Value& incoming)>;

  struct Options {
    /// Cap on transfer applications. The default comfortably covers
    /// every bounded-lattice analysis in this repo (adornment sets are
    /// capped at 2^arity per predicate); hitting it means the client's
    /// transfer is not monotone or its lattice is unbounded.
    int64_t max_iterations = 100000;
  };

  FixpointEngine(std::vector<Value> initial,
                 std::vector<std::vector<size_t>> successors,
                 Options options = {})
      : values_(std::move(initial)),
        successors_(std::move(successors)),
        options_(options) {}

  /// Runs to fixpoint (or the iteration cap) from the initial values,
  /// seeding the worklist with every node in index order.
  FixpointResult Solve(const Transfer& transfer, const JoinInto& join) {
    IndexWorklist worklist(values_.size());
    for (size_t n = 0; n < values_.size(); ++n) worklist.Push(n);
    FixpointResult result;
    while (!worklist.empty()) {
      if (worklist.pops() >= options_.max_iterations) {
        result.converged = false;
        break;
      }
      size_t node = worklist.Pop();
      Value incoming = transfer(node, values_);
      if (join(&values_[node], incoming)) {
        for (size_t succ : successors_[node]) worklist.Push(succ);
      }
    }
    result.iterations = worklist.pops();
    return result;
  }

  const std::vector<Value>& values() const { return values_; }
  const Value& value(size_t node) const { return values_[node]; }

 private:
  std::vector<Value> values_;
  std::vector<std::vector<size_t>> successors_;
  Options options_;
};

}  // namespace stratlearn::verify

#endif  // STRATLEARN_VERIFY_DATAFLOW_H_
