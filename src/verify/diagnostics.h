#ifndef STRATLEARN_VERIFY_DIAGNOSTICS_H_
#define STRATLEARN_VERIFY_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace stratlearn::verify {

/// How bad a finding is. Errors invalidate the paper's guarantees (a
/// learner run over the artifact would be meaningless); warnings mark
/// inputs that run but probably not as intended; notes are FYIs.
enum class Severity { kNote, kWarning, kError };

/// Stable lowercase name ("note", "warning", "error").
const char* SeverityName(Severity severity);

/// One static-analysis finding. `code` is a stable identifier from the
/// diagnostic-code table in README.md ("V-R001", ...); `file` is the
/// artifact the finding is about (may be empty for in-memory checks);
/// `location` narrows it down inside the artifact ("line 3", "arc 2",
/// "key epsilon", ... — empty when the finding is about the whole
/// artifact); `hint` suggests the fix.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  std::string file;
  std::string location;
  std::string message;
  std::string hint;
};

/// Collects diagnostics in the (deterministic) order the passes emit
/// them and renders them as text or JSON. Exit-code policy matches the
/// CLI contract: 0 clean (notes allowed), 1 warnings, 2 errors;
/// `werror` promotes warnings to errors.
class DiagnosticSink {
 public:
  DiagnosticSink() = default;

  /// The `file` of subsequently reported diagnostics (passes report
  /// locations only; the driver scopes them to the artifact under
  /// analysis).
  void set_file(std::string file) { file_ = std::move(file); }
  const std::string& file() const { return file_; }

  void Report(Diagnostic diagnostic);

  /// Convenience emitters using the current file scope.
  void Error(std::string code, std::string location, std::string message,
             std::string hint = "");
  void Warning(std::string code, std::string location, std::string message,
               std::string hint = "");
  void Note(std::string code, std::string location, std::string message,
            std::string hint = "");

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t size() const { return diagnostics_.size(); }
  bool empty() const { return diagnostics_.empty(); }

  size_t num_errors() const { return num_errors_; }
  size_t num_warnings() const { return num_warnings_; }
  size_t num_notes() const { return num_notes_; }
  size_t num_suppressed() const { return num_suppressed_; }

  /// Removes every diagnostic matching `match`, recomputing the
  /// severity counts; removed findings count as *suppressed* in the
  /// summary line and in JSON/SARIF. Returns how many were removed.
  /// This is the baseline mechanism: CI suppresses the pinned findings
  /// and gates on what remains.
  template <typename Pred>
  size_t Suppress(const Pred& match) {
    std::vector<Diagnostic> kept;
    kept.reserve(diagnostics_.size());
    size_t removed = 0;
    for (Diagnostic& d : diagnostics_) {
      if (match(static_cast<const Diagnostic&>(d))) {
        ++removed;
      } else {
        kept.push_back(std::move(d));
      }
    }
    diagnostics_ = std::move(kept);
    num_suppressed_ += removed;
    RecountSeverities();
    return removed;
  }

  /// Attaches a machine-readable analysis result (a raw JSON object,
  /// e.g. an adornment table or a cost-interval certificate) to the
  /// report. Sections render in insertion order under the top-level
  /// "analyses" key of RenderJson and the run's property bag in SARIF;
  /// the text rendering ignores them (passes emit a note instead).
  void AddAnalysis(std::string json_object) {
    analyses_.push_back(std::move(json_object));
  }
  const std::vector<std::string>& analyses() const { return analyses_; }

  /// True when the artifact set must not be used (>= 1 error, or >= 1
  /// warning under `werror`).
  bool HasBlocking(bool werror = false) const {
    return num_errors_ > 0 || (werror && num_warnings_ > 0);
  }

  /// 0 = clean, 1 = warnings only, 2 = errors (warnings count as errors
  /// under `werror`).
  int ExitCode(bool werror = false) const;

  /// Compiler-style rendering, one finding per line plus indented
  /// hints, ending in a summary line. Deterministic: no timestamps, no
  /// pointers, insertion order.
  std::string RenderText(bool werror = false) const;

  /// The same content as one deterministic JSON object:
  /// {"diagnostics": [...], "analyses": [...], "summary": {...}}.
  /// Under `werror` a promoted warning renders with
  /// "severity": "error" (and "promoted": true) so downstream tooling
  /// sees the severity the exit code acts on, not the pre-promotion
  /// one; the summary keeps the raw errors/warnings split.
  std::string RenderJson(bool werror = false) const;

 private:
  void RecountSeverities();

  std::string file_;
  std::vector<Diagnostic> diagnostics_;
  std::vector<std::string> analyses_;
  size_t num_errors_ = 0;
  size_t num_warnings_ = 0;
  size_t num_notes_ = 0;
  size_t num_suppressed_ = 0;
};

}  // namespace stratlearn::verify

#endif  // STRATLEARN_VERIFY_DIAGNOSTICS_H_
