#include <cmath>
#include <limits>

#include "core/expected_cost_interval.h"
#include "core/transformations.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "stats/chernoff.h"
#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

ArcProbProfile ParseArcProbProfile(std::string_view json,
                                   DiagnosticSink* sink) {
  ArcProbProfile profile;
  obs::JsonValue root;
  if (!obs::ParseJson(std::string(json), &root) ||
      root.kind != obs::JsonValue::Kind::kObject) {
    sink->Error("V-X005", "", "profile is not a JSON object",
                "pass a profiling run's JSON report (it has an \"arcs\" "
                "array of per-arc p_hat rows)");
    return profile;
  }
  const obs::JsonValue* arcs = root.Get("arcs");
  if (arcs == nullptr || arcs->kind != obs::JsonValue::Kind::kArray) {
    sink->Error("V-X005", "", "profile has no \"arcs\" array",
                "pass a profiling run's JSON report (it has an \"arcs\" "
                "array of per-arc p_hat rows)");
    return profile;
  }
  for (size_t i = 0; i < arcs->array.size(); ++i) {
    const obs::JsonValue& row = arcs->array[i];
    std::string location = StrFormat("arcs[%zu]", i);
    if (row.kind != obs::JsonValue::Kind::kObject) {
      sink->Error("V-X005", location, "profile arc row is not an object");
      continue;
    }
    int64_t arc = 0;
    if (!obs::ReadJsonInt(row, "arc", &arc) || arc < 0) {
      sink->Error("V-X005", location,
                  "profile arc row has no nonnegative integer \"arc\" id");
      continue;
    }
    int64_t attempts = 0;
    if (obs::ReadJsonInt(row, "attempts", &attempts) && attempts == 0) {
      // Never attempted: p_hat is a 0/0 placeholder and the half-width
      // is meaningless, so the row narrows nothing.
      continue;
    }
    double p_hat = 0.0;
    if (!obs::ReadJsonDouble(row, "p_hat", &p_hat) ||
        !std::isfinite(p_hat) || p_hat < 0.0 || p_hat > 1.0) {
      sink->Error("V-X005", location,
                  StrFormat("profile row for arc %lld needs a \"p_hat\" "
                            "in [0, 1]",
                            static_cast<long long>(arc)));
      continue;
    }
    double half_width = 0.0;
    if (row.Get("half_width") != nullptr &&
        (!obs::ReadJsonDouble(row, "half_width", &half_width) ||
         !std::isfinite(half_width) || half_width < 0.0)) {
      sink->Error("V-X005", location,
                  StrFormat("profile row for arc %lld has a malformed "
                            "\"half_width\" (want a nonnegative real)",
                            static_cast<long long>(arc)));
      continue;
    }
    uint32_t id = static_cast<uint32_t>(arc);
    if (profile.arcs.count(id) > 0) {
      sink->Error("V-X005", location,
                  StrFormat("duplicate profile row for arc %lld",
                            static_cast<long long>(arc)));
      continue;
    }
    profile.arcs[id] = {p_hat - half_width < 0.0 ? 0.0 : p_hat - half_width,
                        p_hat + half_width > 1.0 ? 1.0 : p_hat + half_width};
  }
  return profile;
}

std::vector<Interval> ExperimentIntervals(const InferenceGraph& graph,
                                          const ArcProbProfile* profile) {
  std::vector<Interval> probs(graph.num_experiments(), Interval{0.0, 1.0});
  if (profile == nullptr) return probs;
  for (size_t i = 0; i < graph.experiments().size(); ++i) {
    auto it = profile->arcs.find(graph.experiments()[i]);
    if (it != profile->arcs.end()) probs[i] = it->second;
  }
  return probs;
}

void VerifyStrategyCost(const InferenceGraph& graph, const Strategy& strategy,
                        const ArcProbProfile* profile, DiagnosticSink* sink) {
  std::vector<Interval> probs = ExperimentIntervals(graph, profile);
  IntervalCostBreakdown breakdown =
      IntervalExpectedCostBreakdown(graph, strategy, probs);

  size_t narrowed = 0;
  for (const Interval& p : probs) {
    if (p.width() < 1.0) ++narrowed;
  }

  // V-X004: the certificate itself. Every probability vector inside the
  // model's box yields an expected cost within [C_lo, C_hi].
  sink->Note("V-X004", "",
             StrFormat("certified expected-cost interval [%s, %s] for "
                       "strategy %s (%zu of %zu experiment probabilities "
                       "narrowed by a profile)",
                       FormatDouble(breakdown.total.lo).c_str(),
                       FormatDouble(breakdown.total.hi).c_str(),
                       strategy.ToString(graph).c_str(), narrowed,
                       probs.size()),
             "");
  {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("kind").Value("cost_interval");
    w.Key("file").Value(sink->file());
    w.Key("strategy").Value(strategy.ToString(graph));
    w.Key("c_lo").Value(breakdown.total.lo);
    w.Key("c_hi").Value(breakdown.total.hi);
    w.Key("narrowed_experiments").Value(static_cast<int64_t>(narrowed));
    w.Key("arcs").BeginArray();
    for (size_t i = 0; i < strategy.size(); ++i) {
      w.BeginObject();
      w.Key("arc").Value(static_cast<int64_t>(strategy.arcs()[i]));
      w.Key("attempt_lo").Value(breakdown.attempt_prob[i].lo);
      w.Key("attempt_hi").Value(breakdown.attempt_prob[i].hi);
      w.Key("cost_lo").Value(breakdown.contribution[i].lo);
      w.Key("cost_hi").Value(breakdown.contribution[i].hi);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    sink->AddAnalysis(w.Take());
  }

  // V-X003: attempt probability identically zero across the whole box —
  // some arc on the root path can never be unblocked under the profile.
  for (size_t i = 0; i < strategy.size(); ++i) {
    if (breakdown.attempt_prob[i].hi > 0.0) continue;
    ArcId a = strategy.arcs()[i];
    sink->Warning(
        "V-X003", StrFormat("arc %u", a),
        StrFormat("arc '%s' is never attempted under any probability in "
                  "the model: an arc on its root path has success "
                  "probability 0",
                  graph.arc(a).label.c_str()),
        "the profile reports p_hat = 0 with zero half-width upstream; "
        "remove the dead branch or re-profile with more data");
  }

  // V-X002: a sibling swap whose certified worst case undercuts this
  // strategy's certified best case. The learner would converge there
  // anyway — but only after spending Equation-6 samples on a comparison
  // the intervals already decide.
  for (const SiblingSwap& swap : AllSiblingSwaps(graph)) {
    Strategy swapped = ApplySwap(graph, strategy, swap);
    if (swapped == strategy) continue;
    Interval alt = IntervalExpectedCost(graph, swapped, probs);
    if (alt.hi < breakdown.total.lo) {
      sink->Warning(
          "V-X002", "",
          StrFormat("strategy is statically dominated: applying %s is "
                    "certified to cost at most %s, below this order's "
                    "certified minimum %s",
                    swap.ToString(graph).c_str(),
                    FormatDouble(alt.hi).c_str(),
                    FormatDouble(breakdown.total.lo).c_str()),
          "start the learner from the swapped order; PIB would pay "
          "samples to discover a comparison the intervals already "
          "decide");
    }
  }
}

void VerifyQuotaFeasibility(const LearnerConfig& config,
                            const InferenceGraph& graph,
                            const ArcProbProfile* profile,
                            DiagnosticSink* sink) {
  bool epsilon_ok = std::isfinite(config.epsilon) && config.epsilon > 0.0;
  bool delta_ok = std::isfinite(config.delta) && config.delta > 0.0 &&
                  config.delta < 1.0;
  // Out-of-range values are V-C001/V-C002/V-C006 territory.
  if (!epsilon_ok || !delta_ok || config.max_contexts <= 0) return;
  int64_t n = static_cast<int64_t>(graph.num_experiments());
  if (n == 0) return;
  std::vector<Interval> probs = ExperimentIntervals(graph, profile);
  for (ArcId arc : graph.experiments()) {
    double f_neg = graph.FNeg(arc);
    if (f_neg == 0.0) continue;
    int64_t quota =
        config.theorem3
            ? PaoReachQuota(n, f_neg, config.epsilon, config.delta)
            : PaoRetrievalQuota(n, f_neg, config.epsilon, config.delta);
    // Overflowed quotas are already a V-C004 error.
    if (quota == std::numeric_limits<int64_t>::max()) continue;
    double best_attempt = 1.0;
    for (ArcId up : graph.Pi(arc)) {
      int e = graph.arc(up).experiment;
      if (e >= 0) best_attempt *= probs[static_cast<size_t>(e)].hi;
    }
    double deliverable =
        static_cast<double>(config.max_contexts) * best_attempt;
    if (static_cast<double>(quota) > deliverable) {
      sink->Error(
          "V-X001", StrFormat("arc %u", arc),
          StrFormat("the Equation %d sample quota m(%s) = %lld is "
                    "statically infeasible: max_contexts = %lld contexts "
                    "deliver at most %s observations (optimistic attempt "
                    "probability %s)",
                    config.theorem3 ? 8 : 7, graph.arc(arc).label.c_str(),
                    static_cast<long long>(quota),
                    static_cast<long long>(config.max_contexts),
                    FormatDouble(deliverable).c_str(),
                    FormatDouble(best_attempt).c_str()),
          "no run of this length can certify the Theorem 2 guarantee; "
          "raise max_contexts or relax epsilon/delta before spending "
          "any samples");
    }
  }
}

}  // namespace stratlearn::verify
