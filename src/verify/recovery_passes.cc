// Static verification of "stratlearn-recovery v1" policy files
// (V-RC...). Like the alert passes, the parser doubles as the
// production loader: every malformed line becomes a diagnostic and is
// dropped, and the CLI recovery paths refuse to run on a file with
// blocking findings, so a policy that loads is exactly a policy that
// verifies.

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "robust/recovery/policy.h"
#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

using robust::IsKnownRecoveryAction;
using robust::RecoveryPolicy;
using robust::RecoveryRule;

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && !token.empty();
}

bool ParseInt(const std::string& token, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(token.c_str(), &end, 10);
  return end == token.c_str() + token.size() && !token.empty();
}

bool IsKnownTrigger(const std::string& trigger) {
  if (trigger == "drift:p_hat" || trigger == "drift:mean_cost" ||
      trigger == "drift:rate" || trigger == "drift:any") {
    return true;
  }
  return StartsWith(trigger, "alert:") && trigger.size() > 6;
}

}  // namespace

RecoveryPolicy ParseRecoveryPolicy(std::string_view text,
                                   DiagnosticSink* sink) {
  RecoveryPolicy policy;
  std::set<std::string> seen_ids;
  size_t errors_before = sink->num_errors();
  bool have_header = false;
  int line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (!have_header) {
      if (line != "stratlearn-recovery v1") {
        sink->Error("V-RC001", StrFormat("line %d", line_number),
                    "expected the \"stratlearn-recovery v1\" header",
                    "the first non-comment line must be exactly "
                    "'stratlearn-recovery v1'");
        return policy;
      }
      have_header = true;
      continue;
    }
    std::string location = StrFormat("line %d", line_number);
    std::vector<std::string> tokens;
    for (const std::string& token : Split(std::string(line), ' ')) {
      if (!Trim(token).empty()) tokens.push_back(std::string(Trim(token)));
    }
    if (tokens[0] == "ring") {
      int64_t slots = 0;
      if (tokens.size() != 2 || !ParseInt(tokens[1], &slots)) {
        sink->Error("V-RC001", location,
                    "ring lines read: ring <slots>");
        continue;
      }
      if (slots < 1) {
        sink->Error("V-RC003", location,
                    StrFormat("ring size %lld is not positive",
                              static_cast<long long>(slots)),
                    "rollback needs at least one retained known-good "
                    "checkpoint slot");
        continue;
      }
      policy.ring = slots;
      continue;
    }
    if (tokens[0] != "on") {
      sink->Error("V-RC001", location,
                  StrFormat("unknown directive '%s'", tokens[0].c_str()),
                  "policy lines read: on <trigger> <action> [id=<name>] "
                  "[cooldown=<windows>] [trials_factor=<f>] "
                  "[probe_cooldown=<n>], or: ring <slots>");
      continue;
    }
    if (tokens.size() < 3) {
      sink->Error("V-RC001", location,
                  "on line needs at least: on <trigger> <action>");
      continue;
    }
    RecoveryRule rule;
    rule.trigger = tokens[1];
    rule.action = tokens[2];
    bool line_ok = true;
    if (!IsKnownTrigger(rule.trigger)) {
      sink->Error("V-RC002", location,
                  StrFormat("unknown trigger '%s'", rule.trigger.c_str()),
                  "triggers: drift:p_hat, drift:mean_cost, drift:rate, "
                  "drift:any, alert:<rule-id>, alert:any");
      line_ok = false;
    }
    if (!IsKnownRecoveryAction(rule.action)) {
      sink->Error("V-RC003", location,
                  StrFormat("unknown action '%s'", rule.action.c_str()),
                  "actions: rebaseline, rollback, restart_scoped, "
                  "quarantine");
      line_ok = false;
    }
    for (size_t i = 3; i < tokens.size(); ++i) {
      const std::string& option = tokens[i];
      if (StartsWith(option, "id=")) {
        rule.id = option.substr(3);
        if (rule.id.empty()) {
          sink->Error("V-RC001", location, "id= option is empty");
          line_ok = false;
        }
      } else if (StartsWith(option, "cooldown=")) {
        if (!ParseInt(option.substr(9), &rule.cooldown) ||
            rule.cooldown < 0) {
          sink->Error("V-RC003", location,
                      StrFormat("cooldown '%s' is not a nonnegative "
                                "integer",
                                option.c_str()));
          line_ok = false;
        }
      } else if (StartsWith(option, "trials_factor=")) {
        if (!ParseDouble(option.substr(14), &rule.trials_factor) ||
            !(rule.trials_factor > 0.0) || rule.trials_factor > 1.0) {
          sink->Error("V-RC003", location,
                      StrFormat("trials_factor '%s' is not in (0, 1]",
                                option.c_str()),
                      "the rebaseline rewind keeps at least one trial "
                      "and never moves the rung forward");
          line_ok = false;
        }
      } else if (StartsWith(option, "probe_cooldown=")) {
        if (!ParseInt(option.substr(15), &rule.probe_cooldown) ||
            rule.probe_cooldown < 0) {
          sink->Error("V-RC003", location,
                      StrFormat("probe_cooldown '%s' is not a "
                                "nonnegative integer",
                                option.c_str()));
          line_ok = false;
        }
      } else {
        sink->Error("V-RC001", location,
                    StrFormat("unknown option '%s'", option.c_str()),
                    "options are id=<name>, cooldown=<windows>, "
                    "trials_factor=<f> and probe_cooldown=<n>");
        line_ok = false;
      }
    }
    if (rule.id.empty()) rule.id = rule.trigger + "->" + rule.action;
    if (line_ok && !seen_ids.insert(rule.id).second) {
      sink->Error("V-RC004", location,
                  StrFormat("duplicate rule id '%s'", rule.id.c_str()),
                  "rule ids name recovery certificates and report rows; "
                  "they must be unique (set id=<name> explicitly)");
      line_ok = false;
    }
    if (line_ok) policy.rules.push_back(std::move(rule));
  }
  if (!have_header) {
    sink->Error("V-RC001", StrFormat("line %d", line_number),
                "empty file: missing the \"stratlearn-recovery v1\" "
                "header");
    return policy;
  }
  if (policy.rules.empty() && sink->num_errors() == errors_before) {
    sink->Warning("V-RC005", "",
                  "policy has no rules: the recovery controller will "
                  "never act",
                  "add at least one line, e.g. 'on drift:p_hat "
                  "rebaseline'");
  }
  return policy;
}

}  // namespace stratlearn::verify
