#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "stats/chernoff.h"
#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

bool ParseDoubleValue(std::string_view value, double* out) {
  std::string buffer(value);
  char* end = nullptr;
  *out = std::strtod(buffer.c_str(), &end);
  return !buffer.empty() && end == buffer.c_str() + buffer.size();
}

bool ParseIntValue(std::string_view value, int64_t* out) {
  std::string buffer(value);
  char* end = nullptr;
  long long parsed = std::strtoll(buffer.c_str(), &end, 10);
  if (buffer.empty() || end != buffer.c_str() + buffer.size()) return false;
  *out = parsed;
  return true;
}

bool ParseBoolValue(std::string_view value, bool* out) {
  if (value == "true" || value == "1") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

LearnerConfig ParseLearnerConfig(std::string_view text,
                                 DiagnosticSink* sink) {
  LearnerConfig config;
  std::vector<std::string> lines = Split(text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    size_t comment = line.find_first_of("#%");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;
    std::string location = StrFormat("line %zu", i + 1);
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      sink->Error("V-C007", location,
                  StrFormat("cannot parse '%s'",
                            std::string(line.substr(0, 48)).c_str()),
                  "expected 'key = value'");
      continue;
    }
    std::string_view key = Trim(line.substr(0, eq));
    std::string_view value = Trim(line.substr(eq + 1));
    bool parsed = true;
    if (key == "delta") {
      parsed = ParseDoubleValue(value, &config.delta);
    } else if (key == "epsilon") {
      parsed = ParseDoubleValue(value, &config.epsilon);
    } else if (key == "queries") {
      parsed = ParseIntValue(value, &config.queries);
    } else if (key == "test_every") {
      parsed = ParseIntValue(value, &config.test_every);
    } else if (key == "max_contexts") {
      parsed = ParseIntValue(value, &config.max_contexts);
    } else if (key == "schedule_c") {
      parsed = ParseDoubleValue(value, &config.schedule_c);
    } else if (key == "hypotheses") {
      parsed = ParseIntValue(value, &config.hypotheses);
    } else if (key == "theorem3") {
      parsed = ParseBoolValue(value, &config.theorem3);
    } else {
      sink->Warning("V-C007", location,
                    StrFormat("unknown config key '%s' is ignored",
                              std::string(key).c_str()),
                    "known keys: delta, epsilon, queries, test_every, "
                    "max_contexts, schedule_c, hypotheses, theorem3");
      continue;
    }
    if (!parsed) {
      sink->Error("V-C007", location,
                  StrFormat("cannot parse value '%s' for key '%s'",
                            std::string(value).c_str(),
                            std::string(key).c_str()));
    }
  }
  return config;
}

void VerifyLearnerConfig(const LearnerConfig& config,
                         const InferenceGraph* graph, DiagnosticSink* sink) {
  bool epsilon_ok = std::isfinite(config.epsilon) && config.epsilon > 0.0;
  if (!epsilon_ok) {
    sink->Error("V-C001", "key epsilon",
                StrFormat("epsilon = %s must be a positive real",
                          FormatDouble(config.epsilon).c_str()),
                "epsilon is the additive optimality slack of Theorem 2");
  }
  bool delta_ok = std::isfinite(config.delta) && config.delta > 0.0 &&
                  config.delta < 1.0;
  if (!delta_ok) {
    sink->Error("V-C002", "key delta",
                StrFormat("delta = %s must lie in the open interval (0, 1)",
                          FormatDouble(config.delta).c_str()),
                "delta is a failure probability; the learners' "
                "constructors abort outside (0, 1)");
  }
  if (config.queries <= 0) {
    sink->Error("V-C006", "key queries",
                StrFormat("queries = %lld must be positive",
                          static_cast<long long>(config.queries)));
  }
  if (config.test_every <= 0) {
    sink->Error("V-C006", "key test_every",
                StrFormat("test_every = %lld must be positive",
                          static_cast<long long>(config.test_every)));
  }
  if (config.max_contexts <= 0) {
    sink->Error("V-C006", "key max_contexts",
                StrFormat("max_contexts = %lld must be positive",
                          static_cast<long long>(config.max_contexts)));
  }
  if (config.hypotheses <= 0) {
    sink->Error("V-C006", "key hypotheses",
                StrFormat("hypotheses = %lld must be positive",
                          static_cast<long long>(config.hypotheses)));
  }
  if (!std::isfinite(config.schedule_c) || config.schedule_c <= 0.0) {
    sink->Error("V-C003", "key schedule_c",
                StrFormat("schedule_c = %s must be a positive real",
                          FormatDouble(config.schedule_c).c_str()));
  } else if (config.hypotheses > 0) {
    // Sum over rounds i of k * delta * c / i^2 = k * c * (pi^2/6) * delta.
    // Theorem 1's lifetime guarantee needs that total to stay <= delta,
    // i.e. k * c <= 6/pi^2.
    double total_factor = static_cast<double>(config.hypotheses) *
                          config.schedule_c / kConvergentScheduleC;
    if (total_factor > 1.0 + 1e-9) {
      sink->Error(
          "V-C003", "key schedule_c",
          StrFormat("the delta_i schedule sums to %s * delta > delta "
                    "(hypotheses = %lld, schedule_c = %s); the lifetime "
                    "failure bound of Theorem 1 no longer holds",
                    FormatDouble(total_factor).c_str(),
                    static_cast<long long>(config.hypotheses),
                    FormatDouble(config.schedule_c).c_str()),
          "use schedule_c <= (6/pi^2) / hypotheses, e.g. the default "
          "6/pi^2 with hypotheses = 1");
    }
  }

  if (graph == nullptr || !epsilon_ok || !delta_ok) return;
  int64_t n = static_cast<int64_t>(graph->num_experiments());
  if (n == 0) return;
  for (ArcId arc : graph->experiments()) {
    double f_neg = graph->FNeg(arc);
    if (f_neg == 0.0) continue;
    int64_t quota =
        config.theorem3
            ? PaoReachQuota(n, f_neg, config.epsilon, config.delta)
            : PaoRetrievalQuota(n, f_neg, config.epsilon, config.delta);
    std::string location = StrFormat("arc %u", arc);
    if (quota == std::numeric_limits<int64_t>::max()) {
      sink->Error("V-C004", location,
                  StrFormat("the Equation %d sample quota m(%s) overflows "
                            "for epsilon = %s, delta = %s",
                            config.theorem3 ? 8 : 7,
                            graph->arc(arc).label.c_str(),
                            FormatDouble(config.epsilon).c_str(),
                            FormatDouble(config.delta).c_str()),
                  "epsilon is too small relative to this graph's F_not "
                  "values; no finite sample meets the quota");
    } else if (quota > config.max_contexts) {
      sink->Warning(
          "V-C005", location,
          StrFormat("the sample quota m(%s) = %lld exceeds max_contexts "
                    "= %lld; PAO would stop with ResourceExhausted "
                    "before meeting it",
                    graph->arc(arc).label.c_str(),
                    static_cast<long long>(quota),
                    static_cast<long long>(config.max_contexts)),
          "raise max_contexts, relax epsilon/delta, or switch to the "
          "Theorem 3 quotas (theorem3 = true)");
    }
  }
}

}  // namespace stratlearn::verify
