#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

/// Predicate-dependency edge: head depends on body predicate, positively
/// or through negation as failure.
struct DependencyEdge {
  SymbolId to = kInvalidSymbol;
  bool negated = false;
};

/// Per-clause checks: range restriction (V-R001), undefined body
/// predicates (V-R003), unsafe negation (V-R007).
void CheckClause(const Clause& rule, const std::string& location,
                 const std::unordered_set<SymbolId>& rule_heads,
                 const std::unordered_set<SymbolId>& fact_preds,
                 const SymbolTable& symbols, DiagnosticSink* sink) {
  if (!rule.IsRangeRestricted()) {
    sink->Error("V-R001", location,
                StrFormat("rule '%s' is not range restricted",
                          rule.ToString(symbols).c_str()),
                "every head variable must occur in a positive body literal");
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    SymbolId pred = rule.body[i].predicate;
    if (rule_heads.count(pred) == 0 && fact_preds.count(pred) == 0) {
      sink->Error(
          "V-R003", location,
          StrFormat("predicate '%s' is used but never defined: it heads no "
                    "rule and has no facts, so this literal can never "
                    "succeed",
                    symbols.Name(pred).c_str()),
          "define the predicate or fix the spelling");
    }
  }
  if (rule.HasNegation()) {
    std::unordered_set<SymbolId> positive_vars;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.IsNegated(i)) continue;
      for (const Term& t : rule.body[i].args) {
        if (t.is_variable()) positive_vars.insert(t.symbol);
      }
    }
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (!rule.IsNegated(i)) continue;
      for (const Term& t : rule.body[i].args) {
        if (t.is_variable() && positive_vars.count(t.symbol) == 0) {
          sink->Error(
              "V-R007", location,
              StrFormat("variable '%s' occurs only under negation in "
                        "'%s'; negation as failure is unsafe for "
                        "unbound variables",
                        symbols.Name(t.symbol).c_str(),
                        rule.ToString(symbols).c_str()),
              "bind the variable in a positive literal before negating");
        }
      }
    }
  }
}

/// Whole-program dependency analysis: recursion cycles (V-R005 direct,
/// V-R006 mutual) and NAF stratification (V-R008). Iteration order is
/// first-appearance order of head predicates, so output is
/// deterministic.
void CheckDependencies(
    const std::vector<SymbolId>& head_order,
    const std::unordered_map<SymbolId, std::vector<DependencyEdge>>& deps,
    const SymbolTable& symbols, DiagnosticSink* sink) {
  // Direct recursion and negative self-dependency.
  std::unordered_set<SymbolId> in_reported_cycle;
  for (SymbolId p : head_order) {
    auto it = deps.find(p);
    if (it == deps.end()) continue;
    for (const DependencyEdge& e : it->second) {
      if (e.to != p) continue;
      sink->Error("V-R005", "",
                  StrFormat("predicate '%s' is directly recursive; the "
                            "inference-graph builder only supports "
                            "non-recursive unfoldings",
                            symbols.Name(p).c_str()),
                  "bound the recursion or rewrite it as an extensional "
                  "closure");
      if (e.negated) {
        sink->Error("V-R008", "",
                    StrFormat("predicate '%s' depends on itself through "
                              "negation; the program is not stratifiable",
                              symbols.Name(p).c_str()),
                    "no NAF semantics assigns this rule set a meaning; "
                    "break the negative cycle");
      }
      in_reported_cycle.insert(p);
      break;
    }
  }
  // Mutual recursion: DFS from each head predicate looking for a cycle
  // back to it through at least one other predicate; report each cycle
  // once, from its first-appearing member.
  for (SymbolId start : head_order) {
    if (in_reported_cycle.count(start) > 0) continue;
    // Path-tracking DFS (graphs here are tiny: one node per predicate).
    std::vector<std::pair<SymbolId, bool>> path;  // (predicate, via-negation)
    std::unordered_set<SymbolId> visited;
    bool found = false;
    std::function<void(SymbolId, bool)> dfs = [&](SymbolId p, bool negated) {
      if (found) return;
      path.emplace_back(p, negated);
      if (p == start && path.size() > 1) {
        found = true;
        return;
      }
      if (visited.insert(p).second || (p == start && path.size() == 1)) {
        auto it = deps.find(p);
        if (it != deps.end()) {
          for (const DependencyEdge& e : it->second) {
            if (e.to == p) continue;  // direct loops reported above
            dfs(e.to, e.negated);
            if (found) return;
          }
        }
      }
      path.pop_back();
    };
    dfs(start, false);
    if (!found) continue;
    std::string cycle;
    bool through_negation = false;
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) {
        cycle += path[i].second ? " -[not]-> " : " -> ";
        through_negation = through_negation || path[i].second;
      }
      cycle += symbols.Name(path[i].first);
      in_reported_cycle.insert(path[i].first);
    }
    sink->Error("V-R006", "",
                StrFormat("mutually recursive predicates: %s", cycle.c_str()),
                "the inference-graph builder only supports non-recursive "
                "unfoldings");
    if (through_negation) {
      sink->Error("V-R008", "",
                  StrFormat("the cycle %s passes through negation; the "
                            "program is not stratifiable",
                            cycle.c_str()),
                  "no NAF semantics assigns this rule set a meaning; "
                  "break the negative cycle");
    }
  }
}

}  // namespace

void VerifyProgram(const Program& program, const SymbolTable& symbols,
                   const QueryForm* form, DiagnosticSink* sink) {
  std::unordered_set<SymbolId> rule_heads;
  std::vector<SymbolId> head_order;
  for (const Clause& rule : program.rules) {
    if (rule_heads.insert(rule.head.predicate).second) {
      head_order.push_back(rule.head.predicate);
    }
  }
  std::unordered_set<SymbolId> fact_preds;
  for (const Clause& fact : program.facts) {
    fact_preds.insert(fact.head.predicate);
  }

  // V-R002: facts must be ground.
  for (size_t i = 0; i < program.facts.size(); ++i) {
    const Clause& fact = program.facts[i];
    if (!fact.head.IsGround()) {
      std::string location =
          i < program.fact_lines.size()
              ? StrFormat("line %d", program.fact_lines[i])
              : StrFormat("fact %zu", i);
      sink->Error("V-R002", location,
                  StrFormat("fact '%s' is not ground",
                            fact.head.ToString(symbols).c_str()),
                  "facts must mention constants only");
    }
  }

  std::unordered_map<SymbolId, std::vector<DependencyEdge>> deps;
  std::unordered_set<SymbolId> used_in_bodies;
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const Clause& rule = program.rules[i];
    std::string location = i < program.rule_lines.size()
                               ? StrFormat("line %d", program.rule_lines[i])
                               : StrFormat("rule %zu", i);
    CheckClause(rule, location, rule_heads, fact_preds, symbols, sink);
    for (size_t j = 0; j < rule.body.size(); ++j) {
      SymbolId pred = rule.body[j].predicate;
      used_in_bodies.insert(pred);
      if (rule_heads.count(pred) > 0) {
        deps[rule.head.predicate].push_back({pred, rule.IsNegated(j)});
      }
    }
  }

  CheckDependencies(head_order, deps, symbols, sink);

  // V-R004: intensional predicates nothing refers to. The query form's
  // predicate is the intended entry point; without a form every root
  // predicate would trip this, so the severity drops to note.
  for (SymbolId p : head_order) {
    if (used_in_bodies.count(p) > 0) continue;
    if (form != nullptr && p == form->predicate) continue;
    std::string message = StrFormat(
        "predicate '%s' heads rules but is never used in a body%s",
        symbols.Name(p).c_str(),
        form != nullptr ? " and is not the query form" : "");
    if (form != nullptr) {
      sink->Warning("V-R004", "", message,
                    "dead rules inflate the inference graph and every "
                    "Lambda range derived from it");
    } else {
      sink->Note("V-R004", "", message, "");
    }
  }
}

}  // namespace stratlearn::verify
