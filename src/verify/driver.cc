#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/serialization.h"
#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

/// Extracts the text after the first occurrence of `directive` on any
/// line of `text`, or an empty string.
std::string FindDirective(std::string_view text, std::string_view directive) {
  for (const std::string& line : Split(text, '\n')) {
    size_t pos = line.find(directive);
    if (pos == std::string::npos) continue;
    return std::string(Trim(std::string_view(line).substr(
        pos + directive.size())));
  }
  return "";
}

}  // namespace

ArtifactVerifier::ArtifactVerifier(DiagnosticSink* sink,
                                   VerifyOptions options)
    : sink_(sink), options_(options) {}

Status ArtifactVerifier::AddFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  AddText(path, buffer.str());
  return Status::OK();
}

void ArtifactVerifier::AddText(const std::string& name,
                               std::string_view text) {
  sink_->set_file(name);
  std::string_view trimmed = Trim(text);
  if (StartsWith(trimmed, "stratlearn-crc32")) {
    VerifyChecksummedText(text, sink_);
    return;
  }
  if (StartsWith(trimmed, "stratlearn-graph v1")) {
    size_t errors_before = sink_->num_errors();
    VerifyGraphText(text, sink_, options_);
    if (sink_->num_errors() == errors_before) {
      Result<InferenceGraph> graph = DeserializeGraph(text);
      if (graph.ok()) graph_context_ = std::move(*graph);
    }
    return;
  }
  if (StartsWith(trimmed, "stratlearn-andor v1")) {
    VerifyAndOrText(text, sink_, options_);
    return;
  }
  if (StartsWith(trimmed, "stratlearn-alerts v1")) {
    (void)ParseAlertRules(text, sink_);
    return;
  }
  if (StartsWith(trimmed, "stratlearn-recovery v1")) {
    (void)ParseRecoveryPolicy(text, sink_);
    return;
  }
  if (StartsWith(trimmed, "stratlearn-audit v1")) {
    VerifyAuditText(text, sink_);
    return;
  }
  if (StartsWith(trimmed, "stratlearn-strategy v1")) {
    if (!graph_context_) {
      sink_->Error("V-S005", "",
                   "strategy file has no graph context; verify it after "
                   "the program or graph file it belongs to",
                   "pass the .dl (with a % verify-form: directive) or "
                   ".graph file before the strategy file");
      return;
    }
    size_t errors_before = sink_->num_errors();
    VerifyStrategyText(*graph_context_, text, sink_);
    if (sink_->num_errors() == errors_before) {
      Result<Strategy> strategy = Strategy::Deserialize(*graph_context_, text);
      if (strategy.ok()) {
        VerifyStrategyCost(*graph_context_, *strategy, profile(), sink_);
      }
    }
    return;
  }
  bool is_config = name.size() >= 4 &&
                   name.compare(name.size() - 4, 4, ".cfg") == 0;
  if (is_config) {
    VerifyConfig(text);
  } else {
    VerifyDatalog(text);
  }
}

void ArtifactVerifier::VerifyConfig(std::string_view text) {
  LearnerConfig config = ParseLearnerConfig(text, sink_);
  VerifyLearnerConfig(config, graph_context(), sink_);
  if (graph_context() != nullptr) {
    VerifyQuotaFeasibility(config, *graph_context(), profile(), sink_);
  }
}

void ArtifactVerifier::VerifyDatalog(std::string_view text) {
  SymbolTable symbols;
  Parser parser(&symbols);
  Result<Program> program = parser.ParseProgram(text);
  if (!program.ok()) {
    sink_->Error("V-P001", "",
                 StrFormat("syntax error: %s",
                           program.status().message().c_str()));
    return;
  }

  std::string form_text = FindDirective(text, "% verify-form:");
  Result<QueryForm> form = Status::NotFound("no % verify-form: directive");
  if (!form_text.empty()) {
    form = QueryForm::Parse(form_text, &symbols);
    if (!form.ok()) {
      sink_->Error("V-P001", "",
                   StrFormat("bad %% verify-form: directive '%s': %s",
                             form_text.c_str(),
                             form.status().message().c_str()),
                   "expected e.g. '% verify-form: instructor(b)'");
    }
  }

  size_t errors_before = sink_->num_errors();
  VerifyProgram(*program, symbols, form.ok() ? &*form : nullptr, sink_);

  if (form.ok()) {
    VerifyOptions dataflow_options = options_;
    std::string cap_text = FindDirective(text, "% verify-dataflow-cap:");
    if (!cap_text.empty()) {
      char* end = nullptr;
      long long cap = std::strtoll(cap_text.c_str(), &end, 10);
      if (end != cap_text.c_str() + cap_text.size() || cap <= 0) {
        sink_->Error("V-P001", "",
                     StrFormat("bad %% verify-dataflow-cap: directive "
                               "'%s': expected a positive integer",
                               cap_text.c_str()));
      } else {
        dataflow_options.dataflow_max_iterations = cap;
      }
    }
    (void)VerifyAdornments(*program, symbols, *form, sink_,
                           dataflow_options);
  }

  bool uses_negation = false;
  for (const Clause& rule : program->rules) {
    uses_negation = uses_negation || rule.HasNegation();
  }

  if (form.ok() && sink_->num_errors() == errors_before && !uses_negation) {
    Database db;
    RuleBase rules;
    Status loaded = Status::OK();
    for (const Clause& fact : program->facts) {
      loaded = db.Insert(fact.head);
      if (!loaded.ok()) break;
    }
    for (const Clause& rule : program->rules) {
      if (!loaded.ok()) break;
      loaded = rules.AddRule(rule);
    }
    BuildOptions build_options;
    build_options.max_depth = options_.max_depth;
    Result<BuiltGraph> built =
        loaded.ok()
            ? BuildInferenceGraph(rules, *form, &symbols, build_options)
            : Result<BuiltGraph>(loaded);
    if (!built.ok()) {
      sink_->Error("V-G009", "",
                   StrFormat("inference graph construction failed: %s",
                             built.status().message().c_str()),
                   "the PAO/PIB learners need a buildable graph for this "
                   "query form");
    } else {
      VerifyBuiltGraph(*built, db, symbols, sink_, options_);
      if (sink_->num_errors() == errors_before) {
        graph_context_ = std::move(built->graph);
      }
    }
  } else if (form.ok() && uses_negation &&
             sink_->num_errors() == errors_before) {
    sink_->Note("V-G009", "",
                "graph context not built: the program uses negation as "
                "failure, which the inference-graph builder does not "
                "support",
                "");
  }

  std::string strategy_text = FindDirective(text, "% verify-strategy:");
  if (!strategy_text.empty()) {
    if (!graph_context_) {
      sink_->Error("V-S005", "",
                   "cannot check % verify-strategy: no graph context "
                   "(the program must verify cleanly with a "
                   "% verify-form: directive first)");
    } else {
      std::vector<int64_t> arcs;
      bool tokens_ok = true;
      for (const std::string& token : Split(strategy_text, ' ')) {
        std::string_view t = Trim(token);
        if (t.empty()) continue;
        std::string buffer(t);
        char* end = nullptr;
        long long value = std::strtoll(buffer.c_str(), &end, 10);
        if (end != buffer.c_str() + buffer.size()) {
          sink_->Error("V-S001", "",
                       StrFormat("token '%s' in %% verify-strategy: is "
                                 "not an arc id",
                                 buffer.c_str()));
          tokens_ok = false;
          continue;
        }
        arcs.push_back(value);
      }
      size_t strategy_errors_before = sink_->num_errors();
      if (tokens_ok) {
        VerifyStrategyOrder(*graph_context_, arcs, sink_);
        if (sink_->num_errors() == strategy_errors_before) {
          std::vector<ArcId> ids(arcs.begin(), arcs.end());
          Result<Strategy> strategy =
              Strategy::FromArcOrder(*graph_context_, std::move(ids));
          if (strategy.ok()) {
            VerifyStrategyCost(*graph_context_, *strategy, profile(), sink_);
          }
        }
      }
    }
  }

  std::string config_text = FindDirective(text, "% verify-config:");
  if (!config_text.empty()) {
    std::string config_lines = Join(Split(config_text, ' '), "\n");
    VerifyConfig(config_lines);
  }
}

namespace {

/// Feed order of an artifact kind in project mode: context providers
/// (programs define graphs) before context consumers. -1 = not ours.
int KindPriority(const std::string& extension) {
  if (extension == ".dl") return 0;
  if (extension == ".graph") return 1;
  if (extension == ".andor") return 2;
  if (extension == ".strategy") return 3;
  if (extension == ".cfg") return 4;
  if (extension == ".alerts") return 5;
  if (extension == ".ckpt") return 6;
  if (extension == ".audit") return 7;
  if (extension == ".recovery") return 8;
  return -1;
}

}  // namespace

Status VerifyProject(ArtifactVerifier* verifier, const std::string& dir,
                     DiagnosticSink* sink) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound(
        StrFormat("'%s' is not a directory", dir.c_str()));
  }
  std::vector<std::pair<int, std::string>> artifacts;
  for (fs::recursive_directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    int priority = KindPriority(it->path().extension().string());
    if (priority < 0) continue;
    artifacts.emplace_back(
        priority, fs::relative(it->path(), dir, ec).generic_string());
  }
  std::sort(artifacts.begin(), artifacts.end());
  if (artifacts.empty()) {
    sink->set_file(dir);
    sink->Warning("V-P002", "",
                  "project directory contains no verifiable artifacts",
                  "recognised extensions: .dl .graph .andor .strategy "
                  ".cfg .alerts .ckpt .audit .recovery");
    return Status::OK();
  }
  for (const auto& [priority, relative] : artifacts) {
    std::ifstream in((fs::path(dir) / relative));
    if (!in) {
      sink->set_file(relative);
      sink->Error("V-P003", "", "artifact became unreadable mid-walk",
                  "check permissions and re-run");
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    verifier->AddText(relative, buffer.str());
  }
  return Status::OK();
}

Status GuardLoadedProgram(const RuleBase& rules, const BuiltGraph& built,
                          const Database& db, const SymbolTable& symbols) {
  DiagnosticSink sink;
  const std::vector<Clause>& all = rules.AllRules();
  for (size_t i = 0; i < all.size(); ++i) {
    const Clause& rule = all[i];
    for (const Atom& literal : rule.body) {
      SymbolId pred = literal.predicate;
      if (!rules.IsIntensional(pred) && db.Arity(pred) < 0) {
        sink.Error("V-R003", StrFormat("rule %zu", i),
                   StrFormat("predicate '%s' in '%s' is used but never "
                             "defined: it heads no rule and has no "
                             "facts, so this literal can never succeed",
                             symbols.Name(pred).c_str(),
                             rule.ToString(symbols).c_str()),
                   "define the predicate or fix the spelling");
      }
    }
  }
  VerifyBuiltGraph(built, db, symbols, &sink);
  if (sink.HasBlocking()) {
    return Status::FailedPrecondition(
        StrFormat("static verification failed:\n%s",
                  sink.RenderText().c_str()));
  }
  return Status::OK();
}

}  // namespace stratlearn::verify
