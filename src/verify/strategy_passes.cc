#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/strategy.h"
#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

/// PIB explores 𝒯(Θ): sibling-swap transformations, which permute the
/// child order at individual nodes. A leaf visiting order is reachable
/// that way iff every subtree's leaves are contiguous in it — a swap
/// never interleaves one subtree's leaves with another's.
void CheckSiblingSwapReachability(const InferenceGraph& graph,
                                  const Strategy& strategy,
                                  DiagnosticSink* sink) {
  std::vector<ArcId> leaf_order = strategy.LeafOrder(graph);
  std::unordered_map<ArcId, size_t> position;
  for (size_t i = 0; i < leaf_order.size(); ++i) position[leaf_order[i]] = i;
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    size_t min_pos = leaf_order.size();
    size_t max_pos = 0;
    size_t count = 0;
    for (ArcId sub : graph.SubtreeArcs(a)) {
      auto it = position.find(sub);
      if (it == position.end()) continue;  // not a success arc
      min_pos = it->second < min_pos ? it->second : min_pos;
      max_pos = it->second > max_pos ? it->second : max_pos;
      ++count;
    }
    if (count > 1 && max_pos - min_pos + 1 != count) {
      sink->Warning(
          "V-S004", StrFormat("arc %u", a),
          StrFormat("the strategy interleaves the leaves of subtree '%s' "
                    "with leaves outside it; no sequence of sibling "
                    "swaps reaches this order from the default strategy",
                    graph.arc(a).label.c_str()),
          "PIB's hill-climbing over the sibling-swap set T(Theta) can "
          "neither produce nor improve on this strategy");
      return;  // one finding is enough; deeper subtrees repeat the story
    }
  }
}

}  // namespace

void VerifyStrategyOrder(const InferenceGraph& graph,
                         const std::vector<int64_t>& arcs,
                         DiagnosticSink* sink) {
  bool ids_ok = true;
  for (size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i] < 0 || arcs[i] >= static_cast<int64_t>(graph.num_arcs())) {
      sink->Error("V-S001", StrFormat("position %zu", i),
                  StrFormat("arc id %lld does not exist; the graph has %zu "
                            "arcs",
                            static_cast<long long>(arcs[i]),
                            graph.num_arcs()));
      ids_ok = false;
    }
  }
  std::unordered_set<int64_t> seen;
  bool permutation_ok = true;
  for (size_t i = 0; i < arcs.size(); ++i) {
    if (!seen.insert(arcs[i]).second) {
      sink->Error("V-S002", StrFormat("position %zu", i),
                  StrFormat("arc id %lld appears more than once; a "
                            "strategy is a permutation of the graph's "
                            "arcs",
                            static_cast<long long>(arcs[i])));
      permutation_ok = false;
    }
  }
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    if (seen.count(static_cast<int64_t>(a)) == 0) {
      sink->Error("V-S002", "",
                  StrFormat("arc %u ('%s') is missing from the strategy; "
                            "a strategy is a permutation of the graph's "
                            "arcs",
                            a, graph.arc(a).label.c_str()));
      permutation_ok = false;
    }
  }
  if (!ids_ok || !permutation_ok) return;

  // Tail-before-head: the processor can only consider an arc once its
  // tail node has been reached.
  std::unordered_set<NodeId> reached = {graph.root()};
  bool order_ok = true;
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& arc = graph.arc(static_cast<ArcId>(arcs[i]));
    if (reached.count(arc.from) == 0) {
      sink->Error("V-S003", StrFormat("position %zu", i),
                  StrFormat("arc %lld ('%s') appears before any arc "
                            "reaching its tail node %u",
                            static_cast<long long>(arcs[i]),
                            arc.label.c_str(), arc.from),
                  "order every arc after the arc that leads to its tail");
      order_ok = false;
    }
    reached.insert(arc.to);
  }
  if (!order_ok) return;

  std::vector<ArcId> ids(arcs.begin(), arcs.end());
  Result<Strategy> strategy = Strategy::FromArcOrder(graph, std::move(ids));
  if (!strategy.ok()) {
    // The checks above mirror FromArcOrder's contract, so this is
    // unexpected — surface it rather than swallowing it.
    sink->Error("V-S003", "",
                StrFormat("strategy rejected by the engine: %s",
                          strategy.status().message().c_str()));
    return;
  }
  CheckSiblingSwapReachability(graph, *strategy, sink);
}

void VerifyStrategyText(const InferenceGraph& graph, std::string_view text,
                        DiagnosticSink* sink) {
  std::string_view trimmed = Trim(text);
  constexpr std::string_view kHeader = "stratlearn-strategy v1";
  if (!StartsWith(trimmed, kHeader)) {
    sink->Error("V-S001", "line 1",
                "missing 'stratlearn-strategy v1' header");
    return;
  }
  std::vector<int64_t> arcs;
  bool tokens_ok = true;
  for (const std::string& token :
       Split(std::string(trimmed.substr(kHeader.size())), ' ')) {
    std::string_view t = Trim(token);
    if (t.empty()) continue;
    std::string buffer(t);
    char* end = nullptr;
    long long value = std::strtoll(buffer.c_str(), &end, 10);
    if (end != buffer.c_str() + buffer.size()) {
      sink->Error("V-S001", "line 1",
                  StrFormat("token '%s' is not an arc id", buffer.c_str()));
      tokens_ok = false;
      continue;
    }
    arcs.push_back(value);
  }
  if (!tokens_ok) return;
  VerifyStrategyOrder(graph, arcs, sink);
}

}  // namespace stratlearn::verify
