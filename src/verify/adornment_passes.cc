#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/adornment.h"
#include "obs/json_writer.h"
#include "util/string_util.h"
#include "verify/dataflow.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

/// "instructor^b" / "path^bf" / "halt" (arity 0).
std::string FormName(const SymbolTable& symbols, SymbolId predicate,
                     const Adornment& adornment) {
  std::string out = symbols.Name(predicate);
  std::string pattern = adornment.ToString();
  if (!pattern.empty()) {
    out += '^';
    out += pattern;
  }
  return out;
}

std::string RuleLocation(const Program& program, size_t rule_index) {
  return rule_index < program.rule_lines.size()
             ? StrFormat("line %d", program.rule_lines[rule_index])
             : StrFormat("rule %zu", rule_index);
}

}  // namespace

AdornmentAnalysis AnalyzeAdornments(const Program& program,
                                    const SymbolTable& symbols,
                                    const QueryForm& form,
                                    int64_t max_iterations) {
  // Node universe: every predicate mentioned anywhere, plus the query
  // predicate, in name order (stable across symbol interning orders).
  std::vector<SymbolId> predicates;
  std::unordered_set<SymbolId> seen;
  auto add = [&](SymbolId p) {
    if (seen.insert(p).second) predicates.push_back(p);
  };
  add(form.predicate);
  for (const Clause& fact : program.facts) add(fact.head.predicate);
  for (const Clause& rule : program.rules) {
    add(rule.head.predicate);
    for (const Atom& literal : rule.body) add(literal.predicate);
  }
  std::sort(predicates.begin(), predicates.end(),
            [&](SymbolId a, SymbolId b) {
              return symbols.Name(a) < symbols.Name(b);
            });
  std::unordered_map<SymbolId, size_t> index;
  for (size_t i = 0; i < predicates.size(); ++i) index[predicates[i]] = i;

  // A changed head adornment set re-derives the SIP of every rule the
  // head predicate owns, which may push new patterns into each body
  // predicate: successors(head) = body predicates.
  std::vector<std::vector<size_t>> successors(predicates.size());
  for (const Clause& rule : program.rules) {
    std::vector<size_t>& out = successors[index[rule.head.predicate]];
    for (const Atom& literal : rule.body) {
      size_t to = index[literal.predicate];
      if (std::find(out.begin(), out.end(), to) == out.end()) {
        out.push_back(to);
      }
    }
  }

  std::vector<AdornmentSet> initial(predicates.size());
  Adornment query;
  query.bound = form.bound;
  initial[index[form.predicate]].Insert(query);

  FixpointEngine<AdornmentSet>::Options options;
  options.max_iterations = max_iterations;
  FixpointEngine<AdornmentSet> engine(std::move(initial),
                                      std::move(successors), options);

  // transfer(q) rebuilds q's callable set from scratch: the query seed
  // (when q is the entry point) plus, for every rule and every adornment
  // its head can be called with, the pattern the SIP ordering calls q's
  // literals with. Monotone because AdornmentSet only ever grows.
  auto transfer = [&](size_t node,
                      const std::vector<AdornmentSet>& values) {
    AdornmentSet out;
    if (predicates[node] == form.predicate) out.Insert(query);
    for (const Clause& rule : program.rules) {
      bool mentions = false;
      for (const Atom& literal : rule.body) {
        mentions = mentions || literal.predicate == predicates[node];
      }
      if (!mentions) continue;
      const AdornmentSet& heads = values[index.at(rule.head.predicate)];
      for (const Adornment& head : heads.adornments()) {
        SipOrdering sip = ComputeSip(rule, head);
        for (const SipStep& step : sip.steps) {
          if (rule.body[step.literal].predicate == predicates[node]) {
            out.Insert(step.adornment);
          }
        }
      }
    }
    return out;
  };
  auto join = [](AdornmentSet* current, const AdornmentSet& incoming) {
    return current->UnionWith(incoming);
  };
  FixpointResult fixpoint = engine.Solve(transfer, join);

  AdornmentAnalysis analysis;
  analysis.converged = fixpoint.converged;
  analysis.iterations = fixpoint.iterations;
  std::unordered_set<SymbolId> heads;
  for (const Clause& rule : program.rules) heads.insert(rule.head.predicate);
  for (size_t i = 0; i < predicates.size(); ++i) {
    AdornmentTable table;
    table.predicate = predicates[i];
    table.intensional = heads.count(predicates[i]) > 0;
    table.callable = engine.value(i);
    analysis.tables.push_back(std::move(table));
  }
  return analysis;
}

AdornmentAnalysis VerifyAdornments(const Program& program,
                                   const SymbolTable& symbols,
                                   const QueryForm& form,
                                   DiagnosticSink* sink,
                                   const VerifyOptions& options) {
  Adornment query;
  query.bound = form.bound;

  // V-D006: an all-free entry point. Legal, but every evaluation of the
  // query is a full enumeration, so the learned orderings matter little.
  if (query.IsAllFree()) {
    sink->Note("V-D006", "",
               StrFormat("query form '%s' binds no argument: every query "
                         "enumerates the predicate's whole extension, so "
                         "retrieval order barely matters",
                         FormName(symbols, form.predicate, query).c_str()),
               "bind at least one argument position in % verify-form:");
  }

  AdornmentAnalysis analysis = AnalyzeAdornments(
      program, symbols, form, options.dataflow_max_iterations);

  // Machine-readable adornment tables (the static half of a QSQ net's
  // subquery-table keys) for the JSON report / SARIF property bag.
  {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("kind").Value("adornments");
    w.Key("file").Value(sink->file());
    w.Key("query_form").Value(FormName(symbols, form.predicate, query));
    w.Key("converged").Value(analysis.converged);
    w.Key("iterations").Value(analysis.iterations);
    w.Key("predicates").BeginArray();
    for (const AdornmentTable& table : analysis.tables) {
      w.BeginObject();
      w.Key("predicate").Value(symbols.Name(table.predicate));
      w.Key("intensional").Value(table.intensional);
      w.Key("adornments").BeginArray();
      for (const Adornment& a : table.callable.adornments()) {
        w.Value(a.ToString());
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    sink->AddAnalysis(w.Take());
  }

  if (!analysis.converged) {
    sink->Error(
        "V-D005", "",
        StrFormat("adornment dataflow did not converge within %lld "
                  "iterations; binding-pattern results are a partial "
                  "under-approximation",
                  static_cast<long long>(options.dataflow_max_iterations)),
        "raise the iteration cap (the adornment lattice is bounded by "
        "2^arity per predicate, so non-convergence means the cap is too "
        "low for this program)");
    // The sets are under-approximate: "empty" and "all-free only" would
    // be unsound verdicts, so the reachability passes stand down.
    return analysis;
  }

  std::unordered_set<SymbolId> used_in_bodies;
  for (const Clause& rule : program.rules) {
    for (const Atom& literal : rule.body) {
      used_in_bodies.insert(literal.predicate);
    }
  }
  std::unordered_set<SymbolId> fact_preds;
  for (const Clause& fact : program.facts) {
    fact_preds.insert(fact.head.predicate);
  }

  for (const AdornmentTable& table : analysis.tables) {
    SymbolId p = table.predicate;
    // V-D001: mentioned in rule bodies, yet no binding pattern ever
    // reaches it from the query form — the literals are dead code.
    // (Predicates in no body are V-R004's department.)
    if (table.callable.empty() && used_in_bodies.count(p) > 0 &&
        p != form.predicate) {
      sink->Warning(
          "V-D001", "",
          StrFormat("predicate '%s' is never called: no binding pattern "
                    "reaches it from query form '%s'",
                    symbols.Name(p).c_str(),
                    FormName(symbols, form.predicate, query).c_str()),
          "the rules calling it are themselves unreachable; remove them "
          "or connect them to the query form");
    }
    // V-D002: an extensional relation only ever consulted with every
    // argument free — each retrieval scans the whole relation.
    if (!table.intensional && fact_preds.count(p) > 0 &&
        !table.callable.empty()) {
      bool all_free_only = true;
      for (const Adornment& a : table.callable.adornments()) {
        all_free_only = all_free_only && a.IsAllFree();
      }
      if (all_free_only) {
        sink->Warning(
            "V-D002", "",
            StrFormat("every retrieval of extensional predicate '%s' "
                      "arrives with all arguments free: each call scans "
                      "the whole relation",
                      symbols.Name(p).c_str()),
            "reorder rule bodies (or bind more of the query form) so a "
            "binding reaches this predicate sideways");
      }
    }
  }

  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Clause& rule = program.rules[r];
    const AdornmentTable* table = analysis.Find(rule.head.predicate);
    if (table == nullptr || table->callable.empty()) continue;
    std::string location = RuleLocation(program, r);
    std::vector<char> contributes(rule.body.size(), 0);
    for (const Adornment& head : table->callable.adornments()) {
      SipOrdering sip = ComputeSip(rule, head);
      for (const SipStep& step : sip.steps) {
        if (step.contributes) contributes[step.literal] = 1;
        // V-D004: the greedy SIP got stuck, and (because bound-variable
        // sets only grow) so does every other ordering of this body.
        if (!step.feasible) {
          sink->Warning(
              "V-D004", location,
              StrFormat("rule '%s' has no feasible "
                        "sideways-information-passing order under head "
                        "adornment '%s': literal '%s' can only be "
                        "evaluated with every argument free",
                        rule.ToString(symbols).c_str(),
                        FormName(symbols, rule.head.predicate, head)
                            .c_str(),
                        rule.body[step.literal].ToString(symbols).c_str()),
              "share a variable with an earlier literal so bindings can "
              "flow into it");
        }
      }
    }
    // V-D003: a positive literal with variables that never binds a new
    // one under any reachable head adornment — it only filters. Bodies
    // of one literal are exempt: with nothing to reorder around, the
    // observation is vacuous.
    if (rule.body.size() < 2) continue;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.IsNegated(i) || contributes[i] != 0) continue;
      bool has_variable = false;
      for (const Term& t : rule.body[i].args) {
        has_variable = has_variable || t.is_variable();
      }
      if (!has_variable) continue;
      sink->Note(
          "V-D003", location,
          StrFormat("literal '%s' in rule '%s' never binds a new "
                    "variable under any reachable head adornment; it "
                    "only filters earlier bindings",
                    rule.body[i].ToString(symbols).c_str(),
                    rule.ToString(symbols).c_str()),
          "pure tests are cheapest late in the body, where fewer "
          "contexts reach them");
    }
  }

  return analysis;
}

}  // namespace stratlearn::verify
