// Audit-log passes (V-AUD...): structural and statistical vetting of
// "stratlearn-audit v1" decision-certificate streams (obs::AuditLog).
//
// These are the cheap always-on checks an archived audit file must
// survive before anyone trusts its certificates: the stream parses,
// the per-learner delta ledger is monotone and never overspends its
// budget, every verdict agrees with the sign of its margin, and the
// summary's counters match the stream it closes. The expensive
// re-derivation against the raw event trace lives in tools/audit_verify,
// which recomputes every threshold through the stats layer.

#include <map>
#include <sstream>

#include "obs/audit/audit_reader.h"
#include "util/string_util.h"
#include "verify/diagnostics.h"
#include "verify/verify.h"

namespace stratlearn::verify {

void VerifyAuditText(std::string_view text, DiagnosticSink* sink) {
  std::istringstream in{std::string(text)};
  Result<obs::AuditFile> read = obs::ReadAuditLog(in);
  if (!read.ok()) {
    sink->Error("V-AUD001", "",
                StrFormat("not a valid stratlearn-audit v1 stream: %s",
                          read.status().message().c_str()),
                "regenerate with --audit-out; partial copies and hand "
                "edits are not recoverable");
    return;
  }
  const obs::AuditFile& file = read.value();

  // Ledger discipline: per learner, delta_spent_total must advance by
  // exactly delta_step per certificate and stay within the budget the
  // certificate itself declares.
  struct Ledger {
    double spent = 0.0;
    bool reported_sum = false;
  };
  std::map<std::string, Ledger> ledgers;
  // A rebaseline recovery certificate re-opens the ledger: the rewound
  // trial counter re-charges earlier delta rungs, so overspend at or
  // after it is certified in-stream and no longer a finding.
  bool ledger_reopened = false;
  for (const obs::AuditCertificate& cert : file.certificates) {
    const obs::DecisionCertificateEvent& e = cert.event;
    if (e.learner == "recovery" && e.verdict == "rebaseline") {
      ledger_reopened = true;
    }
    std::string location = StrFormat("line %lld", (long long)cert.line);
    Ledger& ledger = ledgers[e.learner];
    ledger.spent += e.delta_step;
    if (e.delta_spent_total != ledger.spent && !ledger.reported_sum) {
      ledger.reported_sum = true;  // one report per learner, not per line
      sink->Error("V-AUD002", location,
                  StrFormat("certificate %lld: %s ledger reads %s but the "
                            "emitted delta_steps sum to %s",
                            (long long)cert.seq, e.learner.c_str(),
                            FormatDouble(e.delta_spent_total, 17).c_str(),
                            FormatDouble(ledger.spent, 17).c_str()),
                  "the delta ledger must be the running sum of the "
                  "emitted certificates' delta_step values");
    }
    if (!ledger_reopened && e.delta_spent_total > e.delta_budget) {
      sink->Error("V-AUD002", location,
                  StrFormat("certificate %lld: %s overspent its delta "
                            "budget (%s > %s)",
                            (long long)cert.seq, e.learner.c_str(),
                            FormatDouble(e.delta_spent_total, 17).c_str(),
                            FormatDouble(e.delta_budget, 17).c_str()),
                  "Theorem 1's lifetime confidence no longer holds for "
                  "this run");
    }
    // Verdict/margin agreement: a commit, quota-met or PIB_1 stop
    // claims the statistic crossed its threshold; a reject or PALO
    // stop claims it stayed below. Recovery certificates always claim
    // a crossing: their test is "matched transitions >= 1" and the
    // verdict names the action taken, not a commit/reject outcome.
    bool wants_crossed = e.verdict == "commit" || e.verdict == "met" ||
                         (e.verdict == "stop" && e.learner == "pib1") ||
                         e.learner == "recovery";
    bool wants_below = e.verdict == "reject" ||
                       (e.verdict == "stop" && e.learner == "palo");
    if (wants_crossed && e.margin < 0.0) {
      sink->Error("V-AUD003", location,
                  StrFormat("certificate %lld: verdict \"%s\" but the "
                            "margin is negative (%s)",
                            (long long)cert.seq, e.verdict.c_str(),
                            FormatDouble(e.margin, 17).c_str()),
                  "a crossing verdict with a negative margin is not "
                  "conservative: the decision was not justified by the "
                  "recorded statistics");
    } else if (wants_below && e.margin > 0.0) {
      sink->Error("V-AUD003", location,
                  StrFormat("certificate %lld: verdict \"%s\" but the "
                            "margin is positive (%s)",
                            (long long)cert.seq, e.verdict.c_str(),
                            FormatDouble(e.margin, 17).c_str()));
    } else if (!wants_crossed && !wants_below) {
      sink->Error("V-AUD003", location,
                  StrFormat("certificate %lld: unknown learner/verdict "
                            "combination \"%s\"/\"%s\"",
                            (long long)cert.seq, e.learner.c_str(),
                            e.verdict.c_str()));
    }
    if (e.learner == "recovery" &&
        !robust::IsKnownRecoveryAction(e.verdict)) {
      sink->Error("V-AUD003", location,
                  StrFormat("certificate %lld: \"%s\" is not a recovery "
                            "action",
                            (long long)cert.seq, e.verdict.c_str()));
    }
    if (e.margin != e.delta_sum - e.threshold) {
      sink->Error("V-AUD003", location,
                  StrFormat("certificate %lld: margin %s != delta_sum - "
                            "threshold (%s)",
                            (long long)cert.seq,
                            FormatDouble(e.margin, 17).c_str(),
                            FormatDouble(e.delta_sum - e.threshold, 17)
                                .c_str()));
    }
  }

  // Summary agreement with the stream it closes. A missing summary is
  // a warning (the run may have crashed before Close), a disagreeing
  // one is an error.
  if (!file.summary.present) {
    sink->Warning("V-AUD004", "",
                  "audit stream has no summary record",
                  "the run likely ended before the log was closed; the "
                  "certificates above are still individually valid");
    return;
  }
  const obs::AuditSummary& s = file.summary;
  std::string location = StrFormat("line %lld", (long long)s.line);
  int64_t commits = 0, rejects = 0, stops = 0, quotas_met = 0;
  double spent_max = 0.0;
  bool budget_ok = true;
  for (const obs::AuditCertificate& cert : file.certificates) {
    const obs::DecisionCertificateEvent& e = cert.event;
    if (e.verdict == "commit") ++commits;
    else if (e.verdict == "reject") ++rejects;
    else if (e.verdict == "stop") ++stops;
    else if (e.verdict == "met") ++quotas_met;
    if (e.delta_spent_total > spent_max) spent_max = e.delta_spent_total;
    if (e.delta_spent_total > e.delta_budget) budget_ok = false;
  }
  if (s.certificates != (int64_t)file.certificates.size() ||
      s.commits != commits || s.rejects != rejects || s.stops != stops ||
      s.quotas_met != quotas_met) {
    sink->Error("V-AUD004", location,
                StrFormat("summary counts certificates=%lld commits=%lld "
                          "rejects=%lld stops=%lld quotas_met=%lld but the "
                          "stream holds %zu/%lld/%lld/%lld/%lld",
                          (long long)s.certificates, (long long)s.commits,
                          (long long)s.rejects, (long long)s.stops,
                          (long long)s.quotas_met, file.certificates.size(),
                          (long long)commits, (long long)rejects,
                          (long long)stops, (long long)quotas_met));
  }
  if (s.delta_spent_total != spent_max) {
    sink->Error("V-AUD004", location,
                StrFormat("summary delta_spent_total %s does not match the "
                          "stream's maximum ledger %s",
                          FormatDouble(s.delta_spent_total, 17).c_str(),
                          FormatDouble(spent_max, 17).c_str()));
  }
  if (s.budget_ok != budget_ok) {
    sink->Error("V-AUD004", location,
                StrFormat("summary budget_ok=%s disagrees with the "
                          "stream (%s)",
                          s.budget_ok ? "true" : "false",
                          budget_ok ? "true" : "false"));
  }
  if (!budget_ok && !ledger_reopened) {
    sink->Error("V-AUD002", location, "run overspent its delta budget");
  }
  if (sink->num_errors() == 0) {
    sink->Note("V-AUD000", "",
               StrFormat("%zu certificates, delta ledger %s of %s spent",
                         file.certificates.size(),
                         FormatDouble(s.delta_spent_total, 6).c_str(),
                         FormatDouble(s.delta_budget, 6).c_str()));
  }
}

}  // namespace stratlearn::verify
