#ifndef STRATLEARN_VERIFY_SUPPRESSIONS_H_
#define STRATLEARN_VERIFY_SUPPRESSIONS_H_

#include <string>
#include <string_view>
#include <vector>

#include "verify/diagnostics.h"

namespace stratlearn::verify {

/// One baseline entry: a `code|file|location` triple where any field
/// may be the wildcard "*". A diagnostic is suppressed when every field
/// matches exactly (or the rule's field is "*").
struct SuppressionRule {
  std::string code;
  std::string file;
  std::string location;
  /// Line in the suppressions file, for stale-rule reporting.
  int line = 0;

  bool Matches(const Diagnostic& d) const {
    return (code == "*" || code == d.code) &&
           (file == "*" || file == d.file) &&
           (location == "*" || location == d.location);
  }
};

struct SuppressionSet {
  std::vector<SuppressionRule> rules;
};

/// Parses a "stratlearn-suppressions v1" baseline file. Malformed
/// headers and lines are V-SUP001 errors, scoped to `file` (the
/// baseline's own path) — a broken baseline must fail loudly, or CI
/// would silently stop suppressing.
SuppressionSet ParseSuppressions(std::string_view text,
                                 const std::string& file,
                                 DiagnosticSink* sink);

/// Removes every diagnostic the set matches from `sink` (they count as
/// suppressed in the summary), then reports rules that matched nothing
/// as stale (V-SUP002 notes against `file`) so baselines ratchet down
/// instead of accreting. Returns how many diagnostics were suppressed.
size_t ApplySuppressions(const SuppressionSet& set, const std::string& file,
                         DiagnosticSink* sink);

/// Renders the sink's current diagnostics as a baseline file
/// (--suppress-out): header, then one exact `code|file|location` line
/// per distinct finding, in first-appearance order.
std::string RenderSuppressionBaseline(const DiagnosticSink& sink);

}  // namespace stratlearn::verify

#endif  // STRATLEARN_VERIFY_SUPPRESSIONS_H_
