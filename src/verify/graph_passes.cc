#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"
#include "verify/verify.h"

namespace stratlearn::verify {

namespace {

bool ParseDoubleToken(std::string_view token, double* out) {
  std::string buffer(token);
  char* end = nullptr;
  *out = std::strtod(buffer.c_str(), &end);
  return !buffer.empty() && end == buffer.c_str() + buffer.size();
}

bool ParseUintToken(std::string_view token, uint32_t* out) {
  std::string buffer(token);
  char* end = nullptr;
  unsigned long value = std::strtoul(buffer.c_str(), &end, 10);
  if (buffer.empty() || end != buffer.c_str() + buffer.size()) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

/// Splits off the first `n` space-separated tokens; the remainder is the
/// free-form label field (mirrors src/graph/serialization.cc).
bool TakeTokens(std::string_view line, size_t n,
                std::vector<std::string_view>* tokens,
                std::string_view* rest) {
  tokens->clear();
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (start == pos) return false;
    tokens->push_back(line.substr(start, pos - start));
  }
  if (pos < line.size() && line[pos] == ' ') ++pos;
  *rest = line.substr(pos);
  return true;
}

/// Shared tree-shape / cost / depth checks over (possibly malformed)
/// node+arc records. `success` flags which nodes are success boxes.
struct GraphRecords {
  struct ArcRecord {
    uint32_t from = 0;
    uint32_t to = 0;
    double cost = 1.0;
    double success_cost = 0.0;
    double failure_cost = 0.0;
    std::string label;
    int line = 0;
  };
  std::vector<uint8_t> success;  // per node
  std::vector<ArcRecord> arcs;
};

void CheckGraphRecords(const GraphRecords& records, DiagnosticSink* sink,
                       const VerifyOptions& options) {
  size_t num_nodes = records.success.size();
  std::vector<int> incoming(num_nodes, 0);
  std::vector<std::vector<size_t>> out(num_nodes);
  for (size_t a = 0; a < records.arcs.size(); ++a) {
    const GraphRecords::ArcRecord& arc = records.arcs[a];
    std::string location = StrFormat("line %d", arc.line);
    bool endpoints_ok = true;
    if (arc.from >= num_nodes) {
      sink->Error("V-G002", location,
                  StrFormat("arc %zu starts at node %u, but only %zu nodes "
                            "are declared",
                            a, arc.from, num_nodes));
      endpoints_ok = false;
    }
    if (arc.to >= num_nodes) {
      sink->Error("V-G002", location,
                  StrFormat("arc %zu ends at node %u, but only %zu nodes "
                            "are declared",
                            a, arc.to, num_nodes));
      endpoints_ok = false;
    }
    if (arc.cost <= 0.0) {
      sink->Error("V-G003", location,
                  StrFormat("arc %zu has non-positive cost %s; every "
                            "Lambda range and f* bound assumes positive "
                            "arc costs",
                            a, FormatDouble(arc.cost).c_str()));
    }
    if (arc.success_cost < 0.0 || arc.failure_cost < 0.0) {
      sink->Error("V-G003", location,
                  StrFormat("arc %zu has a negative outcome cost", a));
    }
    if (!endpoints_ok) continue;
    if (arc.from == arc.to) {
      sink->Error("V-G001", location,
                  StrFormat("arc %zu is a self-loop on node %u; the AOT "
                            "structure must be a tree",
                            a, arc.from),
                  "Upsilon_AOT's optimality proof requires a tree-shaped "
                  "graph");
      continue;
    }
    ++incoming[arc.to];
    out[arc.from].push_back(a);
    if (records.success[arc.from] != 0) {
      sink->Error("V-G004", location,
                  StrFormat("success node %u has an outgoing arc; success "
                            "boxes terminate derivations and must be "
                            "leaves",
                            arc.from));
    }
  }
  if (num_nodes == 0) return;
  if (incoming[0] > 0) {
    sink->Error("V-G001", "node 0",
                "the root has incoming arcs; the AOT structure must be a "
                "tree rooted at node 0",
                "Upsilon_AOT's optimality proof requires a tree-shaped "
                "graph");
  }
  for (size_t n = 1; n < num_nodes; ++n) {
    if (incoming[n] > 1) {
      sink->Error("V-G001", StrFormat("node %zu", n),
                  StrFormat("node %zu has %d incoming arcs; shared "
                            "subgoals make the graph a DAG, not a tree",
                            n, incoming[n]),
                  "Upsilon_AOT's optimality proof requires a tree-shaped "
                  "graph; duplicate the shared subtree or use the AND/OR "
                  "extension");
    }
  }
  // Reachability + depth from the root (ignoring structurally bad arcs).
  std::vector<int> depth(num_nodes, -1);
  std::vector<size_t> stack = {0};
  depth[0] = 0;
  while (!stack.empty()) {
    size_t n = stack.back();
    stack.pop_back();
    for (size_t a : out[n]) {
      uint32_t to = records.arcs[a].to;
      if (depth[to] >= 0) continue;  // already reached (DAG/cycle case)
      depth[to] = depth[n] + 1;
      stack.push_back(to);
      // Arc depth (root arcs at 0) is depth[to] - 1; warn once, at the
      // first arc past the bound.
      if (depth[to] == options.max_depth + 2) {
        sink->Warning("V-G006", StrFormat("line %d", records.arcs[a].line),
                      StrFormat("arc %zu is at depth %d, beyond the "
                                "unfolding bound %d; this usually means a "
                                "runaway recursive unfolding",
                                a, depth[to] - 1, options.max_depth));
      }
    }
  }
  for (size_t n = 1; n < num_nodes; ++n) {
    if (depth[n] < 0 && incoming[n] == 0) {
      sink->Error("V-G001", StrFormat("node %zu", n),
                  StrFormat("node %zu is unreachable from the root; no "
                            "strategy can ever visit it",
                            n),
                  "remove the node or connect it to the tree");
    }
  }
  for (size_t n = 0; n < num_nodes; ++n) {
    if (depth[n] >= 0 && out[n].empty() && records.success[n] == 0) {
      sink->Warning("V-G005", StrFormat("node %zu", n),
                    StrFormat("node %zu heads a dead-end subtree: it is "
                              "not a success box and has no outgoing "
                              "arcs, so every path through it fails",
                              n),
                    "dead-end arcs add pure cost to every strategy that "
                    "tries them");
    }
  }
}

}  // namespace

void VerifyBuiltGraph(const BuiltGraph& built, const Database& db,
                      const SymbolTable& symbols, DiagnosticSink* sink,
                      const VerifyOptions& options) {
  const InferenceGraph& graph = built.graph;
  Status valid = graph.Validate();
  if (!valid.ok()) {
    sink->Error("V-G001", "",
                StrFormat("built graph fails structural validation: %s",
                          valid.message().c_str()));
    return;
  }
  for (ArcId a = 0; a < graph.num_arcs(); ++a) {
    int depth = graph.ArcDepth(a);
    if (depth > options.max_depth) {
      sink->Warning("V-G006", StrFormat("arc %u", a),
                    StrFormat("arc '%s' is at depth %d, beyond the "
                              "unfolding bound %d",
                              graph.arc(a).label.c_str(), depth,
                              options.max_depth));
    }
  }
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    const Node& node = graph.node(n);
    if (!node.is_success && node.out_arcs.empty()) {
      sink->Warning("V-G005", StrFormat("node %u", n),
                    StrFormat("subgoal '%s' is a dead end: no rule or "
                              "retrieval applies, so every path through "
                              "it fails",
                              node.label.c_str()),
                    "dead-end arcs add pure cost to every strategy that "
                    "tries them");
    }
  }
  for (ArcId a : graph.RetrievalArcs()) {
    auto it = built.retrievals.find(a);
    if (it == built.retrievals.end()) {
      sink->Error("V-G007", StrFormat("arc %u", a),
                  StrFormat("retrieval arc '%s' has no retrieval "
                            "specification",
                            graph.arc(a).label.c_str()));
      continue;
    }
    SymbolId pred = it->second.predicate;
    if (db.Arity(pred) < 0) {
      sink->Error("V-G007", StrFormat("arc %u", a),
                  StrFormat("retrieval arc '%s' queries relation '%s', "
                            "which has no facts in the database; the "
                            "retrieval can never succeed",
                            graph.arc(a).label.c_str(),
                            symbols.Name(pred).c_str()),
                  "load facts for the relation or remove the rule that "
                  "references it");
    }
  }
}

void VerifyGraphText(std::string_view text, DiagnosticSink* sink,
                     const VerifyOptions& options) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != "stratlearn-graph v1") {
    sink->Error("V-G008", "line 1",
                "missing 'stratlearn-graph v1' header line");
    return;
  }
  GraphRecords records;
  std::vector<std::string_view> tokens;
  std::string_view rest;
  bool arcs_seen = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (Trim(line).empty()) continue;
    std::string location = StrFormat("line %zu", i + 1);
    if (StartsWith(line, "node ")) {
      if (arcs_seen) {
        sink->Error("V-G008", location,
                    "node record after the first arc record; nodes must "
                    "be declared first");
        continue;
      }
      if (!TakeTokens(line.substr(5), 1, &tokens, &rest) ||
          (tokens[0] != "0" && tokens[0] != "1")) {
        sink->Error("V-G008", location, "malformed node record",
                    "expected: node <is_success:0|1> <label>");
        continue;
      }
      records.success.push_back(tokens[0] == "1" ? 1 : 0);
    } else if (StartsWith(line, "arc ")) {
      arcs_seen = true;
      GraphRecords::ArcRecord arc;
      arc.line = static_cast<int>(i + 1);
      if (!TakeTokens(line.substr(4), 7, &tokens, &rest) ||
          !ParseUintToken(tokens[0], &arc.from) ||
          !ParseUintToken(tokens[1], &arc.to) ||
          (tokens[2] != "R" && tokens[2] != "D") ||
          !ParseDoubleToken(tokens[3], &arc.cost) ||
          !ParseDoubleToken(tokens[4], &arc.success_cost) ||
          !ParseDoubleToken(tokens[5], &arc.failure_cost) ||
          (tokens[6] != "0" && tokens[6] != "1")) {
        sink->Error("V-G008", location, "malformed arc record",
                    "expected: arc <from> <to> <kind:R|D> <cost> "
                    "<success_cost> <failure_cost> <is_experiment:0|1> "
                    "<label>");
        continue;
      }
      arc.label = std::string(rest);
      records.arcs.push_back(std::move(arc));
    } else {
      sink->Error("V-G008", location,
                  StrFormat("unrecognised record '%s'",
                            std::string(Trim(line).substr(0, 32)).c_str()),
                  "expected 'node ...' or 'arc ...'");
    }
  }
  if (records.success.empty()) {
    sink->Error("V-G008", "", "graph file declares no nodes");
    return;
  }
  CheckGraphRecords(records, sink, options);
}

void VerifyAndOrText(std::string_view text, DiagnosticSink* sink,
                     const VerifyOptions& options) {
  (void)options;
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != "stratlearn-andor v1") {
    sink->Error("V-A006", "line 1",
                "missing 'stratlearn-andor v1' header line");
    return;
  }
  struct NodeRecord {
    char kind = 'L';
    uint32_t parent = 0xffffffffu;
    bool is_root = false;
    double cost = 1.0;
    int line = 0;
    int children = 0;
  };
  std::vector<NodeRecord> nodes;
  std::vector<std::string_view> tokens;
  std::string_view rest;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (Trim(line).empty()) continue;
    std::string location = StrFormat("line %zu", i + 1);
    if (!StartsWith(line, "node ")) {
      sink->Error("V-A006", location,
                  StrFormat("unrecognised record '%s'",
                            std::string(Trim(line).substr(0, 32)).c_str()),
                  "expected 'node <kind:A|O|L> <parent|-> <cost> <label>'");
      continue;
    }
    NodeRecord node;
    node.line = static_cast<int>(i + 1);
    bool ok = TakeTokens(line.substr(5), 3, &tokens, &rest);
    if (ok) {
      ok = tokens[0].size() == 1 &&
           (tokens[0][0] == 'A' || tokens[0][0] == 'O' || tokens[0][0] == 'L');
      if (ok) node.kind = tokens[0][0];
    }
    if (ok) {
      if (tokens[1] == "-") {
        node.is_root = true;
      } else {
        ok = ParseUintToken(tokens[1], &node.parent);
      }
    }
    if (ok) ok = ParseDoubleToken(tokens[2], &node.cost);
    if (!ok) {
      sink->Error("V-A006", location, "malformed node record",
                  "expected: node <kind:A|O|L> <parent|-> <cost> <label>");
      continue;
    }
    nodes.push_back(node);
  }
  for (size_t n = 0; n < nodes.size(); ++n) {
    NodeRecord& node = nodes[n];
    std::string location = StrFormat("line %d", node.line);
    if (node.is_root) {
      if (n != 0) {
        sink->Error("V-A005", location,
                    StrFormat("node %zu has parent '-' but node 0 is "
                              "already the root; an AND/OR tree has "
                              "exactly one root",
                              n));
      }
    } else {
      if (node.parent >= n) {
        sink->Error("V-A001", location,
                    StrFormat("node %zu names parent %u, which is %s; "
                              "parents must be earlier nodes",
                              n, node.parent,
                              node.parent >= nodes.size()
                                  ? "not declared"
                                  : "not declared yet"));
      } else if (nodes[node.parent].kind == 'L') {
        sink->Error("V-A003", location,
                    StrFormat("node %zu names leaf node %u as its parent; "
                              "leaves are experiments and cannot have "
                              "children",
                              n, node.parent));
      } else {
        ++nodes[node.parent].children;
      }
    }
    if (node.kind == 'L' && node.cost <= 0.0) {
      sink->Error("V-A004", location,
                  StrFormat("leaf node %zu has non-positive cost %s; "
                            "attempt costs must be positive",
                            n, FormatDouble(node.cost).c_str()));
    }
  }
  for (size_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].kind != 'L' && nodes[n].children == 0) {
      sink->Warning("V-A002", StrFormat("line %d", nodes[n].line),
                    StrFormat("internal %s node %zu has no children; it "
                              "can never be satisfied",
                              nodes[n].kind == 'A' ? "AND" : "OR", n),
                    "an empty OR fails always; give the node children or "
                    "remove it");
    }
  }
  if (nodes.empty()) {
    sink->Error("V-A006", "", "AND/OR file declares no nodes");
  }
}

}  // namespace stratlearn::verify
