#include "verify/sarif.h"

#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "obs/json_writer.h"
#include "util/string_util.h"

namespace stratlearn::verify {

namespace {

const char* SarifLevel(Severity severity, bool werror) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return werror ? "error" : "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

/// Parses a "line N" location into N, or 0 when the location has some
/// other shape (those become logical locations instead of regions).
int LocationLine(const std::string& location) {
  if (!StartsWith(location, "line ")) return 0;
  const char* digits = location.c_str() + 5;
  char* end = nullptr;
  long value = std::strtol(digits, &end, 10);
  if (end == digits || *end != '\0' || value <= 0) return 0;
  return static_cast<int>(value);
}

}  // namespace

std::string RenderSarif(const DiagnosticSink& sink, bool werror) {
  // Rule table: distinct codes in order of first appearance.
  std::vector<std::string> rule_ids;
  std::unordered_map<std::string, size_t> rule_index;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (rule_index.emplace(d.code, rule_ids.size()).second) {
      rule_ids.push_back(d.code);
    }
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("$schema")
      .Value("https://json.schemastore.org/sarif-2.1.0.json");
  w.Key("version").Value("2.1.0");
  w.Key("runs").BeginArray();
  w.BeginObject();

  w.Key("tool").BeginObject();
  w.Key("driver").BeginObject();
  w.Key("name").Value("stratlearn-verify");
  w.Key("rules").BeginArray();
  for (const std::string& id : rule_ids) {
    w.BeginObject();
    w.Key("id").Value(id);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();

  w.Key("results").BeginArray();
  for (const Diagnostic& d : sink.diagnostics()) {
    w.BeginObject();
    w.Key("ruleId").Value(d.code);
    w.Key("ruleIndex")
        .Value(static_cast<int64_t>(rule_index.at(d.code)));
    w.Key("level").Value(SarifLevel(d.severity, werror));
    w.Key("message").BeginObject();
    w.Key("text").Value(d.message);
    w.EndObject();
    if (!d.file.empty()) {
      int line = LocationLine(d.location);
      w.Key("locations").BeginArray();
      w.BeginObject();
      w.Key("physicalLocation").BeginObject();
      w.Key("artifactLocation").BeginObject();
      w.Key("uri").Value(d.file);
      w.EndObject();
      if (line > 0) {
        w.Key("region").BeginObject();
        w.Key("startLine").Value(static_cast<int64_t>(line));
        w.EndObject();
      }
      w.EndObject();
      if (line == 0 && !d.location.empty()) {
        w.Key("logicalLocations").BeginArray();
        w.BeginObject();
        w.Key("fullyQualifiedName").Value(d.location);
        w.EndObject();
        w.EndArray();
      }
      w.EndObject();
      w.EndArray();
    }
    bool promoted = werror && d.severity == Severity::kWarning;
    if (!d.hint.empty() || promoted) {
      w.Key("properties").BeginObject();
      if (!d.hint.empty()) w.Key("hint").Value(d.hint);
      if (promoted) w.Key("promoted").Value(true);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();

  w.Key("properties").BeginObject();
  if (!sink.analyses().empty()) {
    w.Key("analyses").BeginArray();
    for (const std::string& section : sink.analyses()) w.Raw(section);
    w.EndArray();
  }
  w.Key("summary").BeginObject();
  w.Key("errors").Value(static_cast<int64_t>(sink.num_errors()));
  w.Key("warnings").Value(static_cast<int64_t>(sink.num_warnings()));
  w.Key("notes").Value(static_cast<int64_t>(sink.num_notes()));
  w.Key("suppressed").Value(static_cast<int64_t>(sink.num_suppressed()));
  w.Key("werror").Value(werror);
  w.Key("exit_code").Value(static_cast<int64_t>(sink.ExitCode(werror)));
  w.EndObject();
  w.EndObject();

  w.EndObject();
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace stratlearn::verify
