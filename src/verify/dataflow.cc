#include "verify/dataflow.h"

#include "util/check.h"

namespace stratlearn::verify {

IndexWorklist::IndexWorklist(size_t num_nodes)
    : enqueued_(num_nodes, 0) {
  queue_.reserve(num_nodes);
}

void IndexWorklist::Push(size_t node) {
  STRATLEARN_CHECK(node < enqueued_.size());
  if (enqueued_[node] != 0) return;
  enqueued_[node] = 1;
  queue_.push_back(node);
}

size_t IndexWorklist::Pop() {
  STRATLEARN_CHECK(head_ < queue_.size());
  size_t node = queue_[head_];
  ++head_;
  enqueued_[node] = 0;
  ++pops_;
  // Reclaim the drained prefix so long-running fixpoints stay O(live).
  if (head_ == queue_.size()) {
    queue_.clear();
    head_ = 0;
  }
  return node;
}

}  // namespace stratlearn::verify
