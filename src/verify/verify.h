#ifndef STRATLEARN_VERIFY_VERIFY_H_
#define STRATLEARN_VERIFY_VERIFY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/database.h"
#include "datalog/parser.h"
#include "datalog/rule_base.h"
#include "datalog/symbol_table.h"
#include "graph/builder.h"
#include "graph/inference_graph.h"
#include "obs/health/alerts.h"
#include "verify/diagnostics.h"

namespace stratlearn::verify {

/// Greiner's guarantees only hold under structural preconditions — a
/// tree-shaped inference graph for Upsilon_AOT, strategies that are true
/// permutations of the arcs, epsilon/delta in range, a delta_i schedule
/// that sums to <= delta. The passes in this header check those
/// preconditions statically, before a learner ever runs, and report
/// findings through a DiagnosticSink (see README.md for the code table).

struct VerifyOptions {
  /// V-G006: arcs deeper than this suggest a runaway unfolding (matches
  /// BuildOptions.max_depth's default).
  int max_depth = 32;
  /// Promote warnings to errors for exit-code purposes (--Werror).
  bool werror = false;
};

// ---- Rule-base passes (V-R...) -----------------------------------------

/// Range restriction/safety, non-ground facts, undefined and unused
/// predicates, direct/mutual recursion, NAF safety and stratification.
/// `form` (optional) exempts the query predicate from the unused check.
void VerifyProgram(const Program& program, const SymbolTable& symbols,
                   const QueryForm* form, DiagnosticSink* sink);

// ---- Inference-graph passes (V-G...) -----------------------------------

/// Semantic checks over a built (tree-shaped by construction) graph:
/// structural validation, dead-end subtrees, depth bound, retrieval
/// arcs with no backing relation in `db`.
void VerifyBuiltGraph(const BuiltGraph& built, const Database& db,
                      const SymbolTable& symbols, DiagnosticSink* sink,
                      const VerifyOptions& options = {});

/// Structural checks over serialized "stratlearn-graph v1" text. Unlike
/// DeserializeGraph this is tolerant: a malformed file yields
/// diagnostics (non-tree shape, dangling node references, non-positive
/// costs, success nodes with children, ...) instead of one load error.
void VerifyGraphText(std::string_view text, DiagnosticSink* sink,
                     const VerifyOptions& options = {});

/// Structural checks over serialized "stratlearn-andor v1" text
/// (AND/OR trees): forward/dangling parents, childless internal nodes,
/// leaves used as parents, non-positive leaf costs, stray extra roots.
void VerifyAndOrText(std::string_view text, DiagnosticSink* sink,
                     const VerifyOptions& options = {});

// ---- Strategy passes (V-S...) ------------------------------------------

/// Checks an explicit arc order against `graph`: dangling arc ids,
/// permutation property, tail-before-head ordering, and reachability
/// from the default strategy under the sibling-swap transformation set
/// (PIB can only learn hierarchically contiguous strategies).
void VerifyStrategyOrder(const InferenceGraph& graph,
                         const std::vector<int64_t>& arcs,
                         DiagnosticSink* sink);

/// Same, for "stratlearn-strategy v1 ..." text (tolerant parse).
void VerifyStrategyText(const InferenceGraph& graph, std::string_view text,
                        DiagnosticSink* sink);

// ---- Learner-config passes (V-C...) ------------------------------------

/// The delta_i = delta * schedule_c / i^2 sequential-test schedule sums
/// to delta exactly when schedule_c = 6/pi^2 (Section 3.2).
inline constexpr double kConvergentScheduleC = 0.60792710185402662866;

/// A learner configuration, as read from a *.cfg file or assembled from
/// CLI flags. Defaults mirror the CLI's.
struct LearnerConfig {
  double delta = 0.05;
  double epsilon = 0.5;
  int64_t queries = 5000;
  int64_t test_every = 1;
  int64_t max_contexts = 10'000'000;
  /// Numerator constant of the delta_i schedule (see above).
  double schedule_c = kConvergentScheduleC;
  /// Extra simultaneous hypotheses k charged against each test round
  /// (1 when, as in PIB, the trial counter already advances by |T| per
  /// context and the threshold absorbs the union bound).
  int64_t hypotheses = 1;
  bool theorem3 = false;
};

/// Parses "key = value" lines ('#'/'%' comments). Unknown keys and
/// unparseable lines become diagnostics, not hard errors.
LearnerConfig ParseLearnerConfig(std::string_view text, DiagnosticSink* sink);

/// Range checks epsilon/delta, delta_i-schedule convergence (with the
/// k-hypothesis Bonferroni term), iteration counts, and — when `graph`
/// is given — the Equation 7/8 sample quotas m(d_i)/m'(e_i): overflow
/// and quotas no run of `max_contexts` contexts could ever meet.
void VerifyLearnerConfig(const LearnerConfig& config,
                         const InferenceGraph* graph, DiagnosticSink* sink);

// ---- Alert-config passes (V-AL...) -------------------------------------

/// Parses and verifies a "stratlearn-alerts v1" rule file. Malformed
/// lines (V-AL001), unknown metric selectors (V-AL002), non-positive
/// thresholds/for-durations (V-AL003) and duplicate rule ids (V-AL004)
/// are errors; an empty rule set is a warning (V-AL005). Only clean
/// rules land in the returned set, so this doubles as the production
/// loader for the CLI health paths (which refuse to run when the sink
/// has blocking findings).
obs::health::AlertRuleSet ParseAlertRules(std::string_view text,
                                          DiagnosticSink* sink);

// ---- Robustness passes (V-K...) ----------------------------------------

/// Verifies a "stratlearn-crc32" checksummed container (the learner
/// checkpoint format): header shape, payload length (truncation) and
/// CRC-32 integrity (bit corruption) — V-K001 on failure. When the
/// payload is a "stratlearn-checkpoint v1", its structure is also
/// checked (known directives, required learner/RNG/strategy lines,
/// well-formed counters) — V-K002 findings. Deliberately graph-free:
/// the deep semantic validation happens when a run resumes.
void VerifyChecksummedText(std::string_view text, DiagnosticSink* sink);

// ---- Drivers ------------------------------------------------------------

/// Verifies a sequence of artifact files (`stratlearn_cli verify`),
/// dispatching on content: Datalog programs (with optional
/// `% verify-form:`, `% verify-strategy:` and `% verify-config:`
/// directives), "stratlearn-graph v1" files, "stratlearn-andor v1"
/// files, and key=value learner configs (*.cfg). A program-with-form or
/// graph file that verifies cleanly becomes the *graph context* that
/// later strategy and config files are checked against.
class ArtifactVerifier {
 public:
  ArtifactVerifier(DiagnosticSink* sink, VerifyOptions options = {});

  /// Reads and verifies one file. Returns non-OK only when the file
  /// cannot be read at all (analysis findings go to the sink).
  Status AddFile(const std::string& path);

  /// In-memory variant (`name` scopes the diagnostics).
  void AddText(const std::string& name, std::string_view text);

  /// The current graph context, if any (for tests).
  const InferenceGraph* graph_context() const {
    return graph_context_ ? &*graph_context_ : nullptr;
  }

 private:
  void VerifyDatalog(std::string_view text);
  void VerifyConfig(std::string_view text);

  DiagnosticSink* sink_;
  VerifyOptions options_;
  std::optional<InferenceGraph> graph_context_;
};

/// The error-level guard the CLI entry points run after loading a
/// program and building its graph, before any learning: undefined
/// predicates, recursion, structural graph checks, retrievals with no
/// backing relation. Returns FailedPrecondition carrying the rendered
/// diagnostics when any error-severity finding exists.
Status GuardLoadedProgram(const RuleBase& rules, const BuiltGraph& built,
                          const Database& db, const SymbolTable& symbols);

}  // namespace stratlearn::verify

#endif  // STRATLEARN_VERIFY_VERIFY_H_
