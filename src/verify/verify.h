#ifndef STRATLEARN_VERIFY_VERIFY_H_
#define STRATLEARN_VERIFY_VERIFY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/expected_cost_interval.h"
#include "datalog/adornment.h"
#include "datalog/database.h"
#include "datalog/parser.h"
#include "datalog/rule_base.h"
#include "datalog/symbol_table.h"
#include "graph/builder.h"
#include "graph/inference_graph.h"
#include "obs/health/alerts.h"
#include "robust/recovery/policy.h"
#include "verify/diagnostics.h"

namespace stratlearn::verify {

/// Greiner's guarantees only hold under structural preconditions — a
/// tree-shaped inference graph for Upsilon_AOT, strategies that are true
/// permutations of the arcs, epsilon/delta in range, a delta_i schedule
/// that sums to <= delta. The passes in this header check those
/// preconditions statically, before a learner ever runs, and report
/// findings through a DiagnosticSink (see README.md for the code table).

struct VerifyOptions {
  /// V-G006: arcs deeper than this suggest a runaway unfolding (matches
  /// BuildOptions.max_depth's default).
  int max_depth = 32;
  /// Promote warnings to errors for exit-code purposes (--Werror).
  bool werror = false;
  /// Iteration cap for the verify subsystem's dataflow fixpoints
  /// (V-D005 when hit). Overridable per file with the
  /// `% verify-dataflow-cap: N` directive.
  int64_t dataflow_max_iterations = 100000;
};

// ---- Rule-base passes (V-R...) -----------------------------------------

/// Range restriction/safety, non-ground facts, undefined and unused
/// predicates, direct/mutual recursion, NAF safety and stratification.
/// `form` (optional) exempts the query predicate from the unused check.
void VerifyProgram(const Program& program, const SymbolTable& symbols,
                   const QueryForm* form, DiagnosticSink* sink);

// ---- Rule-base dataflow passes (V-D...) --------------------------------

/// Binding-pattern (adornment) dataflow: starting from the query form's
/// pattern, a worklist fixpoint propagates adornments from rule heads
/// into rule bodies in sideways-information-passing order, yielding the
/// set of patterns every predicate can be called with (the static half
/// of QSQ's subquery tables). `max_iterations` caps the fixpoint; the
/// result's `converged` flag is false when it was hit.
AdornmentAnalysis AnalyzeAdornments(const Program& program,
                                    const SymbolTable& symbols,
                                    const QueryForm& form,
                                    int64_t max_iterations = 100000);

/// Runs AnalyzeAdornments and reports on it: unreachable predicates
/// (V-D001), extensional relations only ever scanned in full (V-D002),
/// literals that never bind a variable (V-D003), rule bodies with no
/// feasible SIP order (V-D004), fixpoint non-convergence (V-D005) and
/// all-free query forms (V-D006). Attaches the per-predicate adornment
/// table to the sink as an "adornments" analysis section.
AdornmentAnalysis VerifyAdornments(const Program& program,
                                   const SymbolTable& symbols,
                                   const QueryForm& form,
                                   DiagnosticSink* sink,
                                   const VerifyOptions& options = {});

// ---- Inference-graph passes (V-G...) -----------------------------------

/// Semantic checks over a built (tree-shaped by construction) graph:
/// structural validation, dead-end subtrees, depth bound, retrieval
/// arcs with no backing relation in `db`.
void VerifyBuiltGraph(const BuiltGraph& built, const Database& db,
                      const SymbolTable& symbols, DiagnosticSink* sink,
                      const VerifyOptions& options = {});

/// Structural checks over serialized "stratlearn-graph v1" text. Unlike
/// DeserializeGraph this is tolerant: a malformed file yields
/// diagnostics (non-tree shape, dangling node references, non-positive
/// costs, success nodes with children, ...) instead of one load error.
void VerifyGraphText(std::string_view text, DiagnosticSink* sink,
                     const VerifyOptions& options = {});

/// Structural checks over serialized "stratlearn-andor v1" text
/// (AND/OR trees): forward/dangling parents, childless internal nodes,
/// leaves used as parents, non-positive leaf costs, stray extra roots.
void VerifyAndOrText(std::string_view text, DiagnosticSink* sink,
                     const VerifyOptions& options = {});

// ---- Strategy passes (V-S...) ------------------------------------------

/// Checks an explicit arc order against `graph`: dangling arc ids,
/// permutation property, tail-before-head ordering, and reachability
/// from the default strategy under the sibling-swap transformation set
/// (PIB can only learn hierarchically contiguous strategies).
void VerifyStrategyOrder(const InferenceGraph& graph,
                         const std::vector<int64_t>& arcs,
                         DiagnosticSink* sink);

/// Same, for "stratlearn-strategy v1 ..." text (tolerant parse).
void VerifyStrategyText(const InferenceGraph& graph, std::string_view text,
                        DiagnosticSink* sink);

// ---- Learner-config passes (V-C...) ------------------------------------

/// The delta_i = delta * schedule_c / i^2 sequential-test schedule sums
/// to delta exactly when schedule_c = 6/pi^2 (Section 3.2).
inline constexpr double kConvergentScheduleC = 0.60792710185402662866;

/// A learner configuration, as read from a *.cfg file or assembled from
/// CLI flags. Defaults mirror the CLI's.
struct LearnerConfig {
  double delta = 0.05;
  double epsilon = 0.5;
  int64_t queries = 5000;
  int64_t test_every = 1;
  int64_t max_contexts = 10'000'000;
  /// Numerator constant of the delta_i schedule (see above).
  double schedule_c = kConvergentScheduleC;
  /// Extra simultaneous hypotheses k charged against each test round
  /// (1 when, as in PIB, the trial counter already advances by |T| per
  /// context and the threshold absorbs the union bound).
  int64_t hypotheses = 1;
  bool theorem3 = false;
};

/// Parses "key = value" lines ('#'/'%' comments). Unknown keys and
/// unparseable lines become diagnostics, not hard errors.
LearnerConfig ParseLearnerConfig(std::string_view text, DiagnosticSink* sink);

/// Range checks epsilon/delta, delta_i-schedule convergence (with the
/// k-hypothesis Bonferroni term), iteration counts, and — when `graph`
/// is given — the Equation 7/8 sample quotas m(d_i)/m'(e_i): overflow
/// and quotas no run of `max_contexts` contexts could ever meet.
void VerifyLearnerConfig(const LearnerConfig& config,
                         const InferenceGraph* graph, DiagnosticSink* sink);

// ---- Strategy abstract-interpretation passes (V-X...) -------------------

/// Per-arc success-probability intervals measured by a profiling run
/// (StrategyProfiler::ReportJson): arc id -> [p_hat - eps, p_hat + eps]
/// clamped to [0, 1]. Arcs absent from the profile keep the vacuous
/// [0, 1], so a partial profile still yields sound (just wider) bounds.
struct ArcProbProfile {
  std::map<uint32_t, Interval> arcs;
};

/// Parses a profiler JSON report (anything with an "arcs" array of
/// {arc, p_hat, half_width, ...} rows) into a probability model.
/// Malformed structure or out-of-range values are V-X005 errors; rows
/// with zero attempts carry no information and are skipped.
ArcProbProfile ParseArcProbProfile(std::string_view json,
                                   DiagnosticSink* sink);

/// The experiment-indexed interval vector for `graph` under `profile`
/// (every experiment [0, 1] when `profile` is null).
std::vector<Interval> ExperimentIntervals(const InferenceGraph& graph,
                                          const ArcProbProfile* profile);

/// Abstract cost interpretation of one strategy over the probability
/// model: emits the certified expected-cost enclosure [C_lo, C_hi] as a
/// V-X004 note plus a "cost_interval" analysis section, arcs that are
/// never attempted under any probability in the model (V-X003), and
/// sibling orders whose certified worst case beats this strategy's
/// certified best case — statically dominated orders PIB would pay
/// samples to discover (V-X002).
void VerifyStrategyCost(const InferenceGraph& graph, const Strategy& strategy,
                        const ArcProbProfile* profile, DiagnosticSink* sink);

/// Theorem 2/3 quota feasibility under the probability model: each
/// context delivers at most one observation of experiment e, and only
/// when Pi(e) is fully unblocked, so max_contexts * prod_{a in Pi(e)}
/// p_hi(a) bounds the deliverable samples from above. A quota beyond
/// that is unattainable no matter what the world looks like — V-X001,
/// an error, unlike V-C005's "quota exceeds the context budget"
/// warning, because the profile-strengthened bound certifies the
/// learner cannot finish.
void VerifyQuotaFeasibility(const LearnerConfig& config,
                            const InferenceGraph& graph,
                            const ArcProbProfile* profile,
                            DiagnosticSink* sink);

// ---- Alert-config passes (V-AL...) -------------------------------------

/// Parses and verifies a "stratlearn-alerts v1" rule file. Malformed
/// lines (V-AL001), unknown metric selectors (V-AL002), non-positive
/// thresholds/for-durations (V-AL003) and duplicate rule ids (V-AL004)
/// are errors; an empty rule set is a warning (V-AL005). Only clean
/// rules land in the returned set, so this doubles as the production
/// loader for the CLI health paths (which refuse to run when the sink
/// has blocking findings).
obs::health::AlertRuleSet ParseAlertRules(std::string_view text,
                                          DiagnosticSink* sink);

// ---- Recovery-policy passes (V-RC...) ----------------------------------

/// Parses and verifies a "stratlearn-recovery v1" policy file (the
/// recovery controller's trigger -> action map). Missing header /
/// malformed lines (V-RC001), unknown triggers (V-RC002), unknown
/// actions or out-of-range options (V-RC003) and duplicate rule ids
/// (V-RC004) are errors; a policy with no rules is a warning (V-RC005).
/// Only clean rules land in the returned policy, so this doubles as the
/// production loader for the CLI recovery paths.
robust::RecoveryPolicy ParseRecoveryPolicy(std::string_view text,
                                           DiagnosticSink* sink);

// ---- Audit-log passes (V-AUD...) ---------------------------------------

/// Verifies a "stratlearn-audit v1" decision-certificate stream
/// (obs::AuditLog): parse/shape failures are V-AUD001, delta-ledger
/// violations (non-monotone running sum, overspent budget) V-AUD002,
/// non-conservative certificates (verdict disagreeing with the margin's
/// sign, broken margin identity) V-AUD003, and summary records that
/// disagree with the stream they close V-AUD004 (missing summary is a
/// warning: the run may have crashed before Close). Full re-derivation
/// of every threshold from the raw event trace is tools/audit_verify's
/// job; these passes are the trace-free subset.
void VerifyAuditText(std::string_view text, DiagnosticSink* sink);

// ---- Robustness passes (V-K...) ----------------------------------------

/// Verifies a "stratlearn-crc32" checksummed container (the learner
/// checkpoint format): header shape, payload length (truncation) and
/// CRC-32 integrity (bit corruption) — V-K001 on failure. When the
/// payload is a "stratlearn-checkpoint v1", its structure is also
/// checked (known directives, required learner/RNG/strategy lines,
/// well-formed counters) — V-K002 findings. Deliberately graph-free:
/// the deep semantic validation happens when a run resumes.
void VerifyChecksummedText(std::string_view text, DiagnosticSink* sink);

// ---- Drivers ------------------------------------------------------------

/// Verifies a sequence of artifact files (`stratlearn_cli verify`),
/// dispatching on content: Datalog programs (with optional
/// `% verify-form:`, `% verify-strategy:` and `% verify-config:`
/// directives), "stratlearn-graph v1" files, "stratlearn-andor v1"
/// files, and key=value learner configs (*.cfg). A program-with-form or
/// graph file that verifies cleanly becomes the *graph context* that
/// later strategy and config files are checked against.
class ArtifactVerifier {
 public:
  ArtifactVerifier(DiagnosticSink* sink, VerifyOptions options = {});

  /// Reads and verifies one file. Returns non-OK only when the file
  /// cannot be read at all (analysis findings go to the sink).
  Status AddFile(const std::string& path);

  /// In-memory variant (`name` scopes the diagnostics).
  void AddText(const std::string& name, std::string_view text);

  /// The current graph context, if any (for tests).
  const InferenceGraph* graph_context() const {
    return graph_context_ ? &*graph_context_ : nullptr;
  }

  /// Probability model for the V-X passes (--profile). Without one the
  /// cost interpretation runs over the vacuous [0, 1] intervals.
  void set_profile(ArcProbProfile profile) { profile_ = std::move(profile); }
  const ArcProbProfile* profile() const {
    return profile_ ? &*profile_ : nullptr;
  }

 private:
  void VerifyDatalog(std::string_view text);
  void VerifyConfig(std::string_view text);

  DiagnosticSink* sink_;
  VerifyOptions options_;
  std::optional<InferenceGraph> graph_context_;
  std::optional<ArcProbProfile> profile_;
};

/// Project mode (`verify --project <dir>`): walks `dir` recursively,
/// collects every artifact whose extension the verifier understands
/// (.dl, .graph, .andor, .strategy, .cfg, .alerts, .ckpt) and feeds
/// them through `verifier` in a deterministic order — context providers
/// first (programs, then graphs), context consumers after (AND/OR
/// trees, strategies, configs, alerts, checkpoints), lexicographic
/// within each kind — so a project's strategy and config files are
/// checked against the graph its program defines, whatever the
/// filesystem enumeration order. Diagnostics are scoped to paths
/// relative to `dir`. Returns NotFound when `dir` is not a directory;
/// an artifact-free directory is a V-P002 warning, not an error.
Status VerifyProject(ArtifactVerifier* verifier, const std::string& dir,
                     DiagnosticSink* sink);

/// The error-level guard the CLI entry points run after loading a
/// program and building its graph, before any learning: undefined
/// predicates, recursion, structural graph checks, retrievals with no
/// backing relation. Returns FailedPrecondition carrying the rendered
/// diagnostics when any error-severity finding exists.
Status GuardLoadedProgram(const RuleBase& rules, const BuiltGraph& built,
                          const Database& db, const SymbolTable& symbols);

}  // namespace stratlearn::verify

#endif  // STRATLEARN_VERIFY_VERIFY_H_
