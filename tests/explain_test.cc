// Tests for the explain renderers: the annotated strategy tree (visit
// order, profiled estimates, HOT markers), the PIB estimate-state view
// (climb history, Delta~ margins, delta budget), the QP^A sampler view,
// and end-to-end determinism over fixed-seed learning runs.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/pao.h"
#include "core/pib.h"
#include "engine/query_processor.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

/// Figure 2's two-path shape: root with two reduction children, each
/// leading to one retrieval.
InferenceGraph TwoPathGraph() {
  InferenceGraph g;
  NodeId root = g.AddRoot("q");
  auto a = g.AddChild(root, "left", ArcKind::kReduction, 1.0, "A");
  g.AddRetrieval(a.node, 2.0, "B");
  auto c = g.AddChild(root, "right", ArcKind::kReduction, 1.0, "C");
  g.AddRetrieval(c.node, 1.0, "D");
  return g;
}

TEST(ExplainTreeTest, UnprofiledTreeShowsVisitOrder) {
  InferenceGraph g = TwoPathGraph();
  Strategy depth_first = Strategy::DepthFirst(g);
  std::string tree = ExplainStrategyTree(g, depth_first);
  EXPECT_EQ(tree,
            "strategy <A B C D>\n"
            "q\n"
            "  #1 A (reduction, f=1)  p=1 (deterministic)\n"
            "    left\n"
            "      #2 B (retrieval, f=2)\n"
            "        [success]\n"
            "  #3 C (reduction, f=1)  p=1 (deterministic)\n"
            "    right\n"
            "      #4 D (retrieval, f=1)\n"
            "        [success]\n");
}

TEST(ExplainTreeTest, ChildrenFollowStrategyOrderNotGraphOrder) {
  InferenceGraph g = TwoPathGraph();
  // Visit the right path (arcs 2,3) before the left one.
  Result<Strategy> swapped = Strategy::FromArcOrder(g, {2, 3, 0, 1});
  ASSERT_TRUE(swapped.ok());
  std::string tree = ExplainStrategyTree(g, *swapped);
  EXPECT_LT(tree.find("#1 C"), tree.find("#3 A"));
  EXPECT_LT(tree.find("#2 D"), tree.find("#4 B"));
}

TEST(ExplainTreeTest, ProfiledTreeAnnotatesEstimatesAndHotArcs) {
  InferenceGraph g = TwoPathGraph();
  obs::StrategyProfiler profiler;
  // 90% of the cost flows through arc 1; arc 3 is cold; arc 2 never ran.
  for (int i = 0; i < 100; ++i) {
    obs::ArcAttemptEvent e;
    e.arc = 1;
    e.experiment = 0;
    e.unblocked = i < 75;
    e.cost = 9.0;
    profiler.OnArcAttempt(e);
  }
  for (int i = 0; i < 100; ++i) {
    obs::ArcAttemptEvent e;
    e.arc = 3;
    e.experiment = 1;
    e.unblocked = true;
    e.cost = 1.0;
    profiler.OnArcAttempt(e);
  }
  std::string tree =
      ExplainStrategyTree(g, Strategy::DepthFirst(g), &profiler);
  EXPECT_NE(tree.find("#2 B (retrieval, f=2)  p^=0.75 +/- 0.122  "
                      "n=100 mean=9 share=90.0%  HOT"),
            std::string::npos)
      << tree;
  EXPECT_NE(tree.find("#4 D (retrieval, f=1)  p^=1 +/- 0.122  "
                      "n=100 mean=1 share=10.0%  HOT"),
            std::string::npos)
      << tree;
  EXPECT_NE(tree.find("#1 A (reduction, f=1)  p=1 (deterministic)  "
                      "[unobserved]"),
            std::string::npos)
      << tree;
}

TEST(ExplainPibTest, RendersClimbHistoryMarginsAndBudget) {
  Rng rng(99);
  RandomTree tree = MakeRandomTree(rng);
  Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
          PibOptions{.delta = 0.2});
  QueryProcessor qp(&tree.graph);
  IndependentOracle oracle(tree.probs);
  for (int64_t i = 0; i < 2000; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  ASSERT_GE(pib.moves().size(), 1u);

  PibSnapshot snap = pib.Snapshot();
  EXPECT_EQ(snap.moves.size(), pib.moves().size());
  EXPECT_GT(snap.delta_spent_moves, 0.0);
  EXPECT_LT(snap.delta_spent_moves, snap.delta);

  std::string text = ExplainPibState(snap);
  EXPECT_NE(text.find("PIB state: 2000 contexts"), std::string::npos);
  EXPECT_NE(text.find("climb history:"), std::string::npos);
  EXPECT_NE(text.find("#0 at context"), std::string::npos);
  EXPECT_NE(text.find("delta budget: lifetime 0.2"), std::string::npos);
  EXPECT_NE(text.find("neighbourhood"), std::string::npos);
  // Every current neighbour row reports margin = delta_sum - threshold.
  for (const PibSnapshot::Neighbor& n : snap.neighbors) {
    EXPECT_NEAR(n.margin, n.delta_sum - n.threshold, 1e-9);
  }
}

TEST(ExplainPaoTest, RendersQuotaTableWithArcLabels) {
  InferenceGraph g = TwoPathGraph();
  IndependentOracle oracle({0.3, 0.8});
  Rng rng(7);
  PaoOptions options;
  options.epsilon = 1.0;
  options.delta = 0.2;
  Result<PaoResult> result = Pao::Run(g, oracle, rng, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->sampler.experiments.size(), 2u);
  EXPECT_TRUE(result->sampler.quotas_met);
  EXPECT_EQ(result->sampler.contexts, result->contexts_used);
  for (size_t i = 0; i < 2; ++i) {
    const auto& e = result->sampler.experiments[i];
    EXPECT_EQ(e.quota, result->quotas[i]);
    EXPECT_LE(e.remaining, 0);
    EXPECT_GE(e.attempts, e.quota);
    EXPECT_NEAR(e.p_hat, result->estimates[i], 1e-12);
  }

  std::string text = ExplainPaoState(g, result->sampler);
  EXPECT_NE(text.find("quotas met"), std::string::npos);
  EXPECT_NE(text.find("B"), std::string::npos);
  EXPECT_NE(text.find("D"), std::string::npos);
  EXPECT_NE(text.find("experiment"), std::string::npos) << text;
}

TEST(ExplainDeterminismTest, IdenticalRunsRenderIdentically) {
  auto render = [] {
    Rng rng(42);
    RandomTree tree = MakeRandomTree(rng);
    obs::StrategyProfiler profiler;
    obs::MetricsRegistry registry;
    obs::Observer observer(&registry, &profiler);
    Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
            PibOptions{.delta = 0.2}, &observer);
    QueryProcessor qp(&tree.graph, &observer);
    IndependentOracle oracle(tree.probs);
    for (int64_t i = 0; i < 1000; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    }
    return ExplainStrategyTree(tree.graph, pib.strategy(), &profiler) +
           ExplainPibState(pib.Snapshot()) + profiler.ReportText();
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace stratlearn
