// Tests for the Note 4 / [OG90] outcome-dependent cost extension: arcs
// may charge extra on success or on failure of the traversal, and the
// whole stack (engine, expected cost, Upsilon, learners' ranges) must
// stay consistent.

#include <gtest/gtest.h>

#include "core/delta_estimator.h"
#include "core/expected_cost.h"
#include "core/pib.h"
#include "core/upsilon.h"
#include "graph/examples.h"
#include "util/math_util.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

TEST(OutcomeCostsTest, ArcAccessors) {
  Arc arc;
  arc.cost = 2.0;
  arc.success_cost = 3.0;
  arc.failure_cost = 1.0;
  EXPECT_DOUBLE_EQ(arc.MaxCost(), 5.0);
  EXPECT_DOUBLE_EQ(arc.ExpectedAttemptCost(1.0), 5.0);
  EXPECT_DOUBLE_EQ(arc.ExpectedAttemptCost(0.0), 3.0);
  EXPECT_DOUBLE_EQ(arc.ExpectedAttemptCost(0.5), 4.0);
}

TEST(OutcomeCostsTest, EngineChargesByOutcome) {
  FigureOneGraph g = MakeFigureOne();
  // Successful retrievals pay +5 (e.g. materialising the answer), failed
  // ones pay +1 (the failed index probe).
  g.graph.SetOutcomeCosts(g.d_p, 5.0, 1.0);
  g.graph.SetOutcomeCosts(g.d_g, 5.0, 1.0);
  QueryProcessor qp(&g.graph);
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});

  Context grad_only(2);
  grad_only.Set(1, true);
  // R_p(1) + D_p(1 + 1 fail) + R_g(1) + D_g(1 + 5 success) = 10.
  EXPECT_DOUBLE_EQ(qp.Cost(theta1, grad_only), 10.0);

  Context prof_only(2);
  prof_only.Set(0, true);
  // R_p(1) + D_p(1 + 5 success) = 7.
  EXPECT_DOUBLE_EQ(qp.Cost(theta1, prof_only), 7.0);
}

TEST(OutcomeCostsTest, RangeFunctionsUseMaxCost) {
  FigureOneGraph g = MakeFigureOne();
  g.graph.SetOutcomeCosts(g.d_p, 5.0, 1.0);
  // f*(R_p) = f(R_p) + MaxCost(D_p) = 1 + (1 + 5) = 7.
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.r_p), 7.0);
  EXPECT_DOUBLE_EQ(g.graph.FNeg(g.d_g), 7.0);  // R_p + MaxCost(D_p)
  EXPECT_DOUBLE_EQ(g.graph.TotalCost(), 9.0);
}

TEST(OutcomeCostsTest, ExactCostMatchesHandComputation) {
  FigureOneGraph g = MakeFigureOne();
  g.graph.SetOutcomeCosts(g.d_p, 5.0, 1.0);
  g.graph.SetOutcomeCosts(g.d_g, 5.0, 1.0);
  std::vector<double> probs = {0.6, 0.15};
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  // E = [1 + (1 + .6*5 + .4*1)] + .4*[1 + (1 + .15*5 + .85*1)]
  double expected = 1 + (1 + 0.6 * 5 + 0.4 * 1) +
                    0.4 * (1 + (1 + 0.15 * 5 + 0.85 * 1));
  EXPECT_NEAR(ExactExpectedCost(g.graph, theta1, probs), expected, 1e-12);
  EXPECT_NEAR(EnumeratedExpectedCost(g.graph, theta1, probs), expected,
              1e-12);
}

// Property: exact == enumerated on random graphs with outcome costs,
// including internal experiments.
class OutcomeCostProperty : public ::testing::TestWithParam<int> {};

TEST_P(OutcomeCostProperty, ExactMatchesEnumeration) {
  Rng rng(9000 + GetParam());
  RandomTreeOptions options;
  options.depth = 2 + GetParam() % 2;
  options.max_outcome_cost = 3.0;
  options.internal_experiment_prob = (GetParam() % 2 == 0) ? 0.4 : 0.0;
  RandomTree tree = MakeRandomTree(rng, options);
  if (tree.graph.num_experiments() > 12) GTEST_SKIP();

  std::vector<ArcId> leaves = tree.graph.SuccessArcs();
  rng.Shuffle(leaves);
  Strategy theta = Strategy::FromLeafOrder(tree.graph, leaves);
  double exact = ExactExpectedCost(tree.graph, theta, tree.probs);
  double enumerated = EnumeratedExpectedCost(tree.graph, theta, tree.probs);
  EXPECT_TRUE(AlmostEqual(exact, enumerated, 1e-7))
      << "exact=" << exact << " enum=" << enumerated;
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, OutcomeCostProperty,
                         ::testing::Range(0, 20));

// Property: Upsilon remains exactly optimal with outcome costs.
class OutcomeUpsilonProperty : public ::testing::TestWithParam<int> {};

TEST_P(OutcomeUpsilonProperty, MatchesBruteForce) {
  Rng rng(9500 + GetParam());
  RandomTreeOptions options;
  options.depth = 2 + GetParam() % 3;
  options.max_outcome_cost = 2.5;
  RandomTree tree = MakeRandomTree(rng, options);
  if (tree.graph.SuccessArcs().size() > 7) GTEST_SKIP();

  Result<UpsilonResult> upsilon = UpsilonAot(tree.graph, tree.probs);
  ASSERT_TRUE(upsilon.ok()) << upsilon.status().ToString();
  EXPECT_TRUE(upsilon->exact);
  Result<OptimalResult> brute = BruteForceOptimal(tree.graph, tree.probs, 7);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(AlmostEqual(upsilon->expected_cost, brute->cost, 1e-7))
      << "upsilon=" << upsilon->expected_cost << " brute=" << brute->cost;
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, OutcomeUpsilonProperty,
                         ::testing::Range(0, 30));

// Delta~ soundness also holds with outcome costs (the Theorem 1
// machinery keeps working in the extended cost model).
class OutcomeDeltaProperty : public ::testing::TestWithParam<int> {};

TEST_P(OutcomeDeltaProperty, UnderEstimateStaysSound) {
  Rng rng(9800 + GetParam());
  RandomTreeOptions options;
  options.depth = 2;
  options.max_outcome_cost = 2.0;
  RandomTree tree = MakeRandomTree(rng, options);
  size_t n = tree.graph.num_experiments();
  if (n > 10) GTEST_SKIP();

  DeltaEstimator estimator(&tree.graph);
  QueryProcessor qp(&tree.graph);
  Strategy theta = Strategy::DepthFirst(tree.graph);
  for (const SiblingSwap& swap : AllSiblingSwaps(tree.graph)) {
    Strategy alt = ApplySwap(tree.graph, theta, swap);
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      Context ctx = Context::FromMask(n, mask);
      Trace trace = qp.Execute(theta, ctx);
      double exact = estimator.ExactDelta(theta, alt, ctx);
      EXPECT_LE(estimator.UnderEstimate(trace, alt), exact + 1e-9)
          << "mask=" << mask;
      EXPECT_GE(estimator.OverEstimate(trace, alt), exact - 1e-9)
          << "mask=" << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, OutcomeDeltaProperty,
                         ::testing::Range(0, 15));

TEST(OutcomeCostsTest, PibLearnsUnderOutcomeCosts) {
  // A leaf whose *failures* are very expensive (a 30-unit timeout, say)
  // should be tried last even though its base cost matches the other
  // leaf — PIB discovers this from traces alone. (N.b. a surcharge on
  // *success* would hide behind the pessimistic Delta~ completion: the
  // under-estimate assumes unobserved leaves blocked, so it cannot see
  // savings that require the other leaf to succeed. That conservatism is
  // inherent to the paper's estimator and is why this test uses a
  // failure surcharge.)
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  ArcId pricey = g.AddRetrieval(root, 1.0, "pricey").arc;
  ArcId cheap = g.AddRetrieval(root, 1.0, "cheap").arc;
  g.SetOutcomeCosts(pricey, 0.0, 30.0);
  std::vector<double> probs = {0.3, 0.6};

  // Optimal order is cheap-first despite its lower probability.
  Result<OptimalResult> opt = BruteForceOptimal(g, probs);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->strategy.LeafOrder(g), (std::vector<ArcId>{cheap, pricey}));

  Strategy bad = Strategy::FromLeafOrder(g, {pricey, cheap});
  Pib pib(&g, bad, PibOptions{.delta = 0.05});
  IndependentOracle oracle(probs);
  QueryProcessor qp(&g);
  Rng rng(4);
  for (int i = 0; i < 8000; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  EXPECT_EQ(pib.strategy().LeafOrder(g), (std::vector<ArcId>{cheap, pricey}));
}

TEST(OutcomeCostsDeathTest, NegativeOutcomeCostsRejected) {
  FigureOneGraph g = MakeFigureOne();
  EXPECT_DEATH(g.graph.SetOutcomeCosts(g.d_p, -1.0, 0.0), "non-negative");
}

}  // namespace
}  // namespace stratlearn
