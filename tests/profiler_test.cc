// Tests for the strategy profiler: per-arc cost attribution, confidence
// half-widths, the deterministic text/JSON reports (golden), online vs
// JSONL-replay parity over a real PIB run, the two-run diff mode, the
// TeeSink fan-out, the sink RAII close semantics, and TraceReader error
// handling.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pib.h"
#include "engine/query_processor.h"
#include "obs/json_writer.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/sinks.h"
#include "obs/trace_reader.h"
#include "stats/chernoff.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

using obs::ArcAttemptEvent;
using obs::DiffProfiles;
using obs::IsValidJson;
using obs::ProfileDiff;
using obs::ProfileDiffOptions;
using obs::ProfilerOptions;
using obs::QueryEndEvent;
using obs::QueryStartEvent;
using obs::StrategyProfiler;
using obs::TeeSink;
using obs::TraceReader;

ArcAttemptEvent Attempt(uint32_t arc, bool unblocked, double cost,
                        int experiment = 0) {
  ArcAttemptEvent e;
  e.arc = arc;
  e.experiment = experiment;
  e.unblocked = unblocked;
  e.cost = cost;
  return e;
}

/// Feeds `n` attempts of `arc`, of which `unblocked` succeed, each at
/// `cost`, framed as one query per attempt.
void Feed(StrategyProfiler* p, uint32_t arc, int n, int unblocked,
          double cost) {
  for (int i = 0; i < n; ++i) {
    p->OnQueryStart(QueryStartEvent{});
    p->OnArcAttempt(Attempt(arc, i < unblocked, cost));
    QueryEndEvent end;
    end.cost = cost;
    end.success = i < unblocked;
    p->OnQueryEnd(end);
  }
}

TEST(StrategyProfilerTest, ArcAttribution) {
  StrategyProfiler p;
  p.OnQueryStart(QueryStartEvent{});
  p.OnArcAttempt(Attempt(0, true, 1.0, /*experiment=*/-1));
  p.OnArcAttempt(Attempt(1, false, 2.0));
  p.OnArcAttempt(Attempt(1, true, 2.0));
  QueryEndEvent end;
  end.cost = 5.0;
  end.attempts = 3;
  end.success = true;
  p.OnQueryEnd(end);

  EXPECT_EQ(p.queries(), 1);
  EXPECT_EQ(p.queries_succeeded(), 1);
  EXPECT_DOUBLE_EQ(p.total_query_cost(), 5.0);
  ASSERT_EQ(p.arcs().size(), 2u);
  const obs::ArcProfile& a1 = p.arcs().at(1);
  EXPECT_EQ(a1.attempts, 2);
  EXPECT_EQ(a1.unblocked, 1);
  EXPECT_EQ(a1.blocked(), 1);
  EXPECT_DOUBLE_EQ(a1.PHat(), 0.5);
  EXPECT_DOUBLE_EQ(a1.MeanCost(), 2.0);
  EXPECT_DOUBLE_EQ(p.TotalArcCost(), 5.0);
  EXPECT_DOUBLE_EQ(p.CostShare(0), 0.2);
  EXPECT_DOUBLE_EQ(p.CostShare(1), 0.8);
  EXPECT_DOUBLE_EQ(p.CostShare(99), 0.0);
}

TEST(StrategyProfilerTest, HalfWidthMatchesHoeffding) {
  StrategyProfiler p(ProfilerOptions{.delta = 0.1});
  EXPECT_DOUBLE_EQ(p.HalfWidth(0), 1.0);  // no data: vacuous interval
  EXPECT_DOUBLE_EQ(p.HalfWidth(1), 1.0);  // clamped to the unit range
  EXPECT_DOUBLE_EQ(p.HalfWidth(400), HoeffdingDeviation(400, 0.1, 1.0));
}

TEST(StrategyProfilerTest, GoldenTextReport) {
  StrategyProfiler p;
  Feed(&p, 0, 4, 4, 1.0);
  Feed(&p, 1, 4, 1, 2.0);
  const char* expected =
      "== strategy profile ==\n"
      "queries: 8  succeeded: 5  mean cost/query: 1.5  total cost: 12\n"
      "per-arc attribution (delta=0.05, hot >= 10% share):\n"
      "   arc  attempts    unblkd   p_hat  +/-eps       mean        cum"
      "   share\n"
      "     0         4         4       1   0.612          1          4"
      "   33.3%  HOT\n"
      "     1         4         1    0.25   0.612          2          8"
      "   66.7%  HOT\n"
      "climb history: 0 moves, delta budget spent 0\n";
  EXPECT_EQ(p.ReportText(), expected);
}

TEST(StrategyProfilerTest, ReportJsonIsValidAndDeterministic) {
  StrategyProfiler a;
  StrategyProfiler b;
  for (StrategyProfiler* p : {&a, &b}) {
    Feed(p, 3, 10, 7, 0.5);
    Feed(p, 1, 2, 0, 4.0);
  }
  EXPECT_TRUE(IsValidJson(a.ReportJson()));
  EXPECT_EQ(a.ReportJson(), b.ReportJson());
  EXPECT_EQ(a.ReportText(), b.ReportText());
}

TEST(StrategyProfilerTest, OnlineAndReplayReportsAgree) {
  // One real PIB learning run, with the profiler teed next to a JSONL
  // sink; replaying the recorded trace into a fresh profiler must give
  // byte-identical reports (nothing time-based is aggregated).
  Rng rng(99);
  RandomTree tree = MakeRandomTree(rng);

  std::ostringstream trace;
  obs::JsonlSink file(&trace);
  StrategyProfiler online;
  TeeSink tee(std::vector<obs::TraceSink*>{&file, &online});
  obs::MetricsRegistry registry;
  obs::Observer observer(&registry, &tee);

  Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
          PibOptions{.delta = 0.2}, &observer);
  QueryProcessor qp(&tree.graph, &observer);
  IndependentOracle oracle(tree.probs);
  for (int64_t i = 0; i < 2000; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  file.Close();
  ASSERT_GE(pib.moves().size(), 1u) << "run too short to exercise a move";

  StrategyProfiler replayed;
  TraceReader reader(&replayed);
  std::istringstream in(trace.str());
  Status status = reader.ReplayStream(in);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reader.skipped(), 0);
  EXPECT_EQ(online.ReportText(), replayed.ReportText());
  EXPECT_EQ(online.ReportJson(), replayed.ReportJson());
  EXPECT_EQ(online.climbs().size(), pib.moves().size());
}

TEST(ProfileDiffTest, FlagsRegressionBeyondThreshold) {
  StrategyProfiler base;
  StrategyProfiler cand;
  Feed(&base, 0, 20, 10, 1.0);
  Feed(&cand, 0, 20, 10, 1.2);  // +20% mean cost on arc 0
  Feed(&base, 1, 20, 10, 1.0);
  Feed(&cand, 1, 20, 10, 1.05);  // +5%: under the 10% threshold
  ProfileDiff diff = DiffProfiles(base, cand);
  EXPECT_TRUE(diff.has_regression);
  ASSERT_EQ(diff.arcs.size(), 2u);
  EXPECT_TRUE(diff.arcs[0].regression);
  EXPECT_NEAR(diff.arcs[0].rel_change, 0.2, 1e-12);
  EXPECT_FALSE(diff.arcs[1].regression);
  EXPECT_NE(diff.ReportText().find("verdict: REGRESSION"), std::string::npos);
}

TEST(ProfileDiffTest, ImprovementAndParityAreClean) {
  StrategyProfiler base;
  StrategyProfiler cand;
  Feed(&base, 0, 20, 10, 2.0);
  Feed(&cand, 0, 20, 10, 1.0);  // 2x faster: not a regression
  ProfileDiff diff = DiffProfiles(base, cand);
  EXPECT_FALSE(diff.has_regression);
  EXPECT_NE(diff.ReportText().find("verdict: ok"), std::string::npos);

  ProfileDiff self = DiffProfiles(base, base);
  EXPECT_FALSE(self.has_regression);
}

TEST(ProfileDiffTest, SparseArcsAreReportedButNeverFlagged) {
  StrategyProfiler base;
  StrategyProfiler cand;
  Feed(&base, 0, 3, 1, 1.0);
  Feed(&cand, 0, 3, 1, 10.0);  // huge jump, but only 3 attempts
  ProfileDiff diff = DiffProfiles(base, cand);
  ASSERT_EQ(diff.arcs.size(), 1u);
  EXPECT_FALSE(diff.has_regression);
  EXPECT_GT(diff.arcs[0].rel_change, 1.0);

  ProfileDiffOptions lax;
  lax.min_attempts = 1;
  EXPECT_TRUE(DiffProfiles(base, cand, lax).has_regression);
}

TEST(TeeSinkTest, ForwardsToAllAndSkipsNull) {
  StrategyProfiler a;
  StrategyProfiler b;
  TeeSink tee(std::vector<obs::TraceSink*>{&a, nullptr, &b});
  tee.OnQueryStart(QueryStartEvent{});
  tee.OnArcAttempt(Attempt(7, true, 3.0));
  tee.OnQueryEnd(QueryEndEvent{});
  tee.Close();
  for (StrategyProfiler* p : {&a, &b}) {
    EXPECT_EQ(p->queries(), 1);
    EXPECT_EQ(p->arcs().at(7).attempts, 1);
  }
}

TEST(SinkRaiiTest, ChromeTraceValidWithoutExplicitClose) {
  // An early exit (sink destroyed with no Flush/Close call) must still
  // leave a loadable JSON array on disk.
  std::ostringstream out;
  {
    obs::ChromeTraceSink sink(&out);
    QueryEndEvent end;
    end.query_index = 1;
    sink.OnQueryEnd(end);
  }
  EXPECT_TRUE(IsValidJson(out.str())) << out.str();
}

TEST(SinkRaiiTest, EventsAfterCloseAreDropped) {
  std::ostringstream out;
  obs::ChromeTraceSink sink(&out);
  sink.OnQueryEnd(QueryEndEvent{});
  sink.Close();
  std::string closed = out.str();
  EXPECT_TRUE(IsValidJson(closed));
  sink.OnQueryEnd(QueryEndEvent{});
  sink.Close();  // idempotent
  EXPECT_EQ(out.str(), closed);

  std::ostringstream jout;
  obs::JsonlSink jsink(&jout);
  jsink.OnQueryStart(QueryStartEvent{});
  jsink.Close();
  std::string jclosed = jout.str();
  jsink.OnQueryStart(QueryStartEvent{});
  EXPECT_EQ(jout.str(), jclosed);
}

TEST(TraceReaderTest, RejectsMalformedLinesWithLineNumber) {
  StrategyProfiler p;
  TraceReader reader(&p);
  std::istringstream in(
      "{\"type\":\"query_start\",\"t_us\":0,\"query_index\":0}\n"
      "not json at all\n");
  Status status = reader.ReplayStream(in);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.ToString();
}

TEST(TraceReaderTest, SkipsUnknownEventTypes) {
  StrategyProfiler p;
  TraceReader reader(&p);
  ASSERT_TRUE(reader.ReplayLine("{\"type\":\"from_the_future\"}").ok());
  ASSERT_TRUE(
      reader.ReplayLine("{\"type\":\"query_end\",\"cost\":2.5}").ok());
  EXPECT_EQ(reader.skipped(), 1);
  EXPECT_EQ(reader.events(), 1);
  EXPECT_EQ(p.queries(), 1);
  EXPECT_DOUBLE_EQ(p.total_query_cost(), 2.5);
}

}  // namespace
}  // namespace stratlearn
