#include "core/expected_cost_interval.h"

#include <vector>

#include "core/expected_cost.h"
#include "engine/strategy.h"
#include "graph/examples.h"
#include "gtest/gtest.h"

namespace stratlearn {
namespace {

std::vector<Interval> Points(const std::vector<double>& probs) {
  std::vector<Interval> out;
  out.reserve(probs.size());
  for (double p : probs) out.push_back(Interval::Point(p));
  return out;
}

// Point intervals collapse the abstract interpretation to the concrete
// semantics: on Figure 1, [C_lo, C_hi] degenerates to ExactExpectedCost
// for every probability assignment and both arc orders.
TEST(IntervalExpectedCostTest, PointIntervalsMatchExactOnFigureOne) {
  FigureOneGraph fig = MakeFigureOne();
  const std::vector<std::vector<double>> prob_grid = {
      {0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5}, {0.9, 0.1}, {0.25, 0.75}};
  const std::vector<std::vector<ArcId>> orders = {
      {fig.r_p, fig.d_p, fig.r_g, fig.d_g},
      {fig.r_g, fig.d_g, fig.r_p, fig.d_p}};
  for (const std::vector<ArcId>& order : orders) {
    Result<Strategy> strategy = Strategy::FromArcOrder(fig.graph, order);
    ASSERT_TRUE(strategy.ok());
    for (const std::vector<double>& probs : prob_grid) {
      double exact = ExactExpectedCost(fig.graph, *strategy, probs);
      Interval abstract =
          IntervalExpectedCost(fig.graph, *strategy, Points(probs));
      EXPECT_NEAR(abstract.lo, exact, 1e-12);
      EXPECT_NEAR(abstract.hi, exact, 1e-12);
    }
  }
}

// Widened intervals must bracket the exact cost of every probability
// vector inside the box (soundness of the enclosure).
TEST(IntervalExpectedCostTest, WideIntervalsBracketExactOnFigureOne) {
  FigureOneGraph fig = MakeFigureOne();
  Result<Strategy> strategy = Strategy::FromArcOrder(
      fig.graph, {fig.r_p, fig.d_p, fig.r_g, fig.d_g});
  ASSERT_TRUE(strategy.ok());
  std::vector<Interval> box = {{0.2, 0.8}, {0.1, 0.9}};
  Interval enclosure = IntervalExpectedCost(fig.graph, *strategy, box);
  EXPECT_LT(enclosure.lo, enclosure.hi);
  for (double p0 : {0.2, 0.4, 0.55, 0.8}) {
    for (double p1 : {0.1, 0.3, 0.77, 0.9}) {
      double exact = ExactExpectedCost(fig.graph, *strategy, {p0, p1});
      EXPECT_LE(enclosure.lo, exact + 1e-12)
          << "p0=" << p0 << " p1=" << p1;
      EXPECT_GE(enclosure.hi, exact - 1e-12)
          << "p0=" << p0 << " p1=" << p1;
    }
  }
}

// The default, profile-free box [0, 1]^n encloses both degenerate
// worlds: all experiments certain (cheapest) and all impossible (the
// strategy runs to exhaustion).
TEST(IntervalExpectedCostTest, DefaultBoxCoversDegenerateWorlds) {
  FigureOneGraph fig = MakeFigureOne();
  Result<Strategy> strategy = Strategy::FromArcOrder(
      fig.graph, {fig.r_p, fig.d_p, fig.r_g, fig.d_g});
  ASSERT_TRUE(strategy.ok());
  std::vector<Interval> box = {{0.0, 1.0}, {0.0, 1.0}};
  Interval enclosure = IntervalExpectedCost(fig.graph, *strategy, box);
  double best = ExactExpectedCost(fig.graph, *strategy, {1.0, 1.0});
  double worst = ExactExpectedCost(fig.graph, *strategy, {0.0, 0.0});
  EXPECT_LE(enclosure.lo, best + 1e-12);
  EXPECT_GE(enclosure.hi, worst - 1e-12);
}

// Same bracketing on the deeper Figure 2 graph, where reductions nest
// three levels and the no-earlier-success factorisation actually works
// across sibling subtrees.
TEST(IntervalExpectedCostTest, PointIntervalsMatchExactOnFigureTwo) {
  FigureTwoGraph fig = MakeFigureTwo();
  Result<Strategy> strategy = Strategy::FromArcOrder(
      fig.graph, {fig.r_ga, fig.d_a, fig.r_gs, fig.r_sb, fig.d_b, fig.r_st,
                  fig.r_tc, fig.d_c, fig.r_td, fig.d_d});
  ASSERT_TRUE(strategy.ok());
  const std::vector<std::vector<double>> prob_grid = {
      {0.5, 0.5, 0.5, 0.5}, {0.9, 0.2, 0.7, 0.4}, {0.0, 1.0, 0.0, 1.0}};
  for (const std::vector<double>& probs : prob_grid) {
    double exact = ExactExpectedCost(fig.graph, *strategy, probs);
    Interval abstract =
        IntervalExpectedCost(fig.graph, *strategy, Points(probs));
    EXPECT_NEAR(abstract.lo, exact, 1e-12);
    EXPECT_NEAR(abstract.hi, exact, 1e-12);
  }
}

// The breakdown's per-position enclosures are consistent: attempt
// probabilities live in [0, 1], the first arc is always attempted, and
// the contributions sum into the total.
TEST(IntervalExpectedCostTest, BreakdownIsConsistent) {
  FigureOneGraph fig = MakeFigureOne();
  Result<Strategy> strategy = Strategy::FromArcOrder(
      fig.graph, {fig.r_p, fig.d_p, fig.r_g, fig.d_g});
  ASSERT_TRUE(strategy.ok());
  std::vector<Interval> box = {{0.3, 0.6}, {0.2, 0.9}};
  IntervalCostBreakdown breakdown =
      IntervalExpectedCostBreakdown(fig.graph, *strategy, box);
  ASSERT_EQ(breakdown.attempt_prob.size(), strategy->size());
  ASSERT_EQ(breakdown.contribution.size(), strategy->size());
  double lo_sum = 0.0, hi_sum = 0.0;
  for (size_t i = 0; i < strategy->size(); ++i) {
    EXPECT_GE(breakdown.attempt_prob[i].lo, 0.0);
    EXPECT_LE(breakdown.attempt_prob[i].hi, 1.0);
    EXPECT_LE(breakdown.attempt_prob[i].lo, breakdown.attempt_prob[i].hi);
    lo_sum += breakdown.contribution[i].lo;
    hi_sum += breakdown.contribution[i].hi;
  }
  EXPECT_EQ(breakdown.attempt_prob[0].lo, 1.0);
  EXPECT_EQ(breakdown.attempt_prob[0].hi, 1.0);
  EXPECT_NEAR(breakdown.total.lo, lo_sum, 1e-12);
  EXPECT_NEAR(breakdown.total.hi, hi_sum, 1e-12);
}

}  // namespace
}  // namespace stratlearn
