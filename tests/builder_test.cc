#include "graph/builder.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace stratlearn {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  void Load(const std::string& program) {
    Status s = parser_.LoadProgram(program, &db_, &rules_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  Result<BuiltGraph> Build(const std::string& form_text,
                           BuildOptions options = {}) {
    Result<QueryForm> form = QueryForm::Parse(form_text, &symbols_);
    EXPECT_TRUE(form.ok()) << form.status().ToString();
    return BuildInferenceGraph(rules_, *form, &symbols_, options);
  }

  SymbolTable symbols_;
  Parser parser_{&symbols_};
  Database db_;
  RuleBase rules_;
};

TEST_F(BuilderTest, QueryFormParsing) {
  Result<QueryForm> f = QueryForm::Parse("instructor(b)", &symbols_);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->bound, std::vector<bool>{true});
  Result<QueryForm> f2 = QueryForm::Parse("path(b, f)", &symbols_);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2->bound, (std::vector<bool>{true, false}));
  EXPECT_FALSE(QueryForm::Parse("p(x)", &symbols_).ok());
}

TEST_F(BuilderTest, FigureOneUnfolding) {
  Load(R"(
    instructor(X) :- prof(X).
    instructor(X) :- grad(X).
  )");
  Result<BuiltGraph> built = Build("instructor(b)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const InferenceGraph& g = built->graph;
  // Two reduction arcs + two retrieval arcs, as in Figure 1.
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.num_experiments(), 2u);
  EXPECT_EQ(g.SuccessArcs().size(), 2u);
  EXPECT_EQ(built->retrievals.size(), 2u);
  EXPECT_TRUE(built->guards.empty());
}

TEST_F(BuilderTest, RetrievalSpecsBindQueryArguments) {
  Load("instructor(X) :- prof(X).");
  Result<BuiltGraph> built = Build("instructor(b)");
  ASSERT_TRUE(built.ok());
  ASSERT_EQ(built->retrievals.size(), 1u);
  const RetrievalSpec& spec = built->retrievals.begin()->second;
  EXPECT_EQ(symbols_.Name(spec.predicate), "prof");
  ASSERT_EQ(spec.args.size(), 1u);
  EXPECT_EQ(spec.args[0].source, 0);  // takes query argument 0
  EXPECT_FALSE(spec.IsExistential());

  // Evaluate against a concrete database.
  ASSERT_TRUE(parser_.LoadProgram("prof(russ).", &db_, &rules_).ok());
  EXPECT_TRUE(spec.Succeeds(db_, {symbols_.Intern("russ")}));
  EXPECT_FALSE(spec.Succeeds(db_, {symbols_.Intern("fred")}));
}

TEST_F(BuilderTest, NestedRulesUnfoldRecursively) {
  Load(R"(
    a(X) :- b(X).
    b(X) :- c(X).
    b(X) :- d(X).
  )");
  Result<BuiltGraph> built = Build("a(b)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  // a->b reduction, then two branches each reduction+retrieval: 5 arcs.
  EXPECT_EQ(built->graph.num_arcs(), 5u);
  EXPECT_EQ(built->graph.SuccessArcs().size(), 2u);
}

TEST_F(BuilderTest, ConjunctiveExtensionalBodyBecomesChain) {
  Load("happy(X) :- employed(X), healthy(X).");
  Result<BuiltGraph> built = Build("happy(b)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  // Reduction + two retrievals in series; only the last is a success arc.
  EXPECT_EQ(built->graph.num_arcs(), 3u);
  EXPECT_EQ(built->graph.num_experiments(), 2u);
  EXPECT_EQ(built->graph.SuccessArcs().size(), 1u);
}

TEST_F(BuilderTest, GuardedRuleProducesGuardExperiment) {
  // Section 4.1's example: the rule only applies to fred.
  Load(R"(
    grad(X) :- enrolled(X).
    grad(fred) :- admitted(fred, Y).
  )");
  Result<BuiltGraph> built = Build("grad(b)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->guards.size(), 1u);
  const GuardSpec& guard = built->guards.begin()->second;
  ASSERT_EQ(guard.equalities.size(), 1u);
  EXPECT_EQ(guard.equalities[0].first, 0);
  EXPECT_EQ(symbols_.Name(guard.equalities[0].second), "fred");
  EXPECT_TRUE(guard.Satisfied({symbols_.Intern("fred")}));
  EXPECT_FALSE(guard.Satisfied({symbols_.Intern("russ")}));
}

TEST_F(BuilderTest, ExistentialRetrievalSpec) {
  Load("grad(fred) :- admitted(fred, Y).");
  Result<BuiltGraph> built = Build("grad(b)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->retrievals.size(), 1u);
  const RetrievalSpec& spec = built->retrievals.begin()->second;
  EXPECT_TRUE(spec.IsExistential());
  ASSERT_TRUE(db_.Insert(symbols_.Intern("admitted"),
                         {symbols_.Intern("fred"), symbols_.Intern("csc")})
                  .ok());
  EXPECT_TRUE(spec.Succeeds(db_, {symbols_.Intern("fred")}));
}

TEST_F(BuilderTest, FreeQueryPositionsAreExistential) {
  Load("knows(X, Y) :- met(X, Y).");
  Result<BuiltGraph> built = Build("knows(b, f)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const RetrievalSpec& spec = built->retrievals.begin()->second;
  EXPECT_TRUE(spec.IsExistential());
  EXPECT_EQ(spec.args[0].source, 0);
  EXPECT_EQ(spec.args[1].source, RetrievalSpec::ArgSpec::kExistential);
}

TEST_F(BuilderTest, RecursionRejected) {
  Load(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- step(X, Y), path(Y, Y).
  )");
  Result<BuiltGraph> built = Build("path(b, b)");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BuilderTest, DirectRecursionRejected) {
  Load("p(X) :- p(X).");
  Result<BuiltGraph> built = Build("p(b)");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BuilderTest, JoinVariablesRejected) {
  Load("g(X) :- p(X, Z), q(Z).");
  Result<BuiltGraph> built = Build("g(b)");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kUnimplemented);
}

TEST_F(BuilderTest, IntensionalTailAfterExtensionalPrefix) {
  Load(R"(
    senior(X) :- employed(X), veteran(X).
    veteran(X) :- tenured(X).
  )");
  Result<BuiltGraph> built = Build("senior(b)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  // reduction, employed retrieval, veteran-subgoal unfolds: reduction +
  // tenured retrieval.
  EXPECT_EQ(built->graph.num_arcs(), 4u);
}

TEST_F(BuilderTest, IntensionalMidBodyRejected) {
  Load(R"(
    g(X) :- helper(X), plain(X).
    helper(X) :- base(X).
  )");
  Result<BuiltGraph> built = Build("g(b)");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kUnimplemented);
}

TEST_F(BuilderTest, UnknownPredicateFails) {
  Load("a(X) :- b(X).");
  // Query on a predicate with no rules builds a single direct retrieval.
  Result<BuiltGraph> built = Build("zzz(b)");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built->graph.num_arcs(), 1u);
}

TEST_F(BuilderTest, MaxArcsEnforced) {
  Load(R"(
    a(X) :- b1(X). a(X) :- b2(X). a(X) :- b3(X). a(X) :- b4(X).
  )");
  BuildOptions options;
  options.max_arcs = 3;
  Result<BuiltGraph> built = Build("a(b)", options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BuilderTest, CustomCosts) {
  Load("a(X) :- b(X).");
  BuildOptions options;
  options.reduction_cost = 0.25;
  options.retrieval_cost = 4.0;
  Result<BuiltGraph> built = Build("a(b)", options);
  ASSERT_TRUE(built.ok());
  EXPECT_DOUBLE_EQ(built->graph.TotalCost(), 4.25);
}

}  // namespace
}  // namespace stratlearn
