// End-to-end tests that walk the paper's narrative through the real
// pipeline: Datalog text -> inference graph -> query processor ->
// learners, cross-checked against the reference evaluator.

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/pib.h"
#include "core/smith.h"
#include "core/upsilon.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "util/string_util.h"
#include "workload/datalog_oracle.h"

namespace stratlearn {
namespace {

class FigureOnePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(parser_
                    .LoadProgram(
                        "instructor(X) :- prof(X)."
                        "instructor(X) :- grad(X)."
                        "prof(russ). grad(manolis).",
                        &db_, &rules_)
                    .ok());
    Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols_);
    ASSERT_TRUE(form.ok());
    Result<BuiltGraph> built = BuildInferenceGraph(rules_, *form, &symbols_);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    built_ = std::make_unique<BuiltGraph>(std::move(*built));

    workload_.entries.push_back({{symbols_.Intern("russ")}, 0.60});
    workload_.entries.push_back({{symbols_.Intern("manolis")}, 0.15});
    workload_.entries.push_back({{symbols_.Intern("fred")}, 0.25});
    oracle_ = std::make_unique<DatalogOracle>(built_.get(), &db_, workload_);
  }

  SymbolTable symbols_;
  Parser parser_{&symbols_};
  Database db_;
  RuleBase rules_;
  std::unique_ptr<BuiltGraph> built_;
  QueryWorkload workload_;
  std::unique_ptr<DatalogOracle> oracle_;
};

TEST_F(FigureOnePipelineTest, EngineAgreesWithReferenceEvaluator) {
  // Every workload query: the strategy engine's success/failure matches
  // the SLD evaluator's answer.
  QueryProcessor qp(&built_->graph);
  Strategy theta = Strategy::DepthFirst(built_->graph);
  Evaluator evaluator(&db_, &rules_);
  for (const auto& entry : workload_.entries) {
    Context ctx = oracle_->ContextFor(entry.args);
    Trace trace = qp.Execute(theta, ctx);
    Atom query;
    query.predicate = symbols_.Intern("instructor");
    query.args = {Term::Constant(entry.args[0])};
    Result<ProofResult> proof = evaluator.Prove(query, &symbols_);
    ASSERT_TRUE(proof.ok());
    EXPECT_EQ(trace.success, proof->proved)
        << symbols_.Name(entry.args[0]);
  }
}

TEST_F(FigureOnePipelineTest, ExpectedCostsMatchSectionTwo) {
  std::vector<double> probs = oracle_->TrueMarginalProbs();
  EXPECT_NEAR(probs[0], 0.60, 1e-12);
  EXPECT_NEAR(probs[1], 0.15, 1e-12);
  std::vector<ArcId> leaves = built_->graph.SuccessArcs();
  Strategy prof_first = Strategy::FromLeafOrder(built_->graph, leaves);
  Strategy grad_first = Strategy::FromLeafOrder(
      built_->graph, {leaves[1], leaves[0]});
  // The {2.8, 3.7} pair of Section 2 (labels corrected; see
  // EXPERIMENTS.md E1).
  EXPECT_NEAR(ExactExpectedCost(built_->graph, prof_first, probs), 2.8,
              1e-12);
  EXPECT_NEAR(ExactExpectedCost(built_->graph, grad_first, probs), 3.7,
              1e-12);
}

TEST_F(FigureOnePipelineTest, PibLearnsFromMinorsWorkload) {
  // Switch the workload to minors only: grad-first becomes optimal and
  // PIB finds it from real query traces.
  QueryWorkload minors;
  minors.entries.push_back({{symbols_.Intern("manolis")}, 1.0});
  DatalogOracle oracle(built_.get(), &db_, minors);

  std::vector<ArcId> leaves = built_->graph.SuccessArcs();
  Strategy prof_first = Strategy::FromLeafOrder(built_->graph, leaves);
  Pib pib(&built_->graph, prof_first, {.delta = 0.05});
  QueryProcessor qp(&built_->graph);
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  EXPECT_EQ(pib.strategy().LeafOrder(built_->graph),
            (std::vector<ArcId>{leaves[1], leaves[0]}));
}

TEST_F(FigureOnePipelineTest, PaoRecoversWorkloadOptimum) {
  Rng rng(2);
  PaoOptions options;
  options.epsilon = 0.4;
  options.delta = 0.1;
  Result<PaoResult> result =
      Pao::Run(built_->graph, *oracle_, rng, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<double> truth = oracle_->TrueMarginalProbs();
  Result<UpsilonResult> opt = UpsilonAot(built_->graph, truth);
  ASSERT_TRUE(opt.ok());
  double pao_cost =
      ExactExpectedCost(built_->graph, result->strategy, truth);
  EXPECT_LE(pao_cost, opt->expected_cost + options.epsilon + 1e-9);
}

TEST_F(FigureOnePipelineTest, SmithDisagreesWithWorkloadOnDbTwo) {
  // Repeat the Section 2 pitfall fully end-to-end: bulk up the database
  // so fact counts favour prof, but keep a grad-only query stream.
  SymbolId prof = symbols_.Intern("prof");
  SymbolId grad = symbols_.Intern("grad");
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        db_.Insert(prof, {symbols_.Intern(StrFormat("p%d", i))}).ok());
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        db_.Insert(grad, {symbols_.Intern(StrFormat("g%d", i))}).ok());
  }
  QueryWorkload minors;
  for (int i = 0; i < 20; ++i) {
    minors.entries.push_back({{symbols_.Intern(StrFormat("g%d", i))}, 1.0});
  }
  DatalogOracle oracle(built_.get(), &db_, minors);
  std::vector<double> truth = oracle.TrueMarginalProbs();

  std::vector<double> smith_est = SmithFactCountEstimates(*built_, db_);
  Result<UpsilonResult> smith = UpsilonAot(built_->graph, smith_est);
  Result<UpsilonResult> optimal = UpsilonAot(built_->graph, truth);
  ASSERT_TRUE(smith.ok()) << smith.status().ToString();
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();
  double smith_cost =
      ExactExpectedCost(built_->graph, smith->strategy, truth);
  double optimal_cost =
      ExactExpectedCost(built_->graph, optimal->strategy, truth);
  EXPECT_GT(smith_cost, optimal_cost);
  EXPECT_DOUBLE_EQ(smith_cost, 4.0);
  EXPECT_DOUBLE_EQ(optimal_cost, 2.0);
}

TEST(GuardedPipelineTest, TheoremThreeScenarioEndToEnd) {
  // The grad(fred) :- admitted(fred, X) example from Section 4.1:
  // build, sample with the Theorem 3 adaptive processor, and verify the
  // returned strategy answers queries correctly.
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(parser
                  .LoadProgram(
                      "instructor(X) :- prof(X)."
                      "instructor(X) :- grad(X)."
                      "grad(fred) :- admitted(fred, Y)."
                      "prof(russ). admitted(fred, csc).",
                      &db, &rules)
                  .ok());
  Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols);
  ASSERT_TRUE(form.ok());
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->guards.size(), 1u);

  QueryWorkload workload;
  workload.entries.push_back({{symbols.Intern("russ")}, 0.5});
  workload.entries.push_back({{symbols.Intern("fred")}, 0.3});
  workload.entries.push_back({{symbols.Intern("nobody")}, 0.2});
  DatalogOracle oracle(&built.value(), &db, workload);

  Rng rng(3);
  PaoOptions options;
  options.epsilon = 1.5;
  options.delta = 0.2;
  options.mode = PaoOptions::Mode::kTheorem3;
  Result<PaoResult> result = Pao::Run(built->graph, oracle, rng, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The learned strategy still answers every query correctly.
  QueryProcessor qp(&built->graph);
  Evaluator evaluator(&db, &rules);
  for (const char* name : {"russ", "fred", "nobody"}) {
    Context ctx = oracle.ContextFor({symbols.Intern(name)});
    Trace trace = qp.Execute(result->strategy, ctx);
    Atom query;
    query.predicate = symbols.Intern("instructor");
    query.args = {Term::Constant(symbols.Intern(name))};
    Result<ProofResult> proof = evaluator.Prove(query, &symbols);
    ASSERT_TRUE(proof.ok());
    EXPECT_EQ(trace.success, proof->proved) << name;
  }
}

TEST(ChainPipelineTest, ConjunctiveRuleEndToEnd) {
  // Conjunctive (chain-compiled) rule bodies behave identically in the
  // strategy engine and the reference evaluator.
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(parser
                  .LoadProgram(
                      "eligible(X) :- enrolled(X), paid(X)."
                      "eligible(X) :- sponsored(X)."
                      "enrolled(ann). paid(ann)."
                      "enrolled(bob)."  // not paid
                      "sponsored(cho).",
                      &db, &rules)
                  .ok());
  Result<QueryForm> form = QueryForm::Parse("eligible(b)", &symbols);
  ASSERT_TRUE(form.ok());
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  QueryWorkload workload;
  for (const char* name : {"ann", "bob", "cho", "dee"}) {
    workload.entries.push_back({{symbols.Intern(name)}, 1.0});
  }
  DatalogOracle oracle(&built.value(), &db, workload);
  QueryProcessor qp(&built->graph);
  Evaluator evaluator(&db, &rules);
  Strategy theta = Strategy::DepthFirst(built->graph);
  for (const auto& entry : workload.entries) {
    Context ctx = oracle.ContextFor(entry.args);
    Trace trace = qp.Execute(theta, ctx);
    Atom query;
    query.predicate = symbols.Intern("eligible");
    query.args = {Term::Constant(entry.args[0])};
    Result<ProofResult> proof = evaluator.Prove(query, &symbols);
    ASSERT_TRUE(proof.ok());
    EXPECT_EQ(trace.success, proof->proved)
        << symbols.Name(entry.args[0]);
  }
}

}  // namespace
}  // namespace stratlearn
