// Multi-threaded stress tests for the telemetry layer, designed to run
// under TSan (the tsan CI job runs the whole suite): N threads hammer
// the atomic metrics core, the mutex-guarded registry, the LockingSink
// wrapper and the TimeSeriesCollector, and every total must come out
// exact once the writers join — lock-free does not mean lossy.

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_processor.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/sinks.h"
#include "obs/timeseries.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 5000;

void RunThreads(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
  for (std::thread& thread : threads) thread.join();
}

TEST(MetricsConcurrencyTest, CounterTotalIsExact) {
  obs::MetricsRegistry registry;
  obs::Counter& via_handle = registry.GetCounter("stress.handle");
  RunThreads([&](int) {
    for (int i = 0; i < kPerThread; ++i) {
      via_handle.Increment();
      // The lookup path must also be safe mid-flight (mutex-guarded
      // name map), not just pre-resolved handles.
      registry.GetCounter("stress.lookup").Increment(2);
    }
  });
  EXPECT_EQ(via_handle.value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.GetCounter("stress.lookup").value(),
            int64_t{kThreads} * kPerThread * 2);
}

TEST(MetricsConcurrencyTest, HistogramMomentsAreExact) {
  obs::Histogram h({1.0, 2.0, 4.0, 8.0});
  RunThreads([&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      // Values cycle 1..8; thread 0 contributes the global min (0.5)
      // and max (100) exactly once each.
      h.Record(static_cast<double>(i % 8 + 1));
      if (t == 0 && i == 17) h.Record(0.5);
      if (t == 0 && i == 4711) h.Record(100.0);
    }
  });
  int64_t expected = int64_t{kThreads} * kPerThread + 2;
  EXPECT_EQ(h.count(), expected);
  int64_t bucket_total = 0;
  for (size_t i = 0; i < h.num_buckets(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, expected);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // sum = per-thread sum of the 1..8 cycle plus the two outliers.
  double cycle_sum = 0.0;
  for (int i = 0; i < kPerThread; ++i) cycle_sum += i % 8 + 1;
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * cycle_sum + 0.5 + 100.0);
}

TEST(MetricsConcurrencyTest, GaugeNeverTears) {
  obs::Gauge g;
  RunThreads([&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      g.Set(static_cast<double>(t + 1));
    }
  });
  // Last-write-wins: the final value is one of the written values,
  // never a torn bit pattern.
  double v = g.value();
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, kThreads);
  EXPECT_EQ(v, static_cast<int>(v));
}

TEST(MetricsConcurrencyTest, RegistryPointersStableUnderInsertion) {
  obs::MetricsRegistry registry;
  obs::Counter* early = &registry.GetCounter("stable.early");
  std::atomic<bool> mismatch{false};
  RunThreads([&](int t) {
    for (int i = 0; i < 500; ++i) {
      // Churn the name map with fresh insertions...
      registry.GetCounter(StrFormat("churn.%d.%d", t, i)).Increment();
      // ...while the early handle must stay valid and identical.
      if (&registry.GetCounter("stable.early") != early) {
        mismatch.store(true);
      }
      early->Increment();
    }
  });
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(early->value(), int64_t{kThreads} * 500);
}

TEST(MetricsConcurrencyTest, ShardedHistogramsMergeExactly) {
  // The per-thread-shard pattern Merge exists for: each worker records
  // into its own histogram, the aggregator folds them after the join.
  std::vector<obs::Histogram> shards(kThreads, obs::Histogram({1.0, 10.0}));
  RunThreads([&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      shards[t].Record(static_cast<double>(t + 1));
    }
  });
  obs::Histogram merged({1.0, 10.0});
  for (const obs::Histogram& shard : shards) merged.Merge(shard);
  EXPECT_EQ(merged.count(), int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), kThreads);
}

TEST(MetricsConcurrencyTest, SnapshotDuringWritesIsWellFormed) {
  obs::MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      obs::MetricsSnapshot snapshot = registry.Snapshot();
      for (const auto& [name, h] : snapshot.histograms) {
        // Weakly consistent is fine; negative or structurally broken is
        // not.
        EXPECT_GE(h.count, 0) << name;
        EXPECT_EQ(h.bucket_counts.size(), h.bounds.size() + 1) << name;
      }
      EXPECT_TRUE(obs::IsValidJson(registry.SnapshotJson()));
    }
  });
  RunThreads([&](int t) {
    for (int i = 0; i < 2000; ++i) {
      registry.GetCounter("snap.c").Increment();
      registry.GetHistogram("snap.h").Record(static_cast<double>(i % 7));
      registry.GetGauge("snap.g").Set(static_cast<double>(t));
    }
  });
  stop.store(true);
  reader.join();
  EXPECT_EQ(registry.GetCounter("snap.c").value(),
            int64_t{kThreads} * 2000);
  EXPECT_EQ(registry.GetHistogram("snap.h").count(),
            int64_t{kThreads} * 2000);
}

TEST(LockingSinkTest, SerialisesConcurrentEmitters) {
  std::ostringstream out;
  obs::JsonlSink jsonl(&out);
  obs::LockingSink sink(&jsonl);
  RunThreads([&](int t) {
    for (int i = 0; i < 1000; ++i) {
      obs::ArcAttemptEvent e;
      e.query_index = t * 1000 + i;
      e.arc = static_cast<uint32_t>(t);
      e.unblocked = i % 2 == 0;
      e.cost = 1.0;
      sink.OnArcAttempt(e);
    }
  });
  sink.Flush();
  int lines = 0;
  for (const std::string& line : Split(out.str(), '\n')) {
    if (Trim(line).empty()) continue;
    ++lines;
    // Interleaved writers must never produce a torn line.
    EXPECT_TRUE(obs::IsValidJson(line)) << line;
  }
  EXPECT_EQ(lines, kThreads * 1000);
}

TEST(TimeSeriesConcurrencyTest, ArcTotalsExactAcrossWindows) {
  obs::MetricsRegistry registry;
  obs::TimeSeriesCollector collector(&registry, {.interval_us = 10});
  std::atomic<int64_t> clock{0};
  RunThreads([&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      obs::ArcAttemptEvent e;
      e.arc = static_cast<uint32_t>(t % 3);
      e.unblocked = true;
      e.cost = 2.0;
      collector.OnArcAttempt(e);
      registry.GetCounter("ts.events").Increment();
      if (i % 100 == 0) {
        // Threads advance a shared monotone clock while others emit.
        collector.AdvanceTo(clock.fetch_add(1) + 1);
      }
    }
  });
  collector.Finalize(clock.load() + 10);
  int64_t attempts = 0;
  double cost = 0.0;
  int64_t counter_delta = 0;
  for (const obs::TimeSeriesWindow& w : collector.Windows()) {
    for (const obs::ArcWindowStats& arc : w.arcs) {
      attempts += arc.attempts;
      cost += arc.cost;
    }
    counter_delta += w.counter_deltas.at("ts.events");
  }
  // Nothing evicted (default capacity is larger than the window count),
  // so the per-window deltas must add back up to the exact totals.
  EXPECT_EQ(collector.windows_evicted(), 0);
  EXPECT_EQ(attempts, int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(cost, 2.0 * kThreads * kPerThread);
  EXPECT_EQ(counter_delta, int64_t{kThreads} * kPerThread);
}

TEST(QueryProcessorConcurrencyTest, SharedProcessorCountsEveryQuery) {
  // The observe-while-serving scenario the atomic core exists for: one
  // QueryProcessor, one observer, many serving threads.
  Rng tree_rng(42);
  RandomTreeOptions tree_options;
  tree_options.depth = 3;
  tree_options.min_branch = 2;
  tree_options.max_branch = 2;
  RandomTree tree = MakeRandomTree(tree_rng, tree_options);
  Strategy theta = Strategy::DepthFirst(tree.graph);

  obs::MetricsRegistry registry;
  std::ostringstream out;
  obs::JsonlSink jsonl(&out);
  obs::LockingSink sink(&jsonl);
  obs::Observer observer(&registry, &sink);
  QueryProcessor qp(&tree.graph, &observer);

  constexpr int kQueriesPerThread = 500;
  std::atomic<int64_t> attempts{0};
  RunThreads([&](int t) {
    Rng rng(1000 + t);
    IndependentOracle oracle(tree.probs);
    int64_t local_attempts = 0;
    for (int i = 0; i < kQueriesPerThread; ++i) {
      Trace trace = qp.Execute(theta, oracle.Next(rng));
      local_attempts += static_cast<int64_t>(trace.attempts.size());
    }
    attempts.fetch_add(local_attempts);
  });
  sink.Flush();

  constexpr int64_t kTotal = int64_t{kThreads} * kQueriesPerThread;
  EXPECT_EQ(registry.GetCounter("qp.queries").value(), kTotal);
  EXPECT_EQ(registry.GetCounter("qp.arc_attempts").value(), attempts.load());
  EXPECT_EQ(registry.GetHistogram("qp.query_cost").count(), kTotal);
  EXPECT_EQ(registry.GetHistogram("qp.query_wall_us").count(), kTotal);

  // Every query drew a distinct ordinal: count the query_start lines
  // and check index uniqueness.
  std::set<std::string> start_lines;
  int64_t starts = 0;
  for (const std::string& line : Split(out.str(), '\n')) {
    if (line.find("\"type\":\"query_start\"") == std::string::npos) continue;
    ++starts;
    size_t q = line.find("\"query_index\":");
    ASSERT_NE(q, std::string::npos) << line;
    start_lines.insert(line.substr(q));
  }
  EXPECT_EQ(starts, kTotal);
  EXPECT_EQ(static_cast<int64_t>(start_lines.size()), kTotal);
}

}  // namespace
}  // namespace stratlearn
