#include "graph/serialization.h"

#include <gtest/gtest.h>

#include "andor/and_or_serialization.h"
#include "andor/and_or_upsilon.h"
#include "core/expected_cost.h"
#include "engine/strategy.h"
#include "graph/examples.h"
#include "util/math_util.h"
#include "workload/random_tree.h"

namespace stratlearn {
namespace {

/// Structural equality check via re-serialisation.
void ExpectGraphsEqual(const InferenceGraph& a, const InferenceGraph& b) {
  EXPECT_EQ(SerializeGraph(a), SerializeGraph(b));
}

TEST(GraphSerializationTest, FigureOneRoundTrip) {
  FigureOneGraph g = MakeFigureOne();
  std::string text = SerializeGraph(g.graph);
  EXPECT_NE(text.find("stratlearn-graph v1"), std::string::npos);
  Result<InferenceGraph> restored = DeserializeGraph(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectGraphsEqual(g.graph, *restored);
  EXPECT_EQ(restored->num_experiments(), 2u);
  EXPECT_TRUE(restored->Validate().ok());
}

TEST(GraphSerializationTest, PreservesCostsAndOutcomeCosts) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal with spaces");
  ArcId leaf = g.AddRetrieval(root, 2.125, "label with spaces").arc;
  g.SetOutcomeCosts(leaf, 0.25, 1.75);
  Result<InferenceGraph> restored = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_DOUBLE_EQ(restored->arc(leaf).cost, 2.125);
  EXPECT_DOUBLE_EQ(restored->arc(leaf).success_cost, 0.25);
  EXPECT_DOUBLE_EQ(restored->arc(leaf).failure_cost, 1.75);
  EXPECT_EQ(restored->arc(leaf).label, "label with spaces");
  EXPECT_EQ(restored->node(restored->arc(leaf).from).label,
            "goal with spaces");
}

TEST(GraphSerializationTest, RandomTreesRoundTripWithSemantics) {
  Rng rng(31);
  for (int t = 0; t < 20; ++t) {
    RandomTreeOptions options;
    options.internal_experiment_prob = (t % 2) ? 0.3 : 0.0;
    options.max_outcome_cost = (t % 3) ? 1.5 : 0.0;
    RandomTree tree = MakeRandomTree(rng, options);
    Result<InferenceGraph> restored =
        DeserializeGraph(SerializeGraph(tree.graph));
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ExpectGraphsEqual(tree.graph, *restored);
    // Semantics preserved: identical expected costs.
    Strategy theta = Strategy::DepthFirst(tree.graph);
    EXPECT_TRUE(AlmostEqual(
        ExactExpectedCost(tree.graph, theta, tree.probs),
        ExactExpectedCost(*restored, theta, tree.probs)));
  }
}

TEST(GraphSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeGraph("").ok());
  EXPECT_FALSE(DeserializeGraph("not a graph").ok());
  EXPECT_FALSE(DeserializeGraph("stratlearn-graph v1\nbogus line\n").ok());
  EXPECT_FALSE(
      DeserializeGraph("stratlearn-graph v1\nnode 0 root\narc 0 9 R 1 0 0 0 x\n")
          .ok());
  // Arc with non-positive cost.
  EXPECT_FALSE(
      DeserializeGraph(
          "stratlearn-graph v1\nnode 0 root\nnode 1 leaf\narc 0 1 R 0 0 0 0 x\n")
          .ok());
}

TEST(GraphSerializationTest, RejectsChildOfSuccessNode) {
  // Node 1 is a success box, yet the second arc hangs a child off it.
  Result<InferenceGraph> r = DeserializeGraph(
      "stratlearn-graph v1\n"
      "node 0 root\n"
      "node 1 box\n"
      "node 0 sub\n"
      "arc 0 1 D 1 0 0 1 d\n"
      "arc 1 2 R 1 0 0 0 r\n");
  EXPECT_FALSE(r.ok());
}

TEST(StrategySerializationTest, RoundTrip) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta =
      Strategy::FromLeafOrder(g.graph, {g.d_d, g.d_a, g.d_c, g.d_b});
  std::string text = theta.Serialize();
  Result<Strategy> restored = Strategy::Deserialize(g.graph, text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, theta);
}

TEST(StrategySerializationTest, RejectsInvalid) {
  FigureOneGraph g = MakeFigureOne();
  EXPECT_FALSE(Strategy::Deserialize(g.graph, "").ok());
  EXPECT_FALSE(Strategy::Deserialize(g.graph, "wrong header 0 1").ok());
  // Valid header, but an incomplete arc list.
  EXPECT_FALSE(
      Strategy::Deserialize(g.graph, "stratlearn-strategy v1 0 1").ok());
  // Bad token.
  EXPECT_FALSE(
      Strategy::Deserialize(g.graph, "stratlearn-strategy v1 0 1 2 x").ok());
}

TEST(StrategySerializationTest, FullPersistencePipeline) {
  // The deployment story: persist graph + learned strategy, reload both,
  // and keep identical behaviour.
  FigureTwoGraph g = MakeFigureTwo();
  Strategy learned =
      Strategy::FromLeafOrder(g.graph, {g.d_d, g.d_c, g.d_b, g.d_a});
  std::string graph_text = SerializeGraph(g.graph);
  std::string strategy_text = learned.Serialize();

  Result<InferenceGraph> graph2 = DeserializeGraph(graph_text);
  ASSERT_TRUE(graph2.ok());
  Result<Strategy> learned2 = Strategy::Deserialize(*graph2, strategy_text);
  ASSERT_TRUE(learned2.ok());
  std::vector<double> probs = {0.2, 0.4, 0.6, 0.8};
  EXPECT_TRUE(AlmostEqual(ExactExpectedCost(g.graph, learned, probs),
                          ExactExpectedCost(*graph2, *learned2, probs)));
}

TEST(AndOrSerializationTest, GraphRoundTrip) {
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal with spaces");
  AndOrNodeId conj = g.AddInternal(root, AndOrKind::kAnd, "rule 1");
  g.AddLeaf(conj, "leaf a", 1.25);
  g.AddLeaf(conj, "leaf b", 2.5);
  g.AddLeaf(root, "fallback", 0.75);

  std::string text = SerializeAndOrGraph(g);
  Result<AndOrGraph> restored = DeserializeAndOrGraph(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(SerializeAndOrGraph(*restored), text);
  EXPECT_EQ(restored->num_experiments(), 3u);
  EXPECT_DOUBLE_EQ(restored->TotalLeafCost(), 4.5);
  EXPECT_EQ(restored->node(conj).label, "rule 1");

  // Semantics preserved.
  std::vector<double> probs = {0.4, 0.7, 0.2};
  AndOrStrategy theta = AndOrStrategy::Default(g);
  EXPECT_TRUE(AlmostEqual(AndOrExactExpectedCost(g, theta, probs),
                          AndOrExactExpectedCost(*restored, theta, probs)));
}

TEST(AndOrSerializationTest, GraphRejectsGarbage) {
  EXPECT_FALSE(DeserializeAndOrGraph("").ok());
  EXPECT_FALSE(DeserializeAndOrGraph("wrong header").ok());
  EXPECT_FALSE(
      DeserializeAndOrGraph("stratlearn-andor v1\nnode Q - 1 x\n").ok());
  // Child of a leaf.
  EXPECT_FALSE(DeserializeAndOrGraph("stratlearn-andor v1\n"
                                     "node L - 1 root\n"
                                     "node L 0 1 child\n")
                   .ok());
  // Non-positive leaf cost.
  EXPECT_FALSE(DeserializeAndOrGraph("stratlearn-andor v1\n"
                                     "node O - 1 root\n"
                                     "node L 0 0 leaf\n")
                   .ok());
}

TEST(AndOrSerializationTest, StrategyRoundTripAfterLearning) {
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
  AndOrNodeId conj = g.AddInternal(root, AndOrKind::kAnd, "rule");
  g.AddLeaf(conj, "x", 2.0);
  g.AddLeaf(conj, "y", 1.0);
  g.AddLeaf(root, "z", 1.0);
  std::vector<double> probs = {0.8, 0.1, 0.5};

  Result<AndOrUpsilonResult> learned = AndOrUpsilon(g, probs);
  ASSERT_TRUE(learned.ok());
  std::string graph_text = SerializeAndOrGraph(g);
  std::string strategy_text =
      SerializeAndOrStrategy(g, learned->strategy);

  Result<AndOrGraph> g2 = DeserializeAndOrGraph(graph_text);
  ASSERT_TRUE(g2.ok());
  Result<AndOrStrategy> s2 =
      DeserializeAndOrStrategy(*g2, strategy_text);
  ASSERT_TRUE(s2.ok()) << s2.status().ToString();
  EXPECT_EQ(*s2, learned->strategy);
  EXPECT_TRUE(AlmostEqual(
      AndOrExactExpectedCost(g, learned->strategy, probs),
      AndOrExactExpectedCost(*g2, *s2, probs)));
}

TEST(AndOrSerializationTest, StrategyRejectsInvalid) {
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
  g.AddLeaf(root, "x", 1.0);
  g.AddLeaf(root, "y", 1.0);
  EXPECT_FALSE(DeserializeAndOrStrategy(g, "nope").ok());
  EXPECT_FALSE(
      DeserializeAndOrStrategy(g, "stratlearn-andor-strategy v1 0:1").ok());
  EXPECT_FALSE(
      DeserializeAndOrStrategy(g, "stratlearn-andor-strategy v1 0:9,9")
          .ok());
  // Valid: default order spelled out.
  EXPECT_TRUE(
      DeserializeAndOrStrategy(g, "stratlearn-andor-strategy v1 0:1,2")
          .ok());
}

}  // namespace
}  // namespace stratlearn
