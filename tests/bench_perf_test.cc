// Tests for the src/obs/perf performance-observability layer: run
// manifests, the BenchRunner's warmup/repetition/fake-clock contract,
// BENCH JSON schema determinism and parse round-trip, the comparison
// gate's regression logic, and atomic report writes.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json_writer.h"
#include "obs/perf/bench_report.h"
#include "obs/perf/bench_runner.h"
#include "obs/perf/manifest.h"
#include "obs/perf/workloads.h"
#include "util/file_util.h"

namespace stratlearn {
namespace {

using obs::IsValidJson;
using obs::perf::BenchCompareOptions;
using obs::perf::BenchComparison;
using obs::perf::BenchOptions;
using obs::perf::BenchRegistry;
using obs::perf::BenchReport;
using obs::perf::BenchRunner;
using obs::perf::BenchRunResult;
using obs::perf::BenchWorkload;
using obs::perf::BenchWorkloadInstance;
using obs::perf::RepResult;
using obs::perf::RunManifest;

/// Deterministic toy workload: repetition k (1-based, warmup included)
/// reports 100*k work units and 10 items.
class ToyInstance : public BenchWorkloadInstance {
 public:
  RepResult RunOnce() override {
    ++reps_;
    RepResult result;
    result.work_units = 100.0 * reps_;
    result.counters = {{"items", 10}};
    return result;
  }

 private:
  int reps_ = 0;
};

BenchWorkload ToyWorkload() {
  return BenchWorkload{
      "toy", "deterministic ramp",
      [](uint64_t) -> std::unique_ptr<BenchWorkloadInstance> {
        return std::make_unique<ToyInstance>();
      }};
}

BenchOptions FakeOptions() {
  BenchOptions options;
  options.warmup = 1;
  options.repetitions = 4;
  options.seed = 7;
  options.fake_clock = true;
  options.timestamp = "2026-01-01T00:00:00Z";
  return options;
}

TEST(RunManifestTest, FieldsPopulatedAndOverridable) {
  RunManifest manifest =
      obs::perf::CollectRunManifest(42, "2026-02-03T04:05:06Z");
  EXPECT_EQ(manifest.seed, 42u);
  EXPECT_EQ(manifest.timestamp, "2026-02-03T04:05:06Z");
  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_FALSE(manifest.build_type.empty());
  EXPECT_FALSE(manifest.compiler.empty());
  EXPECT_FALSE(manifest.host.empty());
  EXPECT_FALSE(manifest.os.empty());
  // Without an override the stamp is still ISO-8601-shaped.
  RunManifest now = obs::perf::CollectRunManifest(42);
  ASSERT_EQ(now.timestamp.size(), 20u);
  EXPECT_EQ(now.timestamp[10], 'T');
  EXPECT_EQ(now.timestamp.back(), 'Z');
}

TEST(BenchRunnerTest, WarmupExcludedAndFakeClockUsesWorkUnits) {
  BenchRunner runner(FakeOptions());
  BenchRunResult result = runner.Run(ToyWorkload());
  // Warmup consumed rep 1; timed samples are 200..500.
  EXPECT_EQ(result.wall_us.count(), 4);
  EXPECT_DOUBLE_EQ(result.wall_us.min(), 200.0);
  EXPECT_DOUBLE_EQ(result.wall_us.max(), 500.0);
  EXPECT_DOUBLE_EQ(result.total_work_units, 1400.0);
  EXPECT_EQ(result.counters.at("items"), 40);
  EXPECT_EQ(result.peak_rss_kb, 0);  // pinned in fake-clock mode
}

TEST(BenchRunnerTest, RealClockRecordsPositiveTimes) {
  BenchOptions options = FakeOptions();
  options.fake_clock = false;
  BenchRunner runner(options);
  BenchRunResult result = runner.Run(ToyWorkload());
  EXPECT_EQ(result.wall_us.count(), 4);
  EXPECT_GT(result.total_wall_us, 0.0);
  EXPECT_GT(result.peak_rss_kb, 0);
}

TEST(BenchRunnerTest, FakeClockReportIsByteStable) {
  BenchRunner runner(FakeOptions());
  std::string first = runner.Run(ToyWorkload()).ToJson();
  std::string second = runner.Run(ToyWorkload()).ToJson();
  EXPECT_EQ(first, second);
  EXPECT_TRUE(IsValidJson(first));
  EXPECT_NE(first.find("\"schema\":\"stratlearn-bench-v1\""),
            std::string::npos);
}

TEST(BenchReportTest, ParseRoundTrip) {
  BenchRunner runner(FakeOptions());
  BenchRunResult result = runner.Run(ToyWorkload());
  Result<BenchReport> parsed =
      obs::perf::ParseBenchReport(result.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->workload, "toy");
  EXPECT_EQ(parsed->count, 4);
  EXPECT_EQ(parsed->repetitions, 4);
  EXPECT_TRUE(parsed->fake_clock);
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->timestamp, "2026-01-01T00:00:00Z");
  EXPECT_DOUBLE_EQ(parsed->p50, result.wall_us.Percentile(50));
  EXPECT_DOUBLE_EQ(parsed->p99, result.wall_us.Percentile(99));
  EXPECT_DOUBLE_EQ(parsed->work_units, 1400.0);
  EXPECT_EQ(parsed->counters.at("items"), 40);
  EXPECT_GT(parsed->throughput.at("work_units_per_sec"), 0.0);
}

TEST(BenchReportTest, MalformedInputsRejected) {
  EXPECT_FALSE(obs::perf::ParseBenchReport("{oops").ok());
  EXPECT_FALSE(obs::perf::ParseBenchReport("{}").ok());
  EXPECT_FALSE(
      obs::perf::ParseBenchReport(R"({"schema":"other","workload":"x"})")
          .ok());
  // Schema present but the gated wall_us fields missing.
  EXPECT_FALSE(obs::perf::ParseBenchReport(
                   R"({"schema":"stratlearn-bench-v1","workload":"x",)"
                   R"("wall_us":{"count":3}})")
                   .ok());
}

BenchReport Probe(double p50, double p99, int64_t count = 5,
                  bool fake_clock = true) {
  BenchReport report;
  report.workload = "probe";
  report.count = count;
  report.p50 = p50;
  report.p90 = (p50 + p99) / 2;
  report.p99 = p99;
  report.fake_clock = fake_clock;
  return report;
}

TEST(BenchCompareTest, ParityRegressionImprovement) {
  BenchCompareOptions options;  // 25% rel, 50us abs, min_count 3
  Result<BenchComparison> parity =
      CompareBenchReports(Probe(100, 110), Probe(100, 110), options);
  ASSERT_TRUE(parity.ok());
  EXPECT_FALSE(parity->has_regression);

  Result<BenchComparison> regression =
      CompareBenchReports(Probe(100, 110), Probe(170, 187), options);
  ASSERT_TRUE(regression.ok());
  EXPECT_TRUE(regression->has_regression);
  EXPECT_TRUE(regression->metrics[0].regression);  // p50
  EXPECT_TRUE(regression->metrics[1].regression);  // p99

  // The reverse direction is an improvement, never a regression.
  Result<BenchComparison> improvement =
      CompareBenchReports(Probe(170, 187), Probe(100, 110), options);
  ASSERT_TRUE(improvement.ok());
  EXPECT_FALSE(improvement->has_regression);
}

TEST(BenchCompareTest, BothThresholdsMustTrip) {
  BenchCompareOptions options;
  // +60% relative but only +3us absolute: micro-workload jitter.
  EXPECT_FALSE(CompareBenchReports(Probe(5, 6), Probe(8, 9), options)
                   ->has_regression);
  // +60us absolute but only +6% relative: macro-workload jitter.
  EXPECT_FALSE(
      CompareBenchReports(Probe(1000, 1100), Probe(1060, 1160), options)
          ->has_regression);
}

TEST(BenchCompareTest, LowSampleCountNeverGates) {
  BenchCompareOptions options;
  Result<BenchComparison> comparison = CompareBenchReports(
      Probe(100, 110, /*count=*/2), Probe(900, 990, /*count=*/2), options);
  ASSERT_TRUE(comparison.ok());
  EXPECT_FALSE(comparison->has_regression);
  ASSERT_FALSE(comparison->notes.empty());
}

TEST(BenchCompareTest, ClockModeMismatchAnnotatedNotGated) {
  BenchCompareOptions options;
  Result<BenchComparison> comparison = CompareBenchReports(
      Probe(100, 110, 5, /*fake_clock=*/true),
      Probe(900, 990, 5, /*fake_clock=*/false), options);
  ASSERT_TRUE(comparison.ok());
  EXPECT_FALSE(comparison->has_regression);
  ASSERT_FALSE(comparison->notes.empty());
}

TEST(BenchCompareTest, WorkloadMismatchIsAnError) {
  BenchReport other = Probe(100, 110);
  other.workload = "other";
  EXPECT_FALSE(CompareBenchReports(Probe(100, 110), other, {}).ok());
}

TEST(BenchCompareTest, TableNamesEveryMetric) {
  Result<BenchComparison> comparison =
      CompareBenchReports(Probe(100, 110), Probe(170, 187), {});
  ASSERT_TRUE(comparison.ok());
  std::string table =
      obs::perf::RenderComparisonTable({*comparison});
  EXPECT_NE(table.find("probe"), std::string::npos);
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
}

TEST(WriteBenchFileTest, AtomicWriteLeavesNoTempAndRoundTrips) {
  std::string dir = ::testing::TempDir();
  BenchRunner runner(FakeOptions());
  BenchRunResult result = runner.Run(ToyWorkload());
  ASSERT_TRUE(obs::perf::WriteBenchFile(dir, result).ok());
  std::string path = dir + "/" + obs::perf::BenchFileName("toy");
  Result<BenchReport> loaded = obs::perf::LoadBenchReport(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->workload, "toy");
  // The temp staging file must be gone after the rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, OverwritesExistingContent) {
  std::string path = ::testing::TempDir() + "/atomic_overwrite.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first"));
  ASSERT_TRUE(WriteFileAtomic(path, "second"));
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "second");
  std::remove(path.c_str());
}

TEST(CanonicalWorkloadsTest, AllRegisteredRunAndSerialize) {
  BenchRegistry registry;
  obs::perf::RegisterCanonicalWorkloads(&registry);
  ASSERT_EQ(registry.workloads().size(), 11u);
  EXPECT_NE(registry.Find("audit_overhead"), nullptr);
  EXPECT_NE(registry.Find("datalog_load"), nullptr);
  EXPECT_NE(registry.Find("fig1_execute"), nullptr);
  EXPECT_NE(registry.Find("pib_climb"), nullptr);
  EXPECT_NE(registry.Find("pao_quota"), nullptr);
  EXPECT_NE(registry.Find("upsilon_order"), nullptr);
  EXPECT_NE(registry.Find("drift_detect"), nullptr);
  EXPECT_NE(registry.Find("drift_recover"), nullptr);
  EXPECT_NE(registry.Find("obs_overhead_off"), nullptr);
  EXPECT_NE(registry.Find("obs_overhead_metrics"), nullptr);
  EXPECT_NE(registry.Find("obs_overhead_trace"), nullptr);
  EXPECT_EQ(registry.Find("nope"), nullptr);

  BenchOptions options = FakeOptions();
  options.warmup = 0;
  options.repetitions = 1;
  BenchRunner runner(options);
  for (const BenchWorkload& workload : registry.workloads()) {
    BenchRunResult result = runner.Run(workload);
    EXPECT_GT(result.total_work_units, 0.0) << workload.name;
    std::string json = result.ToJson();
    EXPECT_TRUE(IsValidJson(json)) << workload.name;
    Result<BenchReport> parsed = obs::perf::ParseBenchReport(json);
    EXPECT_TRUE(parsed.ok()) << workload.name;
  }
}

// Attaching the observer must not change execution semantics: the three
// obs_overhead variants run the same seeded context stream, so their
// work units (arc attempts) must match exactly.
TEST(CanonicalWorkloadsTest, ObsOverheadVariantsDoIdenticalWork) {
  BenchRegistry registry;
  obs::perf::RegisterCanonicalWorkloads(&registry);
  BenchOptions options = FakeOptions();
  options.warmup = 0;
  options.repetitions = 2;
  BenchRunner runner(options);
  double off =
      runner.Run(*registry.Find("obs_overhead_off")).total_work_units;
  double metrics =
      runner.Run(*registry.Find("obs_overhead_metrics")).total_work_units;
  double trace =
      runner.Run(*registry.Find("obs_overhead_trace")).total_work_units;
  EXPECT_GT(off, 0.0);
  EXPECT_EQ(off, metrics);
  EXPECT_EQ(off, trace);
}

}  // namespace
}  // namespace stratlearn
