#include "core/expected_cost.h"

#include <gtest/gtest.h>

#include "graph/examples.h"
#include "util/math_util.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

TEST(ExpectedCostTest, PaperFigureOneValues) {
  // Section 2 computes the pair {3.7, 2.8} for p_prof = 0.6 and
  // p_grad = 0.15. N.b. the paper's paragraph swaps the two labels (an
  // erratum): by its own per-context costs (c(Theta_1, I_2) = 2 for the
  // 60%-weight russ context), the prof-first Theta_1 costs
  // 2 + (1 - 0.6) * 2 = 2.8 and the grad-first Theta_2 costs
  // 2 + (1 - 0.15) * 2 = 3.7. See EXPERIMENTS.md (E1).
  FigureOneGraph g = MakeFigureOne();
  std::vector<double> probs = {0.6, 0.15};
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Strategy theta2 = Strategy::FromLeafOrder(g.graph, {g.d_g, g.d_p});
  EXPECT_NEAR(ExactExpectedCost(g.graph, theta1, probs), 2.8, 1e-12);
  EXPECT_NEAR(ExactExpectedCost(g.graph, theta2, probs), 3.7, 1e-12);
  // Direct weighted-context check: 0.6*2 + 0.15*4 + 0.25*4 = 2.8.
  EXPECT_NEAR(0.6 * 2 + 0.15 * 4 + 0.25 * 4, 2.8, 1e-12);
}

TEST(ExpectedCostTest, LeafOnlyMatchesEnumerationOnFigures) {
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<double> probs = {0.3, 0.5, 0.2, 0.8};
  for (const Strategy& theta :
       {Strategy::DepthFirst(g.graph),
        Strategy::FromLeafOrder(g.graph, {g.d_d, g.d_c, g.d_b, g.d_a}),
        Strategy::FromLeafOrder(g.graph, {g.d_b, g.d_d, g.d_a, g.d_c})}) {
    double fast = LeafOnlyExpectedCost(g.graph, theta, probs);
    double exact = ExactExpectedCost(g.graph, theta, probs);
    double enumerated = EnumeratedExpectedCost(g.graph, theta, probs);
    EXPECT_TRUE(AlmostEqual(fast, enumerated)) << theta.ToString(g.graph);
    EXPECT_TRUE(AlmostEqual(exact, enumerated)) << theta.ToString(g.graph);
  }
}

TEST(ExpectedCostTest, ZeroProbabilityLeafNeverTerminatesEarly) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  // p = 0 everywhere: always explores everything -> total cost.
  EXPECT_DOUBLE_EQ(ExactExpectedCost(g.graph, theta1, {0.0, 0.0}), 4.0);
  // p = 1 on the first leaf: stops after 2 arcs.
  EXPECT_DOUBLE_EQ(ExactExpectedCost(g.graph, theta1, {1.0, 0.3}), 2.0);
}

// Property: on random leaf-only trees, the O(|A|) fast path, the general
// DP, and exhaustive enumeration all agree for random strategies.
class LeafOnlyCostProperty : public ::testing::TestWithParam<int> {};

TEST_P(LeafOnlyCostProperty, AllMethodsAgree) {
  Rng rng(1000 + GetParam());
  RandomTreeOptions options;
  options.depth = 2 + GetParam() % 3;
  RandomTree tree = MakeRandomTree(rng, options);
  if (tree.graph.num_experiments() > 14) GTEST_SKIP() << "too large to enumerate";

  std::vector<ArcId> leaves = tree.graph.SuccessArcs();
  for (int trial = 0; trial < 3; ++trial) {
    rng.Shuffle(leaves);
    Strategy theta = Strategy::FromLeafOrder(tree.graph, leaves);
    double fast = LeafOnlyExpectedCost(tree.graph, theta, tree.probs);
    double exact = ExactExpectedCost(tree.graph, theta, tree.probs);
    double enumerated = EnumeratedExpectedCost(tree.graph, theta, tree.probs);
    EXPECT_TRUE(AlmostEqual(fast, enumerated, 1e-7))
        << "fast=" << fast << " enum=" << enumerated;
    EXPECT_TRUE(AlmostEqual(exact, enumerated, 1e-7))
        << "exact=" << exact << " enum=" << enumerated;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, LeafOnlyCostProperty,
                         ::testing::Range(0, 25));

// Property: with internal experiments (guards), the general DP still
// matches enumeration.
class InternalExperimentCostProperty : public ::testing::TestWithParam<int> {
};

TEST_P(InternalExperimentCostProperty, ExactMatchesEnumeration) {
  Rng rng(2000 + GetParam());
  RandomTreeOptions options;
  options.depth = 3;
  options.internal_experiment_prob = 0.5;
  options.min_branch = 2;
  options.max_branch = 2;
  RandomTree tree = MakeRandomTree(rng, options);
  if (tree.graph.num_experiments() > 14) GTEST_SKIP() << "too large";

  std::vector<ArcId> leaves = tree.graph.SuccessArcs();
  for (int trial = 0; trial < 3; ++trial) {
    rng.Shuffle(leaves);
    Strategy theta = Strategy::FromLeafOrder(tree.graph, leaves);
    double exact = ExactExpectedCost(tree.graph, theta, tree.probs);
    double enumerated = EnumeratedExpectedCost(tree.graph, theta, tree.probs);
    EXPECT_TRUE(AlmostEqual(exact, enumerated, 1e-7))
        << "exact=" << exact << " enum=" << enumerated
        << " arcs=" << tree.graph.num_arcs();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGuardedTrees, InternalExperimentCostProperty,
                         ::testing::Range(0, 25));

TEST(ExpectedCostTest, ChainGraphExactCost) {
  // root -r(1)-> n -e1(2, p=0.5)-> n2 -e2(4, p=0.8, success).
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto n = g.AddChild(root, "n", ArcKind::kReduction, 1.0, "r");
  auto n2 = g.AddChild(n.node, "n2", ArcKind::kRetrieval, 2.0, "e1",
                       /*is_experiment=*/true);
  g.AddChild(n2.node, "[e2]", ArcKind::kRetrieval, 4.0, "e2",
             /*is_experiment=*/true, /*is_success=*/true);
  Strategy theta = Strategy::DepthFirst(g);
  // Cost = 1 + 2 + P(e1)*4 = 3 + 0.5*4 = 5.
  EXPECT_NEAR(ExactExpectedCost(g, theta, {0.5, 0.8}), 5.0, 1e-12);
  EXPECT_NEAR(EnumeratedExpectedCost(g, theta, {0.5, 0.8}), 5.0, 1e-12);
}

TEST(ExpectedCostTest, MonteCarloConvergesToExact) {
  FigureOneGraph g = MakeFigureOne();
  std::vector<double> probs = {0.6, 0.15};
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  IndependentOracle oracle(probs);
  Rng rng(77);
  double mc = MonteCarloExpectedCost(g.graph, theta1, oracle, 200000, rng);
  EXPECT_NEAR(mc, 2.8, 0.02);
}

TEST(BruteForceOptimalTest, FigureOnePicksProfFirst) {
  FigureOneGraph g = MakeFigureOne();
  Result<OptimalResult> best = BruteForceOptimal(g.graph, {0.6, 0.15});
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(best->cost, 2.8, 1e-12);
  EXPECT_EQ(best->strategy.LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_p, g.d_g}));
}

TEST(BruteForceOptimalTest, RejectsTooManyLeaves) {
  Rng rng(3);
  RandomTree tree = MakeFlatTree(rng, 12);
  Result<OptimalResult> r = BruteForceOptimal(tree.graph, tree.probs, 8);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExpectedCostTest, IsLeafOnlyDetection) {
  FigureTwoGraph g = MakeFigureTwo();
  EXPECT_TRUE(IsLeafOnlyExperiments(g.graph));
  InferenceGraph guarded;
  NodeId root = guarded.AddRoot("goal");
  auto sub = guarded.AddChild(root, "s", ArcKind::kReduction, 1.0, "g",
                              /*is_experiment=*/true);
  guarded.AddRetrieval(sub.node, 1.0, "d");
  EXPECT_FALSE(IsLeafOnlyExperiments(guarded));
}

}  // namespace
}  // namespace stratlearn
