#include <gtest/gtest.h>

#include "datalog/atom.h"
#include "datalog/clause.h"
#include "datalog/symbol_table.h"
#include "datalog/term.h"

namespace stratlearn {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  SymbolId a = t.Intern("prof");
  SymbolId b = t.Intern("prof");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SymbolTableTest, DistinctNamesDistinctIds) {
  SymbolTable t;
  SymbolId a = t.Intern("prof");
  SymbolId b = t.Intern("grad");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Name(a), "prof");
  EXPECT_EQ(t.Name(b), "grad");
}

TEST(SymbolTableTest, LookupMissingReturnsInvalid) {
  SymbolTable t;
  EXPECT_EQ(t.Lookup("nothing"), kInvalidSymbol);
  t.Intern("x");
  EXPECT_EQ(t.Lookup("x"), 0u);
}

TEST(SymbolTableTest, ManySymbols) {
  SymbolTable t;
  for (int i = 0; i < 1000; ++i) {
    t.Intern("sym" + std::to_string(i));
  }
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_EQ(t.Name(t.Lookup("sym500")), "sym500");
}

TEST(TermTest, KindsAndEquality) {
  Term c = Term::Constant(3);
  Term v = Term::Variable(3);
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(v.is_variable());
  EXPECT_NE(c, v);
  EXPECT_EQ(c, Term::Constant(3));
  EXPECT_NE(c, Term::Constant(4));
}

TEST(AtomTest, GroundDetection) {
  SymbolTable t;
  Atom ground(t.Intern("p"), {Term::Constant(t.Intern("a"))});
  Atom open(t.Intern("p"), {Term::Variable(t.Intern("X"))});
  EXPECT_TRUE(ground.IsGround());
  EXPECT_FALSE(open.IsGround());
  Atom propositional(t.Intern("q"), {});
  EXPECT_TRUE(propositional.IsGround());
}

TEST(AtomTest, ToStringFormats) {
  SymbolTable t;
  Atom a(t.Intern("edge"),
         {Term::Constant(t.Intern("x")), Term::Variable(t.Intern("Y"))});
  EXPECT_EQ(a.ToString(t), "edge(x, Y)");
  Atom p(t.Intern("flag"), {});
  EXPECT_EQ(p.ToString(t), "flag");
}

TEST(AtomTest, HashConsistentWithEquality) {
  SymbolTable t;
  Atom a(t.Intern("p"), {Term::Constant(t.Intern("a"))});
  Atom b(t.Intern("p"), {Term::Constant(t.Intern("a"))});
  Atom c(t.Intern("p"), {Term::Constant(t.Intern("b"))});
  AtomHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(ClauseTest, FactDetection) {
  SymbolTable t;
  Clause fact(Atom(t.Intern("p"), {Term::Constant(t.Intern("a"))}), {});
  EXPECT_TRUE(fact.IsFact());
  Clause rule(Atom(t.Intern("p"), {Term::Variable(t.Intern("X"))}),
              {Atom(t.Intern("q"), {Term::Variable(t.Intern("X"))})});
  EXPECT_FALSE(rule.IsFact());
}

TEST(ClauseTest, RangeRestriction) {
  SymbolTable t;
  SymbolId x = t.Intern("X");
  SymbolId y = t.Intern("Y");
  // p(X) :- q(X). is range restricted.
  Clause good(Atom(t.Intern("p"), {Term::Variable(x)}),
              {Atom(t.Intern("q"), {Term::Variable(x)})});
  EXPECT_TRUE(good.IsRangeRestricted());
  // p(Y) :- q(X). is not: Y never appears in the body.
  Clause bad(Atom(t.Intern("p"), {Term::Variable(y)}),
             {Atom(t.Intern("q"), {Term::Variable(x)})});
  EXPECT_FALSE(bad.IsRangeRestricted());
  // Non-ground fact is not range restricted.
  Clause open_fact(Atom(t.Intern("p"), {Term::Variable(x)}), {});
  EXPECT_FALSE(open_fact.IsRangeRestricted());
}

TEST(ClauseTest, ToStringFormats) {
  SymbolTable t;
  SymbolId x = t.Intern("X");
  Clause rule(Atom(t.Intern("instructor"), {Term::Variable(x)}),
              {Atom(t.Intern("prof"), {Term::Variable(x)})});
  EXPECT_EQ(rule.ToString(t), "instructor(X) :- prof(X).");
  Clause fact(Atom(t.Intern("prof"), {Term::Constant(t.Intern("russ"))}), {});
  EXPECT_EQ(fact.ToString(t), "prof(russ).");
}

}  // namespace
}  // namespace stratlearn
