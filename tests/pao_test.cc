#include "core/pao.h"

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "graph/examples.h"
#include "stats/chernoff.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

TEST(PaoQuotasTest, MatchEquationSeven) {
  FigureOneGraph g = MakeFigureOne();
  PaoOptions options;
  options.epsilon = 1.0;
  options.delta = 0.1;
  std::vector<int64_t> quotas = Pao::ComputeQuotas(g.graph, options);
  ASSERT_EQ(quotas.size(), 2u);
  // n = 2, F_not = 2 for both retrievals.
  EXPECT_EQ(quotas[0], PaoRetrievalQuota(2, 2.0, 1.0, 0.1));
  EXPECT_EQ(quotas[0], quotas[1]);
}

TEST(PaoQuotasTest, Theorem3ModeUsesEquationEight) {
  FigureOneGraph g = MakeFigureOne();
  PaoOptions options;
  options.epsilon = 1.0;
  options.delta = 0.1;
  options.mode = PaoOptions::Mode::kTheorem3;
  std::vector<int64_t> quotas = Pao::ComputeQuotas(g.graph, options);
  EXPECT_EQ(quotas[0], PaoReachQuota(2, 2.0, 1.0, 0.1));
}

TEST(PaoTest, RecoversOptimalStrategyOnFigureOne) {
  FigureOneGraph g = MakeFigureOne();
  std::vector<double> probs = {0.2, 0.6};
  IndependentOracle oracle(probs);
  Rng rng(1);
  PaoOptions options;
  options.epsilon = 0.5;
  options.delta = 0.1;
  Result<PaoResult> result = Pao::Run(g.graph, oracle, rng, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->upsilon_exact);
  // Optimal for <0.2, 0.6> is grad first.
  EXPECT_EQ(result->strategy.LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_g, g.d_p}));
  // Estimates close to truth (quota >> 100 samples).
  EXPECT_NEAR(result->estimates[0], 0.2, 0.1);
  EXPECT_NEAR(result->estimates[1], 0.6, 0.1);
  EXPECT_GT(result->contexts_used, 0);
}

TEST(PaoTest, EpsilonOptimalityHoldsEmpirically) {
  // Theorem 2's guarantee, checked over independent runs on a fixed
  // graph: Pr[C(pao) > C(opt) + eps] <= delta.
  FigureOneGraph g = MakeFigureOne();
  std::vector<double> probs = {0.45, 0.55};  // near-tie: hardest case
  const double epsilon = 0.5, delta = 0.2;
  Result<OptimalResult> opt = BruteForceOptimal(g.graph, probs);
  ASSERT_TRUE(opt.ok());

  Rng seed_rng(2);
  int violations = 0;
  const int runs = 30;
  for (int r = 0; r < runs; ++r) {
    IndependentOracle oracle(probs);
    Rng rng = seed_rng.Fork();
    PaoOptions options;
    options.epsilon = epsilon;
    options.delta = delta;
    Result<PaoResult> result = Pao::Run(g.graph, oracle, rng, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    double cost = ExactExpectedCost(g.graph, result->strategy, probs);
    if (cost > opt->cost + epsilon) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations) / runs, delta);
}

TEST(PaoTest, Theorem2StallsOnUnreachableExperiment) {
  // A guarded subtree whose guard never opens: attempt quotas for the
  // inner retrieval can never be met (Section 4.1's motivation).
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto guard = g.AddChild(root, "sub", ArcKind::kReduction, 1.0, "guard",
                          /*is_experiment=*/true);
  g.AddRetrieval(guard.node, 1.0, "d_inner");
  g.AddRetrieval(root, 1.0, "d_outer");

  // Guard always blocked.
  IndependentOracle oracle({0.0, 0.5, 0.5});
  Rng rng(3);
  PaoOptions options;
  options.epsilon = 1.0;
  options.delta = 0.2;
  options.max_contexts = 3000;
  Result<PaoResult> result = Pao::Run(g, oracle, rng, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(PaoTest, Theorem3HandlesUnreachableExperiment) {
  // Same graph, Theorem 3 mode: blocked aims count, so sampling
  // completes and the unreached retrieval falls back to 0.5.
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto guard = g.AddChild(root, "sub", ArcKind::kReduction, 1.0, "guard",
                          /*is_experiment=*/true);
  ArcId inner = g.AddRetrieval(guard.node, 1.0, "d_inner").arc;
  g.AddRetrieval(root, 1.0, "d_outer");
  int inner_exp = g.ExperimentIndex(inner);

  IndependentOracle oracle({0.0, 0.5, 0.5});
  Rng rng(4);
  PaoOptions options;
  options.epsilon = 1.5;
  options.delta = 0.2;
  options.mode = PaoOptions::Mode::kTheorem3;
  Result<PaoResult> result = Pao::Run(g, oracle, rng, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->estimates[inner_exp], 0.5);
}

TEST(PaoTest, RejectsBadParameters) {
  FigureOneGraph g = MakeFigureOne();
  IndependentOracle oracle({0.5, 0.5});
  Rng rng(5);
  PaoOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(Pao::Run(g.graph, oracle, rng, options).ok());
  options.epsilon = 1.0;
  options.delta = 1.5;
  EXPECT_FALSE(Pao::Run(g.graph, oracle, rng, options).ok());
}

TEST(PaoTest, OracleGraphMismatchRejected) {
  FigureOneGraph g = MakeFigureOne();
  IndependentOracle oracle({0.5, 0.5, 0.5});
  Rng rng(6);
  EXPECT_FALSE(Pao::Run(g.graph, oracle, rng, PaoOptions()).ok());
}

TEST(PaoTest, TighterEpsilonUsesMoreSamples) {
  FigureOneGraph g = MakeFigureOne();
  PaoOptions loose;
  loose.epsilon = 1.0;
  PaoOptions tight;
  tight.epsilon = 0.25;
  std::vector<int64_t> ql = Pao::ComputeQuotas(g.graph, loose);
  std::vector<int64_t> qt = Pao::ComputeQuotas(g.graph, tight);
  EXPECT_GT(qt[0], ql[0]);
  // Quadratic scaling: (1/0.25)^2 / (1/1)^2 = 16x.
  EXPECT_NEAR(static_cast<double>(qt[0]) / ql[0], 16.0, 0.5);
}

TEST(PaoTest, WorksOnRandomTrees) {
  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    RandomTree tree = MakeRandomTree(rng);
    IndependentOracle oracle(tree.probs);
    PaoOptions options;
    options.epsilon = 0.25 * tree.graph.TotalCost();
    options.delta = 0.2;
    options.max_contexts = 5'000'000;
    Result<PaoResult> result = Pao::Run(tree.graph, oracle, rng, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    Result<UpsilonResult> opt = UpsilonAot(tree.graph, tree.probs);
    ASSERT_TRUE(opt.ok());
    double cost = ExactExpectedCost(tree.graph, result->strategy, tree.probs);
    EXPECT_LE(cost, opt->expected_cost + options.epsilon + 1e-9);
  }
}

}  // namespace
}  // namespace stratlearn
