#include "engine/adaptive_qp.h"

#include <gtest/gtest.h>

#include "graph/examples.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

TEST(AdaptiveQpTest, FixedStrategyWouldStarve) {
  // Section 4.1's motivation: if D_p always succeeds, a fixed Theta_1
  // never samples D_g — but QP^A does.
  FigureOneGraph g = MakeFigureOne();
  AdaptiveQueryProcessor qpa(&g.graph, {5, 5},
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  Context always_prof(2);
  always_prof.Set(0, true);
  always_prof.Set(1, true);
  while (!qpa.QuotasMet()) qpa.Process(always_prof);
  EXPECT_GE(qpa.counters()[0].attempts(), 5);
  EXPECT_GE(qpa.counters()[1].attempts(), 5);
}

TEST(AdaptiveQpTest, CrossSamplesCountTowardOtherQuotas) {
  // The paper: "as 18 of the 30 D_p retrievals succeeded, PAO would
  // already have obtained 12 samples of D_g" — a run that fails D_p and
  // falls through to D_g credits D_g's quota too.
  FigureOneGraph g = MakeFigureOne();
  AdaptiveQueryProcessor qpa(&g.graph, {3, 3},
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  Context nothing(2);  // both retrievals fail -> both attempted every run
  qpa.Process(nothing);
  EXPECT_EQ(qpa.remaining()[0], 2);
  EXPECT_EQ(qpa.remaining()[1], 2);
  qpa.Process(nothing);
  qpa.Process(nothing);
  EXPECT_TRUE(qpa.QuotasMet());
  EXPECT_EQ(qpa.contexts_processed(), 3);
}

TEST(AdaptiveQpTest, AimsAtLargestRemainingQuota) {
  FigureOneGraph g = MakeFigureOne();
  AdaptiveQueryProcessor qpa(&g.graph, {1, 10},
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  Context both = Context::AllUnblocked(2);
  auto step = qpa.Process(both);
  EXPECT_EQ(step.aimed_experiment, 1);  // D_g has the larger quota
  EXPECT_TRUE(step.reached);
}

TEST(AdaptiveQpTest, QuotaZeroMeansDepthFirst) {
  FigureOneGraph g = MakeFigureOne();
  AdaptiveQueryProcessor qpa(&g.graph, {0, 0},
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  EXPECT_TRUE(qpa.QuotasMet());
  auto step = qpa.Process(Context::AllUnblocked(2));
  EXPECT_EQ(step.aimed_experiment, -1);
  EXPECT_TRUE(step.trace.success);
}

TEST(AdaptiveQpTest, SuccessFrequenciesMatchCounters) {
  FigureOneGraph g = MakeFigureOne();
  AdaptiveQueryProcessor qpa(&g.graph, {4, 4},
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  // D_p succeeds, D_g fails, alternating contexts to hit both quotas.
  Context prof_only(2);
  prof_only.Set(0, true);
  Context neither(2);
  for (int i = 0; i < 4; ++i) {
    qpa.Process(prof_only);
    qpa.Process(neither);
  }
  std::vector<double> p = qpa.SuccessFrequencies();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_GT(p[0], 0.0);
  EXPECT_EQ(p[1], 0.0);  // D_g never succeeded
}

TEST(AdaptiveQpTest, ReachModeCountsBlockedAims) {
  // Chain graph: guard -> leaf. When the guard blocks, the leaf is aimed
  // at but not reached; Theorem 3 mode still credits the aim.
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto guard = g.AddChild(root, "sub", ArcKind::kReduction, 1.0, "guard",
                          /*is_experiment=*/true);
  ArcId leaf = g.AddRetrieval(guard.node, 1.0, "d").arc;
  g.AddRetrieval(root, 1.0, "other");
  (void)leaf;

  int leaf_exp = 1;  // experiments: guard=0, leaf=1, other=2
  AdaptiveQueryProcessor qpa(&g, {0, 5, 0},
                             AdaptiveQueryProcessor::QuotaMode::kReachAttempts);
  Context guard_blocked = Context::AllUnblocked(3);
  guard_blocked.Set(0, false);
  for (int i = 0; i < 5; ++i) {
    auto step = qpa.Process(guard_blocked);
    EXPECT_EQ(step.aimed_experiment, leaf_exp);
    EXPECT_FALSE(step.reached);
  }
  EXPECT_TRUE(qpa.QuotasMet());
  EXPECT_EQ(qpa.counters()[leaf_exp].reach_attempts(), 5);
  EXPECT_EQ(qpa.counters()[leaf_exp].attempts(), 0);
  // Never-reached experiments fall back to 0.5 (Theorem 3).
  EXPECT_EQ(qpa.SuccessFrequencies()[leaf_exp], 0.5);
}

TEST(AdaptiveQpTest, AttemptModeDoesNotCreditBlockedAims) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto guard = g.AddChild(root, "sub", ArcKind::kReduction, 1.0, "guard",
                          /*is_experiment=*/true);
  g.AddRetrieval(guard.node, 1.0, "d");
  AdaptiveQueryProcessor qpa(&g, {0, 3},
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  Context guard_blocked(2);
  qpa.Process(guard_blocked);
  EXPECT_EQ(qpa.remaining()[1], 3);  // aim blocked: no attempt credit
  EXPECT_FALSE(qpa.QuotasMet());
}

TEST(AdaptiveQpTest, EveryContextStillGetsAnswered) {
  // Unobtrusiveness: aiming must not break query answering.
  FigureOneGraph g = MakeFigureOne();
  AdaptiveQueryProcessor qpa(&g.graph, {10, 10},
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  Rng rng(99);
  IndependentOracle oracle({0.6, 0.15});
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    Context ctx = oracle.Next(rng);
    bool has_answer = ctx.Unblocked(0) || ctx.Unblocked(1);
    auto step = qpa.Process(ctx);
    EXPECT_EQ(step.trace.success, has_answer);
    if (has_answer) ++successes;
  }
  EXPECT_GT(successes, 50);
}

}  // namespace
}  // namespace stratlearn
