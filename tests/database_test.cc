#include "datalog/database.h"

#include <gtest/gtest.h>

namespace stratlearn {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  Atom MakeAtom(const std::string& pred,
                const std::vector<std::string>& consts) {
    Atom a;
    a.predicate = symbols_.Intern(pred);
    for (const auto& c : consts) {
      a.args.push_back(Term::Constant(symbols_.Intern(c)));
    }
    return a;
  }

  SymbolTable symbols_;
  Database db_;
};

TEST_F(DatabaseTest, InsertAndContains) {
  ASSERT_TRUE(db_.Insert(MakeAtom("prof", {"russ"})).ok());
  EXPECT_TRUE(db_.Contains(MakeAtom("prof", {"russ"})));
  EXPECT_FALSE(db_.Contains(MakeAtom("prof", {"manolis"})));
  EXPECT_FALSE(db_.Contains(MakeAtom("grad", {"russ"})));
}

TEST_F(DatabaseTest, DuplicateInsertIsSetSemantics) {
  ASSERT_TRUE(db_.Insert(MakeAtom("prof", {"russ"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("prof", {"russ"})).ok());
  EXPECT_EQ(db_.CountFacts(symbols_.Intern("prof")), 1);
}

TEST_F(DatabaseTest, NonGroundInsertRejected) {
  Atom open;
  open.predicate = symbols_.Intern("p");
  open.args.push_back(Term::Variable(symbols_.Intern("X")));
  EXPECT_EQ(db_.Insert(open).code(), StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, ArityMismatchRejected) {
  ASSERT_TRUE(db_.Insert(MakeAtom("p", {"a"})).ok());
  EXPECT_EQ(db_.Insert(MakeAtom("p", {"a", "b"})).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DatabaseTest, CountsAndTotals) {
  ASSERT_TRUE(db_.Insert(MakeAtom("p", {"a"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("p", {"b"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("q", {"a", "b"})).ok());
  EXPECT_EQ(db_.CountFacts(symbols_.Intern("p")), 2);
  EXPECT_EQ(db_.CountFacts(symbols_.Intern("q")), 1);
  EXPECT_EQ(db_.CountFacts(symbols_.Intern("zzz")), 0);
  EXPECT_EQ(db_.TotalFacts(), 3);
  EXPECT_EQ(db_.Arity(symbols_.Intern("q")), 2);
  EXPECT_EQ(db_.Arity(symbols_.Intern("zzz")), -1);
}

TEST_F(DatabaseTest, MatchWithBoundFirstArgument) {
  ASSERT_TRUE(db_.Insert(MakeAtom("age", {"russ", "40"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("age", {"russ", "41"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("age", {"fred", "30"})).ok());
  Atom pattern;
  pattern.predicate = symbols_.Intern("age");
  pattern.args = {Term::Constant(symbols_.Intern("russ")),
                  Term::Variable(symbols_.Intern("X"))};
  std::vector<FactTuple> out;
  db_.Match(pattern, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(DatabaseTest, MatchWithUnboundFirstArgument) {
  ASSERT_TRUE(db_.Insert(MakeAtom("age", {"russ", "40"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("age", {"fred", "40"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("age", {"mark", "30"})).ok());
  Atom pattern;
  pattern.predicate = symbols_.Intern("age");
  pattern.args = {Term::Variable(symbols_.Intern("X")),
                  Term::Constant(symbols_.Intern("40"))};
  std::vector<FactTuple> out;
  db_.Match(pattern, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(DatabaseTest, MatchHonoursRepeatedVariables) {
  ASSERT_TRUE(db_.Insert(MakeAtom("edge", {"a", "a"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("edge", {"a", "b"})).ok());
  Atom pattern;
  pattern.predicate = symbols_.Intern("edge");
  SymbolId x = symbols_.Intern("X");
  pattern.args = {Term::Variable(x), Term::Variable(x)};
  std::vector<FactTuple> out;
  db_.Match(pattern, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], out[0][1]);
}

TEST_F(DatabaseTest, MatchUnknownPredicateIsEmpty) {
  Atom pattern;
  pattern.predicate = symbols_.Intern("ghost");
  std::vector<FactTuple> out;
  db_.Match(pattern, &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(DatabaseTest, MatchArityMismatchIsEmpty) {
  ASSERT_TRUE(db_.Insert(MakeAtom("p", {"a"})).ok());
  Atom pattern;
  pattern.predicate = symbols_.Intern("p");
  pattern.args = {Term::Variable(symbols_.Intern("X")),
                  Term::Variable(symbols_.Intern("Y"))};
  std::vector<FactTuple> out;
  db_.Match(pattern, &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(DatabaseTest, PredicatesEnumerates) {
  ASSERT_TRUE(db_.Insert(MakeAtom("p", {"a"})).ok());
  ASSERT_TRUE(db_.Insert(MakeAtom("q", {"b"})).ok());
  EXPECT_EQ(db_.Predicates().size(), 2u);
}

TEST_F(DatabaseTest, ClearEmpties) {
  ASSERT_TRUE(db_.Insert(MakeAtom("p", {"a"})).ok());
  db_.Clear();
  EXPECT_EQ(db_.TotalFacts(), 0);
  EXPECT_FALSE(db_.Contains(MakeAtom("p", {"a"})));
}

TEST_F(DatabaseTest, LargeRelationLookupIsCorrect) {
  SymbolId pred = symbols_.Intern("big");
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db_.Insert(pred, {symbols_.Intern("c" + std::to_string(i))})
                    .ok());
  }
  EXPECT_EQ(db_.CountFacts(pred), 5000);
  EXPECT_TRUE(db_.Contains(pred, {symbols_.Intern("c4999")}));
  EXPECT_FALSE(db_.Contains(pred, {symbols_.Intern("c5000")}));
}

}  // namespace
}  // namespace stratlearn
