#include "core/palo.h"

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "graph/examples.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

void Drive(Palo& palo, const InferenceGraph& graph, ContextOracle& oracle,
           Rng& rng, int max_contexts) {
  QueryProcessor qp(&graph);
  for (int i = 0; i < max_contexts && !palo.Finished(); ++i) {
    palo.Observe(qp.Execute(palo.strategy(), oracle.Next(rng)));
  }
}

TEST(PaloTest, TerminatesAtLocalOptimum) {
  FigureOneGraph g = MakeFigureOne();
  std::vector<double> probs = {0.9, 0.05};
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Palo palo(&g.graph, theta1, {.delta = 0.1, .epsilon = 0.5});
  IndependentOracle oracle(probs);
  Rng rng(1);
  Drive(palo, g.graph, oracle, rng, 20000);
  EXPECT_TRUE(palo.Finished());
  EXPECT_EQ(palo.moves_made(), 0);
}

TEST(PaloTest, ClimbsThenStops) {
  FigureOneGraph g = MakeFigureOne();
  std::vector<double> probs = {0.05, 0.9};
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Palo palo(&g.graph, theta1, {.delta = 0.1, .epsilon = 0.5});
  IndependentOracle oracle(probs);
  Rng rng(2);
  Drive(palo, g.graph, oracle, rng, 50000);
  EXPECT_TRUE(palo.Finished());
  EXPECT_EQ(palo.moves_made(), 1);
  EXPECT_EQ(palo.strategy().LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_g, g.d_p}));
}

TEST(PaloTest, FinalStrategyIsEpsilonLocalOptimal) {
  // When PALO stops, every sibling-swap neighbour improves by < epsilon
  // (Theorem 1-style guarantee; deterministic check against true costs).
  Rng rng(3);
  const double epsilon = 0.75;
  for (int trial = 0; trial < 5; ++trial) {
    RandomTree tree = MakeRandomTree(rng);
    Palo palo(&tree.graph, Strategy::DepthFirst(tree.graph),
              {.delta = 0.1, .epsilon = epsilon});
    IndependentOracle oracle(tree.probs);
    Drive(palo, tree.graph, oracle, rng, 100000);
    if (!palo.Finished()) continue;  // sampling budget ran out: fine
    double current =
        ExactExpectedCost(tree.graph, palo.strategy(), tree.probs);
    for (const SiblingSwap& swap : AllSiblingSwaps(tree.graph)) {
      Strategy alt = ApplySwap(tree.graph, palo.strategy(), swap);
      double alt_cost = ExactExpectedCost(tree.graph, alt, tree.probs);
      EXPECT_GE(alt_cost, current - epsilon - 1e-9)
          << "trial=" << trial << " swap=" << swap.ToString(tree.graph);
    }
  }
}

TEST(PaloTest, ObserveAfterFinishIsNoOp) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Palo palo(&g.graph, theta1, {.delta = 0.2, .epsilon = 2.0});
  IndependentOracle oracle({0.9, 0.9});
  Rng rng(4);
  Drive(palo, g.graph, oracle, rng, 20000);
  ASSERT_TRUE(palo.Finished());
  int64_t contexts = palo.contexts_processed();
  QueryProcessor qp(&g.graph);
  EXPECT_FALSE(palo.Observe(qp.Execute(palo.strategy(), oracle.Next(rng))));
  EXPECT_EQ(palo.contexts_processed(), contexts);
}

TEST(PaloTest, LargerEpsilonStopsSooner) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  IndependentOracle oracle({0.5, 0.5});
  int64_t loose_contexts = 0, tight_contexts = 0;
  {
    Palo palo(&g.graph, theta1, {.delta = 0.1, .epsilon = 2.0});
    Rng rng(5);
    Drive(palo, g.graph, oracle, rng, 200000);
    ASSERT_TRUE(palo.Finished());
    loose_contexts = palo.contexts_processed();
  }
  {
    // N.b. the stop certificate uses the optimistic per-context
    // over-estimates, whose mean exceeds the true D by a bias (0.5 here:
    // the unobserved-leaf completions); epsilon below that bias can
    // never certify, so the tight setting stays above it.
    Palo palo(&g.graph, theta1, {.delta = 0.1, .epsilon = 0.75});
    Rng rng(5);
    Drive(palo, g.graph, oracle, rng, 200000);
    ASSERT_TRUE(palo.Finished());
    tight_contexts = palo.contexts_processed();
  }
  EXPECT_LT(loose_contexts, tight_contexts);
}

}  // namespace
}  // namespace stratlearn
