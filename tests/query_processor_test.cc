#include "engine/query_processor.h"

#include <gtest/gtest.h>

#include "graph/examples.h"

namespace stratlearn {
namespace {

class QueryProcessorTest : public ::testing::Test {
 protected:
  QueryProcessorTest()
      : ga_(MakeFigureOne()),
        theta1_(Strategy::FromLeafOrder(ga_.graph, {ga_.d_p, ga_.d_g})),
        theta2_(Strategy::FromLeafOrder(ga_.graph, {ga_.d_g, ga_.d_p})),
        qp_(&ga_.graph) {}

  /// Context I(prof_in_db, grad_in_db): experiment 0 is D_p, 1 is D_g.
  Context MakeContext(bool prof, bool grad) {
    Context c(2);
    c.Set(0, prof);
    c.Set(1, grad);
    return c;
  }

  FigureOneGraph ga_;
  Strategy theta1_, theta2_;
  QueryProcessor qp_;
};

TEST_F(QueryProcessorTest, PaperWorkedCosts) {
  // Section 2.1: I_1 = instructor(manolis) with grad fact only:
  // c(Theta_1, I_1) = 4, c(Theta_2, I_1) = 2.
  Context i1 = MakeContext(false, true);
  EXPECT_DOUBLE_EQ(qp_.Cost(theta1_, i1), 4.0);
  EXPECT_DOUBLE_EQ(qp_.Cost(theta2_, i1), 2.0);
  // I_2 = instructor(russ): prof fact only: costs swap.
  Context i2 = MakeContext(true, false);
  EXPECT_DOUBLE_EQ(qp_.Cost(theta1_, i2), 2.0);
  EXPECT_DOUBLE_EQ(qp_.Cost(theta2_, i2), 4.0);
}

TEST_F(QueryProcessorTest, NoSolutionExploresEverything) {
  Context none = MakeContext(false, false);
  Trace t = qp_.Execute(theta1_, none);
  EXPECT_FALSE(t.success);
  EXPECT_EQ(t.successes, 0);
  EXPECT_DOUBLE_EQ(t.cost, 4.0);
  EXPECT_EQ(t.attempts.size(), 4u);
  EXPECT_EQ(t.first_success_arc, kInvalidArc);
}

TEST_F(QueryProcessorTest, SatisficingStopsAtFirstSuccess) {
  Context both = MakeContext(true, true);
  Trace t = qp_.Execute(theta1_, both);
  EXPECT_TRUE(t.success);
  EXPECT_EQ(t.successes, 1);
  EXPECT_DOUBLE_EQ(t.cost, 2.0);
  EXPECT_EQ(t.first_success_arc, ga_.d_p);
}

TEST_F(QueryProcessorTest, TraceRecordsOutcomes) {
  Context i1 = MakeContext(false, true);
  Trace t = qp_.Execute(theta1_, i1);
  ASSERT_EQ(t.attempts.size(), 4u);
  EXPECT_EQ(t.attempts[0].arc, ga_.r_p);
  EXPECT_TRUE(t.attempts[0].unblocked);  // reductions never block
  EXPECT_EQ(t.attempts[1].arc, ga_.d_p);
  EXPECT_FALSE(t.attempts[1].unblocked);
  EXPECT_EQ(t.attempts[3].arc, ga_.d_g);
  EXPECT_TRUE(t.attempts[3].unblocked);
  EXPECT_TRUE(t.Attempted(ga_.graph, 0));
  EXPECT_TRUE(t.Attempted(ga_.graph, 1));
}

TEST_F(QueryProcessorTest, UnattemptedExperimentsNotInTrace) {
  Context both = MakeContext(true, true);
  Trace t = qp_.Execute(theta1_, both);
  EXPECT_TRUE(t.Attempted(ga_.graph, 0));
  EXPECT_FALSE(t.Attempted(ga_.graph, 1));  // stopped before D_g
}

TEST_F(QueryProcessorTest, KAnswersKeepsSearching) {
  Context both = MakeContext(true, true);
  ExecutionOptions options;
  options.stop_after_successes = 2;
  Trace t = qp_.Execute(theta1_, both, options);
  EXPECT_TRUE(t.success);
  EXPECT_EQ(t.successes, 2);
  EXPECT_DOUBLE_EQ(t.cost, 4.0);
  EXPECT_EQ(t.first_success_arc, ga_.d_p);
}

TEST_F(QueryProcessorTest, KAnswersReportsPartialSuccesses) {
  Context only_prof = MakeContext(true, false);
  ExecutionOptions options;
  options.stop_after_successes = 2;
  Trace t = qp_.Execute(theta1_, only_prof, options);
  EXPECT_FALSE(t.success);  // wanted 2, found 1
  EXPECT_EQ(t.successes, 1);
}

TEST(QueryProcessorChainTest, BlockedInternalArcSkipsSubtree) {
  // root -r-> n1 -e1(exp)-> n2 -e2(exp, success)  plus a flat leaf.
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto n1 = g.AddChild(root, "n1", ArcKind::kReduction, 1.0, "r");
  auto n2 = g.AddChild(n1.node, "n2", ArcKind::kRetrieval, 2.0, "e1",
                       /*is_experiment=*/true);
  ArcId e2 = g.AddChild(n2.node, "[e2]", ArcKind::kRetrieval, 4.0, "e2",
                        /*is_experiment=*/true, /*is_success=*/true)
                 .arc;
  ArcId flat = g.AddRetrieval(root, 8.0, "d").arc;
  Strategy theta = Strategy::FromLeafOrder(g, {e2, flat});
  QueryProcessor qp(&g);

  // e1 blocked: e2 is skipped at no cost, search falls through to d.
  Context ctx(3);
  ctx.Set(g.ExperimentIndex(n2.arc), false);
  ctx.Set(g.ExperimentIndex(e2), true);   // unreachable anyway
  ctx.Set(g.ExperimentIndex(flat), true);
  Trace t = qp.Execute(theta, ctx);
  EXPECT_TRUE(t.success);
  EXPECT_DOUBLE_EQ(t.cost, 1.0 + 2.0 + 8.0);  // r + e1 + d; e2 skipped
  EXPECT_FALSE(t.Attempted(g, g.ExperimentIndex(e2)));

  // e1 unblocked and e2 unblocked: chain succeeds.
  Context ctx2 = Context::AllUnblocked(3);
  Trace t2 = qp.Execute(theta, ctx2);
  EXPECT_TRUE(t2.success);
  EXPECT_DOUBLE_EQ(t2.cost, 1.0 + 2.0 + 4.0);
  EXPECT_EQ(t2.first_success_arc, e2);
}

TEST(QueryProcessorChainTest, CostMatchesTraceSum) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::DepthFirst(g.graph);
  QueryProcessor qp(&g.graph);
  for (uint64_t mask = 0; mask < 16; ++mask) {
    Context ctx = Context::FromMask(4, mask);
    Trace t = qp.Execute(theta, ctx);
    double sum = 0.0;
    for (const ArcAttempt& a : t.attempts) sum += g.graph.arc(a.arc).cost;
    EXPECT_DOUBLE_EQ(t.cost, sum);
  }
}

}  // namespace
}  // namespace stratlearn
