#include "verify/dataflow.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace stratlearn::verify {
namespace {

// ---------------------------------------------------------------------
// IndexWorklist

TEST(IndexWorklistTest, FifoOrderWithDeduplication) {
  IndexWorklist wl(4);
  wl.Push(2);
  wl.Push(0);
  wl.Push(2);  // already waiting: no-op
  wl.Push(3);
  EXPECT_EQ(wl.size(), 3u);
  EXPECT_EQ(wl.Pop(), 2u);
  EXPECT_EQ(wl.Pop(), 0u);
  wl.Push(2);  // no longer waiting: re-enqueues behind 3
  EXPECT_EQ(wl.Pop(), 3u);
  EXPECT_EQ(wl.Pop(), 2u);
  EXPECT_TRUE(wl.empty());
  EXPECT_EQ(wl.pops(), 4);
}

TEST(IndexWorklistTest, PopOrderIsDeterministic) {
  auto run = [] {
    IndexWorklist wl(8);
    for (size_t n : {5u, 1u, 7u, 1u, 0u, 5u, 3u}) wl.Push(n);
    std::vector<size_t> order;
    while (!wl.empty()) order.push_back(wl.Pop());
    return order;
  };
  std::vector<size_t> first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first, (std::vector<size_t>{5, 1, 7, 0, 3}));
}

// ---------------------------------------------------------------------
// FixpointEngine

/// Max-lattice over int64: join = max, bottom = 0. Bounded by the cap
/// the transfer applies, so every monotone client below converges.
bool JoinMax(int64_t* current, const int64_t& incoming) {
  if (incoming <= *current) return false;
  *current = incoming;
  return true;
}

TEST(FixpointEngineTest, EmptyProblemConvergesInZeroIterations) {
  FixpointEngine<int64_t> engine({}, {});
  FixpointResult result = engine.Solve(
      [](size_t, const std::vector<int64_t>&) { return int64_t{0}; },
      JoinMax);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_TRUE(engine.values().empty());
}

TEST(FixpointEngineTest, ChainReachesLeastFixpoint) {
  // 0 -> 1 -> 2 -> 3: value(n+1) = min(value(n) + 1, 10). Seeding
  // value(0) = 7 gives 7, 8, 9, 10 as the least fixpoint.
  std::vector<std::vector<size_t>> succ = {{1}, {2}, {3}, {}};
  FixpointEngine<int64_t> engine({7, 0, 0, 0}, succ);
  auto transfer = [](size_t node, const std::vector<int64_t>& v) {
    if (node == 0) return v[0];
    return std::min<int64_t>(v[node - 1] + 1, 10);
  };
  FixpointResult result = engine.Solve(transfer, JoinMax);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(engine.values(), (std::vector<int64_t>{7, 8, 9, 10}));
}

TEST(FixpointEngineTest, CycleConvergesOnBoundedLattice) {
  // 0 <-> 1 feeding each other, capped at 5: both saturate.
  std::vector<std::vector<size_t>> succ = {{1}, {0}};
  FixpointEngine<int64_t> engine({1, 0}, succ);
  auto transfer = [](size_t node, const std::vector<int64_t>& v) {
    return std::min<int64_t>(v[1 - node] + 1, 5);
  };
  FixpointResult result = engine.Solve(transfer, JoinMax);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(engine.values(), (std::vector<int64_t>{5, 5}));
}

TEST(FixpointEngineTest, IterationCapReportsNonConvergence) {
  // An unbounded lattice (no cap in the transfer): the engine must
  // stop at max_iterations and say so instead of spinning.
  std::vector<std::vector<size_t>> succ = {{1}, {0}};
  FixpointEngine<int64_t>::Options options;
  options.max_iterations = 25;
  FixpointEngine<int64_t> engine({1, 0}, succ, options);
  auto transfer = [](size_t node, const std::vector<int64_t>& v) {
    return v[1 - node] + 1;
  };
  FixpointResult result = engine.Solve(transfer, JoinMax);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 25);
}

TEST(FixpointEngineTest, IncomparableElementsAccumulateUnderSetJoin) {
  // Powerset-of-{0..63} lattice as a bitmask; the two seeds {0} and
  // {1} are incomparable, and the join must keep both.
  std::vector<std::vector<size_t>> succ = {{2}, {2}, {}};
  FixpointEngine<uint64_t> engine({1u << 0, 1u << 1, 0}, succ);
  auto transfer = [](size_t node, const std::vector<uint64_t>& v) {
    if (node == 2) return v[0] | v[1];
    return v[node];
  };
  auto join = [](uint64_t* current, const uint64_t& incoming) {
    uint64_t joined = *current | incoming;
    if (joined == *current) return false;
    *current = joined;
    return true;
  };
  FixpointResult result = engine.Solve(transfer, join);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(engine.value(2), (1u << 0) | (1u << 1));
}

TEST(FixpointEngineTest, SolveIsDeterministic) {
  // Diamond 0 -> {1, 2} -> 3 with a set union at the join point: two
  // runs produce identical values and identical iteration counts.
  auto run = [] {
    std::vector<std::vector<size_t>> succ = {{1, 2}, {3}, {3}, {}};
    FixpointEngine<uint64_t> engine({1, 0, 0, 0}, succ);
    auto transfer = [](size_t node, const std::vector<uint64_t>& v) {
      switch (node) {
        case 0: return v[0];
        case 1: return v[0] << 1;
        case 2: return v[0] << 2;
        default: return v[1] | v[2];
      }
    };
    auto join = [](uint64_t* current, const uint64_t& incoming) {
      uint64_t joined = *current | incoming;
      if (joined == *current) return false;
      *current = joined;
      return true;
    };
    FixpointResult result = engine.Solve(transfer, join);
    return std::make_pair(engine.values(), result.iterations);
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_EQ(first.first[3], uint64_t{(1u << 1) | (1u << 2)});
}

}  // namespace
}  // namespace stratlearn::verify
