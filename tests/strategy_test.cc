#include "engine/strategy.h"

#include <gtest/gtest.h>

#include "graph/examples.h"

namespace stratlearn {
namespace {

TEST(StrategyTest, DepthFirstMatchesEquationFour) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::DepthFirst(g.graph);
  // Theta_ABCD = <R_ga D_a R_gs R_sb D_b R_st R_tc D_c R_td D_d>.
  std::vector<ArcId> expected = {g.r_ga, g.d_a, g.r_gs, g.r_sb, g.d_b,
                                 g.r_st, g.r_tc, g.d_c, g.r_td, g.d_d};
  EXPECT_EQ(theta.arcs(), expected);
}

TEST(StrategyTest, FromArcOrderValidates) {
  FigureOneGraph g = MakeFigureOne();
  // Theta_1 = <R_p D_p R_g D_g>.
  Result<Strategy> ok =
      Strategy::FromArcOrder(g.graph, {g.r_p, g.d_p, g.r_g, g.d_g});
  EXPECT_TRUE(ok.ok());
  // D_p before R_p: tail not yet reachable.
  Result<Strategy> bad =
      Strategy::FromArcOrder(g.graph, {g.d_p, g.r_p, g.r_g, g.d_g});
  EXPECT_FALSE(bad.ok());
  // Missing arc.
  EXPECT_FALSE(Strategy::FromArcOrder(g.graph, {g.r_p, g.d_p, g.r_g}).ok());
  // Duplicate arc.
  EXPECT_FALSE(
      Strategy::FromArcOrder(g.graph, {g.r_p, g.d_p, g.r_g, g.r_g}).ok());
}

TEST(StrategyTest, FromLeafOrderBuildsLazyStrategy) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::FromLeafOrder(g.graph,
                                           {g.d_d, g.d_a, g.d_b, g.d_c});
  // D_d first requires R_gs R_st R_td first.
  std::vector<ArcId> expected = {g.r_gs, g.r_st, g.r_td, g.d_d, g.r_ga,
                                 g.d_a,  g.r_sb, g.d_b,  g.r_tc, g.d_c};
  EXPECT_EQ(theta.arcs(), expected);
  EXPECT_TRUE(Strategy::FromArcOrder(g.graph, theta.arcs()).ok());
}

TEST(StrategyTest, LeafOrderRoundTrips) {
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<ArcId> order = {g.d_c, g.d_a, g.d_d, g.d_b};
  Strategy theta = Strategy::FromLeafOrder(g.graph, order);
  EXPECT_EQ(theta.LeafOrder(g.graph), order);
}

TEST(StrategyTest, PathsDecompositionMatchesNoteThree) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::DepthFirst(g.graph);
  auto paths = theta.Paths(g.graph);
  // <<R_ga D_a>, <R_gs R_sb D_b>, <R_st R_tc D_c>, <R_td D_d>>.
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths[0], (std::vector<ArcId>{g.r_ga, g.d_a}));
  EXPECT_EQ(paths[1], (std::vector<ArcId>{g.r_gs, g.r_sb, g.d_b}));
  EXPECT_EQ(paths[2], (std::vector<ArcId>{g.r_st, g.r_tc, g.d_c}));
  EXPECT_EQ(paths[3], (std::vector<ArcId>{g.r_td, g.d_d}));
}

TEST(StrategyTest, CanonicalizedIsIdempotentOnLazyStrategies) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::DepthFirst(g.graph);
  EXPECT_EQ(theta.Canonicalized(g.graph), theta);
}

TEST(StrategyTest, CanonicalizedMakesEagerStrategiesLazy) {
  FigureOneGraph g = MakeFigureOne();
  // Eager: both reductions first.
  Result<Strategy> eager =
      Strategy::FromArcOrder(g.graph, {g.r_p, g.r_g, g.d_p, g.d_g});
  ASSERT_TRUE(eager.ok());
  Strategy lazy = eager->Canonicalized(g.graph);
  EXPECT_EQ(lazy.arcs(), (std::vector<ArcId>{g.r_p, g.d_p, g.r_g, g.d_g}));
}

TEST(StrategyTest, ToStringUsesLabels) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta = Strategy::DepthFirst(g.graph);
  EXPECT_EQ(theta.ToString(g.graph), "<R_p D_p R_g D_g>");
}

TEST(StrategyTest, FromLeafOrderCoversDeadEnds) {
  // A graph with a dead-end reduction (no retrieval below).
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  ArcId leaf = g.AddRetrieval(root, 1.0, "d").arc;
  g.AddChild(root, "dead", ArcKind::kReduction, 1.0, "r_dead");
  Strategy theta = Strategy::FromLeafOrder(g, {leaf});
  EXPECT_EQ(theta.size(), g.num_arcs());
  EXPECT_TRUE(Strategy::FromArcOrder(g, theta.arcs()).ok());
}

TEST(StrategyTest, EqualityComparesArcOrder) {
  FigureOneGraph g = MakeFigureOne();
  Strategy a = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Strategy b = Strategy::FromLeafOrder(g.graph, {g.d_g, g.d_p});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g}));
}

}  // namespace
}  // namespace stratlearn
